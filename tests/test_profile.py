"""Wall-clock profiler and metrics registry: spans, exporters, bit-identity.

Covers the PR's invariant — with a profiler attached, answers,
``CostReport``\\ s, and traces are bit-identical to an unprofiled run across
backends and under fault schedules — plus the exporters' schema round-trips
driven by a deterministic fake clock.
"""

import json

import pytest

from repro.backends.dispatch import HAS_NUMPY
from repro.config import ExecutionConfig
from repro.core.executor import run_query
from repro.mpc import FaultInjector, FaultSchedule, MPCCluster, RecoveryPolicy
from repro.obs import (
    MetricsRegistry,
    MetricsSink,
    Profiler,
    RingBufferSink,
    Tracer,
    active_profiler,
    observe_profile,
    observe_report,
    replay_speedscope,
)
from repro.obs.profile import SPEEDSCOPE_SCHEMA, activate, write_json
from repro.workloads import line_instance, planted_out_matmul


class FakeClock:
    """Deterministic clock: each call advances by ``step`` seconds."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        value = self.now
        self.now += self.step
        return value


# -- profiler core -------------------------------------------------------------

def test_span_tree_accumulates_with_fake_clock():
    profiler = Profiler(clock=FakeClock())
    with profiler.span("outer", kind="phase"):
        with profiler.span("inner", kind="op", backend="pytuple"):
            pass
        with profiler.span("inner", kind="op", backend="pytuple"):
            pass
    assert profiler.open_depth == 0
    (outer,) = profiler.root.children.values()
    assert outer.label == "outer" and outer.calls == 1
    (inner,) = outer.children.values()
    # Repeated same-key spans accumulate into one node.
    assert inner.calls == 2 and inner.backend == "pytuple"
    # Clock ticks once per start/stop: outer spans 5 ticks, inners 1 each.
    assert outer.wall == pytest.approx(5.0)
    assert inner.wall == pytest.approx(2.0)
    assert outer.self_wall == pytest.approx(3.0)


def test_stop_without_start_raises():
    profiler = Profiler(clock=FakeClock())
    with pytest.raises(RuntimeError):
        profiler.stop()


def test_items_credit_and_add_items():
    profiler = Profiler(clock=FakeClock())
    profiler.start("exchange", kind="op")
    profiler.add_items(7)
    profiler.stop(items=3)
    (node,) = profiler.root.children.values()
    assert node.items == 10


def test_hotspots_group_by_phase_path():
    profiler = Profiler(clock=FakeClock())
    with profiler.span("run:matmul", kind="run"):
        with profiler.span("semijoin", kind="phase"):
            with profiler.span("exchange", kind="op", backend="pytuple"):
                profiler.add_items(40)
    rows = {(row.phase, row.label): row for row in profiler.hotspots()}
    op_row = rows[("run:matmul/semijoin", "exchange")]
    assert op_row.items == 40 and op_row.calls == 1
    # Structural spans appear as "·" bookkeeping rows under their path:
    # the semijoin phase under "run:matmul", the run root under "(top)".
    # Each start/stop consumes one fake-clock tick, so semijoin spans
    # ticks 1→4 and the run root ticks 0→5.
    assert rows[("run:matmul", "·")].cum_s == pytest.approx(3.0)
    assert rows[("(top)", "·")].cum_s == pytest.approx(5.0)


def test_render_hotspots_is_a_table():
    profiler = Profiler(clock=FakeClock())
    with profiler.span("run:line", kind="run"):
        with profiler.span("exchange", kind="op", backend="pytuple"):
            pass
    text = profiler.render_hotspots()
    assert text.splitlines()[0].split() == [
        "self_s", "cum_s", "calls", "items", "backend", "op", "phase"
    ]
    assert "run:line" in text and "exchange" in text


# -- exporters ------------------------------------------------------------------

def _profiled_fixture():
    profiler = Profiler(clock=FakeClock())
    with profiler.span("run:matmul", kind="run"):
        with profiler.span("exchange", kind="op", backend="numpy"):
            pass
        with profiler.span("hash_join", kind="kernel", backend="numpy"):
            pass
    return profiler


def test_speedscope_round_trip_matches_span_walls():
    profiler = _profiled_fixture()
    document = profiler.to_speedscope()
    assert document["$schema"] == SPEEDSCOPE_SCHEMA
    profile = document["profiles"][0]
    assert profile["type"] == "evented" and profile["unit"] == "seconds"
    assert profile["events"][0]["at"] == 0.0  # rebased to the origin
    totals = replay_speedscope(document)
    (run,) = profiler.root.children.values()
    assert totals["run:run:matmul"] == pytest.approx(run.wall)
    for child in run.children.values():
        name = f"{child.kind}:{child.label} [numpy]"
        assert totals[name] == pytest.approx(child.wall)


def test_speedscope_export_closes_open_spans_without_mutating():
    profiler = Profiler(clock=FakeClock())
    profiler.start("run:line", kind="run")
    document = profiler.to_speedscope()
    replay_speedscope(document)  # balanced despite the open span
    assert profiler.open_depth == 1  # export did not close the live span
    profiler.stop()


def test_speedscope_documents_are_deterministic_with_fake_clock():
    first = _profiled_fixture().to_speedscope()
    second = _profiled_fixture().to_speedscope()
    assert json.dumps(first, sort_keys=True) == json.dumps(second, sort_keys=True)


def test_chrome_trace_events_balance():
    document = _profiled_fixture().to_chrome_trace()
    events = document["traceEvents"]
    assert sum(1 for e in events if e["ph"] == "B") == \
        sum(1 for e in events if e["ph"] == "E")
    assert all(e["ts"] >= 0 for e in events)
    # Microsecond timestamps: 1-second fake ticks are 1e6 apart.
    assert events[1]["ts"] - events[0]["ts"] == pytest.approx(1e6)


def test_replay_rejects_unbalanced_documents():
    document = _profiled_fixture().to_speedscope()
    document["profiles"][0]["events"] = \
        document["profiles"][0]["events"][:-1]
    with pytest.raises(ValueError):
        replay_speedscope(document)


def test_write_json_round_trips(tmp_path):
    document = _profiled_fixture().to_speedscope()
    path = str(tmp_path / "profile.speedscope.json")
    write_json(document, path)
    assert json.load(open(path)) == document


# -- bit-identity: profiling on vs off -----------------------------------------

@pytest.mark.parametrize("backend", ["pytuple"] + (["numpy"] if HAS_NUMPY else []))
def test_profiled_run_is_bit_identical(backend):
    instance = planted_out_matmul(n=120, out=480)
    plain = run_query(instance, config=ExecutionConfig(p=4, backend=backend))
    profiler = Profiler()
    profiled = run_query(
        instance, config=ExecutionConfig(p=4, backend=backend, profiler=profiler)
    )
    assert profiled.relation.tuples == plain.relation.tuples
    assert profiled.report.to_dict() == plain.report.to_dict()
    assert profiler.open_depth == 0
    assert profiler.total_wall > 0.0
    # The run recorded the full span hierarchy: a run root with op spans.
    (run,) = profiler.root.children.values()
    assert run.kind == "run"
    kinds = {node.kind for node, _ in run.walk()}
    assert "op" in kinds and "step" in kinds


def test_profiled_run_leaves_trace_byte_identical(tmp_path):
    instance = line_instance(3, 60, 8, seed=0)

    def trace_with(profiler):
        ring = RingBufferSink()
        config = ExecutionConfig(p=4, tracer=Tracer([ring]), profiler=profiler)
        run_query(instance, config=config)
        from repro.obs import event_to_dict
        return [event_to_dict(event) for event in ring.events]

    assert trace_with(None) == trace_with(Profiler())


def test_profiled_run_is_bit_identical_under_faults():
    instance = planted_out_matmul(n=60, out=240)
    clean_cluster = MPCCluster(4)
    clean = run_query(instance, cluster=clean_cluster, algorithm="matmul")
    cells = sorted(
        (r, s)
        for r, row in clean_cluster.tracker.load_cells().items()
        for s, count in row.items() if count > 0
    )
    schedule = FaultSchedule.random(seed=3, cells=cells, count=4)

    def faulted_run(profiler):
        injector = FaultInjector(schedule, RecoveryPolicy(spares=4))
        cluster = MPCCluster(4, faults=injector, profiler=profiler)
        return run_query(instance, cluster=cluster, algorithm="matmul")

    plain = faulted_run(None)
    profiler = Profiler()
    profiled = faulted_run(profiler)
    assert profiled.relation.tuples == plain.relation.tuples
    assert profiled.report.to_dict() == plain.report.to_dict()
    assert profiler.open_depth == 0


@pytest.mark.skipif(not HAS_NUMPY, reason="numpy backend unavailable")
def test_numpy_run_records_kernel_spans():
    instance = planted_out_matmul(n=200, out=800)
    profiler = Profiler()
    run_query(instance, config=ExecutionConfig(p=4, backend="numpy",
                                               profiler=profiler))
    kernels = {node.label for node, _ in profiler.root.walk()
               if node.kind == "kernel"}
    assert kernels, "numpy run recorded no kernel spans"
    assert all(node.backend == "numpy" for node, _ in profiler.root.walk()
               if node.kind == "kernel")


def test_kernel_activation_is_restored_after_run():
    assert active_profiler() is None
    instance = planted_out_matmul(n=60, out=240)
    run_query(instance, config=ExecutionConfig(p=4, profiler=Profiler()))
    assert active_profiler() is None


def test_kernel_activation_restores_after_errors():
    sentinel = Profiler()
    token = activate(sentinel)
    try:
        instance = planted_out_matmul(n=60, out=240)
        with pytest.raises((KeyError, ValueError)):
            run_query(instance, config=ExecutionConfig(
                p=4, algorithm="nope", profiler=Profiler()))
        assert active_profiler() is sentinel
    finally:
        activate(token)


def test_one_profiler_observes_multiple_runs():
    profiler = Profiler()
    run_query(planted_out_matmul(n=60, out=240),
              config=ExecutionConfig(p=4, algorithm="matmul",
                                     profiler=profiler))
    run_query(line_instance(3, 60, 8, seed=0),
              config=ExecutionConfig(p=4, profiler=profiler))
    roots = sorted(node.label for node in profiler.root.children.values())
    assert len(roots) == 2 and all(label.startswith("run:") for label in roots)


# -- metrics registry -----------------------------------------------------------

def test_counter_gauge_histogram_basics():
    registry = MetricsRegistry()
    counter = registry.counter("repro_events_total", "events", ("op",))
    counter.inc(op="exchange")
    counter.inc(2, op="exchange")
    assert counter.value(op="exchange") == 3
    gauge = registry.gauge("repro_last_load", "load")
    gauge.set(41)
    gauge.inc()
    assert gauge.value() == 42
    histogram = registry.histogram("repro_delivery", "items", buckets=(1, 10))
    histogram.observe(0.5)
    histogram.observe(5)
    histogram.observe(100)
    assert histogram.count() == 3
    assert histogram.sum() == pytest.approx(105.5)


def test_registry_rejects_type_and_label_mismatches():
    registry = MetricsRegistry()
    registry.counter("repro_x_total", "x", ("op",))
    with pytest.raises(ValueError):
        registry.gauge("repro_x_total")
    with pytest.raises(ValueError):
        registry.counter("repro_x_total", "x", ("other",))


def test_prometheus_exposition_format():
    registry = MetricsRegistry()
    counter = registry.counter("repro_events_total", "Total events.", ("op",))
    counter.inc(op="exchange")
    histogram = registry.histogram("repro_items", "Items.", buckets=(1, 8))
    histogram.observe(4)
    text = registry.render()
    assert '# HELP repro_events_total Total events.' in text
    assert '# TYPE repro_events_total counter' in text
    assert 'repro_events_total{op="exchange"} 1' in text
    assert '# TYPE repro_items histogram' in text
    assert 'repro_items_bucket{le="1"} 0' in text
    assert 'repro_items_bucket{le="8"} 1' in text
    assert 'repro_items_bucket{le="+Inf"} 1' in text
    assert 'repro_items_count 1' in text
    # Byte-stable for a fixed state.
    assert registry.render() == text


def test_metrics_sink_counts_trace_events():
    registry = MetricsRegistry()
    instance = planted_out_matmul(n=60, out=240)
    config = ExecutionConfig(p=4, tracer=Tracer([MetricsSink(registry)]))
    result = run_query(instance, config=config)
    text = registry.render()
    assert 'repro_trace_events_total{op="exchange"}' in text
    assert "repro_rounds_observed" in text
    # Items delivered across ops equals the report's total communication.
    delivered = sum(
        int(line.rsplit(" ", 1)[1])
        for line in text.splitlines()
        if line.startswith("repro_items_delivered_total{")
    )
    assert delivered == result.report.total_communication


def test_observe_profile_and_report():
    registry = MetricsRegistry()
    profiler = Profiler(clock=FakeClock())
    with profiler.span("run:matmul", kind="run"):
        with profiler.span("exchange", kind="op", backend="pytuple"):
            profiler.add_items(12)
    observe_profile(registry, profiler)
    text = registry.render()
    assert 'repro_span_calls_total' in text
    assert 'op="exchange"' in text and 'phase="run:matmul"' in text

    instance = planted_out_matmul(n=60, out=240)
    result = run_query(instance, config=ExecutionConfig(p=4))
    observe_report(registry, result.report, scope="matmul")
    text = registry.render()
    assert f'repro_last_max_load{{scope="matmul"}} '\
        f'{result.report.max_load}' in text


# -- injectable clock in the conformance runner ---------------------------------

def test_fuzz_seconds_budget_with_fake_clock():
    from repro.conformance import FuzzConfig, fuzz

    config = FuzzConfig(seconds=2.5, seed=0, clock=FakeClock())
    summary = fuzz(config)
    # clock: 0 at deadline setup; iterations run while clock() < 2.5.
    assert summary.iterations_run == 2
    assert summary.to_json() == fuzz(
        FuzzConfig(seconds=2.5, seed=0, clock=FakeClock())
    ).to_json()
