"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.data import Instance, Relation, TreeQuery
from repro.semiring import (
    BOOLEAN,
    COUNTING,
    MAX_MIN,
    TROPICAL_MIN_PLUS,
    Semiring,
)

#: (semiring, weight sampler) pairs used across algorithm tests: one exact
#: non-idempotent semiring (catches double counting), two idempotent ones.
SEMIRING_SAMPLERS = [
    (COUNTING, lambda rng: rng.randint(1, 5)),
    (TROPICAL_MIN_PLUS, lambda rng: float(rng.randint(0, 20))),
    (BOOLEAN, lambda rng: True),
    (MAX_MIN, lambda rng: float(rng.randint(1, 9))),
]


def random_relation(
    name: str,
    schema,
    tuples: int,
    left_domain: int,
    right_domain: int,
    rng: random.Random,
    semiring: Semiring,
    weight_sampler,
) -> Relation:
    """A random binary relation with distinct tuples."""
    relation = Relation(name, schema)
    seen = set()
    attempts = 0
    limit = min(tuples, left_domain * right_domain)
    while len(seen) < limit and attempts < 200 * tuples:
        attempts += 1
        entry = (rng.randrange(left_domain), rng.randrange(right_domain))
        if entry not in seen:
            seen.add(entry)
            relation.add(entry, weight_sampler(rng))
    return relation


def random_instance(
    query: TreeQuery,
    tuples: int,
    domain: int,
    rng: random.Random,
    semiring: Semiring,
    weight_sampler,
) -> Instance:
    """Random instance of an arbitrary binary tree query."""
    relations = {
        name: random_relation(
            name, attrs, tuples, domain, domain, rng, semiring, weight_sampler
        )
        for name, attrs in query.relations
    }
    return Instance(query, relations, semiring)


def canonicalize(relation: Relation, schema, semiring: Semiring) -> Relation:
    """Re-key a result relation onto ``schema`` (sorted output order)."""
    result = Relation("canonical", schema)
    for values, weight in relation:
        bound = dict(zip(relation.schema, values))
        result.add(tuple(bound[a] for a in schema), weight, semiring)
    return result


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture(params=("pytuple", "columnar"))
def backend(request) -> str:
    """The kernel backend a parametrized module runs under.

    Modules opt in with a one-line autouse fixture requesting ``backend``;
    every test in them then runs twice — once on the reference tuple
    backend and once on the array-native columnar backend — with a single
    test body.  (The ``"numpy"`` middle tier shares the columnar kernels
    and stays covered by the modules' default-backend runs elsewhere.)
    """
    if request.param != "pytuple":
        from repro.backends.dispatch import HAS_NUMPY

        if not HAS_NUMPY:
            pytest.skip("numpy unavailable")
    return request.param


# Common query shapes -----------------------------------------------------------

MATMUL_QUERY = TreeQuery(
    (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
)

LINE3_QUERY = TreeQuery(
    (("R1", ("A1", "A2")), ("R2", ("A2", "A3")), ("R3", ("A3", "A4"))),
    frozenset({"A1", "A4"}),
)

STAR3_QUERY = TreeQuery(
    (("R1", ("A1", "B")), ("R2", ("A2", "B")), ("R3", ("A3", "B"))),
    frozenset({"A1", "A2", "A3"}),
)

TWIG_QUERY = TreeQuery(
    (
        ("Ra1", ("A1", "B1")),
        ("Ra2", ("A2", "B1")),
        ("Rm", ("B1", "B2")),
        ("Rb1", ("A3", "B2")),
        ("Rb2", ("A4", "B2")),
    ),
    frozenset({"A1", "A2", "A3", "A4"}),
)

GENERAL_TREE_QUERY = TreeQuery(
    (
        ("R1", ("A", "B")),
        ("R2", ("B", "C")),
        ("R3", ("C", "D")),
        ("R4", ("B", "E")),
    ),
    frozenset({"A", "C"}),
)
