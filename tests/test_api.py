"""The ``repro.api`` facade and :class:`ExecutionConfig`.

One import surface for everything the CLI can do: versioned ``__all__``
contract, config-object signatures only (facade 2.0 removed the loose
keywords and the deprecated ``reporting``/``testing`` forwarders), and
eager :class:`~repro.errors.ConfigError` validation at construction.
"""

import pytest

from repro import ExecutionConfig
from repro import api
from repro.conformance import FuzzConfig
from repro.data import Relation
from repro.workloads import planted_out_matmul

# ------------------------------------------------------------------ surface


def test_facade_exposes_every_entrypoint():
    for name in ("run_query", "compare", "explain", "sweep", "table1",
                 "fuzz", "chaos"):
        assert callable(getattr(api, name)), name
        assert name in api.__all__


def test_facade_all_contract_is_exact():
    """``__all__`` is the surface: every name resolves, and the facade is
    versioned independently of the package release."""
    for name in api.__all__:
        assert hasattr(api, name), name
    assert api.__version__.startswith("2."), api.__version__
    # The 1.x transitional paths are gone.
    from repro import reporting, testing

    assert not hasattr(reporting, "table1_report")
    assert not hasattr(reporting, "compare_on")
    assert not hasattr(testing, "fuzz_differential")


def test_execution_config_validates():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        ExecutionConfig(p=0)
    with pytest.raises(ConfigError):
        ExecutionConfig(backend="fortran")
    config = ExecutionConfig(p=4, backend="pytuple")
    assert config.with_backend("auto").backend == "auto"
    cluster = config.make_cluster()
    assert cluster.p == 4 and cluster.backend == "pytuple"
    # Frozen: configs are safe to share across runs.
    with pytest.raises(AttributeError):
        config.p = 2


# ---------------------------------------------------------------- run_query


def test_run_query_accepts_config():
    instance = planted_out_matmul(n=40, out=160)
    result = api.run_query(instance, ExecutionConfig(p=4))
    assert result.algorithm == "line"
    assert result.out_size == len(result.relation)


def test_run_query_rejects_loose_kwargs():
    """Facade 2.0: every knob travels in the config object."""
    instance = planted_out_matmul(n=20, out=40)
    with pytest.raises(TypeError):
        api.run_query(instance, p=4)
    with pytest.raises(TypeError):
        api.run_query(instance, processors=4)


# ----------------------------------------------------- compare/sweep/table1


def test_compare_packages_both_runs():
    instance = planted_out_matmul(n=60, out=240)
    outcome = api.compare(instance, ExecutionConfig(p=8))
    assert outcome.baseline.algorithm == "yannakakis"
    assert outcome.ours.algorithm == "line"
    assert outcome.baseline.relation.tuples == outcome.ours.relation.tuples
    assert outcome.speedup > 0
    row = outcome.row("matmul")
    assert row.label == "matmul"
    assert row.input_size == instance.total_size
    assert row.new_load == outcome.ours.report.max_load


def test_sweep_labels_points_in_order():
    config = ExecutionConfig(p=4)
    series = [
        ("n=30", planted_out_matmul(n=30, out=60)),
        ("n=50", planted_out_matmul(n=50, out=100)),
    ]
    results = api.sweep(series, config)
    assert [label for label, _ in results] == ["n=30", "n=50"]
    assert all(done.speedup > 0 for _, done in results)


def test_table1_family_selection():
    rows = api.table1(scale=40, config=ExecutionConfig(p=4), families=["matmul"])
    assert [row.label for row in rows] == ["matmul"]
    assert api.table1(scale=40, families=[]) == []
    with pytest.raises(ValueError):
        api.table1(scale=40, families=["matmul", "pentagon"])


# ------------------------------------------------------------ fuzz / chaos


def test_fuzz_override_kwargs():
    summary = api.fuzz(iterations=2, seed=5, p=2, p_large=4)
    assert summary.checked >= 2
    assert summary.to_dict()["seed"] == 5


def test_chaos_pins_invariants():
    summary = api.chaos(FuzzConfig(iterations=2, seed=3, p=2, p_large=4))
    coverage = summary.to_dict()["coverage"]["invariant"]
    assert set(coverage) <= {"differential", "chaos"}


# ------------------------------------------------- deprecated import paths


def test_reporting_keeps_row_type_and_markdown():
    """``repro.reporting`` is rows + rendering only; measurement lives on
    the facade."""
    from repro import reporting

    rows = api.table1(scale=30, config=ExecutionConfig(p=4), families=["matmul"])
    markdown = reporting.render_markdown(rows)
    assert "| matmul |" in markdown
    assert reporting.TABLE1_FAMILIES == api.TABLE1_FAMILIES


# ----------------------------------------------------- Relation memoization


def test_relation_indexes_memoize_and_invalidate():
    relation = Relation("R", ("A", "B"))
    for i in range(20):
        relation.add((i % 4, i), 1)
    assert relation.degree("A", 0) == 5
    assert relation.active_domain("A") == {0, 1, 2, 3}
    column_before = relation.column("B")
    # The returned column is a copy — mutating it must not corrupt the index.
    column_before.append("junk")
    assert relation.column("B") == [i for i in range(20)]
    # add() invalidates: counts and domains reflect the new tuple.
    relation.add((99, 99), 1)
    assert relation.degree("A", 99) == 1
    assert 99 in relation.active_domain("A")
    assert relation.degree("A", 0) == 5
