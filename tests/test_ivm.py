"""Battery for the IVM subsystem (ISSUE 10 acceptance).

Proves the metamorphic contract and the cost shape of
:mod:`repro.ivm`:

* after any delta sequence the incremental answer is *bit-identical* to
  recomputing from scratch on the mutated instance — across query
  families, semiring profiles, and skews (via the opt-in
  ``ivm-identity`` conformance invariant), and in targeted scenarios
  covering deletions, annotation bumps, computed-zero support
  retirement, and multi-relation batches;
* deletions on semirings without additive inverses raise the typed
  :class:`~repro.errors.UnsupportedDeltaError`; malformed deltas raise
  :class:`~repro.errors.ConfigError`;
* maintenance cost is |Δ|-proportional: the load of a fixed delta does
  *not* grow with instance size N while recompute load does
  (sublinearity);
* metering rides the distinct ``maintenance`` tag — base meters are
  untouched by deltas, and serialized reports carry no maintenance keys
  until a delta is applied (so pre-IVM outputs stay byte-identical).
"""

from __future__ import annotations

import random

import pytest

from repro.config import ExecutionConfig
from repro.conformance.generators import GeneratorConfig, random_case
from repro.conformance.invariants import check_ivm_identity
from repro.data import Instance, Relation
from repro.errors import ConfigError, UnsupportedDeltaError
from repro.ivm import (
    DeltaBatch,
    DeltaChange,
    delete,
    insert,
    materialize,
    mutate_instance,
)
from repro.obs import MAINTENANCE_OP, RingBufferSink, Tracer
from repro.ram.evaluate import evaluate
from repro.semiring import BOOLEAN, COUNTING, TROPICAL_MIN_PLUS

from tests.conftest import MATMUL_QUERY, LINE3_QUERY


def _counting_matmul(n: int, semiring=COUNTING) -> Instance:
    """A sparse near-diagonal matmul instance: every B value has O(1)
    neighbours, so a fixed delta's join neighbourhood is size-independent."""
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))
    for i in range(n):
        r1.add((i, i), 2)
        r2.add((i, (i + 1) % n), 3)
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)


def _answer_map(relation):
    order = sorted(range(len(relation.schema)),
                   key=lambda i: relation.schema[i])
    return {tuple(values[i] for i in order): annotation
            for values, annotation in relation}


def _assert_identical(view, batches):
    """The maintained answer equals the from-scratch oracle, bit for bit."""
    oracle = view.current_instance()
    assert _answer_map(view.answer()) == _answer_map(evaluate(oracle))


# -- the metamorphic identity, broad and targeted -----------------------------


def test_ivm_identity_invariant_across_families_and_profiles():
    """The opt-in conformance invariant over the full family × profile
    grid (deletions included wherever the semiring is invertible)."""
    rng = random.Random(0xC0FFEE)
    generator = GeneratorConfig()
    config = ExecutionConfig(p=4)
    for index in range(25):  # 5 families × 5 profiles
        case = random_case(rng, generator, index)
        check_ivm_identity(case, config)


def test_insert_only_batches_any_semiring():
    for semiring, annotation in ((COUNTING, 4), (BOOLEAN, True),
                                 (TROPICAL_MIN_PLUS, 2.0)):
        r1 = Relation("R1", ("A", "B"))
        r2 = Relation("R2", ("B", "C"))
        for i in range(20):
            r1.add((i, i), annotation)
            r2.add((i, (i + 1) % 20), annotation)
        view = materialize(
            Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring))
        view.apply([insert("R1", (3, 7), annotation),
                    insert("R2", (7, 9), annotation)])
        _assert_identical(view, None)


def test_deletions_and_bumps_on_the_counting_ring():
    view = materialize(_counting_matmul(30))
    before = view.out_size
    view.apply(DeltaBatch((
        delete("R1", (5, 5)),          # removes a contributing tuple
        insert("R1", (6, 6), 10),      # annotation bump of an existing key
        insert("R2", (5, 90), 7),      # brand-new key
    )))
    _assert_identical(view, None)
    assert view.out_size < before + 2  # the delete retired at least one key


def test_computed_zero_support_retirement():
    """Deleting the only tuple joining a key drops the key from the
    answer even when a ⊕-sum could coincidentally be zero."""
    view = materialize(_counting_matmul(10))
    assert (0, 1) in {(a, c) for (a, c), _w in view.answer()}
    view.apply([delete("R2", (0, 1))])
    _assert_identical(view, None)
    assert (0, 1) not in {(a, c) for (a, c), _w in view.answer()}


def test_multi_relation_batches_telescope_exactly():
    view = materialize(_counting_matmul(25))
    rng = random.Random(11)
    for _round in range(4):
        changes = [
            insert("R1", (rng.randrange(40), rng.randrange(40)),
                   rng.randint(1, 5)),
            insert("R2", (rng.randrange(40), rng.randrange(40)),
                   rng.randint(1, 5)),
        ]
        present = sorted(view.current_instance().relation("R1").tuples)
        changes.append(delete("R1", rng.choice(present)))
        view.apply(DeltaBatch(tuple(changes)))
        _assert_identical(view, None)


def test_mutate_instance_matches_view_state():
    instance = _counting_matmul(15)
    batch = DeltaBatch((insert("R1", (99, 3), 2), delete("R2", (3, 4))))
    view = materialize(instance)
    view.apply(batch)
    mutated = mutate_instance(instance, batch)
    for name in ("R1", "R2"):
        assert (view.current_instance().relation(name).tuples
                == mutated.relation(name).tuples)
    # and the original instance is untouched
    assert (3, 4) in instance.relation("R2").tuples


# -- typed failure modes -------------------------------------------------------


def test_deletion_without_inverses_raises_unsupported_delta():
    for semiring, annotation in ((BOOLEAN, True), (TROPICAL_MIN_PLUS, 2.0)):
        r1 = Relation("R1", ("A", "B"))
        r2 = Relation("R2", ("B", "C"))
        for i in range(10):
            r1.add((i, i), annotation)
            r2.add((i, (i + 1) % 10), annotation)
        view = materialize(
            Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring))
        with pytest.raises(UnsupportedDeltaError):
            view.apply([delete("R1", (2, 2))])
        # the rejected batch left no partial state behind
        _assert_identical(view, None)


def test_malformed_deltas_raise_config_error():
    view = materialize(_counting_matmul(10))
    with pytest.raises(ConfigError):
        view.apply([delete("R1", (123, 456))])  # absent tuple
    with pytest.raises(ConfigError):
        view.apply(DeltaBatch((delete("R1", (2, 2)),
                               delete("R1", (2, 2)))))  # double delete
    with pytest.raises(ConfigError):
        view.apply([insert("R9", (1, 2), 1)])  # unknown relation
    with pytest.raises(ValueError):
        DeltaChange("R1", "insert", (1, 2))  # insert needs an annotation
    with pytest.raises(ValueError):
        DeltaChange("R1", "delete", (1, 2), annotation=3)
    _assert_identical(view, None)


# -- cost shape ----------------------------------------------------------------


def test_maintenance_load_is_sublinear_in_instance_size():
    """The acceptance bar: a fixed delta's maintenance load does not grow
    with N, while recompute load does."""
    batch = DeltaBatch((insert("R1", (7, 3), 2), delete("R2", (3, 4))))
    config = ExecutionConfig(p=8)
    loads, recompute_loads = [], []
    for n in (400, 1600, 3200):
        view = materialize(_counting_matmul(n), config)
        result = view.apply(batch)
        loads.append(result.load)
        recompute_loads.append(view.base_report.max_load)
    assert loads[0] == loads[1] == loads[2]
    assert recompute_loads[2] > recompute_loads[0]
    assert loads[2] * 5 <= recompute_loads[2]


def test_empty_and_non_joining_deltas_short_circuit():
    view = materialize(_counting_matmul(50))
    # an insert whose join neighbourhood is empty contributes nothing
    result = view.apply([insert("R1", (777, 888), 1)])
    assert result.runs == 0 and result.load == 0
    _assert_identical(view, None)


# -- metering contract ---------------------------------------------------------


def test_maintenance_tag_gating_and_base_meter_identity():
    view = materialize(_counting_matmul(40))
    base = view.base_report.to_dict()
    assert not any(key.startswith("maintenance") for key in base)
    assert view.report().to_dict() == base  # no deltas yet: identical bytes

    view.apply([insert("R1", (3, 9), 2), insert("R2", (9, 11), 1)])
    tagged = view.report().to_dict()
    for key in ("maintenance_load", "maintenance_communication",
                "maintenance_rounds", "maintenance_products"):
        assert key in tagged and tagged[key] >= 0
    assert tagged["maintenance_load"] >= 1
    # base meters are untouched by maintenance
    assert {k: v for k, v in tagged.items()
            if not k.startswith("maintenance")} == base
    # round-trip keeps the tag
    from repro.mpc.stats import CostReport
    assert CostReport.from_dict(tagged).to_dict() == tagged


def test_line_query_maintenance_with_tracer():
    sink = RingBufferSink()
    rng = random.Random(5)
    r = {name: Relation(name, attrs) for name, attrs in LINE3_QUERY.relations}
    for name in r:
        for _ in range(30):
            r[name].add((rng.randrange(12), rng.randrange(12)),
                        rng.randint(1, 3), COUNTING)
    instance = Instance(LINE3_QUERY, r, COUNTING)
    view = materialize(instance, ExecutionConfig(p=4, tracer=Tracer([sink])))
    view.apply([insert("R2", (2, 3), 2)])
    _assert_identical(view, None)
    maintenance = [e for e in sink.events if e.op == MAINTENANCE_OP]
    assert len(maintenance) == 1
    assert maintenance[0].round == -1
    assert maintenance[0].detail["view"] == "view"
    assert maintenance[0].detail["changes"] == 1
