"""Distributed sort and prefix scan primitives (paper §2.1)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import Distributed, MPCCluster
from repro.primitives import distributed_sort, exclusive_prefix


def test_sort_random_ints():
    rng = random.Random(1)
    cluster = MPCCluster(8)
    data = [rng.randint(0, 10_000) for _ in range(1000)]
    dist = Distributed.from_items(cluster.view(), data)
    ordered = distributed_sort(dist, lambda x: x)
    assert ordered.collect() == sorted(data)


def test_sort_is_globally_range_partitioned():
    rng = random.Random(2)
    cluster = MPCCluster(6)
    data = [rng.randint(0, 500) for _ in range(600)]
    ordered = distributed_sort(
        Distributed.from_items(cluster.view(), data), lambda x: x
    )
    previous_max = None
    for part in ordered.parts:
        assert part == sorted(part)
        if part:
            if previous_max is not None:
                assert part[0] >= previous_max
            previous_max = part[-1]


def test_sort_load_is_balanced():
    rng = random.Random(3)
    cluster = MPCCluster(8)
    n = 2000
    data = [rng.random() for _ in range(n)]
    ordered = distributed_sort(
        Distributed.from_items(cluster.view(), data), lambda x: x
    )
    # Regular sampling: ≤ 2N/p + p per server.
    assert max(ordered.part_sizes()) <= 2 * n // 8 + 8 + 64


def test_sort_colocates_ties_when_asked():
    cluster = MPCCluster(4)
    data = [5] * 40 + [1] * 5 + [9] * 5
    ordered = distributed_sort(
        Distributed.from_items(cluster.view(), data), lambda x: x, split_ties=False
    )
    holders = [i for i, part in enumerate(ordered.parts) if 5 in part]
    assert len(holders) == 1  # ties never straddle servers (bisect on key)


def test_sort_splits_ties_by_default():
    # All-equal keys: without tie-splitting one server would get everything.
    cluster = MPCCluster(8)
    n = 800
    ordered = distributed_sort(
        Distributed.from_items(cluster.view(), [7] * n), lambda x: x
    )
    assert ordered.collect() == [7] * n
    assert max(ordered.part_sizes()) <= 2 * n // 8 + 8


def test_sort_empty_and_single():
    view = MPCCluster(4).view()
    assert distributed_sort(Distributed.from_items(view, []), lambda x: x).collect() == []
    assert distributed_sort(
        Distributed.from_items(view, [7]), lambda x: x
    ).collect() == [7]


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.text(max_size=3))))
def test_sort_by_compound_key(pairs):
    cluster = MPCCluster(5)
    ordered = distributed_sort(
        Distributed.from_items(cluster.view(), pairs), lambda x: x
    )
    assert ordered.collect() == sorted(pairs)


def test_exclusive_prefix_matches_sequential():
    rng = random.Random(4)
    cluster = MPCCluster(7)
    data = [rng.uniform(0, 2) for _ in range(300)]
    dist = Distributed.from_items(cluster.view(), data)
    prefixed, total = exclusive_prefix(dist, lambda x: x)
    running = 0.0
    for item, before in prefixed.collect():
        assert abs(before - running) < 1e-9
        running += item
    assert abs(total - sum(data)) < 1e-9


def test_exclusive_prefix_moves_no_data():
    cluster = MPCCluster(4)
    dist = Distributed.from_items(cluster.view(), [1.0] * 50)
    exclusive_prefix(dist, lambda x: x)
    assert cluster.report().total_communication == 0
    assert cluster.report().control_messages > 0
