"""Structural operations of §7: reduction, twig decomposition, skeletons.

These tests reproduce the worked structures of Figures 2 and 3 (experiment
E10 of DESIGN.md).
"""

import pytest

from repro.data import TreeQuery, reduction_plan, skeleton_info, twig_decomposition
from tests.conftest import GENERAL_TREE_QUERY, STAR3_QUERY, TWIG_QUERY


def test_reduction_absorbs_non_output_leaves():
    steps, reduced = reduction_plan(GENERAL_TREE_QUERY)
    # D and E are non-output leaves: R3(C,D) and R4(B,E) get absorbed.
    absorbed = {step.relation for step in steps}
    assert absorbed == {"R3", "R4"}
    for step in steps:
        assert step.aggregated_attr in ("D", "E")
        assert step.shared_attr in ("C", "B")
    assert {name for name, _ in reduced.relations} == {"R1", "R2"}
    # After reduction, every leaf is an output attribute.
    assert all(a in reduced.output for a in reduced.leaves)


def test_reduction_noop_on_twig():
    steps, reduced = reduction_plan(TWIG_QUERY)
    assert steps == []
    assert reduced == TWIG_QUERY


def test_reduction_of_scalar_aggregate_stops_at_one_relation():
    query = TreeQuery(
        (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset()
    )
    steps, reduced = reduction_plan(query)
    assert reduced.n == 1
    assert len(steps) == 1


def test_twig_decomposition_cuts_at_non_leaf_outputs():
    # Figure 2 pattern: output K sits on the bridge between two stars.
    query = TreeQuery(
        (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm", ("B1", "K")),
            ("Rn", ("K", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        ),
        frozenset({"A1", "A2", "A3", "A4", "K"}),
    )
    twigs = twig_decomposition(query)
    assert len(twigs) == 2
    for twig in twigs:
        assert twig.is_twig()
        assert "K" in twig.output  # the cut attribute is output in both twigs
    # Consecutive twigs share an attribute (reassembly order).
    assert set(twigs[0].attributes) & set(twigs[1].attributes)


def test_twig_decomposition_single_twig_when_no_cuts():
    twigs = twig_decomposition(TWIG_QUERY)
    assert len(twigs) == 1
    assert twigs[0].relations == TWIG_QUERY.relations


def test_twig_property_holds_for_all_twigs():
    query = TreeQuery(
        (
            ("R1", ("A", "B")),
            ("R2", ("B", "C")),
            ("R3", ("C", "D")),
        ),
        frozenset({"A", "C", "D"}),  # C is a non-leaf output → cut
    )
    twigs = twig_decomposition(query)
    assert len(twigs) == 2
    for twig in twigs:
        assert twig.output == twig.leaves


def test_skeleton_of_figure3_twig():
    info = skeleton_info(TWIG_QUERY)
    assert info.v_star == frozenset({"B1", "B2"})
    assert set(info.branch_roots) == {"B1", "B2"}
    assert info.tv_star == frozenset({"B1", "B2"})
    # Each branch is the star-like component hanging at its root.
    b1 = info.branches["B1"]
    assert {name for name, _ in b1.relations} == {"Ra1", "Ra2"}
    assert b1.output == frozenset({"A1", "A2"})
    b2 = info.branches["B2"]
    assert {name for name, _ in b2.relations} == {"Rb1", "Rb2"}
    assert b2.output == frozenset({"A3", "A4"})
    # The residual is the bridge.
    assert [name for name, _ in info.residual_relations] == ["Rm"]


def test_skeleton_with_long_bridge():
    query = TreeQuery(
        (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm1", ("B1", "K")),
            ("Rm2", ("K", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        ),
        frozenset({"A1", "A2", "A3", "A4"}),
    )
    info = skeleton_info(query)
    assert info.v_star == frozenset({"B1", "B2"})
    assert info.tv_star == frozenset({"B1", "K", "B2"})
    assert {name for name, _ in info.residual_relations} == {"Rm1", "Rm2"}


def test_skeleton_rejects_star_like():
    with pytest.raises(ValueError):
        skeleton_info(STAR3_QUERY)


def test_skeleton_with_internal_arm():
    # An output arm hanging off an internal v_star vertex stays in the
    # residual (it is not contracted into any branch).
    query = TreeQuery(
        (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm1", ("B1", "B3")),
            ("Rx", ("B3", "A5")),
            ("Rm2", ("B3", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        ),
        frozenset({"A1", "A2", "A3", "A4", "A5"}),
    )
    info = skeleton_info(query)
    assert info.v_star == frozenset({"B1", "B2", "B3"})
    assert set(info.branch_roots) == {"B1", "B2"}  # B3 is internal
    assert {name for name, _ in info.residual_relations} == {"Rm1", "Rm2", "Rx"}
