"""Semiring axioms and behaviour (paper §1.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.semiring import (
    BOOLEAN,
    COUNTING,
    IDEMPOTENT_SEMIRINGS,
    LINEAGE,
    MAX_MIN,
    MAX_TIMES,
    POLYNOMIAL,
    REAL,
    STANDARD_SEMIRINGS,
    TROPICAL_MAX_PLUS,
    TROPICAL_MIN_PLUS,
    WHY_PROVENANCE,
    Semiring,
    SemiringError,
    monomial,
)


@pytest.mark.parametrize("semiring", STANDARD_SEMIRINGS, ids=lambda s: s.name)
def test_standard_axioms_on_int_samples(semiring):
    if semiring is BOOLEAN:
        sample = [True, False]
    else:
        sample = [0.0, 1.0, 2.0, 3.0, 5.0]
    semiring.check_axioms(sample)


def test_idempotent_flags():
    assert BOOLEAN.idempotent_add
    assert TROPICAL_MIN_PLUS.idempotent_add
    assert TROPICAL_MAX_PLUS.idempotent_add
    assert MAX_MIN.idempotent_add
    assert not COUNTING.idempotent_add
    assert not REAL.idempotent_add
    assert all(s.idempotent_add for s in IDEMPOTENT_SEMIRINGS)


def test_sum_and_product_helpers():
    assert COUNTING.sum([1, 2, 3]) == 6
    assert COUNTING.sum([]) == 0
    assert COUNTING.product([2, 3, 4]) == 24
    assert COUNTING.product([]) == 1
    assert TROPICAL_MIN_PLUS.sum([3.0, 1.0, 2.0]) == 1.0
    assert TROPICAL_MIN_PLUS.sum([]) == math.inf
    assert TROPICAL_MIN_PLUS.product([3.0, 1.0]) == 4.0
    assert BOOLEAN.sum([False, False]) is False
    assert BOOLEAN.sum([False, True]) is True


def test_is_zero():
    assert COUNTING.is_zero(0)
    assert not COUNTING.is_zero(1)
    assert TROPICAL_MIN_PLUS.is_zero(math.inf)
    assert MAX_TIMES.is_zero(0.0)


def test_check_axioms_rejects_broken_semiring():
    broken = Semiring(
        name="broken", zero=0, one=1,
        add=lambda a, b: a + b,
        mul=lambda a, b: a + b,  # not absorbing at 0? 1*0=1 → violates
    )
    with pytest.raises(SemiringError):
        broken.check_axioms([1, 2])


@given(st.lists(st.integers(min_value=0, max_value=50), min_size=3, max_size=3))
def test_counting_distributes(values):
    a, b, c = values
    assert COUNTING.mul(a, COUNTING.add(b, c)) == COUNTING.add(
        COUNTING.mul(a, b), COUNTING.mul(a, c)
    )


@given(
    st.lists(
        st.floats(min_value=0, max_value=100, allow_nan=False), min_size=3, max_size=3
    )
)
def test_tropical_distributes(values):
    a, b, c = values
    left = TROPICAL_MIN_PLUS.mul(a, TROPICAL_MIN_PLUS.add(b, c))
    right = TROPICAL_MIN_PLUS.add(
        TROPICAL_MIN_PLUS.mul(a, b), TROPICAL_MIN_PLUS.mul(a, c)
    )
    assert left == right


@given(
    st.lists(
        st.floats(min_value=0, max_value=10, allow_nan=False), min_size=3, max_size=3
    )
)
def test_max_min_absorbs_and_distributes(values):
    a, b, c = values
    assert MAX_MIN.mul(a, MAX_MIN.zero) == MAX_MIN.zero
    assert MAX_MIN.mul(a, MAX_MIN.add(b, c)) == MAX_MIN.add(
        MAX_MIN.mul(a, b), MAX_MIN.mul(a, c)
    )


# -- provenance ------------------------------------------------------------------


def test_lineage_union_semantics():
    a = frozenset({"t1"})
    b = frozenset({"t2"})
    assert LINEAGE.add(a, b) == frozenset({"t1", "t2"})
    assert LINEAGE.mul(a, b) == frozenset({"t1", "t2"})
    assert LINEAGE.add(a, a) == a  # idempotent


def test_why_provenance_identities():
    witness = frozenset({frozenset({"t1"})})
    assert WHY_PROVENANCE.mul(witness, WHY_PROVENANCE.one) == witness
    assert WHY_PROVENANCE.mul(witness, WHY_PROVENANCE.zero) == WHY_PROVENANCE.zero
    other = frozenset({frozenset({"t2"})})
    combined = WHY_PROVENANCE.mul(witness, other)
    assert combined == frozenset({frozenset({"t1", "t2"})})
    assert WHY_PROVENANCE.add(witness, witness) == witness


def test_why_provenance_axioms():
    elements = [
        WHY_PROVENANCE.zero,
        WHY_PROVENANCE.one,
        frozenset({frozenset({"a"})}),
        frozenset({frozenset({"a"}), frozenset({"b"})}),
    ]
    WHY_PROVENANCE.check_axioms(elements)


def test_polynomial_monomials_and_arithmetic():
    x = monomial("x")
    y = monomial("y")
    xy = POLYNOMIAL.mul(x, y)
    assert xy == monomial("x", "y")
    x_plus_x = POLYNOMIAL.add(x, x)
    # 2x, i.e. coefficient 2 on the monomial x.
    assert dict(x_plus_x) == {(("x", 1),): 2}
    square = POLYNOMIAL.mul(x, x)
    assert dict(square) == {(("x", 2),): 1}


def test_polynomial_axioms():
    elements = [POLYNOMIAL.zero, POLYNOMIAL.one, monomial("x"), monomial("y"),
                POLYNOMIAL.add(monomial("x"), monomial("y"))]
    POLYNOMIAL.check_axioms(elements)


def test_polynomial_distributivity_example():
    x, y, z = monomial("x"), monomial("y"), monomial("z")
    left = POLYNOMIAL.mul(x, POLYNOMIAL.add(y, z))
    right = POLYNOMIAL.add(POLYNOMIAL.mul(x, y), POLYNOMIAL.mul(x, z))
    assert left == right


def test_top_k_smallest_semiring():
    from repro.semiring import top_k_smallest

    s2 = top_k_smallest(2)
    s2.check_axioms([(), (1.0,), (2.0, 3.0), (0.5, 5.0), (1.0, 1.0)])
    assert s2.add((1.0,), (3.0, 4.0)) == (1.0, 3.0)
    assert s2.mul((1.0, 2.0), (10.0, 20.0)) == (11.0, 12.0)
    assert s2.mul((1.0,), s2.one) == (1.0,)
    assert s2.mul((1.0,), s2.zero) == s2.zero
    # k = 1 degenerates to (min, +).
    s1 = top_k_smallest(1)
    assert s1.add((3.0,), (1.0,)) == (1.0,)
    assert s1.mul((3.0,), (1.0,)) == (4.0,)
    with pytest.raises(ValueError):
        top_k_smallest(0)


def test_top_k_through_a_distributed_query():
    import random

    from repro import run_query
    from repro.data import Instance, Relation, TreeQuery
    from repro.ram import evaluate
    from repro.semiring import top_k_smallest

    s = top_k_smallest(3)
    rng = random.Random(8)
    query = TreeQuery(
        (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
    )
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))
    seen = set()
    while len(seen) < 60:
        t = (rng.randrange(10), rng.randrange(6))
        if t not in seen:
            seen.add(t)
            r1.add(t, (float(rng.randint(1, 9)),))
    seen = set()
    while len(seen) < 60:
        t = (rng.randrange(6), rng.randrange(10))
        if t not in seen:
            seen.add(t)
            r2.add(t, (float(rng.randint(1, 9)),))
    instance = Instance(query, {"R1": r1, "R2": r2}, s)
    result = run_query(instance, p=6)
    assert result.relation.tuples == evaluate(instance).tuples
    # Every annotation is a sorted ≤3-tuple: the 3 cheapest 2-hop routes.
    for costs in result.relation.tuples.values():
        assert 1 <= len(costs) <= 3
        assert list(costs) == sorted(costs)
