"""Documentation coverage: every public module, class, and function of the
library carries a docstring (deliverable (e): doc comments on every public
item)."""

import importlib
import inspect
import pkgutil

import repro


def _public_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")[1:]):
            continue
        yield importlib.import_module(info.name)


def test_every_public_module_has_a_docstring():
    for module in _public_modules():
        assert module.__doc__ and module.__doc__.strip(), module.__name__


def test_every_public_callable_has_a_docstring():
    missing = []
    for module in _public_modules():
        exported = getattr(module, "__all__", None)
        if exported is None:
            continue
        for name in exported:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if obj.__module__ != module.__name__:
                    continue  # re-export; documented at its home
                if not (obj.__doc__ and obj.__doc__.strip()):
                    missing.append(f"{module.__name__}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_classes_document_their_methods():
    from repro.data.relation import DistRelation, Relation
    from repro.mpc.cluster import ClusterView, MPCCluster
    from repro.mpc.distributed import Distributed

    undocumented = []
    for cls in (Relation, DistRelation, MPCCluster, ClusterView, Distributed):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(f"{cls.__name__}.{name}")
    assert not undocumented, undocumented
