"""KMV sketches and §2.2 OUT estimation."""

import random

import pytest

from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.primitives import KMV, MultiKMV, estimate_path_out
from repro.ram import evaluate
from repro.semiring import COUNTING
from tests.conftest import LINE3_QUERY, MATMUL_QUERY, random_instance


def test_kmv_exact_below_k():
    sketch = KMV.of(range(10), k=32)
    assert sketch.estimate() == 10.0


def test_kmv_ignores_duplicates():
    sketch = KMV.of([1, 1, 1, 2, 2, 3], k=8)
    assert sketch.estimate() == 3.0


def test_kmv_merge_equals_union():
    a = KMV.of(range(0, 500), k=16, salt=3)
    b = KMV.of(range(250, 750), k=16, salt=3)
    union = KMV.of(range(0, 750), k=16, salt=3)
    assert a.merge(b).values == union.values


def test_kmv_merge_requires_same_parameters():
    with pytest.raises(ValueError):
        KMV(8, salt=0).merge(KMV(8, salt=1))
    with pytest.raises(ValueError):
        KMV(8).merge(KMV(16))


def test_kmv_requires_k_at_least_two():
    with pytest.raises(ValueError):
        KMV(1)


def test_kmv_estimate_accuracy():
    truth = 5000
    estimates = [KMV.of(range(truth), k=128, salt=s).estimate() for s in range(7)]
    median = sorted(estimates)[len(estimates) // 2]
    assert truth * 0.7 <= median <= truth * 1.4


def test_multikmv_median_boosting():
    bundle = MultiKMV.of(range(2000), k=64, repetitions=7)
    assert 2000 * 0.6 <= bundle.estimate() <= 2000 * 1.5
    other = MultiKMV.of(range(1000, 3000), k=64, repetitions=7)
    merged = bundle.merge(other)
    assert 3000 * 0.6 <= merged.estimate() <= 3000 * 1.5


def test_estimate_path_out_matmul_exact_regime():
    # With fewer distinct endpoints than k the estimate is exact.
    rng = random.Random(5)
    instance = random_instance(
        MATMUL_QUERY, tuples=60, domain=12, rng=rng, semiring=COUNTING,
        weight_sampler=lambda r: 1,
    )
    exact = len(evaluate(instance))
    cluster = MPCCluster(6)
    view = cluster.view()
    r1 = DistRelation.load(view, instance.relation("R1"))
    r2 = DistRelation.load(view, instance.relation("R2"))
    total, per_a = estimate_path_out([r1, r2], ["A", "B", "C"])
    assert total == pytest.approx(exact, rel=0.05)
    # Per-value estimates sum to the total.
    assert sum(est for _v, est in per_a.collect()) == pytest.approx(total)


def test_estimate_path_out_line_constant_factor():
    rng = random.Random(6)
    instance = random_instance(
        LINE3_QUERY, tuples=150, domain=25, rng=rng, semiring=COUNTING,
        weight_sampler=lambda r: 1,
    )
    exact = len(evaluate(instance))
    cluster = MPCCluster(8)
    view = cluster.view()
    rels = [DistRelation.load(view, instance.relation(f"R{i+1}")) for i in range(3)]
    total, _ = estimate_path_out(rels, ["A1", "A2", "A3", "A4"])
    assert exact * 0.5 <= total <= exact * 2.0


def test_estimate_path_out_validates_arity():
    view = MPCCluster(2).view()
    rel = DistRelation.load(view, Relation("R", ("A", "B"), [((1, 2), 1)]))
    with pytest.raises(ValueError):
        estimate_path_out([rel], ["A", "B", "C"])


def test_estimate_has_linear_load():
    rng = random.Random(7)
    instance = random_instance(
        MATMUL_QUERY, tuples=400, domain=40, rng=rng, semiring=COUNTING,
        weight_sampler=lambda r: 1,
    )
    cluster = MPCCluster(8)
    view = cluster.view()
    r1 = DistRelation.load(view, instance.relation("R1"))
    r2 = DistRelation.load(view, instance.relation("R2"))
    estimate_path_out([r1, r2], ["A", "B", "C"])
    n = instance.total_size
    # Sketch bundles count as one unit; load should be O(N/p).
    assert cluster.report().max_load <= 4 * n // 8 + 16
