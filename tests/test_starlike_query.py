"""Star-like queries (§6) against the RAM oracle."""

import random

import pytest

from repro.core.arms import extract_arms
from repro.core.starlike import starlike_query
from repro.data import DistRelation, Instance, TreeQuery
from repro.mpc import MPCCluster
from repro.ram import evaluate
from repro.semiring import COUNTING
from repro.workloads import starlike_instance
from tests.conftest import SEMIRING_SAMPLERS

_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


def _run(instance, p=8):
    cluster = MPCCluster(p, backend=_BACKEND)
    view = cluster.view()
    rels = {
        name: DistRelation.load(view, instance.relation(name), instance.semiring)
        for name, _ in instance.query.relations
    }
    result = starlike_query(instance.query, rels, instance.semiring)
    return cluster, result


def _assert_matches(instance, result):
    want = evaluate(instance)
    got = result.collect("sl", instance.semiring)
    assert result.schema == tuple(sorted(instance.query.output))
    assert got.tuples == want.tuples


@pytest.mark.parametrize(
    "arm_lengths",
    [[1, 1, 2], [2, 1, 1], [2, 2, 2], [1, 2, 3], [1, 1, 1, 2]],
    ids=lambda a: "-".join(map(str, a)),
)
def test_starlike_arm_mixes(arm_lengths):
    instance = starlike_instance(
        arm_lengths, tuples=35, domain=8, seed=sum(arm_lengths)
    )
    assert instance.query.classify() == "star-like"
    cluster, result = _run(instance)
    _assert_matches(instance, result)


@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS, ids=lambda x: getattr(x, "name", "")
)
def test_starlike_semirings(semiring, sampler):
    rng = random.Random(99)
    instance = starlike_instance(
        [1, 2, 2], tuples=30, domain=7, seed=5, semiring=semiring,
        weight_fn=lambda: sampler(rng),
    )
    cluster, result = _run(instance)
    _assert_matches(instance, result)


@pytest.mark.parametrize("p", [1, 4, 16])
def test_starlike_any_cluster_size(p):
    instance = starlike_instance([2, 1, 2], tuples=30, domain=8, seed=p)
    cluster, result = _run(instance, p)
    _assert_matches(instance, result)


def test_starlike_delegates_line_queries():
    # Two arms ⇒ a line query; the function must still produce the right
    # answer through the §4 path.
    instance = starlike_instance([2, 2], tuples=40, domain=9, seed=2)
    assert instance.query.classify() == "line"
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_starlike_rejects_non_starlike():
    query = TreeQuery(
        (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm", ("B1", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        ),
        frozenset({"A1", "A2", "A3", "A4"}),
    )
    view = MPCCluster(2).view()
    with pytest.raises(ValueError):
        starlike_query(query, {}, COUNTING)


def test_extract_arms_structure():
    instance = starlike_instance([1, 2, 3], tuples=10, domain=4, seed=1)
    arms = extract_arms(instance.query, "B")
    assert [len(arm) for arm in arms] == [1, 2, 3]
    for arm in arms:
        assert arm[0][1] == "B"  # every arm starts at the centre
        # Steps chain: far attribute of step k == near attribute of k+1.
        for (_n1, _near1, far1), (_n2, near2, _far2) in zip(arm, arm[1:]):
            assert far1 == near2


def test_extract_arms_rejects_branching():
    query = TreeQuery(
        (
            ("R1", ("B", "C")),
            ("R2", ("C", "A1")),
            ("R3", ("C", "A2")),
            ("R4", ("B", "A3")),
            ("R5", ("B", "A4")),
        ),
        frozenset({"A1", "A2", "A3", "A4"}),
    )
    with pytest.raises(ValueError):
        extract_arms(query, "B")
