"""Constant-round guarantees (§1.3: all algorithms are O(1)-round).

For each query class, the round count must depend on the query *shape*
(and at most logarithmically on data, via the §6 uniformization and §4
recursion), never linearly on N or OUT.  We measure rounds at two data
scales and assert near-equality.
"""

import pytest

from repro import run_query
from repro.workloads import (
    bowtie_line,
    overlapping_star,
    planted_out_matmul,
    starlike_instance,
    twig_instance,
)


def _rounds(instance, algorithm="auto", p=8):
    return run_query(instance, p=p, algorithm=algorithm).report.rounds


def test_matmul_rounds_constant_in_n():
    small = _rounds(planted_out_matmul(n=100, out=800))
    large = _rounds(planted_out_matmul(n=800, out=6400))
    assert abs(large - small) <= 6


def test_line_rounds_constant_in_n():
    small = _rounds(bowtie_line(blocks=4, fan_out=10, fan_mid=10))
    large = _rounds(bowtie_line(blocks=16, fan_out=20, fan_mid=20))
    assert abs(large - small) <= 10


def test_star_rounds_grow_only_with_buckets():
    small = _rounds(overlapping_star(arms=3, centres=4, fan=6))
    large = _rounds(overlapping_star(arms=3, centres=32, fan=10))
    # Same bucket structure (all centres share one degree profile).
    assert abs(large - small) <= 10


def test_starlike_rounds_bounded():
    small = _rounds(starlike_instance([1, 2, 2], tuples=20, domain=6, seed=1))
    large = _rounds(starlike_instance([1, 2, 2], tuples=80, domain=12, seed=1))
    # §6 enumerates (φ, small/large) buckets and log-many degree classes;
    # the data-driven growth must stay within that logarithmic budget.
    assert large <= small + 40


def test_tree_rounds_bounded():
    small = _rounds(twig_instance(tuples=20, domain=8, seed=2))
    large = _rounds(twig_instance(tuples=120, domain=20, seed=2))
    assert large <= small + 60


def test_baseline_rounds_strictly_shape_dependent():
    # The Yannakakis baseline has no data-dependent branching at all.
    small = _rounds(planted_out_matmul(n=100, out=800), algorithm="yannakakis")
    large = _rounds(planted_out_matmul(n=1000, out=64000), algorithm="yannakakis")
    assert small == large


@pytest.mark.parametrize("p", [2, 8, 32])
def test_rounds_independent_of_cluster_size(p):
    instance = planted_out_matmul(n=200, out=1600)
    rounds = _rounds(instance, p=p)
    baseline = _rounds(instance, p=8)
    assert abs(rounds - baseline) <= 6
