"""Constant-round guarantees (§1.3: all algorithms are O(1)-round).

For each query class, the round count must depend on the query *shape*
(and at most logarithmically on data, via the §6 uniformization and §4
recursion), never linearly on N or OUT.  We measure rounds at two data
scales and assert near-equality.
"""

import pytest

from repro import run_query
from repro.workloads import (
    bowtie_line,
    overlapping_star,
    planted_out_matmul,
    starlike_instance,
    twig_instance,
)


def _rounds(instance, algorithm="auto", p=8):
    return run_query(instance, p=p, algorithm=algorithm).report.rounds


def test_matmul_rounds_constant_in_n():
    small = _rounds(planted_out_matmul(n=100, out=800))
    large = _rounds(planted_out_matmul(n=800, out=6400))
    assert abs(large - small) <= 6


def test_line_rounds_constant_in_n():
    small = _rounds(bowtie_line(blocks=4, fan_out=10, fan_mid=10))
    large = _rounds(bowtie_line(blocks=16, fan_out=20, fan_mid=20))
    assert abs(large - small) <= 10


def test_star_rounds_grow_only_with_buckets():
    small = _rounds(overlapping_star(arms=3, centres=4, fan=6))
    large = _rounds(overlapping_star(arms=3, centres=32, fan=10))
    # Same bucket structure (all centres share one degree profile).
    assert abs(large - small) <= 10


def test_starlike_rounds_bounded():
    small = _rounds(starlike_instance([1, 2, 2], tuples=20, domain=6, seed=1))
    large = _rounds(starlike_instance([1, 2, 2], tuples=80, domain=12, seed=1))
    # §6 enumerates (φ, small/large) buckets and log-many degree classes;
    # the data-driven growth must stay within that logarithmic budget.
    assert large <= small + 40


def test_tree_rounds_bounded():
    small = _rounds(twig_instance(tuples=20, domain=8, seed=2))
    large = _rounds(twig_instance(tuples=120, domain=20, seed=2))
    assert large <= small + 60


def test_baseline_rounds_strictly_shape_dependent():
    # The Yannakakis baseline has no data-dependent branching at all.
    small = _rounds(planted_out_matmul(n=100, out=800), algorithm="yannakakis")
    large = _rounds(planted_out_matmul(n=1000, out=64000), algorithm="yannakakis")
    assert small == large


@pytest.mark.parametrize("p", [2, 8, 32])
def test_rounds_independent_of_cluster_size(p):
    instance = planted_out_matmul(n=200, out=1600)
    rounds = _rounds(instance, p=p)
    baseline = _rounds(instance, p=8)
    assert abs(rounds - baseline) <= 6


# -- run_parallel cursor accounting -------------------------------------------
#
# The synchronous-schedule contract: branches of one wave start at the same
# base round and the parent cursor advances by exactly the *deepest* branch;
# waves stack sequentially; tracing must not shift any cursor.


def _exchanges(depth):
    """A task running ``depth`` consecutive one-item exchanges."""

    def task(branch):
        for _ in range(depth):
            branch.exchange([[(0, "x")]] + [[] for _ in range(branch.p - 1)])
        return branch.round

    return task


def _parallel_cursor(p, depths, sizes, tracer=None):
    from repro.mpc.cluster import MPCCluster

    cluster = MPCCluster(p, tracer=tracer)
    view = cluster.view()
    start = view.round
    ends = view.run_parallel([_exchanges(d) for d in depths], sizes=sizes)
    return view.round - start, [end - start for end in ends]


def test_run_parallel_advances_by_max_branch_depth():
    advanced, ends = _parallel_cursor(4, depths=[1, 3, 2], sizes=[1, 2, 1])
    assert ends == [1, 3, 2]  # every branch ends after its own depth
    assert advanced == 3  # parent moves by the deepest branch only


def test_run_parallel_sequential_waves_stack_depths():
    # sizes 3+2 exceed p=4 ⇒ first-fit packs [task0] then [task1]: the
    # parent advances by the *sum* of per-wave maxima.
    advanced, ends = _parallel_cursor(4, depths=[2, 3], sizes=[3, 2])
    assert ends == [2, 2 + 3]  # wave 2 starts where wave 1 ended
    assert advanced == 5


def test_run_parallel_nested_views_accumulate_depth():
    from repro.mpc.cluster import MPCCluster

    cluster = MPCCluster(8)
    view = cluster.view()

    def outer(branch):
        branch.exchange([[(0, "x")]] + [[] for _ in range(branch.p - 1)])
        # Nested fan-out inside the branch: inner waves advance the
        # *branch* cursor, which then feeds the outer wave's max.
        branch.run_parallel([_exchanges(2), _exchanges(1)], sizes=[2, 2])
        return branch.round

    ends = view.run_parallel([outer, _exchanges(1)], sizes=[4, 4])
    assert view.round == 3  # outer branch: 1 exchange + nested max(2, 1)
    assert ends == [3, 1]


@pytest.mark.parametrize("traced", [False, True])
def test_run_parallel_cursor_identical_with_and_without_tracer(traced):
    from repro.obs import RingBufferSink, Tracer

    tracer = Tracer([RingBufferSink()]) if traced else None
    advanced, ends = _parallel_cursor(
        6, depths=[1, 4, 2, 2], sizes=[2, 1, 2, 1], tracer=tracer
    )
    assert (advanced, ends) == (4, [1, 4, 2, 2])
