"""Worker-pool battery: lifecycle, determinism stress, and fallback paths.

Three layers of coverage for the ``"process"`` execution mode:

* **Pool unit tests** — spawn/warm/reuse/teardown, deterministic
  per-worker seeding, SharedMemory + inline transport round-trips, and
  the typed :class:`~repro.mpc.errors.WorkerCrashError` surfaced for both
  hard worker deaths and in-kernel Python failures (naming the wave, the
  kernel, and the worker).
* **Determinism stress** — worker counts ``{1, 2, p, p+3}`` and both
  dispatch orders produce *byte-identical* serialized runs, and the
  chunked ⊕-merge is bit-exact even for float min/max ties (±0.0); a
  planted nondeterministic-reduce mutation must be caught by the
  ``process-identity`` differential oracle.
* **Fallback paths** — fault schedules, attached/activated profilers,
  and opaque (profile-less, unpicklable) semirings silently route to
  sequential execution with answers and meters untouched, per
  ``docs/observability.md``.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.backends.dispatch import HAS_NUMPY, process_enabled
from repro.conformance.generators import GeneratorConfig, materialize, random_case
from repro.conformance.invariants import InvariantViolation, check_process_identity
from repro.conformance.mutation import planted_unordered_merge
from repro.config import ExecutionConfig
from repro.core.executor import run_query
from repro.mpc.errors import MPCError, WorkerCrashError
from repro.obs.events import POOL_OP, RingBufferSink, Tracer, event_to_dict, pool_events

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")

if HAS_NUMPY:
    import numpy as np

    from repro.mpc import pool as pool_mod
    from repro.mpc.pool import WorkerPool, get_pool


@pytest.fixture
def forced_dispatch(monkeypatch):
    """Production thresholds scaled to zero so tiny instances dispatch."""
    monkeypatch.setattr(pool_mod, "DISPATCH_MIN_PRODUCTS", 1)
    monkeypatch.setattr(pool_mod, "DISPATCH_MIN_ROWS", 1)
    monkeypatch.setattr(pool_mod, "SHM_MIN_BYTES", 1 << 6)


def _case(seed=11, family="matmul", profile="counting", skew="uniform"):
    generator = GeneratorConfig(
        max_tuples=12, domain=5, families=(family,),
        profiles=(profile,), skews=(skew,),
    )
    return random_case(random.Random(seed), generator, 0)


def _run_serialized(instance, **config_kwargs):
    """One run rendered as a canonical JSON string (byte-comparable)."""
    sink = RingBufferSink()
    result = run_query(
        instance,
        config=ExecutionConfig(
            backend="columnar", tracer=Tracer((sink,)), **config_kwargs
        ),
    )
    answer = sorted(
        (repr(values), repr(annotation))
        for values, annotation in result.relation
    )
    return json.dumps(
        {
            "answer": answer,
            "report": result.report.to_dict(),
            "events": [event_to_dict(event) for event in sink.events],
        },
        sort_keys=True,
    )


# -- pool unit tests ----------------------------------------------------------


@needs_numpy
class TestWorkerPoolLifecycle:
    def test_validates_construction(self):
        with pytest.raises(ValueError):
            WorkerPool(0)
        with pytest.raises(ValueError):
            WorkerPool(2, dispatch_order="random")

    def test_lazy_warm_reuse_and_shutdown(self):
        pool = WorkerPool(2, seed=900)
        assert not pool.started
        try:
            first = pool.run_wave("echo", [({}, {}), ({}, {})])
            assert pool.started
            pids = {result["pid"] for result in first}
            assert len(pids) == 2  # round-robin used both workers
            second = pool.run_wave("echo", [({}, {}), ({}, {})])
            assert {result["pid"] for result in second} == pids  # reused, not respawned
        finally:
            pool.shutdown()
        assert not pool.started
        pool.shutdown()  # idempotent

    def test_get_pool_caches_by_workers_and_seed(self):
        pool = get_pool(2, seed=901)
        assert get_pool(2, seed=901) is pool
        assert get_pool(3, seed=901) is not pool

    def test_deterministic_per_worker_seeding(self):
        """Workers reseed identically across a full teardown/respawn."""
        pool = WorkerPool(2, seed=902)
        try:
            first = pool.run_wave("echo", [({}, {"draw": True}) for _ in range(2)])
            pool.shutdown()
            second = pool.run_wave("echo", [({}, {"draw": True}) for _ in range(2)])
            assert [r["draw"] for r in first] == [r["draw"] for r in second]
            # distinct workers draw from distinct streams
            assert first[0]["draw"] != first[1]["draw"]
        finally:
            pool.shutdown()


@needs_numpy
class TestTransport:
    def test_inline_and_shm_round_trip(self, forced_dispatch):
        pool = WorkerPool(2, seed=903)
        big = np.arange(64, dtype=np.int64)          # >= patched SHM_MIN_BYTES
        small = np.array([1.5, -0.0], dtype=np.float64)  # stays inline
        try:
            [result] = pool.run_wave(
                "echo", [({"big": big, "small": small, "scalar": 7}, {})]
            )
        finally:
            pool.shutdown()
        assert np.array_equal(result["big"], big)
        assert result["small"].tolist() == small.tolist()
        assert np.signbit(result["small"][1])  # -0.0 survives the wire bit-exactly
        assert result["scalar"] == 7

    def test_one_block_backs_shared_arrays(self, forced_dispatch):
        """A wave-shared array (the build side) is packed into SHM once."""
        shared = np.arange(64, dtype=np.int64)
        shm_cache, blocks = {}, []
        specs_a = pool_mod._pack_arrays({"build": shared}, shm_cache, blocks)
        specs_b = pool_mod._pack_arrays({"build": shared}, shm_cache, blocks)
        try:
            assert specs_a["build"][0] == "shm"
            assert specs_a["build"][1] == specs_b["build"][1]
            assert len(blocks) == 1
        finally:
            for block in blocks:
                block.close()
                block.unlink()


@needs_numpy
class TestCrashSurface:
    def test_hard_death_names_wave_kernel_worker(self):
        pool = WorkerPool(2, seed=904)
        try:
            with pytest.raises(WorkerCrashError) as caught:
                pool.run_wave(
                    "echo", [({}, {"exit": 3}), ({}, {})], label="join-reduce:3"
                )
            error = caught.value
            assert error.wave == "join-reduce:3"
            assert error.kernel == "echo"
            assert error.worker == 0
            assert "join-reduce:3" in str(error)  # the error names the wave
            assert isinstance(error, MPCError)  # typed, catchable with the family
        finally:
            pool.shutdown()

    def test_kernel_failure_carries_remote_traceback(self):
        pool = WorkerPool(2, seed=905)
        try:
            with pytest.raises(WorkerCrashError) as caught:
                pool.run_wave("echo", [({}, {"raise": "boom"}), ({}, {})])
            error = caught.value
            assert error.kernel == "echo"
            assert "ValueError" in error.detail and "boom" in error.detail
            # a Python failure does not kill the worker: the pool stays usable
            results = pool.run_wave("echo", [({}, {}), ({}, {})])
            assert len(results) == 2
        finally:
            pool.shutdown()


# -- determinism stress -------------------------------------------------------


@needs_numpy
def test_chunked_float_merge_is_bit_exact_on_signed_zero_ties():
    """min/max ⊕ resolves ±0.0 ties to the latest arrival; the chunk merge
    preserves that bracketing, so partials are bit-identical however the
    stream is chunked."""
    from repro.backends.kernels import group_reduce

    ids = np.array([7, 7, 7, 7, 9, 9], dtype=np.int64)
    values = np.array([0.0, -0.0, 0.0, -0.0, -0.0, 0.0], dtype=np.float64)
    whole_u, whole_r = group_reduce(ids, values, np.minimum)
    for cut in range(1, ids.shape[0]):
        left_u, left_r = group_reduce(ids[:cut], values[:cut], np.minimum)
        right_u, right_r = group_reduce(ids[cut:], values[cut:], np.minimum)
        merged_u, merged_r = group_reduce(
            np.concatenate([left_u, right_u]),
            np.concatenate([left_r, right_r]),
            np.minimum,
        )
        assert merged_u.tolist() == whole_u.tolist()
        assert merged_r.tobytes() == whole_r.tobytes()  # bit-exact, signs included


@needs_numpy
def test_chunk_bounds_cover_and_are_deterministic():
    counts = np.array([5, 0, 3, 9, 1, 1, 4, 2], dtype=np.int64)
    total = int(counts.sum())
    for chunks in (1, 2, 3, 8):
        bounds = pool_mod._chunk_bounds(counts, total, chunks)
        assert bounds[0] == 0 and bounds[-1] == counts.shape[0]
        assert bounds == sorted(bounds)
        assert bounds == pool_mod._chunk_bounds(counts, total, chunks)


@needs_numpy
@pytest.mark.parametrize("workers", [1, 2, 5, 8], ids=lambda w: f"workers{w}")
def test_worker_counts_byte_identical(workers, forced_dispatch):
    """Satellite contract: workers ∈ {1, 2, p, p+3} (p=5 here) serialize to
    the byte-identical JSON document."""
    instance = materialize(_case(seed=21))
    expected = _run_serialized(instance, p=5, workers=1)
    assert _run_serialized(instance, p=5, workers=workers) == expected


@needs_numpy
def test_dispatch_orders_byte_identical(forced_dispatch):
    """Submission order cannot leak: forward and reverse dispatch of every
    wave yield the byte-identical run."""
    instance = materialize(_case(seed=22))
    pool = get_pool(2)
    forward = _run_serialized(instance, p=5, workers=2)
    pool.dispatch_order = "reverse"
    try:
        reverse = _run_serialized(instance, p=5, workers=2)
    finally:
        pool.dispatch_order = "forward"
    assert forward == reverse


@needs_numpy
def test_planted_nondeterministic_reduce_is_caught(forced_dispatch):
    """The oracle has teeth: a lost-update chunk merge (the classic
    nondeterministic-reduce race) diverges and is flagged."""
    case = _case(seed=23)
    check_process_identity(case, _PConfig())  # sanity: green without the bug
    with planted_unordered_merge():
        with pytest.raises(InvariantViolation) as caught:
            check_process_identity(case, _PConfig())
    assert caught.value.invariant == "process-identity"


class _PConfig:
    p = 5
    p_large = 8
    backend = None
    workers = 2


# -- fallback paths -----------------------------------------------------------


class _StubView:
    def __init__(self, workers=2, faults=None, profiler=None):
        cluster = type("C", (), {})()
        cluster.workers = workers
        cluster.faults = faults
        cluster.tracker = type("T", (), {})()
        cluster.tracker.profiler = profiler
        self.cluster = cluster


@needs_numpy
def test_process_enabled_gates():
    marker = object()
    assert process_enabled(_StubView(workers=2))
    assert not process_enabled(_StubView(workers=1))
    assert not process_enabled(_StubView(workers=2, faults=marker))
    assert not process_enabled(_StubView(workers=2, profiler=marker))


@needs_numpy
def test_activated_profiler_disables_dispatch():
    from repro.obs import profile as profile_mod
    from repro.obs.profile import Profiler

    previous = profile_mod.activate(Profiler())
    try:
        assert not process_enabled(_StubView(workers=2))
    finally:
        profile_mod.activate(previous)


@needs_numpy
def test_faults_with_process_mode_rejected_at_construction():
    """ExecutionConfig eagerly rejects the faults + process-mode pairing
    (facade 2.0); at the cluster level the process gate still falls back
    sequentially, so a faulted cluster never dispatches."""
    import pytest

    from repro.errors import ConfigError
    from repro.mpc.faults import Fault, FaultSchedule

    schedule = FaultSchedule([Fault("drop", 0, 1)])
    with pytest.raises(ConfigError):
        ExecutionConfig(fault_schedule=schedule, workers=2)
    # workers=1 with faults stays legal.
    config = ExecutionConfig(fault_schedule=schedule, workers=1)
    assert config.workers == 1


@needs_numpy
def test_profiler_falls_back_sequentially(forced_dispatch):
    """An attached profiler pins the run to the sequential engine (its
    activation token and MetricsRegistry counters are process-local);
    answers and meters match the unprofiled sequential run."""
    from repro.obs.profile import Profiler

    instance = materialize(_case(seed=25))
    pool = get_pool(2)
    sequential = _run_serialized(instance, p=5, workers=1)
    before = len(pool.dispatch_log)
    profiled = _run_serialized(instance, p=5, workers=2, profiler=Profiler())
    assert profiled == sequential
    assert len(pool.dispatch_log) == before


@needs_numpy
def test_opaque_semiring_never_dispatches_semiring_kernels(forced_dispatch):
    """Opaque ⊕/⊗ callables are unpicklable and have no annotation
    profile: no semiring-touching kernel (join-reduce) ever reaches a
    worker, and sources whose batches carry object-dtype annotation
    arrays split inline.  Value-free int64 code splits may still
    dispatch — they never see an opaque value — and the run stays
    byte-identical to sequential either way."""
    instance = materialize(_case(seed=26, profile="opaque"))
    pool = get_pool(2)
    before = len(pool.dispatch_log)
    assert (
        _run_serialized(instance, p=5, workers=2)
        == _run_serialized(instance, p=5, workers=1)
    )
    new_waves = pool.dispatch_log[before:]
    assert all(entry["kernel"] == "split-batch" for entry in new_waves)


# -- worker attribution (out-of-band) ----------------------------------------


@needs_numpy
def test_pool_events_render_dispatch_log(forced_dispatch):
    instance = materialize(_case(seed=27))
    pool = get_pool(2)
    start = len(pool.dispatch_log)
    traced = _run_serialized(instance, p=5, workers=2)
    events = pool_events(pool)[start:]
    assert events, "expected at least one dispatched wave"
    for event in events:
        assert event.op == POOL_OP
        assert event.round == -1
        assert all(0 <= worker < 2 for worker in event.servers)
        assert event.detail["kernel"] in ("join-reduce", "split-batch")
        assert event.detail["wave"]
    # attribution is out-of-band: the cluster trace knows nothing of it
    assert POOL_OP not in traced
