"""Property tests for the columnar representation and its kernels.

Hypothesis-style but dependency-free: a seeded generator produces many
random (and adversarial) inputs per property, and every kernel is checked
against a naive oracle written the obvious way.  The adversarial corners
are the ones the codec and batch layers are most likely to get wrong —
empty relations, single tuples, int64 boundary values, and duplicate-heavy
columns where interning and grouping actually collapse.
"""

from __future__ import annotations

import random

import pytest

from repro.backends.dispatch import HAS_NUMPY

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")

if HAS_NUMPY:
    import numpy as np

    from repro.backends.batch import ColumnarBatch
    from repro.backends.columnar import ValueCodec
    from repro.backends.kernels import (
        first_occurrence_unique,
        group_reduce,
        hash_join,
    )

#: int64 edges, zero, ±1, and values straddling the codec's exactness caps.
BOUNDARY_INTS = [
    0, 1, -1, 2**31 - 1, -(2**31), 2**62 - 1, -(2**62) + 1, 2**63 - 1, -(2**63),
]


def _value_pool(rng: random.Random):
    """A mixed pool of encodable values, duplicate-heavy by construction."""
    pool = [
        rng.randint(-5, 5),
        rng.choice(BOUNDARY_INTS),
        float(rng.randint(-3, 3)) / 2.0,
        f"s{rng.randint(0, 4)}",
        ("a", rng.randint(0, 3)),
        (rng.randint(0, 2), ("nested", rng.randint(0, 2))),
        None,
        rng.random() < 0.5,
    ]
    return pool


def test_codec_round_trip_adversarial():
    """encode_many ∘ decode_many is the identity (object equality), and
    equal values always intern to equal codes."""
    rng = random.Random(0x0DEC)
    for trial in range(50):
        codec = ValueCodec()
        if trial == 0:
            values = []  # empty relation
        elif trial == 1:
            values = [rng.choice(BOUNDARY_INTS)]  # single tuple
        else:
            pool = _value_pool(rng)
            values = [rng.choice(pool) for _ in range(rng.randint(2, 200))]
        codes = codec.encode_many(values)
        assert codes.dtype == np.int64
        assert codec.decode_many(codes) == values
        # Interning follows dict-key semantics (True == 1 == 1.0 collapse,
        # exactly as Relation.tuples keys do): equal values share a code,
        # distinct values never do.
        again = codec.encode_many(values)
        assert np.array_equal(codes, again)
        by_value = {}
        for value, code in zip(values, codes.tolist()):
            assert by_value.setdefault(value, code) == code
        assert len({code for code in codes.tolist()}) == len(by_value)


def test_codec_int_values_orders_like_python():
    """``int_values`` returns the actual ints (sortable as values), and
    refuses mixed or oversized columns instead of corrupting them."""
    rng = random.Random(0x1917)
    codec = ValueCodec()
    ints = [rng.choice(BOUNDARY_INTS[:5]) * rng.randint(0, 9) for _ in range(300)]
    codes = codec.encode_many(ints)
    values = codec.int_values(codes)
    assert values is not None
    assert values.tolist() == ints
    assert np.argsort(values, kind="stable").tolist() == sorted(
        range(len(ints)), key=lambda i: ints[i]
    )
    # A single non-int (or beyond-2^62 int) poisons the column.
    for poison in ["x", 2.5, 2**62, -(2**63)]:
        mixed = codec.encode_many(ints + [poison])
        assert codec.int_values(mixed) is None
    assert codec.int_values(codes[:0]).shape[0] == 0


def test_batch_take_slice_concat_round_trip():
    """Row operations on batches commute with ``to_items``."""
    rng = random.Random(0xBA7C)
    codec = ValueCodec()
    for _ in range(30):
        n = rng.randint(0, 40)
        items = [
            ((rng.randint(0, 5), f"v{rng.randint(0, 3)}"), rng.randint(1, 9))
            for _ in range(n)
        ]
        columns = tuple(
            codec.encode_many([item[0][j] for item in items]) for j in range(2)
        )
        annotations = np.asarray([item[1] for item in items], dtype=np.int64)
        batch = ColumnarBatch(columns, annotations, n, "items")
        assert batch.to_items(codec) == items
        if n:
            picks = np.asarray(
                [rng.randrange(n) for _ in range(rng.randint(1, 2 * n))],
                dtype=np.int64,
            )
            assert batch.take(picks).to_items(codec) == [items[i] for i in picks]
            lo = rng.randint(0, n)
            hi = rng.randint(lo, n)
            assert batch.slice(lo, hi).to_items(codec) == items[lo:hi]
        halves = ColumnarBatch.concat(
            [batch.slice(0, n // 2), None, batch.slice(n // 2, n)]
        )
        assert halves is not None and halves.to_items(codec) == items


def test_group_reduce_matches_dict_fold_oracle():
    """group_reduce ≡ the obvious dict fold: same keys, same order, same
    sums — across duplicate-heavy, all-equal, and all-distinct id columns."""
    rng = random.Random(0x6F01)
    for trial in range(60):
        n = rng.choice([0, 1, 2, 7, 50, 1500])
        spread = rng.choice([1, 2, 5, n or 1])  # 1 => every id equal
        ids = np.asarray([rng.randrange(spread) for _ in range(n)], dtype=np.int64)
        values = np.asarray([rng.randint(-4, 9) for _ in range(n)], dtype=np.int64)
        unique_ids, reduced = group_reduce(ids, values, np.add)
        oracle: dict = {}
        for i, v in zip(ids.tolist(), values.tolist()):
            oracle[i] = oracle[i] + v if i in oracle else v
        assert unique_ids.tolist() == list(oracle)
        assert reduced.tolist() == list(oracle.values())
        assert first_occurrence_unique(ids).tolist() == list(dict.fromkeys(ids.tolist()))


def test_hash_join_matches_nested_loop_oracle():
    """hash_join emits exactly the nested-loop product stream, in the tuple
    kernels' probe-major order, for both orientations."""
    rng = random.Random(0x70C5)
    for _ in range(40):
        nl = rng.choice([0, 1, 3, 30])
        nr = rng.choice([0, 1, 4, 25])
        domain = rng.choice([1, 2, 4, 8])
        left = np.asarray([rng.randrange(domain) for _ in range(nl)], dtype=np.int64)
        right = np.asarray([rng.randrange(domain) for _ in range(nr)], dtype=np.int64)

        li, ri = hash_join(left, right, outer="right")
        oracle = [
            (i, j)
            for j in range(nr)
            for i in range(nl)
            if left[i] == right[j]
        ]
        assert list(zip(li.tolist(), ri.tolist())) == oracle

        li, ri = hash_join(left, right, outer="left")
        mirrored = [
            (i, j)
            for i in range(nl)
            for j in range(nr)
            if left[i] == right[j]
        ]
        assert list(zip(li.tolist(), ri.tolist())) == mirrored
