"""Degree statistics, key-table attachment, and dangling-tuple removal."""

import random

from repro.data import DistRelation, Instance, Relation
from repro.mpc import Distributed, MPCCluster
from repro.primitives import (
    attach_by_key,
    degree_table,
    elimination_order,
    lookup_table,
    remove_dangling,
)
from repro.ram import evaluate, semijoin_reduce
from repro.semiring import COUNTING
from tests.conftest import (
    GENERAL_TREE_QUERY,
    LINE3_QUERY,
    MATMUL_QUERY,
    STAR3_QUERY,
    TWIG_QUERY,
    random_instance,
)


def test_degree_table_matches_oracle():
    rng = random.Random(1)
    relation = Relation("R", ("A", "B"))
    for _ in range(100):
        entry = (rng.randint(0, 10), rng.randint(0, 10))
        if entry not in relation:
            relation.add(entry, 1)
    cluster = MPCCluster(5)
    dist = DistRelation.load(cluster.view(), relation)
    table = degree_table(dist.data, dist.key_fn(("A",)))
    expected = {
        (a,): relation.degree("A", a) for a in relation.active_domain("A")
    }
    assert dict(table.collect()) == expected


def test_attach_by_key_defaults():
    cluster = MPCCluster(3)
    view = cluster.view()
    items = Distributed.from_items(view, ["a", "b", "c"])
    table = Distributed.from_items(view, [("a", 1), ("c", 3)])
    tagged = attach_by_key(items, table, lambda x: x, default="missing")
    assert dict(tagged.collect()) == {"a": 1, "b": "missing", "c": 3}


def test_lookup_table_charges_control():
    cluster = MPCCluster(3)
    table = Distributed.from_items(cluster.view(), [("k", 1), ("l", 2)])
    result = lookup_table(table)
    assert result == {"k": 1, "l": 2}
    assert cluster.report().control_messages >= 2
    assert cluster.report().max_load == 0


def test_elimination_order_touches_every_relation_once():
    for query in (MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, TWIG_QUERY, GENERAL_TREE_QUERY):
        order = elimination_order(query)
        assert len(order) == query.n - 1
        removed = [leaf for leaf, _host in order]
        assert len(set(removed)) == len(removed)
        # Hosts must still be alive when used.
        alive = {name for name, _ in query.relations}
        for leaf, host in order:
            assert leaf in alive and host in alive
            alive.discard(leaf)


def test_remove_dangling_matches_ram_semijoin_reduce():
    rng = random.Random(2)
    for query in (MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, GENERAL_TREE_QUERY):
        instance = random_instance(
            query, tuples=50, domain=6, rng=rng, semiring=COUNTING,
            weight_sampler=lambda r: 1,
        )
        expected = semijoin_reduce(instance)
        cluster = MPCCluster(6)
        view = cluster.view()
        loaded = {
            name: DistRelation.load(view, instance.relation(name))
            for name, _ in query.relations
        }
        reduced = remove_dangling(query, loaded)
        for name in loaded:
            got = dict(reduced[name].data.collect())
            assert got == dict(expected[name].tuples), (query, name)


def test_remove_dangling_preserves_query_answer():
    rng = random.Random(3)
    instance = random_instance(
        TWIG_QUERY, tuples=40, domain=5, rng=rng, semiring=COUNTING,
        weight_sampler=lambda r: r.randint(1, 3),
    )
    before = evaluate(instance)
    cluster = MPCCluster(4)
    view = cluster.view()
    loaded = {
        name: DistRelation.load(view, instance.relation(name))
        for name, _ in instance.query.relations
    }
    reduced = remove_dangling(instance.query, loaded)
    new_relations = {
        name: Relation(name, rel.schema, rel.data.collect(), semiring=COUNTING)
        for name, rel in reduced.items()
    }
    after = evaluate(Instance(instance.query, new_relations, COUNTING))
    assert before.tuples == after.tuples


def test_remove_dangling_empty_join_empties_everything():
    r1 = Relation("R1", ("A", "B"), [((1, 1), 1)])
    r2 = Relation("R2", ("B", "C"), [((2, 2), 1)])  # no shared B value
    cluster = MPCCluster(3)
    view = cluster.view()
    reduced = remove_dangling(
        MATMUL_QUERY,
        {"R1": DistRelation.load(view, r1), "R2": DistRelation.load(view, r2)},
    )
    assert reduced["R1"].total_size == 0
    assert reduced["R2"].total_size == 0
