"""The cost-based planner (src/repro/planner/).

Three layers:

* unit behaviour — statistics collection, plan determinism and
  introspection, the hysteresis contract around ``AUTO_CHOICE``;
* the dispatch contract — ``algorithm="cost"`` only ever resolves to
  something ``run_query`` can actually execute, and the answer stays
  oracle-identical (the ``planner-choice`` conformance invariant);
* the Theorem 1 crossover — the worst-case ↔ output-sensitive preference
  flips at the Table-1-predicted threshold ``OUT* = √(N1·N2·p)``.
"""

import math
import random

import pytest

from repro.config import ExecutionConfig
from repro.conformance.corpus import ReplayConfig
from repro.conformance.generators import (
    QUERY_FAMILIES,
    GeneratorConfig,
    materialize,
    random_case,
)
from repro.conformance.invariants import check_planner_choice
from repro.core.executor import AUTO_CHOICE, applicable_algorithms, run_query
from repro.data import Instance, Relation, TreeQuery
from repro.planner import (
    QueryStatistics,
    RelationStats,
    collect_statistics,
    plan_query,
    predict_load,
    raw_load,
    rooting_score,
)
from repro.planner.plan import _MATMUL_VARIANTS, HYSTERESIS
from repro.semiring import COUNTING

MATMUL_QUERY = TreeQuery(
    (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
)


def _diagonal_matmul(n: int) -> Instance:
    """OUT = n: every join value matches exactly one tuple per side."""
    r1 = Relation("R1", ("A", "B"), [((i, i), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((i, i), 1) for i in range(n)])
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)


def _bipartite_matmul(n: int) -> Instance:
    """OUT = n²: one join value carries every tuple (a planted blow-up)."""
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)


def _matmul_stats(n1: int, n2: int, out: float) -> QueryStatistics:
    """Synthetic statistics pinning OUT exactly (threshold tests)."""
    def rel(name, attrs, size):
        return RelationStats(
            name=name,
            size=size,
            distinct=tuple((a, size) for a in attrs),
            max_degree=tuple((a, 1) for a in attrs),
            heavy_hitters=tuple((a, 0) for a in attrs),
        )

    return QueryStatistics(
        query_class="matmul",
        total_size=n1 + n2,
        relations=(rel("R1", ("A", "B"), n1), rel("R2", ("B", "C"), n2)),
        out_estimate=float(out),
        out_provenance="oracle",
        mode="offline",
    )


# ----------------------------------------------------------- dispatch contract


def test_cost_choice_is_always_runnable_across_the_grid():
    """algorithm="cost" must resolve inside applicable_algorithms, stamp the
    resolved name and plan on the report, and put the chosen candidate
    first in the recorded summary."""
    rng = random.Random(2020)
    config = GeneratorConfig(max_tuples=30, domain=6, profiles=("counting",))
    for index in range(10):
        case = random_case(rng, config, index)
        instance = materialize(case)
        result = run_query(instance, config=ExecutionConfig(p=4, algorithm="cost"))
        names = applicable_algorithms(instance.query)
        assert result.algorithm in names
        plan = result.report.plan
        assert plan and plan["algorithm"] == result.algorithm
        assert plan["candidates"][0]["algorithm"] == result.algorithm
        assert {c["algorithm"] for c in plan["candidates"]} <= set(names)


@pytest.mark.parametrize("family", QUERY_FAMILIES)
def test_cost_dispatch_is_oracle_identical(family):
    """The planner-choice conformance invariant, replayed per family."""
    rng = random.Random(7)
    config = GeneratorConfig(
        max_tuples=24, domain=6, families=(family,), profiles=("counting",)
    )
    check_planner_choice(random_case(rng, config, 0), ReplayConfig(p=4, p_large=8))


def test_overriding_auto_requires_a_decisive_win():
    """The hysteresis contract: the planner abandons the paper's per-class
    choice only on a sub-HYSTERESIS prediction (matmul strategy variants
    excepted — they instantiate the same Theorem 1 terms)."""
    rng = random.Random(11)
    config = GeneratorConfig(max_tuples=40, domain=8, profiles=("counting",))
    overrides = 0
    for index in range(12):
        instance = materialize(random_case(rng, config, index))
        plan = plan_query(instance, p=8)
        auto_choice = AUTO_CHOICE[instance.query.classify()]
        if plan.algorithm == auto_choice:
            continue
        overrides += 1
        if plan.query_class == "matmul" and plan.algorithm in _MATMUL_VARIANTS:
            continue
        auto_candidate = plan.candidate(auto_choice)
        assert plan.predicted_load < HYSTERESIS * auto_candidate.predicted_load


# ------------------------------------------------------- Theorem 1 crossover


def test_theorem1_min_flips_exactly_at_the_table1_threshold():
    """Table 1 predicts the output-sensitive term beats the worst-case term
    iff OUT < OUT* = √(N1·N2·p); the matmul auto model's min() must switch
    branches right there."""
    n1 = n2 = 10_000
    p = 16
    out_star = math.sqrt(n1 * n2 * p)

    below = _matmul_stats(n1, n2, 0.99 * out_star)
    above = _matmul_stats(n1, n2, 1.01 * out_star)

    # Below: the min takes the output-sensitive branch, so the auto model
    # coincides with the explicit output-sensitive model...
    assert raw_load("matmul", below, p) == pytest.approx(
        raw_load("matmul-output-sensitive", below, p)
    )
    assert raw_load("matmul", below, p) < raw_load("matmul-worst-case", below, p) + (
        below.total_size / p  # the estimation pass the auto model always pays
    )
    # ...above: it switches to the worst-case branch (= that model plus the
    # estimation pass) and strictly undercuts the output-sensitive model.
    assert raw_load("matmul", above, p) == pytest.approx(
        raw_load("matmul-worst-case", above, p) + above.total_size / p
    )
    assert raw_load("matmul", above, p) < raw_load("matmul-output-sensitive", above, p)


def test_crossover_flips_the_variant_preference_end_to_end():
    """On real instances either side of OUT*, the planner's predicted
    ranking of the two explicit Theorem 1 variants flips, and both still
    execute and agree on the answer."""
    p = 64
    n = 200
    out_star = math.sqrt(n * n * p)

    low = _diagonal_matmul(n)      # OUT = n  « OUT*
    high = _bipartite_matmul(n)    # OUT = n² » OUT*

    low_stats = collect_statistics(low)
    high_stats = collect_statistics(high)
    assert low_stats.out_estimate < out_star < high_stats.out_estimate

    low_plan = plan_query(low, p=p, statistics=low_stats)
    high_plan = plan_query(high, p=p, statistics=high_stats)

    def variant(plan, name):
        return plan.candidate(name).predicted_load

    assert variant(low_plan, "matmul-output-sensitive") < variant(
        low_plan, "matmul-worst-case"
    )
    assert variant(high_plan, "matmul-worst-case") < variant(
        high_plan, "matmul-output-sensitive"
    )

    # Both explicit strategies stay runnable and oracle-consistent on both
    # sides of the threshold, and the blow-up side really is cheaper under
    # the worst-case strategy for real.
    for instance in (low, high):
        results = {
            name: run_query(instance, config=ExecutionConfig(p=p, algorithm=name))
            for name in ("matmul-worst-case", "matmul-output-sensitive")
        }
        first, second = results.values()
        assert dict(first.relation.tuples) == dict(second.relation.tuples)
    loads = {
        name: run_query(high, config=ExecutionConfig(p=p, algorithm=name)).report.max_load
        for name in ("matmul-worst-case", "matmul-output-sensitive")
    }
    assert loads["matmul-worst-case"] < loads["matmul-output-sensitive"]


# ------------------------------------------------------------- plan mechanics


def test_plan_is_deterministic_and_introspectable():
    instance = _diagonal_matmul(24)
    first = plan_query(instance, p=8)
    second = plan_query(instance, p=8)
    assert first.to_dict() == second.to_dict()

    assert first.candidate(first.algorithm) is first.chosen
    with pytest.raises(KeyError):
        first.candidate("not-an-algorithm")

    summary = first.summary()
    assert summary["algorithm"] == first.algorithm
    assert summary["candidates"][0]["algorithm"] == first.algorithm

    rendering = first.render()
    assert f"chosen: {first.algorithm}" in rendering
    for candidate in first.candidates:
        assert candidate.algorithm in rendering


def test_rooted_candidates_carry_a_rooting():
    rng = random.Random(3)
    config = GeneratorConfig(
        max_tuples=30, domain=6, families=("tree",), profiles=("counting",)
    )
    instance = materialize(random_case(rng, config, 0))
    plan = plan_query(instance, p=4)
    yannakakis = plan.candidate("yannakakis")
    assert yannakakis.rooting in instance.query.attributes
    assert yannakakis.rootings_considered == len(instance.query.attributes)
    # The reported root is the argmin of the heuristic, ties by name.
    stats = plan.statistics
    scores = {
        attr: rooting_score(instance.query, stats, attr)
        for attr in instance.query.attributes
    }
    best = min(sorted(scores), key=lambda attr: (scores[attr], attr))
    assert yannakakis.rooting == best


def test_rooting_score_prefers_low_fanout_roots():
    """A planted high-degree hub should repel the root choice: rooting on
    the far side of the hub forces partial results through its fan-out
    (here B has degree 10 in R1, so a root at C multiplies A's tuples by
    10 on their way up, while a root at A never fans out)."""
    query = TreeQuery(
        (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "B", "C"})
    )
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(10)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 1)])
    stats = collect_statistics(Instance(query, {"R1": r1, "R2": r2}, COUNTING))
    assert rooting_score(query, stats, "C") > rooting_score(query, stats, "A")


def test_in_model_statistics_are_metered():
    instance = _diagonal_matmul(16)
    offline = plan_query(instance, p=4, stats_mode="offline")
    assert offline.statistics.mode == "offline"
    assert offline.statistics.metered_load == 0
    with pytest.raises(ValueError):
        plan_query(instance, p=4, stats_mode="in-model")  # needs a view
    with pytest.raises(ValueError):
        plan_query(instance, p=4, stats_mode="telepathy")


def test_predictions_scale_with_calibration_constants():
    stats = _matmul_stats(1000, 1000, 500.0)
    for algorithm in ("matmul-worst-case", "matmul-output-sensitive"):
        raw = raw_load(algorithm, stats, 16)
        predicted = predict_load(algorithm, stats, 16)
        assert raw > 0 and predicted > 0
