"""Semiring invariance of the algorithms' *structure*.

The paper's algorithms make all routing decisions from tuple keys and
degree statistics — never from annotation values.  Consequences tested
here on identical key-structures under different semirings:

* the elementary-product count is semiring-independent;
* the communication pattern (total messages, loads, rounds) is
  semiring-independent;
* the *support* (set of output keys) is semiring-independent whenever no
  semiring collapses to zero (guaranteed for the semirings used here).
"""

import random

import pytest

from repro import run_query
from repro.data import Instance, Relation
from repro.semiring import BOOLEAN, COUNTING, MAX_MIN, TROPICAL_MIN_PLUS
from tests.conftest import (
    LINE3_QUERY,
    MATMUL_QUERY,
    STAR3_QUERY,
    TWIG_QUERY,
)

SEMIRING_WEIGHTS = [
    (COUNTING, lambda rng: rng.randint(1, 5)),
    (BOOLEAN, lambda rng: True),
    (TROPICAL_MIN_PLUS, lambda rng: float(rng.randint(0, 9))),
    (MAX_MIN, lambda rng: float(rng.randint(1, 9))),
]


def _instances_with_same_keys(query, seed, tuples=40, domain=7):
    """One instance per semiring, all sharing the same tuple keys."""
    rng = random.Random(seed)
    keys = {}
    for name, _attrs in query.relations:
        seen = set()
        attempts = 0
        while len(seen) < tuples and attempts < 100 * tuples:
            attempts += 1
            entry = (rng.randrange(domain), rng.randrange(domain))
            seen.add(entry)
        keys[name] = sorted(seen)
    instances = []
    for semiring, weight in SEMIRING_WEIGHTS:
        wrng = random.Random(seed + 1)
        relations = {
            name: Relation(
                name, attrs, [(entry, weight(wrng)) for entry in keys[name]]
            )
            for name, attrs in query.relations
        }
        instances.append(Instance(query, relations, semiring))
    return instances


@pytest.mark.parametrize(
    "query", [MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, TWIG_QUERY],
    ids=lambda q: q.classify(),
)
@pytest.mark.parametrize("algorithm", ["auto", "yannakakis"])
def test_structure_is_semiring_invariant(query, algorithm):
    instances = _instances_with_same_keys(query, seed=13)
    fingerprints = []
    supports = []
    for instance in instances:
        result = run_query(instance, p=6, algorithm=algorithm)
        report = result.report
        fingerprints.append(
            (report.elementary_products, report.total_communication,
             report.max_load, report.rounds)
        )
        supports.append(frozenset(result.relation.tuples))
    assert len(set(fingerprints)) == 1, fingerprints
    assert len(set(supports)) == 1
