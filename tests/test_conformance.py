"""The conformance & fuzzing subsystem (src/repro/conformance/).

Three layers of assurance:

* unit tests for the generator grid, the shrinker, and corpus round-trips;
* determinism: the same seed must produce a byte-identical JSON summary;
* the mutation smoke test — a deliberately planted off-by-one in the
  cluster's exchange step MUST be detected by a short seeded campaign,
  shrunk to a handful of tuples, and serialized into a corpus entry that
  replays red while the bug is active and green once it is reverted.  A
  fuzzer that cannot catch a planted bug proves nothing.
"""

import json
import random

import pytest

from repro.conformance import (
    DEFAULT_INVARIANTS,
    INVARIANTS,
    PROFILES,
    QUERY_FAMILIES,
    SKEW_PROFILES,
    FuzzCase,
    FuzzConfig,
    GeneratorConfig,
    InvariantViolation,
    case_from_document,
    case_to_document,
    corpus_files,
    failing_predicate,
    fuzz,
    load_case,
    materialize,
    planted_exchange_off_by_one,
    random_case,
    random_query,
    random_skeleton,
    replay_case,
    save_case,
    shrink_case,
    skeleton_size,
)
from repro.core.executor import ALGORITHMS, applicable_algorithms
from repro.ram import evaluate


# ---------------------------------------------------------------- generators


@pytest.mark.parametrize("family", QUERY_FAMILIES)
def test_random_query_produces_the_advertised_family(family):
    rng = random.Random(7)
    for _ in range(5):
        query = random_query(rng, family)
        klass = query.classify()
        if family == "tree":
            assert klass in ("twig", "tree")
        elif family == "star-like":
            assert klass == "star-like"
        else:
            assert klass == family


@pytest.mark.parametrize("skew", SKEW_PROFILES)
def test_random_skeleton_is_well_formed(skew):
    rng = random.Random(13)
    query = random_query(rng, "star")
    skeleton = random_skeleton(rng, query, tuples=10, domain=4, skew=skew)
    assert set(skeleton) == {name for name, _ in query.relations}
    for rows in skeleton.values():
        values_seen = [values for values, _ in rows]
        assert len(values_seen) == len(set(values_seen))  # distinct tuples
        assert all(1 <= weight <= 4 for _, weight in rows)


def test_generator_grid_cycles_every_family_and_profile():
    rng = random.Random(0)
    config = GeneratorConfig()
    cases = [random_case(rng, config, index) for index in range(25)]
    families = {case.family for case in cases}
    profiles = {case.profile for case in cases}
    assert families == set(QUERY_FAMILIES)
    assert profiles == set(PROFILES)


def test_materialize_annotates_per_profile():
    rng = random.Random(5)
    config = GeneratorConfig(profiles=("counting",))
    case = random_case(rng, config, 0)
    counting = materialize(case, profile="counting")
    boolean = materialize(case, profile="boolean")
    name = counting.query.relations[0][0]
    assert all(isinstance(w, int) for _, w in counting.relation(name))
    assert all(w is True for _, w in boolean.relation(name))


def test_registry_introspection_matches_dispatch():
    """applicable_algorithms must mirror what run_query actually accepts."""
    rng = random.Random(3)
    for family in QUERY_FAMILIES:
        query = random_query(rng, family)
        names = applicable_algorithms(query)
        assert "yannakakis" in names and "tree" in names
        for name in names:
            assert ALGORITHMS[name].applies(query)


# ------------------------------------------------------------------ shrinker


def _counting_case():
    rng = random.Random(11)
    config = GeneratorConfig(profiles=("counting",), families=("matmul",))
    return random_case(rng, config, 0)


def test_shrink_non_failing_case_is_identity():
    case = _counting_case()
    assert shrink_case(case, lambda _case: False) is case


def test_shrink_reaches_a_small_core():
    """Predicate: 'some relation still contains a tuple with value 0 in the
    join column' — the shrinker must strip everything else."""
    case = _counting_case()

    def predicate(candidate):
        return any(
            values[0] == 0
            for rows in candidate.skeleton.values()
            for values, _weight in rows
        )

    if not predicate(case):  # make sure the core exists
        skeleton = dict(case.skeleton)
        name = next(iter(skeleton))
        skeleton[name] = skeleton[name] + [((0, 0), 2)]
        case = case.replace_skeleton(skeleton)
    shrunk = shrink_case(case, predicate)
    assert predicate(shrunk)
    assert skeleton_size(shrunk) == 1
    # Weight normalization kicked in.
    assert all(w == 1 for rows in shrunk.skeleton.values() for _, w in rows)


def test_shrink_respects_budget():
    case = _counting_case()
    calls = []

    def predicate(candidate):
        calls.append(1)
        return True

    shrink_case(case, predicate, budget=5)
    assert len(calls) <= 5


# -------------------------------------------------------------------- corpus


def test_corpus_round_trip(tmp_path):
    rng = random.Random(9)
    config = GeneratorConfig(profiles=("provenance",), families=("line",))
    case = random_case(rng, config, 0)
    meta = {"invariant": "differential", "run_seed": 0, "iteration": 3, "p": 4}
    path = save_case(case, meta, str(tmp_path))
    assert corpus_files(str(tmp_path)) == [path]

    loaded, loaded_meta = load_case(path)
    assert loaded.query == case.query
    assert loaded.skeleton == case.skeleton
    assert loaded.profile == "provenance"
    assert loaded_meta["invariant"] == "differential"

    document = case_to_document(case, meta)
    round_tripped, _ = case_from_document(json.loads(json.dumps(document)))
    assert round_tripped.skeleton == case.skeleton


def test_corpus_rejects_foreign_documents():
    with pytest.raises(ValueError):
        case_from_document({"format": "something-else"})


def test_replay_green_on_a_healthy_tree():
    rng = random.Random(21)
    config = GeneratorConfig()
    case = random_case(rng, config, 0)
    replay_case(case, {"invariant": "differential", "p": 4})


# -------------------------------------------------------------- determinism


def test_same_seed_same_bytes():
    config = FuzzConfig(iterations=12, seed=5)
    first = fuzz(config).to_json()
    second = fuzz(FuzzConfig(iterations=12, seed=5)).to_json()
    assert first == second
    assert fuzz(FuzzConfig(iterations=12, seed=6)).to_json() != first


def test_default_run_covers_the_acceptance_grid():
    """One default-budget run must touch all five query families and at
    least three semirings including counting, provenance and opaque."""
    summary = fuzz(FuzzConfig(iterations=25, seed=0))
    assert summary.ok, [f.message for f in summary.failures]
    assert set(summary.coverage["family"]) == set(QUERY_FAMILIES)
    assert {"counting", "provenance", "opaque"} <= set(
        summary.coverage["semiring"]
    )
    # The default catalog, exactly: opt-in registrations (the chaos tier,
    # the planner-choice, columnar-identity, process-identity and
    # ivm-identity invariants) must not leak into default campaigns.
    assert set(summary.coverage["invariant"]) == set(DEFAULT_INVARIANTS)
    assert set(DEFAULT_INVARIANTS) | {
        "chaos",
        "planner-choice",
        "columnar-identity",
        "process-identity",
        "ivm-identity",
    } == set(INVARIANTS)


def test_seconds_budget_checks_at_least_one_case():
    summary = fuzz(FuzzConfig(seconds=0.0, seed=0))
    assert summary.checked >= 1


# ------------------------------------------------------- mutation smoke test


def test_planted_bug_is_caught_shrunk_and_replayable(tmp_path):
    """The acceptance criterion: a planted off-by-one in the exchange step
    is detected by `repro fuzz --seed 0` within a bounded budget; the
    shrinker emits a serialized repro of ≤ 8 tuples whose replay is red
    under the bug and green without it."""
    corpus = str(tmp_path / "corpus")
    config = FuzzConfig(
        iterations=30,
        seed=0,
        invariants=("differential",),
        corpus=corpus,
        fail_fast=True,
    )
    with planted_exchange_off_by_one():
        summary = fuzz(config)
    assert not summary.ok, "planted bug escaped a 30-iteration budget"
    failure = summary.failures[0]
    assert failure.invariant == "differential"
    assert failure.shrunk_tuples <= 8, failure
    assert failure.shrunk_tuples <= failure.original_tuples

    entries = corpus_files(corpus)
    assert failure.corpus_file in entries
    case, meta = load_case(failure.corpus_file)
    assert skeleton_size(case) == failure.shrunk_tuples

    # Red while the bug is planted...
    with planted_exchange_off_by_one():
        with pytest.raises(Exception):
            replay_case(case, meta)
    # ...green once reverted.
    replay_case(case, meta)


def test_invariant_violation_formats_its_origin():
    error = InvariantViolation("differential", "star", "boom")
    assert str(error) == "[differential/star] boom"
    assert error.invariant == "differential"
    assert error.algorithm == "star"


def test_failing_predicate_counts_crashes_as_failures():
    def crashing_check(case, config):
        raise RuntimeError("kaboom")

    predicate = failing_predicate(crashing_check, FuzzConfig())
    assert predicate(_counting_case()) is True


def test_fuzz_failure_serialization_is_stable():
    corpus_free = FuzzConfig(iterations=10, seed=0, invariants=("differential",))
    with planted_exchange_off_by_one():
        first = fuzz(corpus_free).to_json()
        second = fuzz(corpus_free).to_json()
    assert first == second
    document = json.loads(first)
    assert document["ok"] is False
    assert document["failures"][0]["invariant"] == "differential"


# ------------------------------------------------ oracle sanity (meta-test)


def test_oracle_agrees_with_itself_across_profiles():
    """materialize() must re-annotate the same tuples for every profile."""
    rng = random.Random(2)
    config = GeneratorConfig(families=("star",))
    case = random_case(rng, config, 0)
    keys = {
        profile: set(evaluate(materialize(case, profile="counting")).tuples)
        for profile in ("counting", "boolean")
    }
    assert keys["counting"] == keys["boolean"]
