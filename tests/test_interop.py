"""scipy/numpy interop: the library as a drop-in sparse matmul engine."""

import numpy as np
import pytest
from scipy import sparse

from repro.interop import matrix_from_relation, relation_from_matrix, sparse_matmul_scipy
from repro.data import Relation
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS


def _random_sparse(rows, cols, density, seed):
    rng = np.random.default_rng(seed)
    matrix = sparse.random(rows, cols, density=density, random_state=rng,
                           data_rvs=lambda n: rng.integers(1, 5, n).astype(float))
    return matrix.tocsr()


def test_relation_roundtrip_dense():
    array = np.array([[0.0, 2.0], [3.0, 0.0]])
    relation = relation_from_matrix(array)
    assert dict(relation.tuples) == {(0, 1): 2.0, (1, 0): 3.0}
    back = matrix_from_relation(relation, shape=(2, 2)).toarray()
    assert np.array_equal(back, array)


def test_relation_from_scipy():
    matrix = sparse.coo_matrix(([5.0, 7.0], ([0, 2], [1, 0])), shape=(3, 3))
    relation = relation_from_matrix(matrix)
    assert dict(relation.tuples) == {(0, 1): 5.0, (2, 0): 7.0}


def test_relation_from_matrix_rejects_bad_shapes():
    with pytest.raises(ValueError):
        relation_from_matrix(np.zeros(3))
    with pytest.raises(ValueError):
        matrix_from_relation(Relation("R", ("A", "B", "C")))


@pytest.mark.parametrize("p", [4, 16])
def test_matmul_matches_scipy(p):
    a = _random_sparse(40, 25, 0.15, seed=1)
    b = _random_sparse(25, 35, 0.15, seed=2)
    product, report = sparse_matmul_scipy(a, b, p=p)
    expected = (a @ b).toarray()
    got = product.toarray()
    # Semiring arithmetic has no cancellation; with positive data the
    # non-zero structures and values must match exactly.
    assert np.allclose(got, expected)
    assert report.max_load > 0


def test_matmul_dense_inputs():
    a = np.array([[1.0, 0.0], [0.0, 2.0]])
    b = np.array([[0.0, 3.0], [4.0, 0.0]])
    product, _report = sparse_matmul_scipy(a, b, p=2)
    assert np.allclose(product.toarray(), a @ b)


def test_matmul_tropical_semiring():
    # (min, +): entry (i, j) is the cheapest i→k→j route.
    a = np.array([[0.0, 2.0, 5.0]])  # weights of edges 0→k (0 = free edge)
    b = np.array([[9.0], [1.0], [1.0]])
    relation_a = relation_from_matrix(a, "R1", ("A", "B"))
    relation_a.add((0, 0), 0.0, TROPICAL_MIN_PLUS)  # matrix drops the 0 entry
    from repro.data import Instance
    from repro.interop import MATMUL_QUERY
    from repro import run_query

    relation_b = relation_from_matrix(b, "R2", ("B", "C"))
    instance = Instance(
        MATMUL_QUERY, {"R1": relation_a, "R2": relation_b}, TROPICAL_MIN_PLUS
    )
    result = run_query(instance, p=2)
    assert result.relation.tuples[(0, 0)] == min(0.0 + 9.0, 2.0 + 1.0, 5.0 + 1.0)


def test_empty_product():
    a = sparse.coo_matrix(([1.0], ([0], [0])), shape=(2, 2))
    b = sparse.coo_matrix(([1.0], ([1], [1])), shape=(2, 2))
    product, _report = sparse_matmul_scipy(a, b, p=2)
    assert product.nnz == 0
