"""Benchmark harness result files: latest + dated history, JSON export."""

import importlib.util
import itertools
import json
import os
import sys

HARNESS_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "harness.py"
)
_counter = itertools.count()


def _fresh_harness():
    """Load benchmarks/harness.py as an isolated module (fresh registry)."""
    name = f"bench_harness_under_test_{next(_counter)}"
    spec = importlib.util.spec_from_file_location(name, HARNESS_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module  # dataclasses resolve annotations via sys.modules
    spec.loader.exec_module(module)
    return module


def _record(harness, value):
    table = harness.registry.table("exp1", "demo experiment", ("knob", "load"))
    table.add("a", value)


def test_write_results_keeps_latest_plus_history(tmp_path):
    harness = _fresh_harness()
    _record(harness, 10)
    path = str(tmp_path / "results.md")

    harness.write_results(path, now="2026-08-05T10:00:00")
    first = open(path).read()
    assert "## Latest run — 2026-08-05T10:00:00" in first
    assert "## History" not in first

    harness.write_results(path, now="2026-08-06T10:00:00")
    second = open(path).read()
    assert "## Latest run — 2026-08-06T10:00:00" in second
    assert "## History" in second
    assert "### Run — 2026-08-05T10:00:00" in second
    # The tables appear in both the latest block and the history entry.
    assert second.count("== exp1: demo experiment ==") == 2


def test_write_results_folds_legacy_format_into_history(tmp_path):
    harness = _fresh_harness()
    _record(harness, 7)
    path = str(tmp_path / "results.md")
    with open(path, "w") as handle:
        handle.write("== old: legacy table ==\nknob  load\na  1\n")
    harness.write_results(path, now="2026-08-06T11:00:00")
    text = open(path).read()
    assert "## Latest run — 2026-08-06T11:00:00" in text
    assert "### Run — (undated earlier run)" in text
    assert "legacy table" in text


def test_history_is_capped(tmp_path):
    harness = _fresh_harness()
    _record(harness, 1)
    path = str(tmp_path / "results.md")
    for day in range(1, harness.HISTORY_LIMIT + 4):
        harness.write_results(path, now=f"2026-07-{day:02d}T00:00:00")
    text = open(path).read()
    assert text.count("### Run — ") == harness.HISTORY_LIMIT


def test_write_results_json(tmp_path):
    harness = _fresh_harness()
    _record(harness, 42)
    harness.registry.table("exp1", "demo experiment", ("knob", "load")).add("b", 3.5)
    path = str(tmp_path / "results.json")
    harness.write_results_json(path, now="2026-08-06T12:00:00")
    document = json.load(open(path))
    assert document["generated"] == "2026-08-06T12:00:00"
    table = document["tables"]["exp1"]
    assert table["header"] == ["knob", "load"]
    assert table["rows"] == [["a", 42], ["b", 3.5]]


def test_empty_registry_emits_valid_empty_json(tmp_path):
    """A zero-row run (e.g. an empty family selection) must still produce a
    loadable results.json; results.md is skipped so an empty run does not
    churn real tables down the capped history."""
    harness = _fresh_harness()
    md = tmp_path / "results.md"
    harness.write_results(str(md), now="2026-08-06T00:00:00")
    path = tmp_path / "results.json"
    harness.write_results_json(str(path), now="2026-08-06T00:00:00")
    assert not md.exists()
    document = json.load(open(path))
    assert document == {"generated": "2026-08-06T00:00:00", "tables": {}}


def test_write_results_json_accepts_bare_filename(tmp_path, monkeypatch):
    """A path with no directory component must not crash makedirs."""
    harness = _fresh_harness()
    monkeypatch.chdir(tmp_path)
    harness.write_results_json("results.json", now="2026-08-06T00:00:00")
    assert json.load(open("results.json"))["tables"] == {}


def test_table1_empty_family_selection():
    from repro.api import TABLE1_FAMILIES, table1
    from repro.config import ExecutionConfig

    config = ExecutionConfig(p=4)
    assert table1(scale=40, config=config, families=()) == []
    rows = table1(scale=40, config=config, families=("matmul",))
    assert [row.label for row in rows] == ["matmul"]
    assert set(TABLE1_FAMILIES) >= {"matmul", "line", "star", "tree"}

    import pytest
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        table1(scale=40, config=config, families=("nope",))
