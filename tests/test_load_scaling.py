"""Shape regression: measured loads must scale with the *exponents* the
bounds predict (log-log slope fits, generous tolerances).

These complement the benchmarks: benchmarks print tables for humans, these
tests pin the exponents in CI.  All instances are deterministic.
"""

import math

from repro import run_query
from repro.core.matmul_output_sensitive import matmul_output_sensitive
from repro.core.matmul_worst_case import matmul_worst_case
from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.semiring import COUNTING
from repro.workloads import MATMUL_QUERY, planted_out_matmul


def _slope(xs, ys):
    """Least-squares slope of log(y) against log(x)."""
    lx = [math.log(x) for x in xs]
    ly = [math.log(y) for y in ys]
    n = len(xs)
    mean_x = sum(lx) / n
    mean_y = sum(ly) / n
    num = sum((a - mean_x) * (b - mean_y) for a, b in zip(lx, ly))
    den = sum((a - mean_x) ** 2 for a in lx)
    return num / den


def _cartesian_instance(n):
    """|dom(B)| = 1: the √(N1N2/p) worst case, OUT = n²."""
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    return Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)


def test_worst_case_load_scales_like_inverse_sqrt_p():
    """L ∝ p^{-1/2} on the Cartesian family (the √(N1N2/p) branch)."""
    n = 256
    instance = _cartesian_instance(n)
    ps = [4, 16, 64]
    loads = []
    for p in ps:
        cluster = MPCCluster(p)
        view = cluster.view()
        matmul_worst_case(
            DistRelation.load(view, instance.relation("R1")),
            DistRelation.load(view, instance.relation("R2")),
            COUNTING,
        )
        loads.append(cluster.report().max_load)
    slope = _slope(ps, loads)
    assert -0.85 <= slope <= -0.25, (loads, slope)


def test_output_sensitive_load_scales_like_p_to_minus_two_thirds():
    """L ∝ p^{-2/3} on the (N1N2·OUT)^{1/3}/p^{2/3} branch of Theorem 1.

    With OUT = N the output-sensitive term equals N/p^{2/3} and dominates
    both linear terms (N/p and OUT/p are smaller by p^{1/3} for p ≥ 8), so
    the measured load's log-log slope against p isolates the -2/3 exponent
    — distinguishable from the worst-case branch's -1/2 and the trivial -1.
    """
    n = 16000
    instance = planted_out_matmul(n=n, out=n)
    ps = [8, 16, 64]
    loads = []
    for p in ps:
        cluster = MPCCluster(p)
        view = cluster.view()
        matmul_output_sensitive(
            DistRelation.load(view, instance.relation("R1")),
            DistRelation.load(view, instance.relation("R2")),
            COUNTING,
        )
        loads.append(cluster.report().max_load)
    slope = _slope(ps, loads)
    assert -0.8 <= slope <= -0.55, (loads, slope)


def test_worst_case_load_scales_linearly_in_n():
    """L ∝ N on the Cartesian family at fixed p (= √(N²/p))."""
    p = 16
    ns = [64, 128, 256, 512]
    loads = []
    for n in ns:
        instance = _cartesian_instance(n)
        cluster = MPCCluster(p)
        view = cluster.view()
        matmul_worst_case(
            DistRelation.load(view, instance.relation("R1")),
            DistRelation.load(view, instance.relation("R2")),
            COUNTING,
        )
        loads.append(cluster.report().max_load)
    slope = _slope(ns, loads)
    assert 0.75 <= slope <= 1.25, (loads, slope)


def test_baseline_load_scales_linearly_in_out():
    """The baseline's load ∝ OUT on the planted family (J = OUT)."""
    p = 16
    outs = [4000, 16000, 64000, 256000]
    loads = []
    for out in outs:
        instance = planted_out_matmul(n=1000, out=out)
        result = run_query(instance, p=p, algorithm="yannakakis")
        loads.append(result.report.max_load)
    slope = _slope(outs, loads)
    assert 0.75 <= slope <= 1.2, (loads, slope)


def test_new_algorithm_load_flat_in_out_beyond_crossover():
    """Theorem 1's load is OUT-independent once the min picks √(N1N2/p)."""
    p = 16
    outs = [16000, 64000, 256000]
    loads = []
    for out in outs:
        instance = planted_out_matmul(n=1000, out=out)
        result = run_query(instance, p=p, algorithm="auto")
        loads.append(result.report.max_load)
    slope = _slope(outs, loads)
    assert -0.2 <= slope <= 0.2, (loads, slope)
