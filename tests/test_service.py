"""End-to-end battery for the query service (ISSUE 9 acceptance).

Proves, against both the HTTP-free :class:`~repro.service.ServiceState`
and a live :class:`~repro.service.ReproServer` socket:

* concurrent requests execute under the admission cap (the controller's
  ``peak_active`` high-water mark never exceeds ``max_concurrent``);
* a warm cache hit returns *bit-identical* JSON to the cold run;
* re-registering an instance with different data invalidates its cached
  responses and forces a recompute;
* over-budget requests get 429 *without executing anything*;
* ``GET /metrics`` exposes the request/cache-hit/rejection counters in
  Prometheus 0.0.4 text format;
* the typed error hierarchy maps to HTTP statuses end to end
  (404/400/422/429).
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.config import ExecutionConfig
from repro.io import instance_to_json
from repro.service import (
    AdmissionController,
    AdmissionRejected,
    ReproServer,
    ServiceState,
)
from repro.workloads import line_instance, planted_out_matmul, star_instance


def _body(document) -> bytes:
    return json.dumps(document).encode("utf-8")


def _register(state: ServiceState, name: str, instance) -> dict:
    status, _, payload, _ = state.handle(
        "POST", "/instances",
        _body({"name": name, "instance": json.loads(instance_to_json(instance))}),
    )
    assert status == 200, payload
    return json.loads(payload)["registered"]


def _query(state: ServiceState, document) -> "tuple[int, dict, bytes, dict]":
    status, _, payload, headers = state.handle("POST", "/query", _body(document))
    return status, json.loads(payload), payload, headers


# -- warm hits, invalidation, recompute --------------------------------------


def test_warm_hit_is_bit_identical_and_skips_execution():
    state = ServiceState()
    _register(state, "mm", planted_out_matmul(n=40, out=80))

    request = {"instance": "mm", "config": {"p": 4}}
    status1, doc1, cold_bytes, headers1 = _query(state, request)
    status2, doc2, warm_bytes, headers2 = _query(state, request)

    assert status1 == status2 == 200
    assert headers1["X-Repro-Cache"] == "miss"
    assert headers2["X-Repro-Cache"] == "hit"
    assert warm_bytes == cold_bytes  # byte-for-byte, not just equal JSON
    assert doc1["out_size"] == 80
    assert doc1["answer"] and doc1["report"] and doc1["trace"]["events"] > 0
    # exactly one execution happened
    assert state.admission.admitted == 1
    assert state.cache.stats()["hits"] == 1


def test_reregistering_same_data_keeps_the_cache_warm():
    state = ServiceState()
    instance = planted_out_matmul(n=30, out=60)
    first = _register(state, "mm", instance)
    _query(state, {"instance": "mm"})

    second = _register(state, "mm", instance)  # identical content
    assert second["digest"] == first["digest"]
    assert second["generation"] == 2
    _, _, _, headers = _query(state, {"instance": "mm"})
    assert headers["X-Repro-Cache"] == "hit"
    assert state.admission.admitted == 1


def test_mutating_an_instance_invalidates_and_forces_recompute():
    state = ServiceState()
    _register(state, "data", planted_out_matmul(n=30, out=60))
    _, doc_a, bytes_a, _ = _query(state, {"instance": "data"})

    # same name, different content: digest changes, cache entries die
    _register(state, "data", planted_out_matmul(n=30, out=120))
    status, doc_b, bytes_b, headers = _query(state, {"instance": "data"})
    assert status == 200
    assert headers["X-Repro-Cache"] == "miss"
    assert doc_b["digest"] != doc_a["digest"]
    assert doc_b["out_size"] > doc_a["out_size"]
    assert bytes_b != bytes_a
    assert state.admission.admitted == 2
    assert state.cache.stats()["invalidations"] >= 1


def test_drop_invalidates_cached_responses():
    state = ServiceState()
    instance = planted_out_matmul(n=30, out=60)
    _register(state, "mm", instance)
    _query(state, {"instance": "mm"})

    status, _, payload, _ = state.handle("DELETE", "/instances/mm", None)
    assert status == 200
    status, _, payload, _ = state.handle("POST", "/query",
                                         _body({"instance": "mm"}))
    assert status == 404

    # re-registering the *same* data does not resurrect the cache
    _register(state, "mm", instance)
    _, _, _, headers = _query(state, {"instance": "mm"})
    assert headers["X-Repro-Cache"] == "miss"


def test_compare_and_explain_endpoints():
    state = ServiceState()
    _register(state, "star", star_instance(3, 40, 40, 5, seed=1))

    status, _, payload, headers = state.handle(
        "POST", "/compare", _body({"instance": "star", "config": {"p": 4}})
    )
    document = json.loads(payload)
    assert status == 200
    assert document["baseline"] and document["ours"]
    assert document["speedup"] > 0
    # compare results cache independently of /query results
    status, _, payload2, headers2 = state.handle(
        "POST", "/compare", _body({"instance": "star", "config": {"p": 4}})
    )
    assert headers2["X-Repro-Cache"] == "hit"
    assert payload2 == payload

    status, _, payload, _ = state.handle(
        "POST", "/explain", _body({"instance": "star", "config": {"p": 4}})
    )
    plan = json.loads(payload)["plan"]
    assert status == 200
    assert plan["chosen"] if "chosen" in plan else plan  # plan renders
    # explain never executes and never touches the admission controller
    assert state.admission.admitted == 1


# -- admission control --------------------------------------------------------


def test_concurrent_queries_respect_the_admission_cap():
    state = ServiceState(max_concurrent=2, queue_depth=16)
    _register(state, "mm", planted_out_matmul(n=60, out=120))

    results = []
    lock = threading.Lock()

    def run(seed: int) -> None:
        # distinct seeds → distinct cache keys → every request executes
        status, _, payload, _ = state.handle(
            "POST", "/query",
            _body({"instance": "mm", "config": {"p": 4, "seed": seed}}),
        )
        with lock:
            results.append((seed, status))

    threads = [threading.Thread(target=run, args=(seed,)) for seed in range(6)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=60)

    assert sorted(status for _, status in results) == [200] * 6
    stats = state.admission.stats()
    assert stats["admitted"] == 6
    assert 1 <= stats["peak_active"] <= 2
    assert stats["active"] == 0


def test_queue_full_rejects_instead_of_piling_up():
    controller = AdmissionController(max_concurrent=1, queue_depth=1)
    release = threading.Event()
    holding = threading.Event()

    def hold() -> None:
        with controller.slot():
            holding.set()
            release.wait(10)

    def wait_for_slot() -> None:
        with controller.slot(timeout=10):
            pass

    holder = threading.Thread(target=hold)
    holder.start()
    assert holding.wait(10)
    waiter = threading.Thread(target=wait_for_slot)
    waiter.start()
    deadline = time.time() + 10
    while controller.queued < 1 and time.time() < deadline:
        time.sleep(0.001)
    assert controller.queued == 1

    # cap reached, queue full: the third caller is rejected immediately
    with pytest.raises(AdmissionRejected) as caught:
        with controller.slot():
            pass  # pragma: no cover
    assert caught.value.reason == "queue-full"

    release.set()
    holder.join(10)
    waiter.join(10)
    assert controller.peak_active == 1
    assert controller.admitted == 2
    assert controller.rejections["queue-full"] == 1


def test_over_budget_request_gets_429_without_executing():
    state = ServiceState(load_budget=1)  # any real query predicts more
    _register(state, "mm", planted_out_matmul(n=40, out=80))

    status, _, payload, headers = state.handle(
        "POST", "/query", _body({"instance": "mm", "config": {"p": 4}})
    )
    document = json.loads(payload)
    assert status == 429
    assert document["error"] == "AdmissionRejected"
    assert headers["Retry-After"] == "1"
    # nothing ran: no slot was ever taken, nothing was cached
    assert state.admission.admitted == 0
    assert state.admission.rejections["load-budget"] == 1
    assert len(state.cache) == 0


def test_request_level_budget_tightens_the_server_budget():
    state = ServiceState()  # unlimited server budget
    _register(state, "mm", planted_out_matmul(n=40, out=80))

    status, _, payload, _ = state.handle(
        "POST", "/query", _body({"instance": "mm", "load_budget": 1})
    )
    assert status == 429
    assert state.admission.admitted == 0

    # without the request budget the same query runs fine
    status, _, _, _ = state.handle(
        "POST", "/query", _body({"instance": "mm"})
    )
    assert status == 200

    status, _, payload, _ = state.handle(
        "POST", "/query", _body({"instance": "mm", "load_budget": "cheap"})
    )
    assert status == 400  # budget must be a number


# -- error mapping end to end -------------------------------------------------


def test_http_status_mapping_end_to_end():
    state = ServiceState()
    _register(state, "star", star_instance(3, 30, 30, 4, seed=0))

    def post(path, document):
        status, _, payload, _ = state.handle("POST", path, _body(document))
        return status, json.loads(payload)

    # 404: unregistered instance name
    status, document = post("/query", {"instance": "ghost"})
    assert (status, document["error"]) == (404, "UnknownInstanceError")

    # 400: unknown config key (observers are server-side concerns)
    status, document = post("/query", {"instance": "star",
                                       "config": {"tracer": "yes"}})
    assert (status, document["error"]) == (400, "ConfigError")

    # 400: bad knob value, rejected eagerly at ExecutionConfig construction
    status, document = post("/query", {"instance": "star",
                                       "config": {"backend": "fortran"}})
    assert (status, document["error"]) == (400, "ConfigError")

    # 422: algorithm inapplicable to the query shape (matmul needs two
    # relations in matrix form; a 3-arm star has three)
    status, document = post("/query", {"instance": "star",
                                       "config": {"algorithm": "matmul"}})
    assert (status, document["error"]) == (422, "ApplicabilityError")

    # 404: unrouted path; 400: non-JSON body
    status, _, payload, _ = state.handle("GET", "/nope", None)
    assert status == 404
    status, _, payload, _ = state.handle("POST", "/query", b"{not json")
    assert status == 400

    # only the 422 request ever reached a slot (the shape check fires
    # inside the executor); nothing produced or cached a result
    assert state.admission.admitted == 1
    assert len(state.cache) == 0


# -- metrics -------------------------------------------------------------------


def test_metrics_exposes_prometheus_counters():
    state = ServiceState()
    _register(state, "mm", planted_out_matmul(n=30, out=60))
    state.handle("POST", "/query", _body({"instance": "mm"}))  # miss
    state.handle("POST", "/query", _body({"instance": "mm"}))  # hit
    state.handle("POST", "/query", _body({"instance": "ghost"}))  # 404
    # a fresh cache key (new seed) so the budget check actually runs: 429
    state.handle("POST", "/query", _body({
        "instance": "mm", "config": {"seed": 9}, "load_budget": 1,
    }))

    status, content_type, payload, _ = state.handle("GET", "/metrics", None)
    text = payload.decode("utf-8")
    assert status == 200
    assert content_type.startswith("text/plain; version=0.0.4")
    assert "# TYPE repro_service_requests_total counter" in text
    assert 'repro_service_requests_total{endpoint="query",status="200"} 2' in text
    assert 'repro_service_requests_total{endpoint="query",status="404"} 1' in text
    assert 'repro_service_cache_hits_total{endpoint="query"} 1' in text
    assert 'repro_service_cache_misses_total{endpoint="query"} 2' in text
    assert 'repro_service_executions_total{endpoint="query"} 1' in text
    assert 'repro_service_rejections_total{reason="load-budget"} 1' in text
    assert 'repro_service_errors_total{error="UnknownInstanceError"} 1' in text
    assert "repro_service_cache_entries 1" in text
    assert "repro_service_instances 1" in text
    # the IVM metric family renders even before any view/delta exists
    assert "repro_service_views 0" in text
    assert "# TYPE repro_service_delta_applied_total counter" in text
    assert "# TYPE repro_service_view_refresh_seconds counter" in text
    # execution meters from the shared registry ride along
    assert "repro_last_max_load" in text


# -- materialized views and deltas ---------------------------------------------


def _delta_document(batch) -> dict:
    from repro.io import delta_to_json
    return json.loads(delta_to_json(batch))


def _make_delta():
    from repro.ivm import DeltaBatch, insert
    return DeltaBatch((
        insert("R1", (901, 902), 2),
        insert("R2", (902, 903), 5),
    ))


def test_delta_endpoint_refreshes_views_and_invalidates_precisely():
    from repro.workloads import zipf_matmul

    state = ServiceState()
    _register(state, "m", zipf_matmul(60, 60, 10, seed=3))
    _register(state, "other", zipf_matmul(30, 30, 8, seed=5))
    _query(state, {"instance": "m"})
    _query(state, {"instance": "other"})

    status, _, payload, _ = state.handle(
        "POST", "/views", _body({"name": "v", "instance": "m"}))
    assert status == 200
    created = json.loads(payload)["view"]
    assert created["deltas_applied"] == 0

    status, _, payload, _ = state.handle(
        "POST", "/instances/m/deltas",
        _body({"delta": _delta_document(_make_delta())}))
    assert status == 200
    document = json.loads(payload)
    assert document["changes"] == 2
    assert document["cache_invalidated"] is True
    assert document["generation"] == 2
    [refresh] = document["views_refreshed"]
    assert refresh["view"] == "v"
    assert refresh["runs"] >= 1

    # only the mutated instance's cache entries died
    _, _, _, headers = _query(state, {"instance": "m"})
    assert headers["X-Repro-Cache"] == "miss"
    _, _, _, headers = _query(state, {"instance": "other"})
    assert headers["X-Repro-Cache"] == "hit"

    # the refreshed view's answer is bit-identical to the fresh recompute
    status, _, payload, _ = state.handle("GET", "/views/v", None)
    view_doc = json.loads(payload)["view"]
    _, query_doc, _, _ = _query(state, {"instance": "m"})
    assert view_doc["answer"] == query_doc["answer"]
    assert view_doc["deltas_applied"] == 1
    assert view_doc["report"]["maintenance_load"] >= 1

    # metrics counted the delta and the refresh wall-clock
    _, _, payload, _ = state.handle("GET", "/metrics", None)
    text = payload.decode("utf-8")
    assert 'repro_service_delta_applied_total{instance="m"} 1' in text
    assert "repro_service_views 1" in text
    assert "repro_service_view_refresh_seconds" in text


def test_unsupported_delta_maps_to_422():
    from repro.ivm import DeltaBatch, delete
    from repro.workloads import line_instance
    from repro.semiring import TROPICAL_MIN_PLUS
    from repro.data.query import Instance

    state = ServiceState()
    base = line_instance(3, 30, 8, seed=2)
    tropical = Instance(
        base.query,
        {name: rel for name, rel in base.relations.items()},
        TROPICAL_MIN_PLUS,
    )
    _register(state, "trop", tropical)
    key = next(iter(tropical.relation("R1").tuples))
    status, _, payload, _ = state.handle(
        "POST", "/instances/trop/deltas",
        _body({"delta": _delta_document(DeltaBatch((delete("R1", key),)))}))
    assert status == 422
    assert json.loads(payload)["error"] == "UnsupportedDeltaError"


def test_delta_endpoint_rejects_malformed_documents():
    state = ServiceState()
    _register(state, "m", planted_out_matmul(n=20, out=40))
    status, _, payload, _ = state.handle(
        "POST", "/instances/m/deltas", _body({"delta": {"format": "nope"}}))
    assert status == 400
    status, _, payload, _ = state.handle(
        "POST", "/instances/m/deltas", _body({}))
    assert status == 400
    status, _, _, _ = state.handle(
        "POST", "/instances/ghost/deltas",
        _body({"delta": _delta_document(_make_delta())}))
    assert status == 404


def test_dropping_or_replacing_an_instance_drops_its_views():
    from repro.workloads import zipf_matmul

    state = ServiceState()
    _register(state, "m", zipf_matmul(40, 40, 9, seed=7))
    state.handle("POST", "/views", _body({"name": "v", "instance": "m"}))

    # wholesale replacement with different data leaves no stale view
    _register(state, "m", zipf_matmul(40, 40, 9, seed=8))
    status, _, payload, _ = state.handle("GET", "/views", None)
    assert json.loads(payload)["views"] == []

    state.handle("POST", "/views", _body({"name": "v2", "instance": "m"}))
    status, _, payload, _ = state.handle("DELETE", "/instances/m", None)
    assert "v2" in json.loads(payload)["views_dropped"]
    status, _, _, _ = state.handle("GET", "/views/v2", None)
    assert status == 404


# -- the live HTTP server ------------------------------------------------------


def _http(method: str, url: str, document=None):
    data = _body(document) if document is not None else None
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def test_live_server_round_trip():
    """Sockets, threads, real HTTP: register → query ×2 → metrics → drop."""
    state = ServiceState(max_concurrent=2)
    with ReproServer(state) as server:
        status, _, payload = _http("GET", f"{server.url}/healthz")
        assert status == 200
        assert json.loads(payload)["status"] == "ok"

        instance = line_instance(3, 40, 12, seed=2)
        status, _, payload = _http("POST", f"{server.url}/instances", {
            "name": "line",
            "instance": json.loads(instance_to_json(instance)),
        })
        assert status == 200
        digest = json.loads(payload)["registered"]["digest"]

        request = {"instance": "line", "config": {"p": 4}}
        status1, headers1, cold = _http("POST", f"{server.url}/query", request)
        status2, headers2, warm = _http("POST", f"{server.url}/query", request)
        assert status1 == status2 == 200
        assert headers1["X-Repro-Cache"] == "miss"
        assert headers2["X-Repro-Cache"] == "hit"
        assert warm == cold
        assert json.loads(cold)["digest"] == digest

        status, headers, payload = _http("GET", f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert 'repro_service_cache_hits_total{endpoint="query"} 1' \
            in payload.decode("utf-8")

        status, _, payload = _http("GET", f"{server.url}/instances")
        assert [e["name"] for e in json.loads(payload)["instances"]] == ["line"]

        status, _, _ = _http("DELETE", f"{server.url}/instances/line")
        assert status == 200
        status, _, _ = _http("POST", f"{server.url}/query", request)
        assert status == 404


def test_live_server_concurrent_clients_under_cap():
    state = ServiceState(max_concurrent=2, queue_depth=16)
    with ReproServer(state) as server:
        instance = planted_out_matmul(n=50, out=100)
        _http("POST", f"{server.url}/instances", {
            "name": "mm", "instance": json.loads(instance_to_json(instance)),
        })

        statuses = []
        lock = threading.Lock()

        def client(seed: int) -> None:
            status, _, _ = _http("POST", f"{server.url}/query", {
                "instance": "mm", "config": {"p": 4, "seed": seed},
            })
            with lock:
                statuses.append(status)

        threads = [threading.Thread(target=client, args=(seed,))
                   for seed in range(5)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        assert statuses == [200] * 5
        stats = state.admission.stats()
        assert stats["admitted"] == 5
        assert stats["peak_active"] <= 2
