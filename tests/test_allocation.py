"""Virtual server-range allocation (the paper's "allocate ⌈x/L⌉ servers")."""

import pytest

from repro.core.allocation import RangeAllocation
from repro.mpc import MPCCluster


def test_ranges_are_contiguous_and_sized():
    view = MPCCluster(8).view()
    alloc = RangeAllocation(view, {"a": 10, "b": 25, "c": 1}, load=10)
    assert alloc.width("a") == 1
    assert alloc.width("b") == 3
    assert alloc.width("c") == 1
    assert alloc.virtual_total == 5
    assert "a" in alloc and "z" not in alloc


def test_dest_is_deterministic_and_in_range():
    view = MPCCluster(4).view()
    alloc = RangeAllocation(view, {"t": 40}, load=10)
    dests = {alloc.dest("t", b) for b in range(100)}
    assert dests <= set(range(4))
    assert alloc.dest("t", 5) == alloc.dest("t", 5)


def test_colocation_within_task():
    # Same colocation key → same server; the point of the scheme.
    view = MPCCluster(16).view()
    alloc = RangeAllocation(view, {"x": 100, "y": 100}, load=10)
    assert alloc.dest("x", "k") == alloc.dest("x", "k")
    # Different tasks may map the same key elsewhere.
    destinations = {alloc.dest(task, "k") for task in ("x", "y")}
    assert len(destinations) >= 1  # may coincide after wrap, never errors


def test_all_dests_covers_range():
    view = MPCCluster(4).view()
    alloc = RangeAllocation(view, {"t": 100}, load=10)  # width 10 > p: wraps
    assert alloc.all_dests("t") == [0, 1, 2, 3]
    assert alloc.overlap_factor() >= 2.0


def test_wrap_spreads_over_real_servers():
    view = MPCCluster(4).view()
    alloc = RangeAllocation(view, {i: 12 for i in range(8)}, load=4)
    # 8 tasks × 3 virtual servers = 24 virtual over 4 real: hits them all.
    hit = set()
    for task in range(8):
        hit.update(alloc.all_dests(task))
    assert hit == {0, 1, 2, 3}


def test_load_must_be_positive():
    view = MPCCluster(2).view()
    with pytest.raises(ValueError):
        RangeAllocation(view, {"t": 5}, load=0)


def test_allocation_charges_control_traffic():
    cluster = MPCCluster(4)
    view = cluster.view()
    RangeAllocation(view, {i: 1 for i in range(10)}, load=1)
    assert cluster.report().control_messages >= 10
    assert cluster.report().max_load == 0
