"""Property tests composing primitives into pipelines.

Beyond per-primitive correctness, the algorithms rely on primitives
*composing*: a reduce over a sorted dataset, a semijoin after a
repartition, packing the output of a degree table.  These tests drive
random pipelines against plain-Python oracles.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import Distributed, MPCCluster
from repro.primitives import (
    count_by_key,
    distributed_sort,
    parallel_packing,
    reduce_by_key,
    semijoin,
)

SETTINGS = settings(max_examples=30, deadline=None)

key_values = st.lists(
    st.tuples(st.integers(0, 20), st.integers(1, 5)), max_size=120
)


@SETTINGS
@given(key_values, st.sampled_from([1, 4, 7]))
def test_sort_then_reduce(pairs, p):
    cluster = MPCCluster(p)
    dist = Distributed.from_items(cluster.view(), pairs)
    ordered = distributed_sort(dist, lambda kv: kv)
    reduced = reduce_by_key(
        ordered, lambda kv: kv[0], lambda kv: kv[1], lambda a, b: a + b
    )
    expected = Counter()
    for key, value in pairs:
        expected[key] += value
    assert dict(reduced.collect()) == dict(expected)


@SETTINGS
@given(key_values, st.sets(st.integers(0, 20)))
def test_degree_then_semijoin(pairs, keep_keys):
    cluster = MPCCluster(5)
    view = cluster.view()
    degrees = count_by_key(Distributed.from_items(view, pairs), lambda kv: kv[0])
    keep = Distributed.from_items(view, sorted(keep_keys))
    filtered = semijoin(degrees, keep, lambda entry: entry[0], lambda k: k)
    expected = {
        key: count
        for key, count in Counter(k for k, _v in pairs).items()
        if key in keep_keys
    }
    assert dict(filtered.collect()) == expected


@SETTINGS
@given(key_values)
def test_degrees_then_packing(pairs):
    cluster = MPCCluster(4)
    view = cluster.view()
    degrees = count_by_key(Distributed.from_items(view, pairs), lambda kv: kv[0])
    total = max(1, degrees.total_size and max(c for _k, c in degrees.collect()))
    packed, groups = parallel_packing(degrees, lambda entry: entry[1] / total)
    if degrees.total_size == 0:
        assert groups == 0 or groups == 1
        return
    packed_keys = sorted(key for (key, _c), _g in packed.items())
    assert packed_keys == sorted(k for k, _c in degrees.collect())


@SETTINGS
@given(key_values, st.sampled_from([2, 6]))
def test_repartition_preserves_multiset(pairs, p):
    cluster = MPCCluster(p)
    dist = Distributed.from_items(cluster.view(), pairs)
    routed = dist.repartition(lambda kv: kv[0] % p)
    assert sorted(routed.collect()) == sorted(pairs)
    report = cluster.report()
    assert report.total_communication == len(pairs)


@SETTINGS
@given(key_values)
def test_load_conservation(pairs):
    """Messages sent == messages charged across any pipeline."""
    cluster = MPCCluster(3)
    dist = Distributed.from_items(cluster.view(), pairs)
    routed = dist.repartition(lambda kv: kv[0] % 3)
    routed2 = routed.repartition(lambda kv: kv[1] % 3)
    assert cluster.report().total_communication == 2 * len(pairs)
    assert sorted(routed2.collect()) == sorted(pairs)
