"""Backend equivalence: columnar kernels vs the reference tuple kernels.

The numpy backend is a pure wall-clock optimization — every observable
(answer relations including annotation *types*, cost reports, trace event
streams, fuzz summaries) must be bit-identical to the pytuple reference.
These tests pin that contract at three levels: the codec, the individual
kernels (against the dict/loop folds they replace, including output
*order*), and full ``run_query`` executions across algorithm × query
family × semiring profile, with and without fault injection.
"""

import random

import pytest

from repro.backends.dispatch import (
    AUTO_MIN_TUPLES,
    BACKENDS,
    HAS_NUMPY,
    np,
    resolve_backend,
)
from repro.config import ExecutionConfig
from repro.core.executor import applicable_algorithms, run_query
from repro.mpc import FaultInjector, FaultSchedule, MPCCluster, RecoveryPolicy
from repro.mpc.hashing import hash_to_bucket, hash_to_unit, stable_hash
from repro.obs import RingBufferSink, Tracer
from repro.semiring import COUNTING, REAL, TROPICAL_MIN_PLUS
from repro.workloads import planted_out_matmul
from tests.conftest import (
    GENERAL_TREE_QUERY,
    LINE3_QUERY,
    MATMUL_QUERY,
    SEMIRING_SAMPLERS,
    STAR3_QUERY,
    TWIG_QUERY,
    random_instance,
)

pytestmark = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")

if HAS_NUMPY:
    from repro.backends import kernels
    from repro.backends.columnar import (
        ValueCodec,
        encode_annotations,
        profile_of,
    )


# ------------------------------------------------------- backend resolution


def test_resolve_backend_default_is_pytuple():
    assert resolve_backend(None) == "pytuple"
    assert resolve_backend(None, total_size=10**9) == "pytuple"


def test_resolve_backend_rejects_unknown():
    with pytest.raises(ValueError):
        resolve_backend("fortran")


def test_resolve_backend_auto_thresholds_on_size():
    assert resolve_backend("auto", AUTO_MIN_TUPLES - 1) == "pytuple"
    assert resolve_backend("auto", AUTO_MIN_TUPLES) == "numpy"
    assert resolve_backend("auto", None) == "numpy"


def test_backends_tuple_matches_config_validation():
    for backend in BACKENDS:
        ExecutionConfig(backend=backend)
    with pytest.raises(ValueError):
        ExecutionConfig(backend="fortran")


# ------------------------------------------------------------------- codec


def test_codec_round_trip_preserves_identity():
    codec = ValueCodec()
    values = [3, "x", (1, 2), None, 3, True, 3.5, "x"]
    ids = codec.encode_many(values)
    assert codec.decode_many(ids) == values
    # Same value, same code — interning is stable across calls.
    again = codec.encode_many(values)
    assert ids.tolist() == again.tolist()


def test_codec_hashes_match_scalar_hashing_incrementally():
    codec = ValueCodec()
    first = ["a", "b", 7]
    ids = codec.encode_many(first)
    for salt in (0, 3, 11):
        assert codec.hashes(ids, salt).tolist() == [
            stable_hash(value, salt) for value in first
        ]
    # New values interned *after* a salt's table exists must still hash
    # correctly (the table grows and back-fills lazily).
    more = ["c", "a", (2, 3)]
    more_ids = codec.encode_many(more)
    for salt in (0, 3, 11):
        assert codec.hashes(more_ids, salt).tolist() == [
            stable_hash(value, salt) for value in more
        ]


def test_codec_buckets_and_units_match_scalar():
    codec = ValueCodec()
    values = list(range(50)) + ["k%d" % i for i in range(20)]
    ids = codec.encode_many(values)
    assert codec.buckets(ids, 7, salt=5).tolist() == [
        hash_to_bucket(value, 7, 5) for value in values
    ]
    assert codec.units(ids, salt=2).tolist() == [
        hash_to_unit(value, 2) for value in values
    ]


# ------------------------------------------------- kernels vs dict kernels


def _dict_fold(pairs, combine):
    acc = {}
    for key, value in pairs:
        acc[key] = combine(acc[key], value) if key in acc else value
    return acc


@pytest.mark.parametrize("n,domain", [(40, 7), (3000, 17), (5000, 4000)])
def test_group_reduce_matches_dict_fold_order_and_values(n, domain):
    # n >= 1024 with a dense domain exercises the bincount fast path; the
    # sparse/small cases exercise the argsort path.  Both must reproduce
    # the dict fold exactly, first-occurrence order included.
    rng = random.Random(n)
    ids = np.asarray([rng.randrange(domain) for _ in range(n)], dtype=np.int64)
    values = np.asarray([rng.randint(-9, 9) for _ in range(n)], dtype=np.int64)
    unique, reduced = kernels.group_reduce(ids, values, np.add)
    expected = _dict_fold(zip(ids.tolist(), values.tolist()), lambda a, b: a + b)
    assert unique.tolist() == list(expected)
    assert reduced.tolist() == list(expected.values())


def test_group_reduce_float_min_matches_dict_fold():
    rng = random.Random(1)
    ids = np.asarray([rng.randrange(9) for _ in range(200)], dtype=np.int64)
    values = np.asarray([float(rng.randint(0, 50)) for _ in range(200)])
    unique, reduced = kernels.group_reduce(ids, values, np.minimum)
    expected = _dict_fold(zip(ids.tolist(), values.tolist()), min)
    assert unique.tolist() == list(expected)
    assert reduced.tolist() == list(expected.values())


def test_group_reduce_bincount_guard_rejects_huge_sums():
    # Values near 2^53 make the float64 bincount inexact; the guard must
    # route to the sort path, which stays exact in int64.
    big = (1 << 52) + 1
    ids = np.asarray([0, 1] * 1024, dtype=np.int64)
    values = np.asarray([big, 1] * 1024, dtype=np.int64)
    unique, reduced = kernels.group_reduce(ids, values, np.add)
    assert unique.tolist() == [0, 1]
    assert reduced.tolist() == [1024 * big, 1024]


def test_first_occurrence_unique_matches_fromkeys():
    rng = random.Random(2)
    raw = [rng.randrange(12) for _ in range(300)]
    ids = np.asarray(raw, dtype=np.int64)
    assert kernels.first_occurrence_unique(ids).tolist() == list(dict.fromkeys(raw))


def test_hash_join_replays_nested_probe_loops():
    rng = random.Random(3)
    left = [rng.randrange(8) for _ in range(40)]
    right = [rng.randrange(8) for _ in range(30)]
    l_ids = np.asarray(left, dtype=np.int64)
    r_ids = np.asarray(right, dtype=np.int64)
    l_pos, r_pos = kernels.hash_join(l_ids, r_ids, outer="right")
    expected = [
        (i, j)
        for j, rv in enumerate(right)
        for i, lv in enumerate(left)
        if lv == rv
    ]
    assert list(zip(l_pos.tolist(), r_pos.tolist())) == expected


def test_isin_filter_matches_membership():
    ids = np.asarray([5, 1, 9, 1, 0], dtype=np.int64)
    allowed = np.asarray([1, 9], dtype=np.int64)
    assert kernels.isin_filter(ids, allowed).tolist() == [
        False, True, True, True, False
    ]


def test_combine_split_round_trip():
    cols = [
        np.asarray([0, 3, 1, 2], dtype=np.int64),
        np.asarray([2, 1, 0, 3], dtype=np.int64),
    ]
    packed, base = kernels.combine_columns(cols, base=4, size=4)
    back = kernels.split_codes(packed, base, 2)
    assert [c.tolist() for c in back] == [c.tolist() for c in cols]
    # Zero columns pack to the constant empty-tuple key.
    packed0, _ = kernels.combine_columns([], base=4, size=3)
    assert packed0.tolist() == [0, 0, 0]


def test_select_splitters_matches_python_slicing():
    samples = np.arange(100, dtype=np.int64)
    for p in (2, 3, 7, 64, 200):
        step = max(1, 100 // p)
        assert kernels.select_splitters(samples, p).tolist() == \
            samples.tolist()[step::step][: p - 1]


# ------------------------------------------------------- annotation coding


def test_encode_annotations_counting_profile():
    profile = profile_of(COUNTING)
    assert encode_annotations([1, 2, 3], profile).tolist() == [1, 2, 3]
    assert encode_annotations([], profile).tolist() == []
    assert encode_annotations([1, True, 2], profile) is None  # bools never coerce
    assert encode_annotations([1, 2.0], profile) is None
    assert encode_annotations([1, 1 << 40], profile) is None  # over _INT_LIMIT
    assert encode_annotations([1, -(1 << 80)], profile) is None  # over int64


def test_encode_annotations_number_profile():
    profile = profile_of(TROPICAL_MIN_PLUS)
    assert encode_annotations([1.5, 2.0], profile).dtype == np.float64
    assert encode_annotations([1, 2], profile).dtype == np.int64
    assert encode_annotations([1, 2.0], profile) is None  # mixed batch
    assert encode_annotations([1.0, float("nan")], profile) is None
    assert encode_annotations([True], profile) is None


def test_real_semiring_has_no_profile():
    # Float ⊕=+ is order-sensitive; it must never vectorize.
    assert profile_of(REAL) is None


# ------------------------------------- run_query equivalence across backends


def _exact_tuples(relation):
    """Annotation values *and their types* — True and 1 must not conflate."""
    return {values: (type(ann), ann) for values, ann in relation.tuples.items()}


def _run(instance, algorithm, backend, faults=None):
    ring = RingBufferSink()
    cluster = MPCCluster(
        4, tracer=Tracer([ring]), faults=faults, backend=backend
    )
    result = run_query(instance, cluster=cluster, algorithm=algorithm)
    return result, ring.events


QUERY_SHAPES = [
    ("matmul", MATMUL_QUERY),
    ("line", LINE3_QUERY),
    ("star", STAR3_QUERY),
    ("twig", TWIG_QUERY),
    ("tree", GENERAL_TREE_QUERY),
]


@pytest.mark.parametrize("shape_name,query", QUERY_SHAPES)
@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS,
    ids=[s.name for s, _ in SEMIRING_SAMPLERS],
)
def test_every_algorithm_is_backend_invariant(shape_name, query, semiring, sampler):
    rng = random.Random(hash((shape_name, semiring.name)) & 0xFFFF)
    instance = random_instance(query, 25, 6, rng, semiring, sampler)
    for algorithm in applicable_algorithms(query):
        reference, ref_events = _run(instance, algorithm, "pytuple")
        vectorized, vec_events = _run(instance, algorithm, "numpy")
        assert _exact_tuples(reference.relation) == _exact_tuples(
            vectorized.relation
        ), (shape_name, semiring.name, algorithm)
        assert reference.report.to_dict() == vectorized.report.to_dict(), (
            shape_name, semiring.name, algorithm,
        )
        assert ref_events == vec_events, (shape_name, semiring.name, algorithm)


def test_real_semiring_runs_identically_via_fallback():
    # REAL has no annotation profile: the numpy backend must fall back to
    # the tuple kernels wherever annotations flow, and still agree.
    rng = random.Random(9)
    instance = random_instance(
        MATMUL_QUERY, 30, 5, rng, REAL, lambda r: r.random()
    )
    reference, ref_events = _run(instance, "auto", "pytuple")
    vectorized, vec_events = _run(instance, "auto", "numpy")
    assert _exact_tuples(reference.relation) == _exact_tuples(vectorized.relation)
    assert reference.report.to_dict() == vectorized.report.to_dict()
    assert ref_events == vec_events


def test_backend_invariant_under_recoverable_faults():
    # Fault injection forces the tuple kernels (numpy_enabled is False with
    # an injector attached), so a numpy-configured faulted run must equal
    # the pytuple faulted run *exactly* — recovery metering included.
    instance = planted_out_matmul(n=60, out=240)
    clean_cluster = MPCCluster(4)
    clean = run_query(instance, cluster=clean_cluster, algorithm="matmul")
    cells = sorted(
        (r, s)
        for r, row in clean_cluster.tracker.load_cells().items()
        for s, count in row.items() if count > 0
    )
    schedule = FaultSchedule.random(seed=3, cells=cells, count=4)

    def faulted_run(backend):
        injector = FaultInjector(schedule, RecoveryPolicy(spares=4))
        return _run(instance, "matmul", backend, faults=injector)

    reference, ref_events = faulted_run("pytuple")
    vectorized, vec_events = faulted_run("numpy")
    assert _exact_tuples(reference.relation) == _exact_tuples(vectorized.relation)
    assert reference.report.to_dict() == vectorized.report.to_dict()
    assert ref_events == vec_events
    assert reference.relation.tuples == clean.relation.tuples


def test_executor_resolves_auto_backend_by_size():
    small = planted_out_matmul(n=20, out=40)
    result = run_query(small, config=ExecutionConfig(p=4, backend="auto"))
    # Below the threshold auto resolves to pytuple; the answer is the same
    # either way, so pin the resolution itself at the cluster level.
    cluster = ExecutionConfig(p=4, backend="auto").make_cluster(
        small.total_size
    )
    assert cluster.backend == "pytuple"
    big_cluster = ExecutionConfig(p=4, backend="auto").make_cluster(
        AUTO_MIN_TUPLES * 2
    )
    assert big_cluster.backend == "numpy"
    assert result.out_size == len(result.relation)
