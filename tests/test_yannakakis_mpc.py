"""Distributed Yannakakis baseline (§1.4) against the RAM oracle."""

import random

import pytest

from repro.core.yannakakis_mpc import yannakakis_mpc
from repro.data import Instance, Relation, TreeQuery
from repro.mpc import MPCCluster
from repro.ram import evaluate, run_yannakakis
from repro.semiring import COUNTING
from tests.conftest import (
    GENERAL_TREE_QUERY,
    LINE3_QUERY,
    MATMUL_QUERY,
    SEMIRING_SAMPLERS,
    STAR3_QUERY,
    TWIG_QUERY,
    canonicalize,
    random_instance,
)

ALL_QUERIES = [MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, TWIG_QUERY, GENERAL_TREE_QUERY]

_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.classify())
@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS, ids=lambda x: getattr(x, "name", "")
)
def test_baseline_matches_oracle(query, semiring, sampler):
    rng = random.Random(hash((query.classify(), getattr(semiring, "name", ""))) & 0xFFFF)
    instance = random_instance(query, 60, 7, rng, semiring, sampler)
    cluster = MPCCluster(8, backend=_BACKEND)
    got = yannakakis_mpc(instance, cluster.view())
    want = evaluate(instance)
    schema = tuple(sorted(query.output))
    assert canonicalize(got, schema, semiring).tuples == canonicalize(
        want, schema, semiring
    ).tuples


@pytest.mark.parametrize("p", [1, 2, 5, 16])
def test_baseline_any_cluster_size(p):
    rng = random.Random(p * 31)
    instance = random_instance(
        LINE3_QUERY, 70, 9, rng, COUNTING, lambda r: r.randint(1, 3)
    )
    cluster = MPCCluster(p, backend=_BACKEND)
    got = yannakakis_mpc(instance, cluster.view())
    assert got.same_contents(evaluate(instance))


def test_baseline_empty_result():
    r1 = Relation("R1", ("A", "B"), [((0, 0), 1)])
    r2 = Relation("R2", ("B", "C"), [((1, 1), 1)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    cluster = MPCCluster(4, backend=_BACKEND)
    got = yannakakis_mpc(instance, cluster.view())
    assert len(got) == 0


def test_baseline_single_relation_query():
    query = TreeQuery((("R", ("A", "B")),), frozenset({"A"}))
    relation = Relation("R", ("A", "B"), [((0, 0), 2), ((0, 1), 3), ((1, 0), 4)])
    instance = Instance(query, {"R": relation}, COUNTING)
    cluster = MPCCluster(4, backend=_BACKEND)
    got = yannakakis_mpc(instance, cluster.view())
    assert got.tuples == {(0,): 5, (1,): 4}


def test_baseline_load_tracks_intermediate_size():
    # The baseline's load is Θ(J/p): a high-J instance must load ≈ J/p.
    n = 40
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    _oracle, j = run_yannakakis(instance)
    p = 8
    cluster = MPCCluster(p, backend=_BACKEND)
    yannakakis_mpc(instance, cluster.view())
    load = cluster.report().max_load
    assert j == n * n
    assert load >= j / p / 8  # within a generous constant of J/p
    assert load <= 8 * j / p + instance.total_size


def test_baseline_rounds_constant_in_data_size():
    rounds = []
    for tuples in (30, 120):
        rng = random.Random(tuples)
        instance = random_instance(
            STAR3_QUERY, tuples, 8, rng, COUNTING, lambda r: 1
        )
        cluster = MPCCluster(8, backend=_BACKEND)
        yannakakis_mpc(instance, cluster.view())
        rounds.append(cluster.report().rounds)
    assert rounds[0] == rounds[1]  # rounds depend on the query, not the data
