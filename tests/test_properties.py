"""Property-based integration tests: for *random* tree queries and random
instances, every MPC algorithm must agree with the sequential oracle.

This is the suite's strongest invariant: it draws the query shape, the
output attributes, the data, and the cluster size, and checks
``run_query(auto) == run_query(yannakakis) == evaluate`` exactly —
annotations included — over both an exact and an idempotent semiring.
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import run_query
from repro.data import Instance, Relation, TreeQuery
from repro.ram import evaluate
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def tree_queries(draw, max_attrs=6):
    """A uniformly random attribute tree with a random output set."""
    m = draw(st.integers(min_value=2, max_value=max_attrs))
    attrs = [f"X{i}" for i in range(m)]
    relations = []
    for i in range(1, m):
        parent = attrs[draw(st.integers(min_value=0, max_value=i - 1))]
        relations.append((f"R{i}", (parent, attrs[i])))
    subset = draw(
        st.sets(st.sampled_from(attrs), min_size=0, max_size=m)
    )
    return TreeQuery(tuple(relations), frozenset(subset))


def _random_instance(query, seed, semiring, weight_fn, tuples=14, domain=4):
    rng = random.Random(seed)
    relations = {}
    for name, attrs in query.relations:
        relation = Relation(name, attrs)
        seen = set()
        attempts = 0
        while len(seen) < tuples and attempts < 40 * tuples:
            attempts += 1
            entry = (rng.randrange(domain), rng.randrange(domain))
            if entry not in seen:
                seen.add(entry)
                relation.add(entry, weight_fn(rng))
        relations[name] = relation
    return Instance(query, relations, semiring)


@SETTINGS
@given(tree_queries(), st.integers(0, 10_000), st.sampled_from([1, 3, 8]))
def test_auto_matches_oracle_counting(query, seed, p):
    instance = _random_instance(
        query, seed, COUNTING, lambda rng: rng.randint(1, 4)
    )
    want = evaluate(instance)
    result = run_query(instance, p=p)
    assert result.relation.tuples == want.tuples


@SETTINGS
@given(tree_queries(), st.integers(0, 10_000), st.sampled_from([2, 5]))
def test_auto_matches_oracle_tropical(query, seed, p):
    instance = _random_instance(
        query, seed, TROPICAL_MIN_PLUS, lambda rng: float(rng.randint(0, 9))
    )
    want = evaluate(instance)
    result = run_query(instance, p=p)
    assert result.relation.tuples == want.tuples


@SETTINGS
@given(tree_queries(max_attrs=5), st.integers(0, 10_000))
def test_baseline_matches_oracle(query, seed):
    instance = _random_instance(
        query, seed, COUNTING, lambda rng: rng.randint(1, 3)
    )
    want = evaluate(instance)
    result = run_query(instance, p=4, algorithm="yannakakis")
    assert result.relation.tuples == want.tuples


@SETTINGS
@given(tree_queries(max_attrs=5), st.integers(0, 10_000))
def test_load_accounting_invariants(query, seed):
    instance = _random_instance(
        query, seed, COUNTING, lambda rng: 1
    )
    result = run_query(instance, p=4)
    report = result.report
    assert report.max_load >= 0
    assert report.total_communication >= report.max_load
    assert report.rounds >= 0
    # The sum of per-round maxima dominates nothing smaller than max_load.
    assert report.max_load <= report.total_communication


@SETTINGS
@given(tree_queries(max_attrs=4), st.integers(0, 10_000))
def test_auto_matches_oracle_polynomial_provenance(query, seed):
    """Provenance polynomials ride through every algorithm unchanged."""
    from repro.semiring import POLYNOMIAL, monomial

    rng = random.Random(seed)
    counter = [0]

    def fresh_variable(_rng):
        counter[0] += 1
        return monomial(f"t{counter[0]}")

    instance = _random_instance(
        query, seed, POLYNOMIAL, lambda r: fresh_variable(r), tuples=8, domain=3
    )
    want = evaluate(instance)
    result = run_query(instance, p=3)
    assert result.relation.tuples == want.tuples
