"""Fault injection & recovery (src/repro/mpc/faults.py, recovery.py).

Unit-level checks of the fault model: schedule serialization and seeding,
per-kind recovery semantics and their exact charges under the ``recovery``
tag, unrecoverable schedules failing loudly naming the round, and the
zero-overhead guarantee — a cluster without faults takes the ``None`` fast
path and its reports serialize without any recovery fields.
"""

import json

import pytest

from repro.core.executor import run_query
from repro.mpc import (
    FAULT_KINDS,
    AllocationError,
    CheckpointStore,
    Fault,
    FaultError,
    FaultInjector,
    FaultSchedule,
    MPCCluster,
    RecoveryManager,
    RecoveryPolicy,
    UnrecoverableFaultError,
)
from repro.mpc.faults import as_injector
from repro.mpc.stats import CostReport
from repro.obs import FAULT_OPS, LOAD_OPS, RingBufferSink, Tracer
from repro.workloads import planted_out_matmul


# ------------------------------------------------------------ schedule data


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault("meteor", 0, 0)
    with pytest.raises(ValueError):
        Fault("crash", -1, 0)
    with pytest.raises(ValueError):
        Fault("straggler", 0, 0)  # needs delay >= 1
    Fault("straggler", 0, 0, delay=2)


def test_fault_dict_round_trip():
    for fault in (Fault("crash", 3, 1), Fault("straggler", 0, 2, delay=2)):
        assert Fault.from_dict(fault.to_dict()) == fault
    assert "delay" not in Fault("drop", 1, 0).to_dict()


def test_schedule_dict_round_trip():
    schedule = FaultSchedule(
        [Fault("drop", 1, 0), Fault("duplicate", 2, 3)]
    )
    rebuilt = FaultSchedule.from_dict(
        json.loads(json.dumps(schedule.to_dict()))
    )
    assert rebuilt.faults == schedule.faults
    assert len(rebuilt) == 2


def test_random_schedule_is_seed_deterministic():
    cells = [(r, s) for r in range(4) for s in range(4)]
    first = FaultSchedule.random(seed=7, cells=cells, count=3)
    second = FaultSchedule.random(seed=7, cells=cells, count=3)
    assert first.faults == second.faults
    assert len(first) == 3
    assert all(f.kind in FAULT_KINDS for f in first)
    # Sampling is without replacement, over the given cells.
    coords = [(f.round, f.server) for f in first]
    assert len(set(coords)) == 3 and set(coords) <= set(cells)
    assert FaultSchedule.random(seed=8, cells=cells, count=3).faults != first.faults


def test_random_schedule_degenerate_inputs():
    assert len(FaultSchedule.random(seed=0, cells=[], count=3)) == 0
    assert len(FaultSchedule.random(seed=0, cells=[(0, 0)], count=0)) == 0


def test_as_injector_coercion():
    schedule = FaultSchedule([Fault("drop", 0, 0)])
    injector = FaultInjector(schedule, RecoveryPolicy(spares=5))
    assert as_injector(injector) is injector
    assert as_injector(schedule).schedule is schedule
    with pytest.raises(TypeError):
        as_injector([Fault("drop", 0, 0)])


# -------------------------------------------------------- per-kind recovery


def _faulted_exchange(fault, policy=None, p=3, items=(2, 1, 0)):
    """One exchange delivering ``items[i]`` to server i under ``fault``."""
    injector = FaultInjector(FaultSchedule([fault]), policy)
    cluster = MPCCluster(p, faults=injector)
    view = cluster.view()
    outbox = [(dest, f"m{dest}{k}") for dest, n in enumerate(items)
              for k in range(n)]
    inboxes = view.exchange([outbox] + [[] for _ in range(p - 1)])
    return cluster, view, injector, inboxes


def test_drop_retransmits_next_round():
    cluster, view, injector, inboxes = _faulted_exchange(Fault("drop", 0, 0))
    assert [len(box) for box in inboxes] == [2, 1, 0]  # delivery restored
    assert view.round == 2  # base round + 1 retransmission round
    report = cluster.report()
    assert report.recovery_communication == 2  # the retransmitted items
    assert report.recovery_rounds == 1
    assert injector.fired == [Fault("drop", 0, 0)]


def test_duplicate_charges_items_but_no_round():
    cluster, view, injector, _ = _faulted_exchange(Fault("duplicate", 0, 1))
    assert view.round == 1
    report = cluster.report()
    assert report.recovery_communication == 1  # the discarded copy
    assert report.recovery_rounds == 0


def test_straggler_stalls_by_its_delay():
    cluster, view, injector, _ = _faulted_exchange(
        Fault("straggler", 0, 2, delay=3)
    )
    assert view.round == 4  # 1 base + 3 stalled
    report = cluster.report()
    assert report.recovery_rounds == 3
    assert report.recovery_communication == 0


def test_crash_restores_checkpoint_and_replays():
    injector = FaultInjector(
        FaultSchedule([Fault("crash", 1, 0)]), RecoveryPolicy(spares=1)
    )
    cluster = MPCCluster(2, faults=injector)
    view = cluster.view()
    view.exchange([[(0, "a"), (0, "b"), (1, "c")], []])  # round 0: state builds
    view.exchange([[(0, "d")], []])  # round 1: crash fires here
    report = cluster.report()
    # Restore = 2 checkpointed items, replay = 1 in-transit item.
    assert report.recovery_communication == 3
    assert report.recovery_rounds == 1
    assert injector.recovery.spares_left == 0
    assert view.round == 3


def test_moot_faults_never_fire():
    # Drop/duplicate against a server receiving nothing, and any fault at
    # coordinates where no delivery happens, are silent no-ops.
    cluster, view, injector, _ = _faulted_exchange(Fault("drop", 0, 2))
    assert injector.fired == []
    assert view.round == 1
    assert cluster.report().recovery_communication == 0

    injector = FaultInjector(FaultSchedule([Fault("crash", 9, 0)]))
    cluster = MPCCluster(2, faults=injector)
    cluster.view().exchange([[(0, "x")], []])
    assert injector.fired == []


def test_faults_fire_on_broadcast_and_each_fires_once():
    injector = FaultInjector(FaultSchedule([Fault("duplicate", 0, 1)]))
    cluster = MPCCluster(3, faults=injector)
    view = cluster.view()
    view.broadcast([["x", "y"], [], []])
    view.broadcast([["z"], [], []])  # same coordinates never re-fire
    assert injector.fired == [Fault("duplicate", 0, 1)]
    assert cluster.report().recovery_communication == 2


# ------------------------------------------------------ unrecoverable cases


def test_crash_without_spares_names_the_round():
    with pytest.raises(UnrecoverableFaultError) as info:
        _faulted_exchange(Fault("crash", 0, 0), RecoveryPolicy(spares=0))
    error = info.value
    assert error.kind == "crash" and error.round == 0 and error.server == 0
    assert "round 0" in str(error)
    assert isinstance(error, FaultError)


def test_crash_without_checkpointing_is_unrecoverable():
    with pytest.raises(UnrecoverableFaultError) as info:
        _faulted_exchange(
            Fault("crash", 0, 0), RecoveryPolicy(checkpoint=False)
        )
    assert "checkpoint" in str(info.value)


def test_drop_without_retries_is_unrecoverable():
    with pytest.raises(UnrecoverableFaultError) as info:
        _faulted_exchange(Fault("drop", 0, 0), RecoveryPolicy(max_retries=0))
    assert info.value.round == 0 and "round 0" in str(info.value)


def test_unknown_kind_rejected_by_recovery():
    manager = RecoveryManager(RecoveryPolicy())

    class Bogus:
        kind = "meteor"
        delay = 0

    cluster = MPCCluster(1)
    with pytest.raises(ValueError):
        manager.recover(Bogus(), cluster.view(), 0, 0, 1)


# --------------------------------------------------------------- checkpoints


def test_checkpoint_store_accumulates_state():
    store = CheckpointStore()
    assert store.last_round == -1 and store.state_size(0) == 0
    store.extend(0, 3)
    store.extend(0, 2)
    store.extend(1, 0)  # zero deliveries do not allocate
    store.mark_round(4)
    assert store.state_size(0) == 5 and store.state_size(1) == 0
    assert store.last_round == 4 and store.total_items == 5


# -------------------------------------------------- observability of faults


def test_fault_events_are_emitted_and_tagged():
    ring = RingBufferSink()
    injector = FaultInjector(FaultSchedule([Fault("drop", 0, 0)]))
    cluster = MPCCluster(2, tracer=Tracer([ring]), faults=injector)
    cluster.view().exchange([[(0, "a")], []])
    ops = [event.op for event in ring.events]
    assert ops == ["exchange", "fault", "recovery", "checkpoint"]
    fault_event = ring.events[1]
    assert fault_event.detail == {
        "kind": "drop", "server": 0, "in_transit": 1, "delay": 0,
    }
    recovery_event = ring.events[2]
    assert recovery_event.detail["items"] == 1
    assert recovery_event.detail["extra_rounds"] == 1
    assert ring.events[3].detail == {"state_items": 1}
    # Fault-model ops are disjoint from the load-bearing ops and carry no
    # received counts, so trace aggregation never double-counts them.
    assert FAULT_OPS == {"fault", "recovery", "checkpoint"}
    assert not (FAULT_OPS & LOAD_OPS)
    assert all(ring.events[i].received == () for i in (1, 2, 3))


# -------------------------------------------- zero-overhead / base metering


def test_faultless_cluster_has_no_injector():
    cluster = MPCCluster(4)
    assert cluster.faults is None
    report = cluster.report()
    assert report.recovery_load == 0 and report.recovery_rounds == 0


def test_report_json_identical_without_faults():
    # The recovery fields only appear in serialized reports when nonzero,
    # so fault-free JSON artifacts are bit-identical to a pre-fault build.
    clean = CostReport(max_load=5, total_communication=9, rounds=2,
                       control_messages=0, elementary_products=0)
    assert not any(key.startswith("recovery") for key in clean.to_dict())
    dirty = CostReport(max_load=5, total_communication=9, rounds=2,
                       control_messages=0, elementary_products=0,
                       recovery_load=1, recovery_communication=2,
                       recovery_rounds=1)
    assert dirty.to_dict()["recovery_communication"] == 2
    assert CostReport.from_dict(dirty.to_dict()) == dirty
    assert CostReport.from_dict(clean.to_dict()) == clean


def test_base_meters_unchanged_under_recoverable_faults():
    instance = planted_out_matmul(n=60, out=240)
    clean_cluster = MPCCluster(4)
    clean = run_query(instance, cluster=clean_cluster, algorithm="matmul")

    cells = sorted(
        (r, s)
        for r, row in clean_cluster.tracker.load_cells().items()
        for s, count in row.items() if count > 0
    )
    schedule = FaultSchedule.random(seed=3, cells=cells, count=4)
    assert len(schedule) == 4
    injector = FaultInjector(schedule, RecoveryPolicy(spares=4))
    faulted = run_query(
        instance, cluster=MPCCluster(4, faults=injector), algorithm="matmul"
    )

    assert faulted.relation.tuples == clean.relation.tuples
    assert faulted.report.max_load == clean.report.max_load
    assert faulted.report.total_communication == clean.report.total_communication
    assert faulted.report.recovery_load >= 0
    assert (clean.report.rounds
            <= faulted.report.rounds
            <= clean.report.rounds + faulted.report.recovery_rounds)


def test_recovery_meters_reject_negative_charges():
    cluster = MPCCluster(2)
    with pytest.raises(ValueError):
        cluster.tracker.record_recovery_receive(0, 0, -1)
    with pytest.raises(AllocationError):
        cluster.view().subview([])
