"""Star queries (§5) against the RAM oracle."""

import random

import pytest

from repro.core.star import star_query
from repro.data import DistRelation, Instance, Relation, TreeQuery
from repro.mpc import MPCCluster
from repro.ram import evaluate
from repro.semiring import COUNTING, WHY_PROVENANCE
from repro.workloads import planted_out_star, star_instance
from tests.conftest import SEMIRING_SAMPLERS, canonicalize

_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


def _run(instance, p=8):
    query = instance.query
    cluster = MPCCluster(p, backend=_BACKEND)
    view = cluster.view()
    centre = next(
        a for a in query.attributes
        if all(a in attrs for _n, attrs in query.relations)
    )
    arm_attrs = []
    rels = []
    for name, attrs in query.relations:
        arm_attrs.append(attrs[0] if attrs[1] == centre else attrs[1])
        rels.append(DistRelation.load(view, instance.relation(name), instance.semiring))
    result = star_query(rels, arm_attrs, centre, instance.semiring)
    return cluster, result


def _assert_matches(instance, result):
    want = evaluate(instance)
    schema = tuple(sorted(instance.query.output))
    got = canonicalize(
        result.collect("star", instance.semiring), schema, instance.semiring
    )
    assert got.tuples == want.tuples


@pytest.mark.parametrize("arms", [2, 3, 4])
@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS[:3], ids=lambda x: getattr(x, "name", "")
)
def test_star_arms_and_semirings(arms, semiring, sampler):
    rng = random.Random(arms * 7)
    instance = star_instance(
        arms, tuples=45, arm_domain=12, centre_domain=6, seed=arms,
        semiring=semiring, weight_fn=lambda: sampler(rng),
    )
    cluster, result = _run(instance)
    _assert_matches(instance, result)


@pytest.mark.parametrize("p", [1, 4, 16])
def test_star_any_cluster_size(p):
    instance = star_instance(3, tuples=50, arm_domain=10, centre_domain=5, seed=p)
    cluster, result = _run(instance, p)
    _assert_matches(instance, result)


def test_star_planted_out_family():
    instance = planted_out_star(arms=3, n=60, out=4000)
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_star_with_skewed_centre_degrees():
    # One centre value dominates each relation differently, exercising
    # several permutation buckets at once.
    relations = {}
    specs = []
    for arm in range(3):
        name = f"R{arm+1}"
        specs.append((name, (f"A{arm+1}", "B")))
        relation = Relation(name, (f"A{arm+1}", "B"))
        fat = 30 // (arm + 1)
        for i in range(fat):
            relation.add((i, 0), 1)
        for i in range(10):
            relation.add((100 + i, 1 + (i + arm) % 3), 1)
        relations[name] = relation
    query = TreeQuery(tuple(specs), frozenset({"A1", "A2", "A3"}))
    instance = Instance(query, relations, COUNTING)
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_star_provenance_semiring():
    from repro.semiring import monomial  # noqa: F401  (doc pointer)

    def witness(tag):
        return frozenset({frozenset({tag})})

    relations = {}
    specs = []
    for arm in range(3):
        name = f"R{arm+1}"
        specs.append((name, (f"A{arm+1}", "B")))
        relation = Relation(name, (f"A{arm+1}", "B"))
        for i in range(6):
            relation.add((i, i % 2), witness(f"{name}:{i}"))
        relations[name] = relation
    query = TreeQuery(tuple(specs), frozenset({"A1", "A2", "A3"}))
    instance = Instance(query, relations, WHY_PROVENANCE)
    cluster, result = _run(instance, p=4)
    _assert_matches(instance, result)


def test_star_requires_two_relations():
    view = MPCCluster(2).view()
    rel = DistRelation.load(view, Relation("R", ("A", "B"), [((0, 0), 1)]))
    with pytest.raises(ValueError):
        star_query([rel], ["A"], "B", COUNTING)


def test_star_empty_bucket_handling():
    # Disjoint centre domains: everything dangles away.
    r1 = Relation("R1", ("A1", "B"), [((0, 0), 1)])
    r2 = Relation("R2", ("A2", "B"), [((0, 1), 1)])
    r3 = Relation("R3", ("A3", "B"), [((0, 0), 1)])
    query = TreeQuery(
        (("R1", ("A1", "B")), ("R2", ("A2", "B")), ("R3", ("A3", "B"))),
        frozenset({"A1", "A2", "A3"}),
    )
    instance = Instance(query, {"R1": r1, "R2": r2, "R3": r3}, COUNTING)
    cluster, result = _run(instance, p=4)
    assert result.data.total_size == 0
