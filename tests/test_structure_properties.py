"""Hypothesis property tests for the §7 structural operations.

For *random* tree queries with random outputs: reduction must leave only
output leaves, twig decomposition must produce genuine twigs covering all
relations exactly once, and skeletons (when defined) must partition the
twig into branches + residual.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import TreeQuery, reduction_plan, skeleton_info, twig_decomposition

SETTINGS = settings(max_examples=120, deadline=None)


@st.composite
def tree_queries(draw, max_attrs=9):
    m = draw(st.integers(min_value=2, max_value=max_attrs))
    attrs = [f"X{i}" for i in range(m)]
    relations = []
    for i in range(1, m):
        parent = attrs[draw(st.integers(min_value=0, max_value=i - 1))]
        relations.append((f"R{i}", (parent, attrs[i])))
    outputs = draw(st.sets(st.sampled_from(attrs)))
    return TreeQuery(tuple(relations), frozenset(outputs))


@SETTINGS
@given(tree_queries())
def test_reduction_leaves_are_output(query):
    steps, reduced = reduction_plan(query)
    if reduced.n > 1:
        for leaf in reduced.leaves:
            assert leaf in reduced.output
    # Steps only ever absorb non-output attributes.
    for step in steps:
        assert step.aggregated_attr not in query.output
    # Output attributes survive the reduction.
    assert reduced.output == query.output & reduced.attributes
    if query.output:
        assert query.output <= set(reduced.attributes) or reduced.n == 1


@SETTINGS
@given(tree_queries())
def test_reduction_is_idempotent(query):
    _steps, reduced = reduction_plan(query)
    again_steps, again = reduction_plan(reduced)
    if reduced.n > 1:
        assert again_steps == []
        assert again == reduced


@SETTINGS
@given(tree_queries())
def test_twig_decomposition_partitions_relations(query):
    _steps, reduced = reduction_plan(query)
    if reduced.n == 1:
        return
    twigs = twig_decomposition(reduced)
    names = [name for twig in twigs for name, _ in twig.relations]
    assert sorted(names) == sorted(name for name, _ in reduced.relations)
    for twig in twigs:
        assert twig.is_twig(), (twig.relations, twig.output)
    # Consecutive twigs share a cut attribute (reassembly order).
    seen = set(twigs[0].attributes)
    for twig in twigs[1:]:
        assert seen & set(twig.attributes)
        seen |= set(twig.attributes)


@SETTINGS
@given(tree_queries())
def test_skeleton_partitions_twig(query):
    _steps, reduced = reduction_plan(query)
    if reduced.n == 1:
        return
    for twig in twig_decomposition(reduced):
        if twig.is_star_like():
            continue
        info = skeleton_info(twig)
        branch_names = {
            name for branch in info.branches.values() for name, _ in branch.relations
        }
        residual_names = {name for name, _ in info.residual_relations}
        all_names = {name for name, _ in twig.relations}
        assert branch_names | residual_names == all_names
        assert not branch_names & residual_names
        assert len(info.branch_roots) >= 2
        for root in info.branch_roots:
            branch = info.branches[root]
            assert root in branch.attributes
            # Branch outputs are exactly its share of the twig's outputs.
            assert branch.output == frozenset(branch.attributes) & twig.output
