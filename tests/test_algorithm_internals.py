"""White-box tests of algorithm building blocks (§4–§7 internals)."""

import random

import pytest

from repro.core.arms import extract_arms
from repro.core.matmul_output_sensitive import linear_sparse_mm
from repro.core.star import binarize, join_group_on_centre, unpack_pairs
from repro.core.starlike import arm_reach_estimates, shrink_arm
from repro.core.tree import _Context, _branch_x_table, _estimate_out_tree
from repro.data import DistRelation, Instance, Relation, TreeQuery
from repro.data.treeops import skeleton_info
from repro.mpc import MPCCluster
from repro.ram import evaluate
from repro.semiring import COUNTING
from tests.conftest import TWIG_QUERY, random_instance


def test_shrink_arm_matches_line_oracle():
    # Arm B — C — A: shrinking must compute Σ_C R1(B,C) ⋈ R2(C,A).
    rng = random.Random(1)
    query = TreeQuery(
        (("R1", ("B", "C")), ("R2", ("C", "A"))), frozenset({"B", "A"})
    )
    instance = random_instance(query, 40, 8, rng, COUNTING, lambda r: r.randint(1, 4))
    cluster = MPCCluster(6)
    view = cluster.view()
    relations = {
        name: DistRelation.load(view, instance.relation(name))
        for name, _ in query.relations
    }
    arm = [("R1", "B", "C"), ("R2", "C", "A")]
    shrunk = shrink_arm(arm, relations, COUNTING, salt=0)
    assert shrunk.schema == ("B", "A")
    want = evaluate(instance)  # schema sorted: (A, B)
    got = {(b, a): w for (b, a), w in shrunk.data.collect()}
    assert got == {(b, a): w for (a, b), w in want.tuples.items()}


def test_join_group_on_centre_is_full_join():
    r1 = Relation("R1", ("A1", "B"), [((0, 0), 2), ((1, 0), 3), ((2, 1), 5)])
    r2 = Relation("R2", ("A2", "B"), [((7, 0), 11), ((8, 1), 13)])
    cluster = MPCCluster(4)
    view = cluster.view()
    joined, attrs = join_group_on_centre(
        [DistRelation.load(view, r1), DistRelation.load(view, r2)],
        ["A1", "A2"], "B", COUNTING, salt=0,
    )
    assert attrs == ("A1", "A2")
    assert joined.schema == ("A1", "A2", "B")
    got = dict(joined.data.collect())
    assert got == {
        (0, 7, 0): 22, (1, 7, 0): 33, (2, 8, 1): 65,
    }


def test_binarize_unpack_roundtrip():
    relation = Relation(
        "R", ("A1", "A2", "B"), [((0, 7, 0), 22), ((2, 8, 1), 65)]
    )
    cluster = MPCCluster(2)
    dist = DistRelation.load(cluster.view(), relation)
    combined = binarize(dist, ("A1", "A2"), "__c", "B")
    assert combined.schema == ("__c", "B")
    assert dict(combined.data.collect()) == {
        ((0, 7), 0): 22, ((2, 8), 1): 65,
    }
    # unpack a fake matmul result pairing combined columns.
    product = DistRelation(
        ("__l", "__r"),
        combined.data.map_items(lambda item: ((item[0][0], ("z",)), item[1])),
    )
    flat = unpack_pairs(product, ("A1", "A2"), ("Z",), ("A1", "A2", "Z"))
    assert dict(flat.collect()) == {(0, 7, "z"): 22, (2, 8, "z"): 65}


def test_arm_reach_estimates_single_relation_exact():
    relation = Relation(
        "R", ("B", "A"), [((0, i), 1) for i in range(5)] + [((1, 0), 1)]
    )
    cluster = MPCCluster(3)
    view = cluster.view()
    table = arm_reach_estimates(
        [("R", "B", "A")], {"R": DistRelation.load(view, relation)}, salt=0
    )
    assert dict(table.collect()) == {0: 5.0, 1: 1.0}


def test_branch_x_table_multiplies_arms():
    # T_B with two single-relation arms of degrees (2, 3) at b=0.
    branch = TreeQuery(
        (("Ra", ("A1", "B")), ("Rb", ("A2", "B"))), frozenset({"A1", "A2"})
    )
    ra = Relation("Ra", ("A1", "B"), [((i, 0), 1) for i in range(2)])
    rb = Relation("Rb", ("A2", "B"), [((i, 0), 1) for i in range(3)])
    cluster = MPCCluster(3)
    view = cluster.view()
    ctx = _Context(semiring=COUNTING)
    table = _branch_x_table(
        branch, "B",
        {"Ra": DistRelation.load(view, ra), "Rb": DistRelation.load(view, rb)},
        ctx,
    )
    assert dict(table.collect()) == {0: 6.0}


def test_estimate_out_tree_max_product_semantics():
    # Skeleton: B1 — B2 (one bridge edge).  x(B2) known; y(B1) must be
    # max over joined b2 of x(b2).
    rng = random.Random(3)
    instance = random_instance(TWIG_QUERY, 18, 4, rng, COUNTING, lambda r: 1)
    cluster = MPCCluster(4)
    view = cluster.view()
    relations = {
        name: DistRelation.load(view, instance.relation(name))
        for name, _ in TWIG_QUERY.relations
    }
    info = skeleton_info(TWIG_QUERY)
    ctx = _Context(semiring=COUNTING)
    x_tables = {
        root: _branch_x_table(info.branches[root], root, relations, ctx)
        for root in info.branch_roots
    }
    y_b1 = dict(_estimate_out_tree("B1", info, x_tables, relations, ctx).collect())
    x_b2 = dict(x_tables["B2"].collect())
    bridge = instance.relation("Rm")
    for (b1, b2), _w in bridge:
        if b1 in y_b1 and b2 in x_b2:
            assert y_b1[b1] >= x_b2[b2] - 1e-9  # max over children ≥ each child


def test_linear_sparse_mm_load_in_its_regime():
    # OUT ≤ N/p: the regime where LinearSparseMM promises O(N/p).
    n, p = 1600, 16
    r1 = Relation("R1", ("A", "B"), [((i, i), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((i, i), 1) for i in range(n)])
    # OUT = n — too big; shrink output by mapping C to n/p classes:
    r2 = Relation("R2", ("B", "C"), [((i, i % (n // (2 * p))), 1) for i in range(n)])
    instance = Instance(
        TreeQuery((("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})),
        {"R1": r1, "R2": r2},
        COUNTING,
    )
    cluster = MPCCluster(p)
    view = cluster.view()
    result = linear_sparse_mm(
        DistRelation.load(view, r1), DistRelation.load(view, r2), COUNTING
    )
    assert dict(result.data.collect()) == dict(evaluate(instance).tuples)
    assert cluster.report().max_load <= 6 * (2 * n) / p + 4 * p


def test_extract_arms_on_branch_components():
    info = skeleton_info(TWIG_QUERY)
    arms = extract_arms(info.branches["B1"], "B1")
    assert [arm[-1][2] for arm in arms] == ["A1", "A2"]
