"""Deterministic keyed hashing."""

import pytest

from repro.mpc.hashing import hash_to_bucket, hash_to_unit, stable_hash


def test_determinism_across_calls():
    assert stable_hash(("a", 1, 2.5)) == stable_hash(("a", 1, 2.5))
    assert stable_hash("x", salt=3) == stable_hash("x", salt=3)


def test_salts_behave_as_independent_functions():
    values = [stable_hash(i, salt=0) for i in range(100)]
    other = [stable_hash(i, salt=1) for i in range(100)]
    assert values != other


def test_type_discrimination():
    # Values that collide under naive str() must hash differently.
    assert stable_hash(1) != stable_hash("1")
    assert stable_hash(1) != stable_hash(1.0)
    assert stable_hash((1, 2)) != stable_hash((12,))
    assert stable_hash(("a", "bc")) != stable_hash(("ab", "c"))
    assert stable_hash(True) != stable_hash(1)
    assert stable_hash(None) != stable_hash(0)


def test_nested_tuples_and_frozensets():
    assert stable_hash(((1, 2), (3,))) == stable_hash(((1, 2), (3,)))
    assert stable_hash(frozenset({1, 2})) == stable_hash(frozenset({2, 1}))
    assert stable_hash(frozenset({1})) != stable_hash(frozenset({2}))


def test_unit_interval():
    for i in range(200):
        u = hash_to_unit(i)
        assert 0.0 <= u < 1.0


def test_bucket_range_and_rough_uniformity():
    buckets = 8
    counts = [0] * buckets
    for i in range(4000):
        b = hash_to_bucket(i, buckets)
        assert 0 <= b < buckets
        counts[b] += 1
    assert min(counts) > 4000 / buckets * 0.7
    assert max(counts) < 4000 / buckets * 1.3


def test_bucket_requires_positive_count():
    with pytest.raises(ValueError):
        hash_to_bucket("x", 0)


def test_unhashable_type_raises():
    with pytest.raises(TypeError):
        stable_hash([1, 2, 3])  # lists are not canonical keys
