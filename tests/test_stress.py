"""Heavier fixed-seed stress cases: deep trees, many twigs, fat domains.

These go beyond the hypothesis property tests (which keep instances tiny):
each case is a single seeded instance large enough to push several
algorithm phases at once, checked exactly against the oracle.
"""

import random

import pytest

from repro import run_query
from repro.data import Instance, Relation, TreeQuery
from repro.ram import evaluate
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS
from tests.conftest import random_instance


def _caterpillar_query(spine: int, legs_per_node: int, output_legs=True):
    """A spine B1—B2—…—Bk with ``legs_per_node`` output legs per spine node."""
    relations = []
    outputs = []
    for i in range(spine - 1):
        relations.append((f"S{i}", (f"B{i}", f"B{i+1}")))
    for i in range(spine):
        for leg in range(legs_per_node):
            attr = f"L{i}_{leg}"
            relations.append((f"R{i}_{leg}", (attr, f"B{i}")))
            if output_legs:
                outputs.append(attr)
    return TreeQuery(tuple(relations), frozenset(outputs))


def test_caterpillar_three_hubs():
    # 3 spine hubs × 2 legs = a twig with three branch roots (V* = spine).
    query = _caterpillar_query(spine=3, legs_per_node=2)
    assert query.classify() == "twig"
    rng = random.Random(21)
    instance = random_instance(query, 20, 4, rng, COUNTING, lambda r: r.randint(1, 3))
    result = run_query(instance, p=8)
    assert result.relation.tuples == evaluate(instance).tuples


def test_caterpillar_four_hubs_tropical():
    query = _caterpillar_query(spine=4, legs_per_node=2)
    rng = random.Random(22)
    instance = random_instance(
        query, 12, 3, rng, TROPICAL_MIN_PLUS, lambda r: float(r.randint(0, 9))
    )
    result = run_query(instance, p=6)
    assert result.relation.tuples == evaluate(instance).tuples


def test_mixed_outputs_long_chain():
    # A 7-relation chain with outputs scattered along it: decomposes into
    # several twigs glued at output attributes.
    attrs = [f"X{i}" for i in range(8)]
    relations = tuple(
        (f"R{i}", (attrs[i], attrs[i + 1])) for i in range(7)
    )
    query = TreeQuery(relations, frozenset({"X0", "X3", "X5", "X7"}))
    rng = random.Random(23)
    instance = random_instance(query, 30, 5, rng, COUNTING, lambda r: r.randint(1, 2))
    for algorithm in ("auto", "yannakakis"):
        result = run_query(instance, p=8, algorithm=algorithm)
        assert result.relation.tuples == evaluate(instance).tuples, algorithm


def test_wide_star_many_arms():
    query = TreeQuery(
        tuple((f"R{i}", (f"A{i}", "B")) for i in range(5)),
        frozenset(f"A{i}" for i in range(5)),
    )
    assert query.classify() == "star"
    rng = random.Random(24)
    instance = random_instance(query, 18, 4, rng, COUNTING, lambda r: 1)
    result = run_query(instance, p=8)
    assert result.relation.tuples == evaluate(instance).tuples


def test_big_matmul_all_strategies_agree():
    from repro.workloads import zipf_matmul

    instance = zipf_matmul(600, 600, 40, alpha=1.3, seed=9)
    expected = evaluate(instance)
    loads = {}
    for algorithm in ("auto", "yannakakis"):
        result = run_query(instance, p=32, algorithm=algorithm)
        assert result.relation.tuples == expected.tuples
        loads[algorithm] = result.report.max_load
    assert loads["auto"] > 0


@pytest.mark.parametrize("seed", range(6))
def test_random_deep_trees(seed):
    """Random 9-relation trees with random outputs, auto vs oracle."""
    rng = random.Random(1000 + seed)
    attrs = [f"X{i}" for i in range(10)]
    relations = []
    for i in range(1, 10):
        parent = attrs[rng.randrange(i)]
        relations.append((f"R{i}", (parent, attrs[i])))
    outputs = frozenset(a for a in attrs if rng.random() < 0.4)
    query = TreeQuery(tuple(relations), outputs)
    instance = random_instance(query, 10, 3, rng, COUNTING, lambda r: r.randint(1, 2))
    result = run_query(instance, p=5)
    assert result.relation.tuples == evaluate(instance).tuples, query.classify()
