"""Parallel-packing invariants (paper §2.1, [14])."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import Distributed, MPCCluster
from repro.primitives import parallel_packing
from repro.primitives.packing import scoped_parallel_packing


def _group_totals(pairs, size_fn):
    groups = {}
    for item, group in pairs.items():
        groups.setdefault(group, 0.0)
        groups[group] += size_fn(item)
    return groups


@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.floats(min_value=0.001, max_value=1.0, allow_nan=False),
        min_size=1,
        max_size=120,
    )
)
def test_packing_invariants(sizes):
    cluster = MPCCluster(5)
    dist = Distributed.from_items(cluster.view(), sizes)
    pairs, m = parallel_packing(dist, lambda x: x)
    totals = _group_totals(pairs, lambda x: x)
    assert len(totals) == m
    assert all(total <= 1.0 + 1e-9 for total in totals.values())
    deficient = [t for t in totals.values() if t < 0.5 - 1e-9]
    assert len(deficient) <= 1
    assert m <= 1 + 2 * sum(sizes) + 1e-9
    # Partition: every item appears exactly once.
    assert sorted(item for item, _g in pairs.items()) == sorted(sizes)


def test_packing_rejects_out_of_range_sizes():
    view = MPCCluster(2).view()
    with pytest.raises(ValueError):
        parallel_packing(Distributed.from_items(view, [1.5]), lambda x: x)
    with pytest.raises(ValueError):
        parallel_packing(Distributed.from_items(view, [0.0]), lambda x: x)


def test_packing_all_big_items():
    view = MPCCluster(3).view()
    pairs, m = parallel_packing(
        Distributed.from_items(view, [0.9, 0.8, 0.6]), lambda x: x
    )
    assert m == 3
    totals = _group_totals(pairs, lambda x: x)
    assert sorted(totals.values()) == [0.6, 0.8, 0.9]


def test_packing_moves_no_data():
    cluster = MPCCluster(4)
    dist = Distributed.from_items(cluster.view(), [0.1] * 40)
    parallel_packing(dist, lambda x: x)
    assert cluster.report().total_communication == 0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.floats(0.001, 1.0, allow_nan=False)),
        min_size=1,
        max_size=100,
    )
)
def test_scoped_packing_invariants(items):
    cluster = MPCCluster(4)
    dist = Distributed.from_items(cluster.view(), items)
    pairs, per_scope = scoped_parallel_packing(
        dist, lambda it: it[0], lambda it: it[1]
    )
    groups = {}
    for item, group in pairs.items():
        assert group[0] == item[0]  # groups never mix scopes
        groups.setdefault(group, 0.0)
        groups[group] += item[1]
    for scope, count in per_scope.items():
        totals = [t for g, t in groups.items() if g[0] == scope]
        assert len(totals) == count
        assert all(t <= 1.0 + 1e-9 for t in totals)
        deficient = [t for t in totals if t < 0.5 - 1e-9]
        assert len(deficient) <= 1
    assert sorted(item for item, _g in pairs.items()) == sorted(items)
