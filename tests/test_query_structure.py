"""Hypergraphs, tree queries, and their classification (paper §1.1, §1.5)."""

import pytest

from repro.data import Hypergraph, Instance, Relation, TreeQuery, is_alpha_acyclic
from repro.data.hypergraph import join_tree_edges, tree_adjacency
from repro.semiring import COUNTING
from tests.conftest import (
    GENERAL_TREE_QUERY,
    LINE3_QUERY,
    MATMUL_QUERY,
    STAR3_QUERY,
    TWIG_QUERY,
)


# -- hypergraph --------------------------------------------------------------------


def test_gyo_accepts_acyclic():
    assert is_alpha_acyclic(Hypergraph([("A", "B"), ("B", "C"), ("C", "D")]))
    assert is_alpha_acyclic(Hypergraph([("A", "B", "C"), ("C", "D")]))
    assert is_alpha_acyclic(Hypergraph([("A", "B")]))


def test_gyo_rejects_cycle():
    assert not is_alpha_acyclic(Hypergraph([("A", "B"), ("B", "C"), ("C", "A")]))


def test_tree_adjacency_rejects_cycles_and_disconnection():
    with pytest.raises(ValueError):
        tree_adjacency([("R1", ("A", "B")), ("R2", ("B", "A"))])
    with pytest.raises(ValueError):
        tree_adjacency(
            [("R1", ("A", "B")), ("R2", ("B", "C")), ("R3", ("C", "A"))]
        )
    with pytest.raises(ValueError):
        tree_adjacency([("R1", ("A", "A"))])


def test_join_tree_edges_properties():
    for query in (MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, TWIG_QUERY, GENERAL_TREE_QUERY):
        edges = join_tree_edges(query.relations)
        assert len(edges) == query.n - 1
        # Connectivity of relations containing each attribute.
        adjacency = {name: set() for name, _ in query.relations}
        for a, b, _shared in edges:
            adjacency[a].add(b)
            adjacency[b].add(a)
        for attribute in query.attributes:
            holders = [n for n, attrs in query.relations if attribute in attrs]
            seen = {holders[0]}
            frontier = [holders[0]]
            while frontier:
                current = frontier.pop()
                for neighbour in adjacency[current]:
                    if neighbour in holders and neighbour not in seen:
                        seen.add(neighbour)
                        frontier.append(neighbour)
            assert seen == set(holders), attribute


# -- classification ------------------------------------------------------------------


def test_classification_matrix():
    assert MATMUL_QUERY.classify() == "matmul"
    assert LINE3_QUERY.classify() == "line"
    assert STAR3_QUERY.classify() == "star"
    assert TWIG_QUERY.classify() == "twig"
    assert GENERAL_TREE_QUERY.classify() == "tree"


def test_free_connex_detection():
    # Full join is free-connex.
    full = TreeQuery(MATMUL_QUERY.relations, frozenset({"A", "B", "C"}))
    assert full.is_free_connex()
    assert full.classify() == "free-connex"
    # Connected output subtree.
    connected = TreeQuery(LINE3_QUERY.relations, frozenset({"A1", "A2"}))
    assert connected.is_free_connex()
    # Matmul outputs are disconnected.
    assert not MATMUL_QUERY.is_free_connex()
    # Empty output: trivially free-connex.
    scalar = TreeQuery(MATMUL_QUERY.relations, frozenset())
    assert scalar.is_free_connex()


def test_star_like_classification():
    starlike = TreeQuery(
        (
            ("R1", ("A1", "B")),
            ("R2", ("B", "C1")),
            ("R3", ("C1", "A2")),
            ("R4", ("B", "A3")),
        ),
        frozenset({"A1", "A2", "A3"}),
    )
    assert starlike.classify() == "star-like"
    assert starlike.centre() == "B"


def test_line_is_star_like_but_classified_finer():
    assert LINE3_QUERY.is_star_like()
    assert LINE3_QUERY.classify() == "line"


def test_path_order():
    order = LINE3_QUERY.path_order()
    assert order in (["A1", "A2", "A3", "A4"], ["A4", "A3", "A2", "A1"])
    assert STAR3_QUERY.path_order() is None


def test_centre_detection():
    assert STAR3_QUERY.centre() == "B"
    assert LINE3_QUERY.centre() is None
    assert TWIG_QUERY.centre() is None  # two high-degree attributes


def test_postorder_visits_all_edges_bottom_up():
    order = TWIG_QUERY.postorder("B1")
    assert len(order) == TWIG_QUERY.n
    seen_children = set()
    for _rel, child, parent in order:
        # A child attribute is never used as a parent before being visited.
        seen_children.add(child)
    assert "B2" in seen_children


def test_query_validation():
    with pytest.raises(ValueError):
        TreeQuery((("R1", ("A", "B")), ("R1", ("B", "C"))), frozenset())
    with pytest.raises(ValueError):
        TreeQuery((("R1", ("A", "B")),), frozenset({"Z"}))


def test_instance_validation():
    r1 = Relation("R1", ("A", "B"), [((1, 2), 1)])
    r2 = Relation("R2", ("B", "C"), [((2, 3), 1)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    assert instance.total_size == 2
    assert instance.max_relation_size() == 1
    with pytest.raises(ValueError):
        Instance(MATMUL_QUERY, {"R1": r1}, COUNTING)
    bad = Relation("R2", ("C", "B"), [((3, 2), 1)])
    with pytest.raises(ValueError):
        Instance(MATMUL_QUERY, {"R1": r1, "R2": bad}, COUNTING)


def test_leaves_and_degrees():
    assert TWIG_QUERY.leaves == frozenset({"A1", "A2", "A3", "A4"})
    assert TWIG_QUERY.degrees["B1"] == 3
    assert TWIG_QUERY.degrees["B2"] == 3
    assert GENERAL_TREE_QUERY.degrees["B"] == 3
