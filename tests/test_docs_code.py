"""The documentation's code must run.

Executes the README quickstart block, the package docstring example, and
checks EXPERIMENTS/DESIGN cross-references so the docs cannot silently rot.
"""

import os
import re

import repro

ROOT = os.path.join(os.path.dirname(__file__), os.pardir)


def _python_blocks(path):
    text = open(path).read()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_quickstart_runs():
    blocks = _python_blocks(os.path.join(ROOT, "README.md"))
    assert blocks, "README lost its quickstart block"
    namespace = {}
    exec(blocks[0], namespace)  # noqa: S102 - executing our own docs
    assert "result" in namespace
    assert namespace["result"].relation is not None


def test_package_docstring_example_runs():
    match = re.search(r"Quickstart::\n\n(.*?)\n\"\"\"", '"""' + repro.__doc__ + '"""',
                      flags=re.DOTALL)
    assert match, "package docstring lost its example"
    code = "\n".join(line[4:] for line in match.group(1).splitlines())
    namespace = {}
    exec(code, namespace)  # noqa: S102
    assert "result" in namespace


def test_extending_doc_semiring_example_runs():
    blocks = _python_blocks(os.path.join(ROOT, "docs", "extending.md"))
    assert blocks
    namespace = {}
    exec(blocks[0], namespace)  # noqa: S102  (the clearance semiring)
    exec(blocks[1], {**namespace})  # noqa: S102  (check_semiring on it)


def test_experiments_file_references_real_benches():
    text = open(os.path.join(ROOT, "EXPERIMENTS.md")).read()
    for match in re.findall(r"`(bench_[a-z0-9_]+\.py)`", text):
        assert os.path.exists(os.path.join(ROOT, "benchmarks", match)), match


def test_design_file_references_real_modules():
    text = open(os.path.join(ROOT, "DESIGN.md")).read()
    for match in re.findall(r"`(repro/[a-z_/]+\.py)`", text):
        assert os.path.exists(os.path.join(ROOT, "src", match)), match
    for match in re.findall(r"`(benchmarks/[a-z0-9_]+\.py)`", text):
        assert os.path.exists(os.path.join(ROOT, match)), match


def test_api_doc_mentions_every_public_module():
    text = open(os.path.join(ROOT, "docs", "api.md")).read()
    for module in ("repro.semiring", "repro.data", "repro.mpc", "repro.primitives",
                   "repro.core", "repro.ram", "repro.workloads", "repro.queries",
                   "repro.linalg", "repro.interop", "repro.io", "repro.testing",
                   "repro.reporting", "repro.obs"):
        assert module in text, module
