"""Semiring linear algebra (matrix power, transitive closure)."""

import math
import random

import networkx as nx
import numpy as np
import pytest

from repro.data import Relation
from repro.linalg import matrix_power, transitive_closure
from repro.queries import k_hop
from repro.semiring import BOOLEAN, COUNTING, TROPICAL_MIN_PLUS


def _random_digraph(nodes, edges, seed, weight_fn):
    rng = random.Random(seed)
    relation = Relation("E", ("A", "B"))
    graph = nx.DiGraph()
    graph.add_nodes_from(range(nodes))
    while len(relation) < edges:
        u, v = rng.randrange(nodes), rng.randrange(nodes)
        if u != v and (u, v) not in relation:
            weight = weight_fn(rng)
            relation.add((u, v), weight)
            graph.add_edge(u, v, weight=weight)
    return relation, graph


def test_matrix_power_counts_walks():
    relation, _graph = _random_digraph(10, 25, seed=1, weight_fn=lambda r: 1)
    adjacency = np.zeros((10, 10), dtype=int)
    for (u, v), _w in relation:
        adjacency[u, v] = 1
    for k in (1, 2, 3, 5):
        power, report = matrix_power(relation, k, COUNTING, p=6)
        truth = np.linalg.matrix_power(adjacency, k)
        expected = {
            (u, v): int(truth[u, v])
            for u in range(10)
            for v in range(10)
            if truth[u, v]
        }
        assert power.tuples == expected, k
        if k > 1:
            assert report.max_load > 0  # k = 1 returns the input untouched


def test_matrix_power_agrees_with_line_query():
    relation, _graph = _random_digraph(12, 30, seed=2, weight_fn=lambda r: 1)
    via_power, _ = matrix_power(relation, 3, COUNTING, p=4)
    via_line = k_hop(relation, 3, COUNTING, p=4)
    assert via_power.tuples == dict(via_line.relation.tuples)


def test_matrix_power_validation():
    relation = Relation("E", ("A", "B"), [((0, 1), 1)])
    with pytest.raises(ValueError):
        matrix_power(relation, 0, COUNTING)
    with pytest.raises(ValueError):
        matrix_power(Relation("T", ("A", "B", "C")), 2, COUNTING)


def test_transitive_closure_reachability():
    relation, graph = _random_digraph(14, 24, seed=3, weight_fn=lambda r: True)
    closure, _report = transitive_closure(relation, BOOLEAN, p=6)
    # Ground truth: v reachable from u by a path of ≥ 1 edges.  That
    # includes (u, u) when u lies on a cycle (nx.descendants excludes the
    # source, so handle the diagonal separately).
    expected = {
        (u, v) for u in graph.nodes for v in nx.descendants(graph, u)
    } | {
        (u, u)
        for u in graph.nodes
        if any(nx.has_path(graph, w, u) for w in graph.successors(u))
    }
    assert {key for key, flag in closure if flag} == expected


def test_transitive_closure_shortest_paths():
    relation, graph = _random_digraph(
        12, 28, seed=4, weight_fn=lambda r: float(r.randint(1, 9))
    )
    closure, _report = transitive_closure(relation, TROPICAL_MIN_PLUS, p=6)
    lengths = dict(nx.all_pairs_dijkstra_path_length(graph))
    for (u, v), distance in closure:
        if u == v:
            continue
        assert math.isclose(distance, lengths[u][v]), (u, v)
    # Every reachable pair appears.
    for u, targets in lengths.items():
        for v in targets:
            if u != v:
                assert (u, v) in closure


def test_reflexive_closure_includes_diagonal():
    relation = Relation("E", ("A", "B"), [((0, 1), True)])
    closure, _ = transitive_closure(
        relation, BOOLEAN, p=2, include_identity=True
    )
    assert (0, 0) in closure and (1, 1) in closure and (0, 1) in closure


def test_closure_rejects_non_idempotent():
    relation = Relation("E", ("A", "B"), [((0, 1), 1)])
    with pytest.raises(ValueError):
        transitive_closure(relation, COUNTING)


def test_closure_on_cycle_terminates():
    relation = Relation("E", ("A", "B"))
    for i in range(6):
        relation.add((i, (i + 1) % 6), 1.0)
    closure, _ = transitive_closure(relation, TROPICAL_MIN_PLUS, p=3)
    # Every pair reachable on the 6-cycle, incl. the full loop back to self.
    assert len(closure) == 36
    assert closure.annotation((0, 0)) == 6.0
