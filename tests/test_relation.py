"""Annotated relations."""

import pytest

from repro.data import DistRelation, Relation
from repro.mpc import MPCCluster
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS


def test_schema_must_be_unique():
    with pytest.raises(ValueError):
        Relation("R", ("A", "A"))


def test_add_and_lookup():
    relation = Relation("R", ("A", "B"))
    relation.add((1, 2), 10)
    assert (1, 2) in relation
    assert relation.annotation((1, 2)) == 10
    assert len(relation) == 1


def test_arity_mismatch_rejected():
    relation = Relation("R", ("A", "B"))
    with pytest.raises(ValueError):
        relation.add((1, 2, 3), 1)


def test_duplicate_without_semiring_rejected():
    relation = Relation("R", ("A", "B"), [((1, 2), 1)])
    with pytest.raises(ValueError):
        relation.add((1, 2), 5)


def test_duplicate_combines_with_semiring():
    relation = Relation("R", ("A", "B"))
    relation.add((1, 2), 3, COUNTING)
    relation.add((1, 2), 4, COUNTING)
    assert relation.annotation((1, 2)) == 7

    tropical = Relation("T", ("A", "B"))
    tropical.add((1, 2), 3.0, TROPICAL_MIN_PLUS)
    tropical.add((1, 2), 1.0, TROPICAL_MIN_PLUS)
    assert tropical.annotation((1, 2)) == 1.0


def test_column_and_domain_and_degree():
    relation = Relation(
        "R", ("A", "B"), [((1, 10), 1), ((1, 20), 1), ((2, 10), 1)]
    )
    assert sorted(relation.column("A")) == [1, 1, 2]
    assert relation.active_domain("A") == {1, 2}
    assert relation.degree("A", 1) == 2
    assert relation.degree("B", 10) == 2
    assert relation.degree("A", 99) == 0


def test_project_keys():
    relation = Relation(
        "R", ("A", "B"), [((1, 10), 1), ((1, 20), 1), ((2, 10), 1)]
    )
    assert relation.project_keys(("A",)) == {(1,), (2,)}
    assert relation.project_keys(("B", "A")) == {(10, 1), (20, 1), (10, 2)}


def test_attr_index_error():
    relation = Relation("R", ("A", "B"))
    with pytest.raises(KeyError):
        relation.attr_index("Z")


def test_same_contents():
    a = Relation("R", ("A", "B"), [((1, 2), 5)])
    b = Relation("S", ("A", "B"), [((1, 2), 5)])
    c = Relation("S", ("A", "B"), [((1, 2), 6)])
    assert a.same_contents(b)
    assert not a.same_contents(c)


def test_dist_relation_roundtrip():
    relation = Relation("R", ("A", "B"), [((i, i % 3), i) for i in range(20)])
    cluster = MPCCluster(4)
    dist = DistRelation.load(cluster.view(), relation)
    assert dist.total_size == 20
    back = dist.collect("R", COUNTING)
    assert back.same_contents(relation)


def test_dist_relation_key_fn():
    relation = Relation("R", ("A", "B"), [((1, 2), 1)])
    dist = DistRelation.load(MPCCluster(2).view(), relation)
    key_a = dist.key_fn(("A",))
    key_ba = dist.key_fn(("B", "A"))
    item = ((1, 2), 1)
    assert key_a(item) == (1,)
    assert key_ba(item) == (2, 1)
    with pytest.raises(KeyError):
        dist.attr_index("Z")
