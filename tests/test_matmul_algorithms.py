"""Sparse matrix multiplication: §3.1, §3.2, and the Theorem-1 dispatcher."""

import math
import random

import pytest

from repro.core.matmul import sparse_matmul
from repro.core.matmul_output_sensitive import (
    linear_sparse_mm,
    matmul_output_sensitive,
    output_sensitive_load_target,
)
from repro.core.matmul_worst_case import (
    matmul_unbalanced,
    matmul_worst_case,
    worst_case_load_target,
)
from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.primitives import remove_dangling
from repro.ram import evaluate
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS
from repro.workloads import planted_out_matmul, random_sparse_matmul, zipf_matmul
from tests.conftest import MATMUL_QUERY, SEMIRING_SAMPLERS, random_instance

_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


def _loaded(instance, p, reduce=True):
    cluster = MPCCluster(p, backend=_BACKEND)
    view = cluster.view()
    rels = {
        name: DistRelation.load(view, instance.relation(name), instance.semiring)
        for name, _ in instance.query.relations
    }
    if reduce:
        rels = remove_dangling(instance.query, rels)
    return cluster, rels["R1"], rels["R2"]


def _check(instance, result, cluster=None):
    got = dict(result.data.collect())
    want = dict(evaluate(instance).tuples)
    assert got == want


@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS, ids=lambda x: getattr(x, "name", "")
)
@pytest.mark.parametrize("algorithm", ["worst", "sensitive", "linear", "auto"])
def test_matmul_algorithms_match_oracle(semiring, sampler, algorithm):
    rng = random.Random(hash((algorithm, getattr(semiring, "name", ""))) & 0xFFFF)
    instance = random_instance(MATMUL_QUERY, 100, 12, rng, semiring, sampler)
    cluster, r1, r2 = _loaded(instance, 8)
    if algorithm == "worst":
        result = matmul_worst_case(r1, r2, semiring)
    elif algorithm == "sensitive":
        result = matmul_output_sensitive(r1, r2, semiring)
    elif algorithm == "linear":
        result = linear_sparse_mm(r1, r2, semiring)
    else:
        result = sparse_matmul(r1, r2, semiring, reduce_dangling=False)
    assert result.schema == ("A", "C")
    _check(instance, result)


@pytest.mark.parametrize("p", [1, 2, 7, 16, 32])
def test_matmul_any_cluster_size(p):
    instance = random_sparse_matmul(120, 130, 30, 9, 30, seed=p)
    cluster, r1, r2 = _loaded(instance, p)
    result = sparse_matmul(r1, r2, COUNTING, reduce_dangling=False)
    _check(instance, result)


def test_matmul_skewed_inner_attribute():
    instance = zipf_matmul(150, 150, 20, alpha=1.4, seed=3)
    cluster, r1, r2 = _loaded(instance, 8)
    result = matmul_worst_case(r1, r2, COUNTING)
    _check(instance, result)


def test_matmul_unbalanced_path():
    # N1 ≪ N2/p triggers the sort-and-broadcast case.
    r1 = Relation("R1", ("A", "B"), [((0, 0), 2), ((1, 1), 3)])
    r2 = Relation("R2", ("B", "C"))
    for j in range(200):
        r2.add((j % 2, j), 1)
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    cluster, d1, d2 = _loaded(instance, 8)
    result = sparse_matmul(d1, d2, COUNTING, reduce_dangling=False)
    _check(instance, result)


def test_matmul_single_tuple_side_is_broadcast_cheap():
    # N1 = 1: the paper's trivial case, load O(1) beyond the sort.
    r1 = Relation("R1", ("A", "B"), [((0, 0), 2)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(160)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    cluster, d1, d2 = _loaded(instance, 8)
    result = matmul_unbalanced(d1, d2, COUNTING)
    _check(instance, result)
    assert cluster.report().max_load <= 2 * 160 // 8 + 16


def test_matmul_empty_inputs():
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"), [((0, 0), 1)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    cluster, d1, d2 = _loaded(instance, 4, reduce=False)
    result = sparse_matmul(d1, d2, COUNTING)
    assert result.data.total_size == 0


def test_matmul_disjoint_inner_values_empty_result():
    r1 = Relation("R1", ("A", "B"), [((0, 0), 1)])
    r2 = Relation("R2", ("B", "C"), [((1, 0), 1)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    cluster, d1, d2 = _loaded(instance, 4)
    result = sparse_matmul(d1, d2, COUNTING, reduce_dangling=False)
    assert result.data.total_size == 0


def test_worst_case_load_bound_on_dense_b():
    # |dom(B)| = 1: the Ω(√(N1N2/p)) worst case; measured load must be
    # within a constant of the target.
    n, p = 160, 16
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    cluster, d1, d2 = _loaded(instance, p)
    result = matmul_worst_case(d1, d2, COUNTING)
    _check(instance, result)
    target = worst_case_load_target(n, n, p)
    assert cluster.report().max_load <= 10 * target + 2 * n / p
    # All N² elementary products must be computed (semiring model).
    assert cluster.report().elementary_products == n * n


def test_strategies_track_their_load_targets():
    n, p = 400, 16
    for out in (n, 40 * n):
        instance = planted_out_matmul(n=n, out=out)
        want = evaluate(instance)
        loads = {}
        for strategy in ("worst-case", "output-sensitive"):
            cluster, r1, r2 = _loaded(instance, p)
            result = sparse_matmul(r1, r2, COUNTING, strategy=strategy,
                                   reduce_dangling=False)
            assert dict(result.data.collect()) == dict(want.tuples)
            loads[strategy] = cluster.report().max_load
        # Each algorithm stays within a constant of its own target.
        assert loads["worst-case"] <= 10 * worst_case_load_target(n, n, p)
        assert loads["output-sensitive"] <= 10 * output_sensitive_load_target(
            n, n, out, p
        )


def test_worst_case_beats_output_sensitive_on_huge_out():
    # At OUT = N² the output-sensitive target exceeds √(N1N2/p): the §3.1
    # algorithm must win, and Theorem 1's dispatcher must pick it.
    n, p = 200, 16
    instance = planted_out_matmul(n=n, out=n * n)
    want = evaluate(instance)
    loads = {}
    for strategy in ("worst-case", "output-sensitive", "auto"):
        cluster, r1, r2 = _loaded(instance, p)
        result = sparse_matmul(r1, r2, COUNTING, strategy=strategy,
                               reduce_dangling=False)
        assert dict(result.data.collect()) == dict(want.tuples)
        loads[strategy] = cluster.report().max_load
    assert loads["worst-case"] < loads["output-sensitive"]
    assert loads["auto"] <= loads["output-sensitive"]


def test_load_targets_formula_sanity():
    assert worst_case_load_target(100, 100, 4) == math.ceil(math.sqrt(2500))
    small = output_sensitive_load_target(100, 100, 10, 4)
    large = output_sensitive_load_target(100, 100, 10_000, 4)
    assert small < large


def test_products_counted_for_planted_family():
    instance = planted_out_matmul(n=200, out=800)
    cluster, r1, r2 = _loaded(instance, 8)
    result = sparse_matmul(r1, r2, COUNTING, reduce_dangling=False)
    _check(instance, result)
    # The planted family has exactly OUT elementary products (each (a,c)
    # pair joins through exactly one b).
    assert cluster.report().elementary_products == 800
