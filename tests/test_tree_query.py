"""General tree queries (§7) against the RAM oracle."""

import random

import pytest

from repro.core.tree import tree_query
from repro.data import DistRelation, Instance, Relation, TreeQuery
from repro.mpc import MPCCluster
from repro.ram import evaluate
from repro.semiring import COUNTING
from repro.workloads import twig_instance
from tests.conftest import (
    GENERAL_TREE_QUERY,
    SEMIRING_SAMPLERS,
    TWIG_QUERY,
    random_instance,
)


_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


def _run(instance, p=8):
    cluster = MPCCluster(p, backend=_BACKEND)
    view = cluster.view()
    rels = {
        name: DistRelation.load(view, instance.relation(name), instance.semiring)
        for name, _ in instance.query.relations
    }
    result = tree_query(instance.query, rels, instance.semiring)
    return cluster, result


def _assert_matches(instance, result):
    want = evaluate(instance)
    got = result.collect("tree", instance.semiring)
    assert result.schema == tuple(sorted(instance.query.output))
    assert got.tuples == want.tuples


@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS, ids=lambda x: getattr(x, "name", "")
)
def test_figure3_twig(semiring, sampler):
    rng = random.Random(3)
    instance = random_instance(TWIG_QUERY, 30, 7, rng, semiring, sampler)
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_long_bridge_twig():
    instance = twig_instance(tuples=25, domain=6, seed=4, bridge_length=3)
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_reduction_heavy_tree():
    rng = random.Random(5)
    instance = random_instance(
        GENERAL_TREE_QUERY, 35, 7, rng, COUNTING, lambda r: r.randint(1, 3)
    )
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_multiple_twigs_with_output_bridge():
    query = TreeQuery(
        (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm", ("B1", "K")),
            ("Rn", ("K", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        ),
        frozenset({"A1", "A2", "A3", "A4", "K"}),
    )
    rng = random.Random(6)
    instance = random_instance(query, 22, 5, rng, COUNTING, lambda r: 1)
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_three_branch_roots():
    query = TreeQuery(
        (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm1", ("B1", "B3")),
            ("Rx", ("B3", "A5")),
            ("Rm2", ("B3", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        ),
        frozenset({"A1", "A2", "A3", "A4", "A5"}),
    )
    rng = random.Random(7)
    instance = random_instance(query, 16, 4, rng, COUNTING, lambda r: r.randint(1, 2))
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_scalar_aggregate_query():
    query = TreeQuery(
        (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset()
    )
    r1 = Relation("R1", ("A", "B"), [((0, 0), 2), ((1, 0), 3)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 1), ((0, 1), 4)])
    instance = Instance(query, {"R1": r1, "R2": r2}, COUNTING)
    cluster, result = _run(instance, p=4)
    assert dict(result.data.collect()) == {(): (2 + 3) * (1 + 4)}


def test_empty_result_short_circuits():
    r1 = Relation("R1", ("A1", "B1"), [((0, 0), 1)])
    relations = {
        "Ra1": r1,
        "Ra2": Relation("Ra2", ("A2", "B1"), [((0, 1), 1)]),  # disjoint B1
        "Rm": Relation("Rm", ("B1", "B2"), [((0, 0), 1)]),
        "Rb1": Relation("Rb1", ("A3", "B2"), [((0, 0), 1)]),
        "Rb2": Relation("Rb2", ("A4", "B2"), [((0, 0), 1)]),
    }
    relations["Ra1"] = Relation("Ra1", ("A1", "B1"), [((0, 0), 1)])
    instance = Instance(TWIG_QUERY, relations, COUNTING)
    cluster, result = _run(instance, p=4)
    assert result.data.total_size == 0


def test_single_relation_after_reduction():
    # Non-output leaves collapse everything into one relation.
    query = TreeQuery(
        (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A"})
    )
    r1 = Relation("R1", ("A", "B"), [((0, 0), 2), ((1, 1), 3)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 5), ((0, 1), 7), ((1, 0), 11)])
    instance = Instance(query, {"R1": r1, "R2": r2}, COUNTING)
    cluster, result = _run(instance, p=4)
    want = evaluate(instance)
    assert dict(result.data.collect()) == dict(want.tuples)


@pytest.mark.parametrize("p", [1, 4, 16])
def test_tree_any_cluster_size(p):
    rng = random.Random(p)
    instance = random_instance(TWIG_QUERY, 24, 6, rng, COUNTING, lambda r: 1)
    cluster, result = _run(instance, p)
    _assert_matches(instance, result)


def test_deep_mixed_tree():
    # Mixed non-output leaves, output bridge, and a twig — hits reduction,
    # decomposition, and the recursion together.
    query = TreeQuery(
        (
            ("R1", ("A1", "B1")),
            ("R2", ("A2", "B1")),
            ("R3", ("B1", "K")),
            ("R4", ("K", "B2")),
            ("R5", ("A3", "B2")),
            ("R6", ("B2", "Z")),     # Z is a non-output leaf → reduction
            ("R7", ("A3", "W")),     # W non-output leaf off an output attr
        ),
        frozenset({"A1", "A2", "A3", "K"}),
    )
    rng = random.Random(11)
    instance = random_instance(query, 18, 4, rng, COUNTING, lambda r: r.randint(1, 2))
    cluster, result = _run(instance)
    _assert_matches(instance, result)
