"""Distributed datasets: placement, local ops, metered movement."""

import pytest

from repro.mpc import Distributed, MPCCluster, RoutingError, transfer


def test_from_items_balances_contiguously():
    view = MPCCluster(4).view()
    dist = Distributed.from_items(view, list(range(10)))
    assert dist.part_sizes() == [3, 3, 3, 1]
    assert dist.collect() == list(range(10))
    assert dist.total_size == 10


def test_from_items_empty():
    view = MPCCluster(4).view()
    dist = Distributed.from_items(view, [])
    assert dist.total_size == 0
    assert dist.part_sizes() == [0, 0, 0, 0]


def test_initial_placement_is_free():
    cluster = MPCCluster(4)
    Distributed.from_items(cluster.view(), list(range(100)))
    assert cluster.report().total_communication == 0


def test_local_ops_do_not_communicate():
    cluster = MPCCluster(4)
    dist = Distributed.from_items(cluster.view(), list(range(20)))
    mapped = dist.map_items(lambda x: x * 2)
    filtered = mapped.filter_items(lambda x: x % 4 == 0)
    merged = mapped.concat(filtered)
    assert sorted(mapped.collect()) == [2 * i for i in range(20)]
    assert all(x % 4 == 0 for x in filtered.collect())
    assert merged.total_size == mapped.total_size + filtered.total_size
    assert cluster.report().total_communication == 0


def test_concat_requires_same_view():
    cluster = MPCCluster(4)
    a = Distributed.from_items(cluster.view(), [1])
    other_cluster = MPCCluster(3)
    b = Distributed.from_items(other_cluster.view(), [2])
    with pytest.raises(RoutingError):
        a.concat(b)


def test_repartition_moves_and_charges():
    cluster = MPCCluster(4)
    view = cluster.view()
    dist = Distributed.from_items(view, list(range(16)))
    routed = dist.repartition(lambda x: x % 4)
    for server, part in enumerate(routed.parts):
        assert all(x % 4 == server for x in part)
    assert cluster.report().total_communication == 16
    assert cluster.report().max_load == 4


def test_repartition_multi_replicates():
    cluster = MPCCluster(3)
    dist = Distributed.from_items(cluster.view(), ["x"])
    replicated = dist.repartition_multi(lambda _x: [0, 1, 2])
    assert replicated.part_sizes() == [1, 1, 1]
    assert cluster.report().total_communication == 3


def test_rebalance_evens_out():
    cluster = MPCCluster(4)
    view = cluster.view()
    dist = Distributed(view, [[1] * 12, [], [], []])
    balanced = dist.rebalance()
    assert max(balanced.part_sizes()) <= 3
    assert balanced.total_size == 12


def test_transfer_across_views():
    cluster = MPCCluster(8)
    view = cluster.view()
    source = Distributed.from_items(view, list(range(8)))
    target_view = view.subview([6, 7])
    moved = transfer(source, target_view, lambda x: x % 2)
    assert sorted(moved.collect()) == list(range(8))
    assert moved.view.servers == (6, 7)
    # Cursors synchronized.
    assert view.round == target_view.round


def test_transfer_rejects_foreign_cluster():
    a = MPCCluster(2)
    b = MPCCluster(2)
    source = Distributed.from_items(a.view(), [1])
    with pytest.raises(RoutingError):
        transfer(source, b.view(), lambda _x: 0)


def test_broadcast_returns_everything():
    cluster = MPCCluster(3)
    dist = Distributed.from_items(cluster.view(), [1, 2, 3, 4])
    everything = dist.broadcast()
    assert sorted(everything) == [1, 2, 3, 4]
