"""MPC cluster simulator: routing, metering, views, parallel scheduling."""

import pytest

from repro.mpc import AllocationError, MPCCluster, RoutingError
from repro.mpc.stats import LoadTracker


def test_exchange_delivers_and_charges():
    cluster = MPCCluster(4)
    view = cluster.view()
    outboxes = [[(1, "a"), (2, "b")], [(1, "c")], [], [(0, "d")]]
    inboxes = view.exchange(outboxes)
    assert inboxes == [["d"], ["a", "c"], ["b"], []]
    report = cluster.report()
    assert report.max_load == 2  # server 1 received two items
    assert report.total_communication == 4
    assert report.rounds == 1


def test_exchange_rejects_bad_destination():
    view = MPCCluster(2).view()
    with pytest.raises(RoutingError):
        view.exchange([[(5, "x")], []])


def test_exchange_requires_all_outboxes():
    view = MPCCluster(3).view()
    with pytest.raises(RoutingError):
        view.exchange([[]])


def test_broadcast_charges_every_server():
    cluster = MPCCluster(3)
    view = cluster.view()
    everything = view.broadcast([["a"], ["b"], []])
    assert everything == ["a", "b"]
    assert cluster.report().max_load == 2
    assert cluster.report().total_communication == 6


def test_gather_brings_items_to_one_server():
    cluster = MPCCluster(3)
    view = cluster.view()
    items = view.gather([["a"], ["b", "c"], []], dest=1)
    assert sorted(items) == ["a", "b", "c"]
    assert cluster.report().max_load == 3


def test_control_channel_is_separate():
    cluster = MPCCluster(4)
    view = cluster.view()
    view.control_gather([1, 2, 3, 4])
    view.control_scatter(2)
    report = cluster.report()
    assert report.max_load == 0
    assert report.control_messages == 4 + 2 * 4


def test_subview_shares_tracker_and_round_cursor():
    cluster = MPCCluster(6)
    view = cluster.view()
    view.exchange([[(0, "x")]] + [[] for _ in range(5)])
    sub = view.subview([2, 3])
    assert sub.p == 2
    assert sub.round == view.round
    sub.exchange([[(1, "y")], []])
    # Charged against global server id 3.
    assert cluster.report().total_communication == 2


def test_split_covers_all_servers_disjointly():
    view = MPCCluster(10).view()
    parts = view.split(3)
    servers = [s for sub in parts for s in sub.servers]
    assert sorted(servers) == list(range(10))
    assert len(parts) == 3


def test_split_clamps_groups():
    view = MPCCluster(2).view()
    parts = view.split(5)
    assert len(parts) == 2


def test_run_parallel_merges_rounds():
    cluster = MPCCluster(8)
    view = cluster.view()

    def deep(branch):
        for _ in range(3):
            branch.exchange([[] for _ in range(branch.p)])
        return "deep"

    def shallow(branch):
        branch.exchange([[] for _ in range(branch.p)])
        return "shallow"

    results = view.run_parallel([deep, shallow], sizes=[4, 4])
    assert results == ["deep", "shallow"]
    # Parallel branches share rounds: total rounds = max(3, 1) = 3.
    assert view.round == 3


def test_run_parallel_waves_when_oversubscribed():
    cluster = MPCCluster(2)
    view = cluster.view()

    def one_round(branch):
        branch.exchange([[] for _ in range(branch.p)])
        return branch.servers

    results = view.run_parallel([one_round] * 4, sizes=[1, 1, 1, 1])
    assert len(results) == 4
    # 4 tasks of width 1 on 2 servers → 2 waves → 2 rounds.
    assert view.round == 2


def test_run_parallel_validates_sizes():
    view = MPCCluster(2).view()
    with pytest.raises(AllocationError):
        view.run_parallel([lambda b: None], sizes=[1, 2])


def test_single_server_cluster_works():
    cluster = MPCCluster(1)
    view = cluster.view()
    inboxes = view.exchange([[(0, "x"), (0, "y")]])
    assert inboxes == [["x", "y"]]


def test_cluster_requires_servers():
    with pytest.raises(ValueError):
        MPCCluster(0)


def test_tracker_phases():
    tracker = LoadTracker()
    tracker.push_phase("alpha")
    tracker.record_receive(0, 0, 5)
    tracker.pop_phase()
    tracker.push_phase("beta")
    tracker.record_receive(1, 1, 2)
    tracker.pop_phase()
    report = tracker.report()
    assert ("alpha", 5) in report.phases
    assert ("beta", 2) in report.phases


def test_tracker_rejects_negative_counts():
    tracker = LoadTracker()
    with pytest.raises(ValueError):
        tracker.record_receive(0, 0, -1)


def test_per_round_loads():
    tracker = LoadTracker()
    tracker.record_receive(0, 0, 3)
    tracker.record_receive(2, 1, 7)
    assert tracker.per_round_loads() == [3, 0, 7]
    assert tracker.rounds == 3


def test_phase_context_manager():
    tracker = LoadTracker()
    with tracker.phase("outer"):
        tracker.record_receive(0, 0, 4)
        with tracker.phase("inner"):
            tracker.record_receive(1, 1, 9)
    phases = dict(tracker.report().phases)
    assert phases["inner"] == 9
    assert phases["outer"] == 9  # max over its whole span


def test_phase_survives_exceptions():
    tracker = LoadTracker()
    try:
        with tracker.phase("boom"):
            raise RuntimeError("x")
    except RuntimeError:
        pass
    # Stack unwound; a later phase still records cleanly.
    with tracker.phase("after"):
        tracker.record_receive(0, 0, 2)
    assert dict(tracker.report().phases) == {"after": 2}


def test_parallel_branch_phases_do_not_pollute_each_other():
    """Regression: phases of run_parallel branches share round indices.

    The old round-range heuristic (`round >= start_round` at pop time)
    attributed the deep branch's later rounds to the shallow branch's phase
    and missed the shallow branch's own rounds entirely; tag-based
    attribution charges each delivery to the phases open when it happens.
    """
    cluster = MPCCluster(4)
    view = cluster.view()

    def deep(branch):
        with branch.tracker.phase("deep"):
            for count in (7, 9, 11):
                branch.exchange(
                    [[(0, "x")] * count] + [[] for _ in range(branch.p - 1)]
                )
        return "deep"

    def shallow(branch):
        with branch.tracker.phase("shallow"):
            branch.exchange([[(0, "q")] * 3] + [[] for _ in range(branch.p - 1)])
        return "shallow"

    results = view.run_parallel([deep, shallow], sizes=[2, 2])
    assert results == ["deep", "shallow"]
    phases = dict(cluster.report().phases)
    assert phases["deep"] == 11
    assert phases["shallow"] == 3  # round-range attribution reported 0 here


def test_phase_spanning_run_parallel_sees_all_branches():
    cluster = MPCCluster(4)
    view = cluster.view()

    def branch_task(count):
        def task(branch):
            branch.exchange([[(0, "x")] * count] + [[] for _ in range(branch.p - 1)])
        return task

    with cluster.tracker.phase("whole-join"):
        view.run_parallel([branch_task(5), branch_task(8)], sizes=[2, 2])
    assert dict(cluster.report().phases)["whole-join"] == 8


def test_algorithm_reports_include_phases():
    from repro import run_query
    from repro.workloads import planted_out_matmul

    result = run_query(planted_out_matmul(n=150, out=9000), p=4)
    labels = [label for label, _load in result.report.phases]
    assert any(label.startswith("matmul-wc/") for label in labels)
