"""Workload generators: realized sizes, planted OUT accuracy, skew."""

import random

import pytest

from repro.ram import evaluate, output_size
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS
from repro.workloads import (
    grid_road_network,
    line_instance,
    planted_out_line,
    planted_out_matmul,
    planted_out_star,
    power_law_edges,
    random_sparse_matmul,
    random_sparse_matrix,
    star_instance,
    starlike_instance,
    twig_instance,
    zipf_matmul,
)


def test_random_sparse_matrix_sizes_and_bounds():
    rng = random.Random(1)
    relation = random_sparse_matrix("R", ("A", "B"), 50, 20, 20, rng)
    assert len(relation) == 50
    assert all(0 <= a < 20 and 0 <= b < 20 for (a, b) in relation.tuples)
    with pytest.raises(ValueError):
        random_sparse_matrix("R", ("A", "B"), 100, 5, 5, rng)


def test_random_sparse_matmul_instance():
    instance = random_sparse_matmul(80, 90, 30, 10, 30, seed=2)
    assert len(instance.relation("R1")) == 80
    assert len(instance.relation("R2")) == 90
    assert instance.query.classify() == "matmul"


@pytest.mark.parametrize("out", [300, 1200, 9000, 90_000])
def test_planted_out_matmul_hits_target(out):
    n = 300
    instance = planted_out_matmul(n=n, out=out)
    assert len(instance.relation("R1")) == n
    assert len(instance.relation("R2")) == n
    realized = output_size(instance)
    assert out / 2 <= realized <= out * 2


def test_planted_out_matmul_validates_range():
    with pytest.raises(ValueError):
        planted_out_matmul(n=100, out=50)
    with pytest.raises(ValueError):
        planted_out_matmul(n=100, out=100 * 100 + 1)


def test_zipf_matmul_has_skew():
    instance = zipf_matmul(300, 300, 40, alpha=1.5, seed=3)
    degrees = sorted(
        (instance.relation("R1").degree("B", b) for b in range(40)), reverse=True
    )
    assert degrees[0] >= 5 * max(1, degrees[len(degrees) // 2])


def test_line_and_star_instances_classify():
    assert line_instance(4, 30, 8, seed=1).query.classify() == "line"
    assert star_instance(3, 30, 8, 4, seed=1).query.classify() == "star"
    assert starlike_instance([1, 2, 2], 20, 6, seed=1).query.classify() == "star-like"
    assert twig_instance(20, 5, seed=1).query.classify() == "twig"
    assert twig_instance(20, 5, seed=1, bridge_length=3).query.classify() == "twig"


@pytest.mark.parametrize("out", [500, 2000])
def test_planted_out_line_hits_target(out):
    instance = planted_out_line(length=3, n=200, out=out)
    realized = output_size(instance)
    assert out / 2 <= realized <= out * 2


def test_planted_out_star_shape():
    instance = planted_out_star(arms=3, n=60, out=6000)
    assert instance.query.classify() == "star"
    realized = output_size(instance)
    assert realized >= 600  # within an order of magnitude by construction


def test_power_law_edges_skew():
    edges = power_law_edges("E", ("U", "V"), nodes=200, edges=600, alpha=1.4, seed=4)
    assert len(edges) == 600
    in_degrees = sorted(
        (edges.degree("V", v) for v in edges.active_domain("V")), reverse=True
    )
    assert in_degrees[0] >= 10


def test_grid_road_network_structure():
    roads = grid_road_network("E", ("U", "V"), side=5, seed=5)
    # 2 directed edges per undirected segment; 2·5·4 segments.
    assert len(roads) == 2 * 2 * 5 * 4
    assert all(cost >= 1 for cost in roads.tuples.values())
    # Symmetric costs.
    for (u, v), cost in roads.tuples.items():
        assert roads.annotation((v, u)) == cost


def test_weight_fn_threading():
    instance = line_instance(
        3, 20, 6, seed=6, semiring=TROPICAL_MIN_PLUS, weight_fn=lambda: 2.5
    )
    for name, _ in instance.query.relations:
        assert all(w == 2.5 for w in instance.relation(name).tuples.values())


def test_caterpillar_instance_shape():
    from repro.workloads import caterpillar_instance

    instance = caterpillar_instance(spine=3, legs_per_hub=2, tuples=15,
                                    domain=4, seed=1)
    query = instance.query
    assert query.classify() == "twig"
    assert len(query.relations) == 2 + 3 * 2  # spine edges + legs
    high_degree = {a for a, d in query.degrees.items() if d >= 3}
    assert high_degree == {"B0", "B1", "B2"}
    # Runs end-to-end through §7.
    from repro import run_query

    result = run_query(instance, p=4)
    assert result.relation.tuples == evaluate(instance).tuples
