"""Perf-regression observatory: schema normalization, thresholds, trend file."""

import importlib.util
import itertools
import json
import os
import sys

import pytest

_REGRESSION_PATH = os.path.join(
    os.path.dirname(__file__), os.pardir, "benchmarks", "regression.py"
)
_counter = itertools.count()


def _load():
    name = f"regression_under_test_{next(_counter)}"
    spec = importlib.util.spec_from_file_location(name, _REGRESSION_PATH)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _kernels_doc(**overrides):
    doc = {
        "scale": "full",
        "repeats": 5,
        "kernels": [
            {"kernel": "reduce-by-key", "n": 200000,
             "pytuple_s": 0.070, "numpy_s": 0.010, "speedup": 7.0},
        ],
        "end_to_end": [
            {"family": "matmul", "n": 1000, "out": 16000, "p": 16,
             "input_size": 2000, "max_load": 500,
             "pytuple_s": 0.10, "numpy_s": 0.09, "speedup": 1.11,
             "reports_identical": True},
        ],
    }
    doc.update(overrides)
    return doc


def _planner_doc(**overrides):
    doc = {
        "scale": "full", "p": 8, "max_tuples": 160, "domain": 14,
        "sweep_seed": 2020, "worst_regret": 1.18, "worst_vs_auto": 1.0,
        "rows": [
            {"family": "matmul", "skew": "uniform", "measured_auto": 82,
             "regret": 1.08},
        ],
    }
    doc.update(overrides)
    return doc


def test_normalize_kernels_names_and_kinds():
    regression = _load()
    metrics = {m.name: m for m in regression.normalize_kernels(_kernels_doc())}
    assert metrics["kernels/reduce-by-key/pytuple_s"].kind == "wall"
    assert metrics["kernels/reduce-by-key/speedup"].direction == "higher"
    assert metrics["end_to_end/matmul-n1000-out16000-p16/max_load"].kind == "load"


def test_normalize_planner_names_and_kinds():
    regression = _load()
    metrics = {m.name: m for m in regression.normalize_planner(_planner_doc())}
    assert metrics["planner/worst_vs_auto"].kind == "ratio"
    assert metrics["planner/matmul-uniform/load_auto"].kind == "load"
    assert metrics["planner/matmul-uniform/regret"].value == 1.08


def test_committed_baselines_normalize_and_validate():
    regression = _load()
    kernels = json.load(open(regression.KERNELS_BASELINE))
    planner = json.load(open(regression.PLANNER_BASELINE))
    assert regression.normalize_kernels(kernels)
    assert regression.normalize_planner(planner)
    assert regression.validate_baseline("kernels", kernels) == []
    assert regression.validate_baseline("planner", planner) == []


def test_wall_thresholds_warn_and_fail():
    regression = _load()
    base = [regression.Metric("x/wall_s", 0.100, "wall")]

    def status(value):
        fresh = [regression.Metric("x/wall_s", value, "wall")]
        (finding,) = regression.compare_metrics(base, fresh)
        return finding.status

    assert status(0.105) == "ok"          # within noise
    assert status(0.120) == "warn"        # > 1.1x, <= 1.3x
    assert status(0.200) == "fail"        # > 1.3x
    assert status(0.080) == "improved"


def test_wall_jitter_floor_never_flags():
    regression = _load()
    base = [regression.Metric("x/wall_s", 0.001, "wall")]
    fresh = [regression.Metric("x/wall_s", 0.004, "wall")]  # 4x but tiny
    (finding,) = regression.compare_metrics(base, fresh)
    assert finding.status == "ok" and finding.factor is None


def test_deterministic_metrics_warn_on_any_increase():
    regression = _load()
    base = [regression.Metric("x/max_load", 500, "load")]

    def status(value):
        fresh = [regression.Metric("x/max_load", value, "load")]
        (finding,) = regression.compare_metrics(base, fresh)
        return finding.status

    assert status(500) == "ok"
    assert status(501) == "warn"      # any increase of a seeded metric
    assert status(600) == "fail"      # > 1.1x
    assert status(499) == "improved"


def test_higher_is_better_direction_folds_into_factor():
    regression = _load()
    base = [regression.Metric("x/speedup", 10.0, "ratio", "higher")]
    fresh = [regression.Metric("x/speedup", 5.0, "ratio", "higher")]
    (finding,) = regression.compare_metrics(base, fresh)
    assert finding.factor == pytest.approx(2.0)
    assert finding.status == "fail"


def test_missing_and_new_metrics_are_reported():
    regression = _load()
    base = [regression.Metric("gone", 1.0, "wall")]
    fresh = [regression.Metric("added", 1.0, "wall")]
    statuses = {f.name: f.status for f in regression.compare_metrics(base, fresh)}
    assert statuses == {"gone": "missing", "added": "new"}


def test_scale_mismatch_is_incomparable():
    regression = _load()
    base = [regression.Metric("x/wall_s", 0.1, "wall")]
    fresh = [regression.Metric("x/wall_s", 9.9, "wall")]
    (finding,) = regression.compare_metrics(base, fresh, comparable=False)
    assert finding.status == "incomparable" and finding.factor is None


def test_validate_baseline_gates():
    regression = _load()
    bad_kernels = _kernels_doc()
    bad_kernels["end_to_end"][0]["reports_identical"] = False
    bad_kernels["end_to_end"][0]["speedup"] = 0.9
    problems = regression.validate_baseline("kernels", bad_kernels)
    assert len(problems) == 2
    assert regression.validate_baseline(
        "planner", _planner_doc(worst_vs_auto=1.5)
    ) != []


def _write(path, doc):
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return str(path)


def test_main_green_on_identical_fresh_docs(tmp_path, capsys):
    regression = _load()
    baseline_k = _write(tmp_path / "bk.json", _kernels_doc())
    baseline_p = _write(tmp_path / "bp.json", _planner_doc())
    code = regression.main([
        "--baseline-kernels", baseline_k,
        "--baseline-planner", baseline_p,
        "--fresh-kernels", _write(tmp_path / "k.json", _kernels_doc()),
        "--fresh-planner", _write(tmp_path / "p.json", _planner_doc()),
        "--results", str(tmp_path / "results.md"),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "ok=" in out


def test_main_fails_on_regression_and_report_only_passes(tmp_path, capsys):
    regression = _load()
    baseline = _write(tmp_path / "bk.json", _kernels_doc())
    bad = _kernels_doc()
    bad["kernels"][0]["numpy_s"] = 0.020  # 2x wall regression
    bad_path = _write(tmp_path / "bad.json", bad)
    results = str(tmp_path / "results.md")

    code = regression.main(["--suites", "kernels",
                            "--baseline-kernels", baseline,
                            "--fresh-kernels", bad_path,
                            "--results", results])
    assert code == 1
    capsys.readouterr()

    code = regression.main(["--suites", "kernels",
                            "--baseline-kernels", baseline,
                            "--fresh-kernels", bad_path,
                            "--results", results, "--report-only"])
    assert code == 0
    assert "report-only" in capsys.readouterr().err


def test_main_writes_trend_table(tmp_path):
    regression = _load()
    results = tmp_path / "results.md"
    code = regression.main([
        "--suites", "kernels",
        "--baseline-kernels", _write(tmp_path / "bk.json", _kernels_doc()),
        "--fresh-kernels", _write(tmp_path / "k.json", _kernels_doc()),
        "--results", str(results),
    ])
    assert code == 0
    text = results.read_text()
    assert "bench-regression" in text
    assert "kernels/reduce-by-key/pytuple_s" in text
    assert "## Latest run" in text


def test_main_baseline_only_mode_is_green(tmp_path, capsys):
    regression = _load()
    code = regression.main(["--results", str(tmp_path / "results.md")])
    assert code == 0
    out = capsys.readouterr().out
    assert "baseline" in out


def test_main_json_output(tmp_path, capsys):
    regression = _load()
    code = regression.main([
        "--suites", "planner",
        "--baseline-planner", _write(tmp_path / "bp.json", _planner_doc()),
        "--fresh-planner", _write(tmp_path / "p.json", _planner_doc()),
        "--no-results", "--json",
    ])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["ok"] is True
    assert all(f["status"] == "ok" for f in document["findings"])


def test_main_scale_mismatch_reports_only(tmp_path, capsys):
    regression = _load()
    tiny = _kernels_doc(scale="tiny")
    tiny["kernels"][0]["numpy_s"] = 99.0  # would fail hard if comparable
    code = regression.main([
        "--suites", "kernels",
        "--baseline-kernels", _write(tmp_path / "bk.json", _kernels_doc()),
        "--fresh-kernels", _write(tmp_path / "k.json", tiny),
        "--no-results",
    ])
    assert code == 0
    assert "thresholds not applied" in capsys.readouterr().out
