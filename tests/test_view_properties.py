"""Property tests for ClusterView sub-allocation (subview / split).

The paper's "allocate p_i servers to subquery i" steps rely on three
structural guarantees: ``split`` yields *disjoint* sub-views that exactly
cover the parent, sub-views inherit the parent's round cursor (so branch
rounds line up with the synchronous schedule), and impossible allocations
(empty requests, indices outside the view) fail with ``AllocationError``
instead of silently mis-mapping servers.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import pytest

from repro.mpc import AllocationError, MPCCluster

SETTINGS = settings(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@SETTINGS
@given(p=st.integers(min_value=1, max_value=24),
       groups=st.integers(min_value=1, max_value=32))
def test_split_is_a_disjoint_cover_of_the_parent(p, groups):
    view = MPCCluster(p).view()
    parts = view.split(groups)
    assert 1 <= len(parts) <= min(groups, p)
    seen = [server for part in parts for server in part.servers]
    # Disjoint, complete, and in parent order (contiguous blocks).
    assert seen == list(view.servers)
    assert all(part.p >= 1 for part in parts)


@SETTINGS
@given(p=st.integers(min_value=1, max_value=24),
       groups=st.integers(min_value=1, max_value=32),
       rounds=st.integers(min_value=0, max_value=9))
def test_subviews_inherit_the_round_cursor(p, groups, rounds):
    view = MPCCluster(p).view()
    view.round = rounds
    for part in view.split(groups):
        assert part.round == rounds
        assert part.cluster is view.cluster


@SETTINGS
@given(p=st.integers(min_value=1, max_value=16), data=st.data())
def test_subview_maps_local_indices_onto_parent_servers(p, data):
    view = MPCCluster(p).view()
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=p - 1),
                 min_size=1, max_size=p)
    )
    sub = view.subview(indices)
    assert sub.servers == tuple(view.servers[i] for i in indices)
    # Nested subviews compose: local index 0 of the child is the child's
    # first server, whatever the parent numbering was.
    nested = sub.subview([0])
    assert nested.servers == (sub.servers[0],)


@SETTINGS
@given(p=st.integers(min_value=1, max_value=16))
def test_empty_subview_request_raises(p):
    view = MPCCluster(p).view()
    with pytest.raises(AllocationError):
        view.subview([])


@SETTINGS
@given(p=st.integers(min_value=1, max_value=16), data=st.data())
def test_out_of_range_subview_request_raises(p, data):
    view = MPCCluster(p).view()
    bad = data.draw(
        st.integers(min_value=-3, max_value=p + 3).filter(
            lambda i: not 0 <= i < p
        )
    )
    with pytest.raises(AllocationError):
        view.subview([0] * (p > 0) + [bad])


def test_run_parallel_rejects_mismatched_sizes():
    view = MPCCluster(4).view()
    with pytest.raises(AllocationError):
        view.run_parallel([lambda v: None], sizes=[1, 2])
