"""Lower-bound instances (§3.3) and the Table-1 formula module."""

import math

import pytest

from repro import run_query
from repro.lowerbounds import theorem2_instance, theorem3_instance
from repro.ram import evaluate
from repro.semiring import BOOLEAN, COUNTING
from repro.theory import (
    matmul_lower_bound,
    matmul_new_load,
    matmul_yannakakis_load,
    new_algorithm_load,
    yannakakis_load,
)


def test_theorem2_realizes_parameters():
    hard = theorem2_instance(50, 200, 400, BOOLEAN)
    assert hard.n1 <= 2 * 50 + 5
    assert hard.n2 <= 2 * 200 + 5
    exact_out = len(evaluate(hard.instance))
    assert 400 / 4 <= exact_out <= 400 * 2


def test_theorem2_core_structure():
    hard = theorem2_instance(10, 40, 40, COUNTING)
    r2 = hard.instance.relation("R2")
    # The core columns go through exactly two b values (b_0, b_1).
    core_bs = {v[0] for v in r2.tuples if v[0][0] == "b"}
    assert core_bs == {("b", 0), ("b", 1)}


def test_theorem3_is_complete_bipartite():
    hard = theorem3_instance(64, 64, 256, COUNTING)
    r1 = hard.instance.relation("R1")
    r2 = hard.instance.relation("R2")
    a_dom = r1.active_domain("A")
    b_dom = r1.active_domain("B")
    c_dom = r2.active_domain("C")
    assert len(r1) == len(a_dom) * len(b_dom)
    assert len(r2) == len(b_dom) * len(c_dom)
    assert len(evaluate(hard.instance)) == len(a_dom) * len(c_dom)
    assert hard.out == len(a_dom) * len(c_dom)


def test_theorem3_domain_sizes_follow_formula():
    n1, n2, out = 100, 400, 2000
    hard = theorem3_instance(n1, n2, out, COUNTING)
    r1 = hard.instance.relation("R1")
    a = len(r1.active_domain("A"))
    b = len(r1.active_domain("B"))
    assert a == max(1, round(math.sqrt(n1 * out / n2)))
    assert b == max(1, round(math.sqrt(n1 * n2 / out)))


def test_parameter_validation():
    with pytest.raises(ValueError):
        theorem2_instance(1, 10, 10, COUNTING)
    with pytest.raises(ValueError):
        theorem3_instance(10, 10, 5, COUNTING)  # OUT < max(N1, N2)
    with pytest.raises(ValueError):
        theorem3_instance(10, 10, 1000, COUNTING)  # OUT > N1·N2


def test_measured_load_respects_lower_bound_envelope():
    # Our (optimal) algorithm must sit between the lower bound and a
    # constant multiple of the upper bound on the hard family.
    p = 8
    hard = theorem3_instance(128, 128, 1024, COUNTING)
    result = run_query(hard.instance, p=p)
    lower = matmul_lower_bound(hard.n1, hard.n2, hard.out, p)
    upper = matmul_new_load(hard.n1, hard.n2, hard.out, p)
    assert result.report.max_load >= lower / 4
    assert result.report.max_load <= 32 * upper


# -- formula sanity -------------------------------------------------------------


def test_lower_bound_never_exceeds_upper_bound():
    for n1, n2, out, p in [
        (100, 100, 100, 4),
        (1000, 1000, 10_000, 16),
        (100, 10_000, 10_000, 64),
        (10_000, 100, 10_000, 64),
    ]:
        assert matmul_lower_bound(n1, n2, out, p) <= matmul_new_load(n1, n2, out, p) + 1e-9


def test_new_load_beats_baseline_for_large_out():
    n, p = 10_000, 64
    for out in (10_000, 100_000, 1_000_000):
        assert matmul_new_load(n, n, out, p) < matmul_yannakakis_load(2 * n, out, p)


def test_min_crossover_moves_with_out():
    n, p = 10_000, 64
    small = matmul_new_load(n, n, n, p)
    large = matmul_new_load(n, n, n * n, p)
    # For huge OUT the worst-case branch √(N1N2/p) caps the load.
    assert large == pytest.approx(2 * n / p + math.sqrt(n * n / p))
    assert small < large


def test_table1_rows_consistent():
    n, out, p = 5000, 50_000, 32
    for query_class in ("matmul", "line", "star", "tree", "free-connex"):
        baseline = yannakakis_load(query_class, n, out, p)
        ours = new_algorithm_load(query_class, n, out, p)
        assert ours <= baseline * 1.01, query_class


def test_unknown_class_rejected():
    with pytest.raises(ValueError):
        yannakakis_load("cyclic", 10, 10, 2)
    with pytest.raises(ValueError):
        new_algorithm_load("cyclic", 10, 10, 2)


def test_em_reduction_formulas():
    from repro.theory import (
        em_io_cost_from_mpc,
        em_lower_bound_pagh_stockel,
        minimal_servers_for_memory,
        mpc_lower_bound_via_em,
    )

    # p* finds the smallest power-of-two p with load ≤ M/r.
    p_star = minimal_servers_for_memory(
        lambda p: 10_000 / p, memory=1000, rounds=2, p_max=1 << 12
    )
    assert p_star == 32  # 10000/32 = 312.5 ≤ 500
    with pytest.raises(ValueError):
        minimal_servers_for_memory(lambda p: 1e12, memory=10, rounds=1, p_max=8)

    io = em_io_cost_from_mpc(n=1e6, rounds=3, p_star=p_star, memory=1000, block=100)
    assert io == pytest.approx(1e6 / 100 + 3 * 32 * 10)

    # The EM-derived MPC bound never exceeds the native Theorem-3 bound by
    # more than constants at N1 = N2 (it is the weaker of the two).
    for out in (1e3, 1e5, 1e7):
        via_em = mpc_lower_bound_via_em(n=1e4, out=out, p=64)
        native = matmul_lower_bound(1e4, 1e4, out, 64)
        assert via_em <= 8 * native + 1e4

    assert em_lower_bound_pagh_stockel(1e6, 1e6, memory=1e4, block=100) > 0


def test_differential_fuzz_via_conformance():
    """The 1.x ``testing.fuzz_differential`` forwarder is gone; the
    conformance campaign is the one differential entry point."""
    from repro.conformance import FuzzConfig, fuzz

    summary = fuzz(FuzzConfig(iterations=5, seed=3, p=3,
                              invariants=("differential",)))
    assert summary.ok and summary.checked == 5
