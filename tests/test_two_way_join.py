"""Skew-resilient two-way join + aggregation (the baseline's engine)."""

import random

import pytest

from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.core.two_way_join import aggregate_relation, join_aggregate_pair
from repro.ram import evaluate
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS
from tests.conftest import MATMUL_QUERY, random_instance


def _load(view, relation):
    return DistRelation.load(view, relation)


def test_join_keep_all_is_full_join():
    r1 = Relation("R1", ("A", "B"), [((i, i % 3), 1) for i in range(9)])
    r2 = Relation("R2", ("B", "C"), [((i % 3, i), 1) for i in range(9)])
    cluster = MPCCluster(4)
    view = cluster.view()
    joined = join_aggregate_pair(
        _load(view, r1), _load(view, r2), ("A", "B", "C"), COUNTING
    )
    expected = {
        (a, b, c)
        for (a, b), _ in r1
        for (b2, c), _ in r2
        if b == b2
    }
    assert {k for k, _w in joined.data.collect()} == expected
    assert all(w == 1 for _k, w in joined.data.collect())


def test_join_aggregates_out_middle():
    rng = random.Random(1)
    instance = random_instance(
        MATMUL_QUERY, 120, 10, rng, COUNTING, lambda r: r.randint(1, 5)
    )
    cluster = MPCCluster(8)
    view = cluster.view()
    joined = join_aggregate_pair(
        _load(view, instance.relation("R1")),
        _load(view, instance.relation("R2")),
        ("A", "C"),
        COUNTING,
    )
    got = dict(joined.data.collect())
    want = dict(evaluate(instance).tuples)
    assert got == want


@pytest.mark.parametrize("p", [1, 3, 8, 16])
def test_join_correct_for_any_p(p):
    rng = random.Random(p)
    instance = random_instance(
        MATMUL_QUERY, 80, 8, rng, TROPICAL_MIN_PLUS,
        lambda r: float(r.randint(0, 9)),
    )
    cluster = MPCCluster(p)
    view = cluster.view()
    joined = join_aggregate_pair(
        _load(view, instance.relation("R1")),
        _load(view, instance.relation("R2")),
        ("A", "C"),
        TROPICAL_MIN_PLUS,
    )
    assert dict(joined.data.collect()) == dict(evaluate(instance).tuples)


def test_join_under_extreme_skew_exact_once():
    # One B value everywhere: the fragment-replicate grid must not double
    # count products across colliding cells (regression test).
    n = 60
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    cluster = MPCCluster(8)
    view = cluster.view()
    joined = join_aggregate_pair(
        _load(view, r1), _load(view, r2), ("A", "C"), COUNTING
    )
    collected = dict(joined.data.collect())
    assert len(collected) == n * n
    assert all(w == 1 for w in collected.values())
    assert cluster.report().elementary_products == n * n


def test_join_skew_load_beats_single_server():
    n = 200
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(n)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(n)])
    cluster = MPCCluster(16)
    view = cluster.view()
    join_aggregate_pair(_load(view, r1), _load(view, r2), ("A", "C"), COUNTING)
    # A skew-oblivious hash join would put all 2n tuples on one server and
    # then shuffle n² results; the grid keeps the max load well below that.
    assert cluster.report().max_load < n * n / 4


def test_join_requires_shared_attribute():
    r1 = Relation("R1", ("A", "B"), [((0, 0), 1)])
    r2 = Relation("R2", ("C", "D"), [((0, 0), 1)])
    view = MPCCluster(2).view()
    with pytest.raises(ValueError):
        join_aggregate_pair(_load(view, r1), _load(view, r2), ("A",), COUNTING)


def test_join_rejects_unknown_keep_attr():
    r1 = Relation("R1", ("A", "B"), [((0, 0), 1)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 1)])
    view = MPCCluster(2).view()
    with pytest.raises(ValueError):
        join_aggregate_pair(_load(view, r1), _load(view, r2), ("A", "Z"), COUNTING)


def test_aggregate_relation_groups():
    relation = Relation(
        "R", ("A", "B", "C"),
        [((0, 0, 0), 1), ((0, 1, 0), 2), ((1, 0, 1), 4)],
    )
    cluster = MPCCluster(3)
    aggregated = aggregate_relation(
        _load(cluster.view(), relation), ("A", "C"), COUNTING
    )
    assert dict(aggregated.data.collect()) == {(0, 0): 3, (1, 1): 4}


def test_aggregate_relation_to_scalar():
    relation = Relation("R", ("A",), [((0,), 2), ((1,), 3)])
    cluster = MPCCluster(2)
    aggregated = aggregate_relation(_load(cluster.view(), relation), (), COUNTING)
    assert dict(aggregated.data.collect()) == {(): 5}
