"""Command-line interface."""

import pytest

from repro.cli import main


def test_compare_runs_and_reports(capsys):
    code = main(["compare", "--family", "matmul", "--tuples", "120",
                 "--out", "600", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0
    assert "load speedup" in captured.out
    assert "distributed Yannakakis" in captured.out


@pytest.mark.parametrize(
    "family", ["line", "line-bowtie", "star", "star-overlap", "starlike", "twig",
               "matmul-zipf"]
)
def test_compare_all_families(capsys, family):
    code = main(["compare", "--family", family, "--tuples", "60",
                 "--domain", "8", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0, captured.out
    assert "OUT=" in captured.out


def test_sweep(capsys):
    code = main(["sweep", "--tuples", "100", "--points", "2", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0
    lines = [line for line in captured.out.splitlines() if line.strip()]
    assert len(lines) == 3  # header + 2 points


def test_sweep_rejects_other_families(capsys):
    code = main(["sweep", "--family", "star", "--tuples", "50"])
    assert code == 2


def test_unknown_family_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--family", "nope"])


def test_table1(capsys):
    code = main(["table1", "--scale", "100", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0
    for label in ("matmul", "line", "star", "tree"):
        assert label in captured.out


def test_reporting_module():
    from repro.reporting import render_markdown, table1_report

    rows = table1_report(scale=80, p=4)
    assert [row.label for row in rows] == ["matmul", "line", "star", "tree"]
    for row in rows:
        assert row.baseline_load > 0 and row.new_load > 0
        assert row.speedup == row.baseline_load / row.new_load
    markdown = render_markdown(rows)
    assert markdown.count("\n") == len(rows) + 1
    assert "| matmul |" in markdown
