"""Command-line interface."""

import json

import pytest

from repro.cli import main


def test_compare_runs_and_reports(capsys):
    code = main(["compare", "--family", "matmul", "--tuples", "120",
                 "--out", "600", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0
    assert "load speedup" in captured.out
    assert "distributed Yannakakis" in captured.out


@pytest.mark.parametrize(
    "family", ["line", "line-bowtie", "star", "star-overlap", "starlike", "twig",
               "matmul-zipf"]
)
def test_compare_all_families(capsys, family):
    code = main(["compare", "--family", family, "--tuples", "60",
                 "--domain", "8", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0, captured.out
    assert "OUT=" in captured.out


def test_sweep(capsys):
    code = main(["sweep", "--tuples", "100", "--points", "2", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0
    lines = [line for line in captured.out.splitlines() if line.strip()]
    assert len(lines) == 3  # header + 2 points


@pytest.mark.parametrize("family", ["star", "line", "twig"])
def test_sweep_other_families_sweep_tuples(capsys, family):
    code = main(["sweep", "--family", family, "--tuples", "40", "--domain", "10",
                 "--points", "2", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0, captured.out
    lines = [line for line in captured.out.splitlines() if line.strip()]
    assert len(lines) == 3  # header + 2 points
    assert "tuples" in lines[0]


def test_sweep_json(capsys):
    code = main(["sweep", "--family", "line", "--tuples", "40", "--domain", "10",
                 "--points", "2", "--p", "4", "--json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["family"] == "line" and document["knob"] == "tuples"
    assert len(document["points"]) == 2
    assert document["points"][1]["tuples"] == 80
    for point in document["points"]:
        assert point["baseline_load"] > 0 and point["new_load"] > 0


def test_unknown_family_rejected():
    with pytest.raises(SystemExit):
        main(["compare", "--family", "nope"])


def test_table1(capsys):
    code = main(["table1", "--scale", "100", "--p", "4"])
    captured = capsys.readouterr()
    assert code == 0
    for label in ("matmul", "line", "star", "tree"):
        assert label in captured.out


def test_compare_json_and_trace_out(capsys, tmp_path):
    trace_path = tmp_path / "compare.jsonl"
    code = main(["compare", "--family", "matmul", "--tuples", "120",
                 "--out", "600", "--p", "4", "--json",
                 "--trace-out", str(trace_path)])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["baseline"]["max_load"] > 0
    assert document["ours"]["max_load"] > 0
    assert document["speedup"] == pytest.approx(
        document["baseline"]["max_load"] / document["ours"]["max_load"]
    )
    from repro.obs import read_trace, trace_aggregates

    aggregates = trace_aggregates(read_trace(str(trace_path)))
    assert aggregates["max_load"] == document["ours"]["max_load"]


def test_table1_json(capsys):
    code = main(["table1", "--scale", "80", "--p", "4", "--json"])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert [row["label"] for row in document["rows"]] == [
        "matmul", "line", "star", "tree"
    ]
    for row in document["rows"]:
        assert row["speedup"] > 0


def test_trace_smoke(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    code = main(["trace", "--family", "line", "--tuples", "60", "--domain", "8",
                 "--p", "4", "--trace-out", str(trace_path)])
    captured = capsys.readouterr()
    assert code == 0
    assert "scale:" in captured.out        # the heatmap legend
    assert "peak round" in captured.out
    assert trace_path.exists()
    for line in trace_path.read_text().splitlines():
        json.loads(line)  # every line is a valid JSON event


def test_trace_json(capsys, tmp_path):
    trace_path = tmp_path / "trace.jsonl"
    code = main(["trace", "--family", "star", "--tuples", "60", "--domain", "8",
                 "--p", "4", "--json", "--trace-out", str(trace_path)])
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["report"]["max_load"] > 0
    assert document["events"] > 0
    assert len(document["per_round"]) == document["report"]["rounds"]
    assert document["overall_skew"]["max"] == document["report"]["max_load"]


def test_reporting_module():
    from repro import api
    from repro.config import ExecutionConfig
    from repro.reporting import render_markdown

    rows = api.table1(scale=80, config=ExecutionConfig(p=4))
    assert [row.label for row in rows] == ["matmul", "line", "star", "tree"]
    for row in rows:
        assert row.baseline_load > 0 and row.new_load > 0
        assert row.speedup == row.baseline_load / row.new_load
    markdown = render_markdown(rows)
    assert markdown.count("\n") == len(rows) + 1
    assert "| matmul |" in markdown


def test_fuzz_smoke(capsys):
    code = main(["fuzz", "--iterations", "6"])
    captured = capsys.readouterr()
    assert code == 0
    assert "OK: no invariant violations" in captured.out
    assert "family" in captured.out and "invariant" in captured.out


def test_fuzz_json_is_deterministic_per_seed(capsys):
    code = main(["fuzz", "--iterations", "8", "--seed", "4", "--json"])
    first = capsys.readouterr().out
    assert code == 0
    code = main(["fuzz", "--iterations", "8", "--seed", "4", "--json"])
    second = capsys.readouterr().out
    assert code == 0
    assert first == second
    document = json.loads(first)
    assert document["ok"] is True and document["checked"] == 8


def test_fuzz_restricted_families_and_invariants(capsys):
    code = main(["fuzz", "--iterations", "4", "--families", "star",
                 "--invariants", "differential", "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert set(document["coverage"]["family"]) == {"star"}
    assert set(document["coverage"]["invariant"]) == {"differential"}


def test_fuzz_rejects_unknown_selection(capsys):
    code = main(["fuzz", "--families", "pentagon"])
    captured = capsys.readouterr()
    assert code == 2
    assert "unknown --families value" in captured.err


def test_fuzz_seconds_budget(capsys):
    code = main(["fuzz", "--seconds", "0.5", "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert document["checked"] >= 1


def test_fuzz_reports_planted_bug_with_corpus(capsys, tmp_path):
    from repro.conformance import corpus_files, planted_exchange_off_by_one

    corpus = str(tmp_path / "corpus")
    with planted_exchange_off_by_one():
        code = main(["fuzz", "--iterations", "30", "--invariants",
                     "differential", "--fail-fast", "--corpus", corpus])
    captured = capsys.readouterr()
    assert code == 1
    assert "FAILURES: 1" in captured.err
    assert "shrunk" in captured.err
    assert len(corpus_files(corpus)) == 1


def test_table1_families_subset_cli(capsys):
    code = main(["table1", "--scale", "40", "--p", "4",
                 "--families", "star", "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert [row["label"] for row in document["rows"]] == ["star"]


def test_table1_unknown_family_cli(capsys):
    code = main(["table1", "--scale", "40", "--p", "4", "--families", "bogus"])
    captured = capsys.readouterr()
    assert code == 1
    assert "unknown Table-1 families" in captured.err


# -- wall-clock profiling -------------------------------------------------------

def test_profile_command_smoke(capsys, tmp_path):
    out = str(tmp_path / "p.speedscope.json")
    code = main(["profile", "--family", "matmul", "--tuples", "100",
                 "--p", "8", "--profile-out", out])
    captured = capsys.readouterr()
    assert code == 0
    assert "self_s" in captured.out and "run:" in captured.out
    from repro.obs import replay_speedscope
    document = json.load(open(out))
    assert document["$schema"].endswith("file-format-schema.json")
    replay_speedscope(document)  # balanced, schema-valid


def test_profile_command_json_and_exports(capsys, tmp_path):
    out = str(tmp_path / "p.speedscope.json")
    chrome = str(tmp_path / "p.chrome.json")
    metrics = str(tmp_path / "p.prom")
    code = main(["profile", "--family", "line", "--tuples", "60",
                 "--domain", "8", "--p", "4", "--profile-out", out,
                 "--chrome-out", chrome, "--metrics-out", metrics,
                 "--top", "5", "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert document["total_wall_s"] > 0
    assert len(document["hotspots"]) <= 5
    assert document["tree"][0]["label"].startswith("run:")
    trace = json.load(open(chrome))
    assert trace["traceEvents"][0]["ph"] == "B"
    exposition = open(metrics).read()
    assert "repro_span_seconds_total" in exposition
    assert 'repro_last_max_load{scope="line"}' in exposition


def test_profile_command_rejects_bad_algorithm(capsys, tmp_path):
    code = main(["profile", "--family", "matmul", "--tuples", "60",
                 "--algorithm", "nope",
                 "--profile-out", str(tmp_path / "p.json")])
    assert code == 2
    assert "ERROR" in capsys.readouterr().err


def test_compare_profile_flag(capsys):
    code = main(["compare", "--family", "matmul", "--tuples", "100",
                 "--p", "4", "--profile"])
    captured = capsys.readouterr()
    assert code == 0
    assert "wall-clock profile" in captured.out
    assert "self_s" in captured.out


def test_table1_profile_json_key_only_when_on(capsys, tmp_path):
    code = main(["table1", "--scale", "60", "--p", "4", "--json"])
    plain = json.loads(capsys.readouterr().out)
    assert code == 0
    assert "profile" not in plain

    out = str(tmp_path / "t.speedscope.json")
    code = main(["table1", "--scale", "60", "--p", "4", "--json",
                 "--profile-out", out])
    profiled = json.loads(capsys.readouterr().out)
    assert code == 0
    assert profiled["rows"] == plain["rows"]  # answers unchanged
    assert profiled["profile"]["hotspots"]
    assert profiled["profile"]["profile_out"] == out
    json.load(open(out))


def test_sweep_profile_flag_json(capsys):
    code = main(["sweep", "--family", "matmul", "--tuples", "40",
                 "--points", "2", "--p", "4", "--json", "--profile"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert document["profile"]["total_wall_s"] > 0


# -- trace filters and per-phase table ------------------------------------------

def test_trace_phase_and_op_filters(capsys, tmp_path):
    trace_out = str(tmp_path / "t.jsonl")
    code = main(["trace", "--family", "matmul", "--tuples", "60",
                 "--domain", "8", "--p", "4", "--trace-out", trace_out,
                 "--op", "exchange", "--phase", "matmul-wc", "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert document["filters"] == {"phase": "matmul-wc", "op": "exchange"}
    # The JSONL file keeps everything; the analysis saw a subset.
    full_events = sum(1 for _ in open(trace_out))
    assert 0 < document["events"] < full_events


def test_trace_top_phase_table(capsys, tmp_path):
    trace_out = str(tmp_path / "t.jsonl")
    code = main(["trace", "--family", "matmul", "--tuples", "60",
                 "--domain", "8", "--p", "4", "--trace-out", trace_out,
                 "--top", "3"])
    captured = capsys.readouterr()
    assert code == 0
    assert "phase paths by max per-server load" in captured.out

    code = main(["trace", "--family", "matmul", "--tuples", "60",
                 "--domain", "8", "--p", "4", "--trace-out", trace_out,
                 "--top", "2", "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    loads = document["phase_loads"]
    assert 0 < len(loads) <= 2
    assert loads == sorted(loads, key=lambda r: (-r["max_load"], r["phase"]))


def test_trace_json_has_no_filter_keys_by_default(capsys, tmp_path):
    code = main(["trace", "--family", "line", "--tuples", "40",
                 "--domain", "8", "--p", "4",
                 "--trace-out", str(tmp_path / "t.jsonl"), "--json"])
    document = json.loads(capsys.readouterr().out)
    assert code == 0
    assert "filters" not in document and "phase_loads" not in document


def test_serve_preloads_instances_and_configures_state(capsys, tmp_path,
                                                       monkeypatch):
    """`repro serve` builds a ServiceState from its flags and registers
    every --preload file before binding (the server loop is stubbed)."""
    import repro.service
    from repro.io import instance_to_json
    from repro.workloads import planted_out_matmul

    path = tmp_path / "mm.json"
    path.write_text(instance_to_json(planted_out_matmul(n=20, out=40)))
    captured = {}
    monkeypatch.setattr(
        repro.service, "serve",
        lambda state, host, port, verbose: captured.update(
            state=state, host=host, port=port),
    )
    code = main(["serve", "--preload", f"mm={path}", "--port", "0",
                 "--max-concurrent", "2", "--queue-depth", "3",
                 "--load-budget", "9000", "--p", "4"])
    assert code == 0
    assert "preloaded 'mm'" in capsys.readouterr().out
    state = captured["state"]
    assert [e["name"] for e in state.registry.list()] == ["mm"]
    assert state.admission.max_concurrent == 2
    assert state.admission.queue_depth == 3
    assert state.admission.load_budget == 9000
    assert state.default_config.p == 4


def test_serve_rejects_malformed_preload_specs(capsys, tmp_path):
    assert main(["serve", "--preload", "no-equals-sign"]) == 2
    assert "NAME=PATH" in capsys.readouterr().err
    assert main(["serve", "--preload", f"x={tmp_path}/missing.json"]) == 2
    assert "cannot preload" in capsys.readouterr().err
