"""The chaos tier (src/repro/conformance/chaos.py and the `repro chaos` CLI).

The acceptance checks: under every derived recoverable schedule all
applicable algorithms still equal the sequential oracle with base meters
untouched; a planted unrecoverable schedule fails loudly naming the round;
the chaos tier stays out of default fuzz summaries; and a planted
recovery bug (a drop whose retransmission never arrives) is caught by a
short chaos campaign, shrunk, and serialized into a corpus entry that
replays red under the bug and green without it.
"""

import json
import random

import pytest

from repro.conformance import (
    CHAOS_FAULTS,
    CHAOS_SCHEDULES,
    DEFAULT_INVARIANTS,
    INVARIANTS,
    FuzzConfig,
    GeneratorConfig,
    check_chaos,
    corpus_files,
    fuzz,
    load_case,
    planted_drop_blackhole,
    random_case,
    replay_case,
    skeleton_size,
)
from repro.conformance.chaos import delivery_cells, recoverable_schedules
from repro.core.executor import run_query
from repro.mpc import MPCCluster
from repro.workloads import planted_out_matmul


def _case(family="matmul", seed=17):
    rng = random.Random(seed)
    config = GeneratorConfig(profiles=("counting",), families=(family,))
    return random_case(rng, config, 0)


# ----------------------------------------------------------- building blocks


def test_delivery_cells_reflect_actual_movement():
    cluster = MPCCluster(4)
    run_query(planted_out_matmul(n=40, out=160), cluster=cluster)
    cells = delivery_cells(cluster)
    assert cells and cells == sorted(set(cells))
    loads = cluster.tracker.load_cells()
    assert all(loads[r][s] > 0 for r, s in cells)


def test_recoverable_schedules_are_deterministic_per_algorithm():
    cells = [(r, s) for r in range(5) for s in range(4)]
    first = recoverable_schedules(11, 0, cells, schedules=3, faults=2)
    again = recoverable_schedules(11, 0, cells, schedules=3, faults=2)
    assert [s.faults for s in first] == [s.faults for s in again]
    assert len(first) == 3 and all(len(s) == 2 for s in first)
    other_alg = recoverable_schedules(11, 1, cells, schedules=3, faults=2)
    assert [s.faults for s in other_alg] != [s.faults for s in first]


# ------------------------------------------------------- the invariant itself


@pytest.mark.parametrize("family", ["matmul", "star", "line", "tree", "star-like"])
def test_chaos_invariant_green_on_healthy_code(family):
    check_chaos(_case(family), FuzzConfig(iterations=1))


def test_chaos_registered_but_not_default():
    assert INVARIANTS["chaos"] is check_chaos
    assert "chaos" not in DEFAULT_INVARIANTS
    # Default summaries never cycle chaos: same seed, same bytes as a
    # chaos-free build.
    summary = fuzz(FuzzConfig(iterations=8, seed=2))
    assert "chaos" not in summary.coverage.get("invariant", {})


def test_chaos_campaign_cycles_the_chaos_invariant():
    summary = fuzz(
        FuzzConfig(
            iterations=4, seed=3, invariants=("differential", "chaos"),
            chaos_schedules=1, chaos_faults=2,
        )
    )
    assert summary.ok, [f.message for f in summary.failures]
    assert summary.coverage["invariant"]["chaos"] == 4


def test_chaos_respects_config_knobs():
    # chaos_schedules=0 still runs the planted unrecoverable check and the
    # clean differential pass; it must stay green on healthy code.
    check_chaos(_case(), FuzzConfig(chaos_schedules=0, chaos_faults=1))


# ------------------------------------------------------- mutation smoke test


def test_planted_recovery_bug_caught_shrunk_and_replayable(tmp_path):
    """A drop whose retransmission silently never arrives is invisible to
    the fault-free tiers but must be caught by a short chaos campaign,
    shrunk, and serialized into a replayable corpus entry."""
    corpus = str(tmp_path / "corpus")
    config = FuzzConfig(
        iterations=12,
        seed=11,
        invariants=("chaos",),
        corpus=corpus,
        fail_fast=True,
        chaos_schedules=2,
        chaos_faults=3,
    )
    with planted_drop_blackhole():
        summary = fuzz(config)
    assert not summary.ok, "planted recovery bug escaped a 12-iteration budget"
    failure = summary.failures[0]
    assert failure.invariant == "chaos"
    assert failure.shrunk_tuples <= failure.original_tuples

    entries = corpus_files(corpus)
    assert failure.corpus_file in entries
    case, meta = load_case(failure.corpus_file)
    assert skeleton_size(case) == failure.shrunk_tuples

    # Red while the blackhole is planted...
    with planted_drop_blackhole():
        with pytest.raises(Exception):
            replay_case(case, meta)
    # ...green once reverted.
    replay_case(case, meta)


def test_committed_chaos_corpus_entry_exists():
    # Satellite: at least one shrunk chaos failure lives in tests/corpus/
    # (picked up by test_corpus_replay.py like every other corpus entry).
    import os

    here = os.path.dirname(__file__)
    chaos_entries = [
        path for path in corpus_files(os.path.join(here, "corpus"))
        if load_case(path)[1].get("invariant") == "chaos"
    ]
    assert chaos_entries, "no chaos corpus entry committed"


# ------------------------------------------------------------------ CLI tier


def test_cli_chaos_smoke(capsys):
    from repro.cli import main

    code = main(["chaos", "--iterations", "3", "--seed", "5", "--json",
                 "--schedules", "1", "--faults", "2"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["ok"] is True
    assert summary["coverage"]["invariant"]["chaos"] == 3


def test_cli_fuzz_chaos_flag(capsys):
    from repro.cli import main

    code = main(["fuzz", "--chaos", "--iterations", "6", "--seed", "1",
                 "--json"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["ok"] is True
    assert "chaos" in summary["coverage"]["invariant"]


def test_cli_fuzz_default_summary_has_no_chaos(capsys):
    from repro.cli import main

    code = main(["fuzz", "--iterations", "6", "--seed", "1", "--json"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    assert "chaos" not in summary["coverage"]["invariant"]


def test_cli_rejects_unknown_invariant(capsys):
    from repro.cli import main

    assert main(["fuzz", "--invariants", "nope", "--json"]) == 2
    assert "unknown --invariants" in capsys.readouterr().err
