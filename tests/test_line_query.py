"""Line queries (§4) against the RAM oracle."""

import random

import pytest

from repro.core.line import line_query
from repro.data import DistRelation, Instance, Relation, TreeQuery
from repro.mpc import MPCCluster
from repro.ram import evaluate
from repro.semiring import COUNTING
from repro.workloads import line_instance, planted_out_line
from tests.conftest import SEMIRING_SAMPLERS, canonicalize

_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


def _run(instance, p=8):
    query = instance.query
    order = query.path_order()
    cluster = MPCCluster(p, backend=_BACKEND)
    view = cluster.view()
    rels = []
    for i in range(len(order) - 1):
        name = next(
            n for n, attrs in query.relations
            if set(attrs) == {order[i], order[i + 1]}
        )
        rels.append(DistRelation.load(view, instance.relation(name), instance.semiring))
    result = line_query(rels, order, instance.semiring)
    return cluster, result


def _assert_matches(instance, result):
    want = evaluate(instance)
    schema = tuple(sorted(instance.query.output))
    got = canonicalize(
        result.collect("line", instance.semiring), schema, instance.semiring
    )
    assert got.tuples == want.tuples


@pytest.mark.parametrize("length", [2, 3, 4, 5])
@pytest.mark.parametrize(
    "semiring,sampler", SEMIRING_SAMPLERS[:2], ids=lambda x: getattr(x, "name", "")
)
def test_line_lengths_and_semirings(length, semiring, sampler):
    rng = random.Random(length * 11)
    instance = line_instance(
        length, tuples=70, domain=10, seed=length, semiring=semiring,
        weight_fn=lambda: sampler(rng),
    )
    cluster, result = _run(instance)
    _assert_matches(instance, result)


@pytest.mark.parametrize("p", [1, 4, 16])
def test_line_any_cluster_size(p):
    instance = line_instance(3, tuples=90, domain=11, seed=p)
    cluster, result = _run(instance, p)
    _assert_matches(instance, result)


def test_line_planted_out_family():
    instance = planted_out_line(length=3, n=120, out=1200)
    cluster, result = _run(instance)
    _assert_matches(instance, result)
    assert len(evaluate(instance)) == 1200


def test_line_dense_middle_heavy_path():
    # A single fat A2 value exercises the heavy branch of §4.
    r1 = Relation("R1", ("A1", "A2"), [((i, 0), 1) for i in range(50)])
    r2 = Relation("R2", ("A2", "A3"), [((0, j), 1) for j in range(20)])
    r3 = Relation("R3", ("A3", "A4"), [((j, j), 1) for j in range(20)])
    query = TreeQuery(
        (("R1", ("A1", "A2")), ("R2", ("A2", "A3")), ("R3", ("A3", "A4"))),
        frozenset({"A1", "A4"}),
    )
    instance = Instance(query, {"R1": r1, "R2": r2, "R3": r3}, COUNTING)
    cluster, result = _run(instance)
    _assert_matches(instance, result)


def test_line_empty_middle_gives_empty_result():
    r1 = Relation("R1", ("A1", "A2"), [((0, 0), 1)])
    r2 = Relation("R2", ("A2", "A3"))
    r3 = Relation("R3", ("A3", "A4"), [((0, 0), 1)])
    query = TreeQuery(
        (("R1", ("A1", "A2")), ("R2", ("A2", "A3")), ("R3", ("A3", "A4"))),
        frozenset({"A1", "A4"}),
    )
    instance = Instance(query, {"R1": r1, "R2": r2, "R3": r3}, COUNTING)
    cluster, result = _run(instance)
    assert result.data.total_size == 0


def test_line_validates_arity():
    view = MPCCluster(2).view()
    rel = DistRelation.load(view, Relation("R", ("A", "B"), [((0, 0), 1)]))
    with pytest.raises(ValueError):
        line_query([rel], ["A", "B", "C"], COUNTING)


def test_line_annotations_multiply_along_path():
    r1 = Relation("R1", ("A1", "A2"), [((0, 0), 2)])
    r2 = Relation("R2", ("A2", "A3"), [((0, 0), 3)])
    r3 = Relation("R3", ("A3", "A4"), [((0, 0), 5)])
    query = TreeQuery(
        (("R1", ("A1", "A2")), ("R2", ("A2", "A3")), ("R3", ("A3", "A4"))),
        frozenset({"A1", "A4"}),
    )
    instance = Instance(query, {"R1": r1, "R2": r2, "R3": r3}, COUNTING)
    cluster, result = _run(instance, p=4)
    assert dict(result.data.collect()) == {(0, 0): 30}
