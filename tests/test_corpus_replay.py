"""Auto-replay of the checked-in fuzz corpus.

Every ``tests/corpus/*.json`` file is a shrunk failing instance serialized
by the conformance fuzzer (``repro fuzz --corpus tests/corpus``).  Checking
one in turns a one-off fuzz finding into a permanent regression test: this
module replays each entry's failing invariant on every run, so the file
must stay green forever after the underlying bug is fixed.

The directory is empty in a healthy tree — the parametrization then
produces a single explicitly-passing placeholder instead of silently
collecting nothing.
"""

import os

import pytest

from repro.conformance import corpus_files, load_case, replay_case

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")

_ENTRIES = corpus_files(CORPUS_DIR)


@pytest.mark.parametrize(
    "path",
    _ENTRIES or [None],
    ids=[os.path.basename(p) for p in _ENTRIES] or ["corpus-empty"],
)
def test_corpus_entry_replays_green(path):
    if path is None:
        assert corpus_files(CORPUS_DIR) == []  # healthy tree, nothing to replay
        return
    case, meta = load_case(path)
    replay_case(case, meta)
