"""Exhaustive small-instance verification.

For matrix multiplication over a 2×2×2 attribute domain, *every* instance
with up to 3 tuples per relation is enumerated and every algorithm is
checked against brute force — 225 instance pairs × 4 algorithms.  Small
exhaustive spaces catch boundary bugs (empty sides, full-domain sides,
single heavy values) that random sampling misses.
"""

import itertools

import pytest

from repro.core.matmul import sparse_matmul
from repro.data import DistRelation, Instance, Relation
from repro.mpc import MPCCluster
from repro.ram import brute_force
from repro.semiring import COUNTING
from tests.conftest import MATMUL_QUERY

CELLS = [(i, j) for i in range(2) for j in range(2)]
SUBSETS = [
    combo
    for size in range(0, 4)
    for combo in itertools.combinations(CELLS, size)
]


def _relation(name, schema, cells, weight_base):
    relation = Relation(name, schema)
    for index, cell in enumerate(cells):
        relation.add(cell, weight_base + index)
    return relation


@pytest.mark.parametrize("strategy", ["auto", "worst-case", "output-sensitive", "linear"])
def test_matmul_exhaustive_small_instances(strategy):
    checked = 0
    for left_cells in SUBSETS:
        for right_cells in SUBSETS:
            r1 = _relation("R1", ("A", "B"), left_cells, weight_base=1)
            r2 = _relation("R2", ("B", "C"), right_cells, weight_base=5)
            instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
            expected = brute_force(instance)
            cluster = MPCCluster(3)
            view = cluster.view()
            result = sparse_matmul(
                DistRelation.load(view, r1),
                DistRelation.load(view, r2),
                COUNTING,
                strategy=strategy,
            )
            got = dict(result.data.collect())
            assert got == dict(expected.tuples), (strategy, left_cells, right_cells)
            checked += 1
    assert checked == len(SUBSETS) ** 2


def test_line_exhaustive_tiny_instances():
    """All 2-tuple-per-relation length-3 lines over a 2-value domain."""
    from repro.core.line import line_query
    from repro.data import TreeQuery

    query = TreeQuery(
        (("R1", ("A1", "A2")), ("R2", ("A2", "A3")), ("R3", ("A3", "A4"))),
        frozenset({"A1", "A4"}),
    )
    pairs = list(itertools.combinations(CELLS, 2))
    checked = 0
    for c1, c2, c3 in itertools.product(pairs[:4], pairs, pairs[:4]):
        relations = {
            "R1": _relation("R1", ("A1", "A2"), c1, 1),
            "R2": _relation("R2", ("A2", "A3"), c2, 3),
            "R3": _relation("R3", ("A3", "A4"), c3, 7),
        }
        instance = Instance(query, relations, COUNTING)
        expected = brute_force(instance)
        cluster = MPCCluster(2)
        view = cluster.view()
        result = line_query(
            [DistRelation.load(view, relations[f"R{i}"]) for i in (1, 2, 3)],
            ["A1", "A2", "A3", "A4"],
            COUNTING,
        )
        got = dict(result.data.collect())
        assert got == dict(expected.tuples), (c1, c2, c3)
        checked += 1
    assert checked == 4 * len(pairs) * 4


def test_star_exhaustive_tiny_instances():
    """All 3-arm stars with 2 tuples per relation over a 2×2 domain."""
    from repro.core.star import star_query
    from repro.data import TreeQuery

    query = TreeQuery(
        (("R1", ("A1", "B")), ("R2", ("A2", "B")), ("R3", ("A3", "B"))),
        frozenset({"A1", "A2", "A3"}),
    )
    pairs = list(itertools.combinations(CELLS, 2))
    checked = 0
    for c1, c2, c3 in itertools.product(pairs[:3], pairs, pairs[:3]):
        relations = {
            "R1": _relation("R1", ("A1", "B"), c1, 1),
            "R2": _relation("R2", ("A2", "B"), c2, 3),
            "R3": _relation("R3", ("A3", "B"), c3, 7),
        }
        instance = Instance(query, relations, COUNTING)
        expected = brute_force(instance)
        cluster = MPCCluster(2)
        view = cluster.view()
        result = star_query(
            [DistRelation.load(view, relations[f"R{i}"]) for i in (1, 2, 3)],
            ["A1", "A2", "A3"],
            "B",
            COUNTING,
        )
        got = dict(result.data.collect())
        want = {
            tuple(dict(zip(sorted(query.output), k))[a] for a in result.schema): v
            for k, v in expected.tuples.items()
        }
        assert got == want, (c1, c2, c3)
        checked += 1
    assert checked == 3 * len(pairs) * 3
