"""The typed error hierarchy and its deterministic HTTP mapping.

Three contracts:

* every deliberate exception derives from :class:`repro.errors.ReproError`
  while keeping its historical built-in base (``ValueError`` /
  ``RuntimeError``), so both ``except ReproError`` and pre-hierarchy
  ``except ValueError`` call sites work;
* :class:`~repro.config.ExecutionConfig` validates eagerly — every bad
  knob (and the faults + process-mode combination) raises
  :class:`~repro.errors.ConfigError` at construction, never later;
* the service's :func:`repro.service.status_for` maps exception class →
  HTTP status deterministically, first :data:`~repro.service.ERROR_STATUS`
  match in MRO-sensitive order winning.
"""

from __future__ import annotations

import pytest

from repro import errors
from repro.config import ExecutionConfig
from repro.errors import (
    AllocationError,
    ApplicabilityError,
    ConfigError,
    FaultError,
    MPCError,
    ReproError,
    RoutingError,
    UnrecoverableFaultError,
    WorkerCrashError,
)
from repro.service import AdmissionRejected, UnknownInstanceError, status_for


# -- hierarchy shape ---------------------------------------------------------


def test_every_error_is_a_repro_error():
    for name in errors.__all__:
        cls = getattr(errors, name)
        assert issubclass(cls, ReproError), name


def test_leaves_keep_their_historical_builtin_bases():
    # except ValueError sites keep catching config/applicability problems…
    assert issubclass(ConfigError, ValueError)
    assert issubclass(ApplicabilityError, ValueError)
    # …and except RuntimeError sites keep catching cluster failures.
    assert issubclass(MPCError, RuntimeError)
    for leaf in (RoutingError, AllocationError, FaultError,
                 UnrecoverableFaultError, WorkerCrashError):
        assert issubclass(leaf, MPCError), leaf
        assert issubclass(leaf, RuntimeError), leaf
    assert issubclass(UnrecoverableFaultError, FaultError)


def test_mpc_errors_module_reexports_the_same_classes():
    """The historical import path stays valid and identical (not copies)."""
    from repro.mpc import errors as mpc_errors

    for name in ("MPCError", "RoutingError", "AllocationError", "FaultError",
                 "UnrecoverableFaultError", "WorkerCrashError"):
        assert getattr(mpc_errors, name) is getattr(errors, name), name


def test_fault_and_worker_errors_carry_coordinates():
    fault = FaultError("boom", kind="drop", round_index=3, server=7)
    assert (fault.kind, fault.round, fault.server) == ("drop", 3, 7)
    crash = WorkerCrashError("died", wave="exchange:r2", kernel="exchange",
                             worker=1, detail="tb")
    assert (crash.wave, crash.kernel, crash.worker, crash.detail) == (
        "exchange:r2", "exchange", 1, "tb"
    )


# -- eager ExecutionConfig validation ----------------------------------------


@pytest.mark.parametrize("kwargs", [
    {"p": 0},
    {"p": -3},
    {"workers": 0},
    {"backend": "fortran"},
    {"stats_mode": "psychic"},
])
def test_execution_config_rejects_bad_knobs_at_construction(kwargs):
    with pytest.raises(ConfigError):
        ExecutionConfig(**kwargs)
    # ConfigError is a ValueError, so legacy call sites also still catch it.
    with pytest.raises(ValueError):
        ExecutionConfig(**kwargs)


def test_execution_config_rejects_faults_with_process_mode():
    from repro.mpc.faults import Fault, FaultSchedule

    schedule = FaultSchedule([Fault("drop", 0, 1)])
    with pytest.raises(ConfigError):
        ExecutionConfig(fault_schedule=schedule, workers=2)
    assert ExecutionConfig(fault_schedule=schedule, workers=1).workers == 1
    assert ExecutionConfig(workers=2).workers == 2


# -- exception class → HTTP status -------------------------------------------


@pytest.mark.parametrize("error,status", [
    (AdmissionRejected("no", reason="load-budget"), 429),
    (UnknownInstanceError("ghost"), 404),
    (ConfigError("bad"), 400),
    (ApplicabilityError("shape"), 422),
    (WorkerCrashError("died"), 503),
    (FaultError("injected"), 500),
    (UnrecoverableFaultError("fatal"), 500),
    (RoutingError("lost"), 500),
    (AllocationError("full"), 500),
    (MPCError("cluster"), 500),
    (ReproError("generic"), 500),
    (KeyError("missing"), 404),
    (ValueError("plain"), 400),
    (RuntimeError("unlisted"), 500),
    (Exception("anything"), 500),
])
def test_status_for_is_deterministic(error, status):
    assert status_for(error) == status


def test_specific_statuses_beat_ancestor_entries():
    """Listing order is MRO-aware: WorkerCrashError gets its own 503 even
    though it is an MPCError (500), and UnknownInstanceError gets 404 even
    though it is a ReproError (500) and a KeyError."""
    assert status_for(WorkerCrashError("x")) != status_for(MPCError("x"))
    assert status_for(UnknownInstanceError("x")) == 404
    # A ConfigError is a ValueError, but the typed entry (400) wins anyway
    # and agrees with the legacy catch-all, so the mapping is stable.
    assert status_for(ConfigError("x")) == status_for(ValueError("x")) == 400
