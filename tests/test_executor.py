"""Top-level run_query: dispatch, metering, result canonicalization."""

import random

import pytest

from repro import MPCCluster, run_query
from repro.data import Instance, Relation, TreeQuery
from repro.ram import evaluate
from repro.semiring import COUNTING
from repro.workloads import (
    line_instance,
    planted_out_matmul,
    star_instance,
    starlike_instance,
    twig_instance,
)
from tests.conftest import GENERAL_TREE_QUERY, MATMUL_QUERY, random_instance

_BACKEND = "pytuple"


@pytest.fixture(autouse=True)
def _sweep_backends(backend):
    """Run every test in this module under both kernel backends."""
    global _BACKEND
    _BACKEND = backend
    yield
    _BACKEND = "pytuple"


def test_auto_dispatch_matches_oracle_per_class():
    cases = [
        (planted_out_matmul(n=150, out=900), "matmul", "line"),
        (line_instance(3, 60, 10, seed=1), "line", "line"),
        (star_instance(3, 45, 10, 5, seed=2), "star", "star"),
        (starlike_instance([1, 2, 2], 30, 7, seed=3), "star-like", "star-like"),
        (twig_instance(25, 6, seed=4), "twig", "tree"),
    ]
    for instance, expected_class, expected_algorithm in cases:
        result = run_query(instance, p=8, backend=_BACKEND)
        assert result.query_class == expected_class
        assert result.algorithm == expected_algorithm
        assert result.relation.tuples == evaluate(instance).tuples
        assert result.out_size == len(result.relation)
        assert result.report.rounds > 0


def test_free_connex_goes_to_yannakakis():
    query = TreeQuery(MATMUL_QUERY.relations, frozenset({"A", "B", "C"}))
    rng = random.Random(1)
    instance = random_instance(query, 40, 6, rng, COUNTING, lambda r: 1)
    result = run_query(instance, p=4, backend=_BACKEND)
    assert result.query_class == "free-connex"
    assert result.algorithm == "yannakakis"
    assert result.relation.tuples == evaluate(instance).tuples


def test_general_tree_dispatch():
    rng = random.Random(2)
    instance = random_instance(
        GENERAL_TREE_QUERY, 30, 6, rng, COUNTING, lambda r: r.randint(1, 3)
    )
    result = run_query(instance, p=8, backend=_BACKEND)
    assert result.query_class == "tree"
    assert result.algorithm == "tree"
    assert result.relation.tuples == evaluate(instance).tuples


def test_forced_baseline_agrees_with_auto():
    instance = star_instance(3, 40, 9, 5, seed=7)
    auto = run_query(instance, p=8, algorithm="auto", backend=_BACKEND)
    baseline = run_query(instance, p=8, algorithm="yannakakis", backend=_BACKEND)
    assert auto.relation.tuples == baseline.relation.tuples
    assert baseline.algorithm == "yannakakis"


def test_forced_wrong_algorithm_raises():
    instance = star_instance(3, 20, 6, 4, seed=8)
    with pytest.raises(ValueError):
        run_query(instance, p=4, algorithm="line", backend=_BACKEND)
    line = line_instance(3, 20, 6, seed=9)
    with pytest.raises(ValueError):
        run_query(line, p=4, algorithm="star", backend=_BACKEND)


def test_result_schema_is_sorted_output():
    instance = twig_instance(20, 5, seed=10)
    result = run_query(instance, p=4, backend=_BACKEND)
    assert result.relation.schema == tuple(sorted(instance.query.output))


def test_supplied_cluster_is_used_and_metered():
    cluster = MPCCluster(4, backend=_BACKEND)
    instance = planted_out_matmul(n=100, out=400)
    result = run_query(instance, cluster=cluster)
    assert result.report.total_communication == cluster.report().total_communication
    assert cluster.report().total_communication > 0


def test_single_server_execution():
    instance = starlike_instance([1, 1, 2], 20, 6, seed=11)
    result = run_query(instance, p=1, backend=_BACKEND)
    assert result.relation.tuples == evaluate(instance).tuples


def test_unknown_algorithm_rejected():
    instance = planted_out_matmul(n=50, out=100)
    with pytest.raises(ValueError):
        run_query(instance, p=2, algorithm="quantum", backend=_BACKEND)  # type: ignore[arg-type]


def test_validate_flag_passes_on_correct_runs():
    instance = planted_out_matmul(n=60, out=240)
    result = run_query(instance, p=4, validate=True, backend=_BACKEND)
    assert result.out_size == len(result.relation)


def test_validate_flag_is_a_real_check():
    # Sanity: an intentionally broken "instance" (oracle differs) trips it.
    import repro.core.executor as executor_module

    instance = planted_out_matmul(n=40, out=160)
    original = executor_module._dispatch

    def sabotaged(chosen, inst, view):
        result = original(chosen, inst, view)
        return type(result)(result.schema, result.data.filter_items(lambda _i: False))

    executor_module._dispatch = sabotaged
    try:
        with pytest.raises(AssertionError):
            run_query(instance, p=4, validate=True, backend=_BACKEND)
    finally:
        executor_module._dispatch = original
