"""Sequential oracle: brute force vs variable elimination vs Yannakakis."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import Instance, Relation, TreeQuery
from repro.ram import (
    brute_force,
    evaluate,
    full_join_size,
    output_size,
    run_yannakakis,
    yannakakis_plan,
)
from repro.semiring import BOOLEAN, COUNTING, TROPICAL_MIN_PLUS
from tests.conftest import (
    GENERAL_TREE_QUERY,
    LINE3_QUERY,
    MATMUL_QUERY,
    SEMIRING_SAMPLERS,
    STAR3_QUERY,
    TWIG_QUERY,
    random_instance,
)

ALL_QUERIES = [MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, TWIG_QUERY, GENERAL_TREE_QUERY]


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.classify())
@pytest.mark.parametrize("semiring,sampler", SEMIRING_SAMPLERS, ids=lambda x: getattr(x, "name", ""))
def test_evaluate_matches_brute_force(query, semiring, sampler):
    rng = random.Random(hash(query.classify()) & 0xFFFF)
    instance = random_instance(query, 25, 4, rng, semiring, sampler)
    assert evaluate(instance).same_contents(brute_force(instance))


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.classify())
def test_yannakakis_matches_evaluate(query):
    rng = random.Random(7)
    instance = random_instance(
        query, 40, 5, rng, COUNTING, lambda r: r.randint(1, 4)
    )
    result, j = run_yannakakis(instance)
    assert result.same_contents(evaluate(instance))
    assert j >= 0


def test_yannakakis_plan_shape():
    plan = yannakakis_plan(LINE3_QUERY)
    assert len(plan) == 2
    # The final step must keep exactly the output attributes.
    assert set(plan[-1].keep) == {"A1", "A4"}


def test_yannakakis_plan_star():
    plan = yannakakis_plan(STAR3_QUERY)
    assert len(plan) == 2
    # Intermediate steps keep the centre B (needed by remaining relations).
    assert "B" in plan[0].keep


def test_full_join_and_output_size():
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(3)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(4)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    assert full_join_size(instance) == 12
    assert output_size(instance) == 12


def test_aggregation_collapses_groups():
    # Two B-paths between the same (a, c) pair must ⊕-combine.
    r1 = Relation("R1", ("A", "B"), [((0, 0), 2), ((0, 1), 3)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 5), ((1, 0), 7)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    result = evaluate(instance)
    assert result.tuples == {(0, 0): 2 * 5 + 3 * 7}

    tropical = Instance(
        MATMUL_QUERY,
        {
            "R1": Relation("R1", ("A", "B"), [((0, 0), 2.0), ((0, 1), 3.0)]),
            "R2": Relation("R2", ("B", "C"), [((0, 0), 5.0), ((1, 0), 7.0)]),
        },
        TROPICAL_MIN_PLUS,
    )
    assert evaluate(tropical).tuples == {(0, 0): 7.0}


def test_empty_output_query_computes_grand_total():
    query = TreeQuery(MATMUL_QUERY.relations, frozenset())
    r1 = Relation("R1", ("A", "B"), [((0, 0), 2), ((1, 0), 3)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 1), ((0, 1), 1)])
    instance = Instance(query, {"R1": r1, "R2": r2}, COUNTING)
    result = evaluate(instance)
    assert result.tuples == {(): (2 + 3) * 2}


def test_empty_instance_empty_result():
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"), [((0, 0), 1)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    assert len(evaluate(instance)) == 0
    assert len(brute_force(instance)) == 0


def test_intermediate_size_reflects_join_blowup():
    # A dense-B instance forces a quadratic intermediate in Yannakakis.
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(20)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(20)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, COUNTING)
    _result, j = run_yannakakis(instance)
    assert j == 400


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_boolean_projection_is_join_project(seed):
    rng = random.Random(seed)
    instance = random_instance(
        LINE3_QUERY, 20, 4, rng, BOOLEAN, lambda r: True
    )
    result = evaluate(instance)
    # Boolean semantics: annotation True for every present tuple.
    assert all(w is True for _k, w in result)
