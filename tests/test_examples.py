"""The shipped examples must run cleanly end-to-end (they double as
integration tests of the public API)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "examples")
EXAMPLES = sorted(
    name for name in os.listdir(EXAMPLES_DIR) if name.endswith(".py")
)


def test_expected_examples_present():
    assert "quickstart.py" in EXAMPLES
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} printed nothing"
