"""High-level query builders (repro.queries)."""

import math

import pytest

from repro.data import Relation
from repro.queries import count_group_by, join_project, k_hop
from repro.semiring import BOOLEAN, COUNTING, TROPICAL_MIN_PLUS


def _chain_edges(weight=None):
    # 0 → 1 → 2 → 3 plus a shortcut 0 → 2 (weight 5).  ``weight`` overrides
    # every annotation (k_hop aggregates the given annotations verbatim).
    edges = Relation("E", ("U", "V"))
    for u, v, w in [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0), (0, 2, 5.0)]:
        edges.add((u, v), w if weight is None else weight)
    return edges


def test_count_group_by():
    r1 = Relation("R1", ("A", "B"), [((0, 0), 99), ((1, 0), 99)])
    r2 = Relation("R2", ("B", "C"), [((0, 0), 99), ((0, 1), 99)])
    result = count_group_by(
        {"R1": r1, "R2": r2},
        [("R1", ("A", "B")), ("R2", ("B", "C"))],
        group_by=["A"],
        p=4,
    )
    # Annotations ignored (set to 1): each a joins 2 c's through b=0.
    assert result.relation.tuples == {(0,): 2, (1,): 2}


def test_count_star_full_join_size():
    r1 = Relation("R1", ("A", "B"), [((i, 0), 1) for i in range(3)])
    r2 = Relation("R2", ("B", "C"), [((0, j), 1) for j in range(4)])
    result = count_group_by(
        {"R1": r1, "R2": r2},
        [("R1", ("A", "B")), ("R2", ("B", "C"))],
        group_by=[],
        p=4,
    )
    assert result.relation.tuples == {(): 12}


def test_join_project():
    r1 = Relation("R1", ("A", "B"), [((0, 0), 1), ((1, 1), 1)])
    r2 = Relation("R2", ("B", "C"), [((0, 5), 1), ((0, 6), 1)])
    projected = join_project(
        {"R1": r1, "R2": r2},
        [("R1", ("A", "B")), ("R2", ("B", "C"))],
        output=["A", "C"],
        p=4,
    )
    assert projected == {(0, 5), (0, 6)}


def test_k_hop_counting():
    edges = _chain_edges(weight=1)
    result = k_hop(edges, 2, COUNTING, p=4)
    # 2-hop paths: 0→1→2, 1→2→3, 0→2→3.
    assert result.relation.tuples == {(0, 2): 1, (1, 3): 1, (0, 3): 1}


def test_k_hop_reachability():
    edges = _chain_edges(weight=True)
    result = k_hop(edges, 3, BOOLEAN, p=4)
    assert result.relation.tuples == {(0, 3): True}


def test_k_hop_shortest_paths():
    edges = _chain_edges()
    result = k_hop(edges, 2, TROPICAL_MIN_PLUS, p=4)
    # 0→2 in two hops: via 1 costs 2.0 (beats nothing else 2-hop).
    assert result.relation.tuples[(0, 2)] == 2.0
    assert result.relation.tuples[(0, 3)] == 5.0 + 1.0  # 0→2 (5) → 3 (1)


def test_k_hop_single_hop_is_the_relation():
    edges = _chain_edges()
    result = k_hop(edges, 1, TROPICAL_MIN_PLUS, p=2)
    assert result.relation.tuples == dict(edges.tuples)


def test_k_hop_validation():
    edges = _chain_edges()
    with pytest.raises(ValueError):
        k_hop(edges, 0, COUNTING)
    with pytest.raises(ValueError):
        k_hop(Relation("R", ("A", "B", "C")), 2, COUNTING)


def test_k_hop_matches_matrix_power():
    # Cross-validate 3-hop counts against numpy matrix power.
    import numpy as np

    size = 12
    adjacency = np.zeros((size, size), dtype=int)
    edges = Relation("E", ("U", "V"))
    import random

    rng = random.Random(4)
    for _ in range(30):
        u, v = rng.randrange(size), rng.randrange(size)
        if (u, v) not in edges:
            edges.add((u, v), 1)
            adjacency[u, v] = 1
    result = k_hop(edges, 3, COUNTING, p=8)
    cube = np.linalg.matrix_power(adjacency, 3)
    expected = {
        (u, v): int(cube[u, v])
        for u in range(size)
        for v in range(size)
        if cube[u, v]
    }
    assert result.relation.tuples == expected
