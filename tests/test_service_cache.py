"""Cache-key canonicalization and the LRU byte-budget cache.

The service's warm-hit bit-identity promise rests on the cache key being
a *pure function of the request's semantics*:

* :func:`~repro.service.instance_digest` must not change when the same
  logical data arrives in a different tuple insertion order, and must not
  read any codec interning state (running the columnar backend — which
  interns every value into per-cluster codecs — leaves it untouched);
* :func:`~repro.service.config_fingerprint` must ignore the non-semantic
  :class:`~repro.config.ExecutionConfig` fields: observers (``tracer``,
  ``profiler``) and the ``backend``/``workers`` knobs, which the
  backend-differential and process-identity batteries prove cannot change
  a response body.
"""

from __future__ import annotations

import pytest

from repro import api
from repro.backends.dispatch import HAS_NUMPY
from repro.config import ExecutionConfig
from repro.data.query import Instance
from repro.data.relation import Relation
from repro.obs import Profiler, RingBufferSink, Tracer
from repro.service import (
    ResultCache,
    cache_key,
    canonical_query,
    config_fingerprint,
    instance_digest,
)
from repro.workloads import planted_out_matmul, star_instance

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")


def _reordered(instance: Instance, reverse: bool = True) -> Instance:
    """The same logical instance with every relation's tuples re-inserted
    in reversed order (a different dict insertion order throughout)."""
    relations = {}
    for name, relation in instance.relations.items():
        rows = list(relation)
        if reverse:
            rows.reverse()
        relations[name] = Relation(name, relation.schema, rows)
    return Instance(instance.query, relations, instance.semiring)


# -- instance digest ---------------------------------------------------------


def test_digest_stable_under_tuple_insertion_order():
    instance = planted_out_matmul(n=30, out=60)
    assert instance_digest(instance) == instance_digest(_reordered(instance))


def test_digest_stable_across_query_shapes():
    star = star_instance(3, 40, 40, 5, seed=1)
    assert instance_digest(star) == instance_digest(_reordered(star))


def test_digest_changes_with_data():
    instance = planted_out_matmul(n=30, out=60)
    other = planted_out_matmul(n=30, out=90)
    assert instance_digest(instance) != instance_digest(other)


def test_digest_changes_with_semiring():
    from repro.semiring.standard import BOOLEAN, COUNTING

    instance = planted_out_matmul(n=10, out=20)
    relations = {name: rel for name, rel in instance.relations.items()}
    boolean = Instance(
        instance.query,
        {
            name: Relation(name, rel.schema,
                           [(values, True) for values, _ in rel])
            for name, rel in relations.items()
        },
        BOOLEAN,
    )
    assert instance.semiring is COUNTING
    assert instance_digest(instance) != instance_digest(boolean)


@needs_numpy
def test_digest_ignores_codec_interning_order():
    """Executing on the columnar backend interns every attribute value
    into per-cluster codecs; the digest reads only logical values, so it
    is byte-identical before and after — and identical to the digest of a
    copy that was never executed at all."""
    instance = planted_out_matmul(n=25, out=50)
    twin = _reordered(instance, reverse=False)
    before = instance_digest(instance)
    api.run_query(instance, ExecutionConfig(p=4, backend="columnar"))
    assert instance_digest(instance) == before
    assert instance_digest(twin) == before


# -- config fingerprint ------------------------------------------------------


def test_fingerprint_ignores_observers_and_execution_mode():
    base = ExecutionConfig(p=4)
    observed = ExecutionConfig(
        p=4,
        tracer=Tracer([RingBufferSink()]),
        profiler=Profiler(),
    )
    process_mode = ExecutionConfig(p=4, workers=4)
    assert config_fingerprint(base) == config_fingerprint(observed)
    assert config_fingerprint(base) == config_fingerprint(process_mode)


@needs_numpy
def test_fingerprint_ignores_backend():
    assert config_fingerprint(ExecutionConfig(p=4, backend="numpy")) == \
        config_fingerprint(ExecutionConfig(p=4, backend="pytuple"))


@pytest.mark.parametrize("kwargs", [
    {"p": 5},
    {"algorithm": "yannakakis"},
    {"seed": 17},
    {"validate": True},
    {"stats_mode": "in-model"},
])
def test_fingerprint_tracks_every_semantic_field(kwargs):
    assert config_fingerprint(ExecutionConfig(**kwargs)) != \
        config_fingerprint(ExecutionConfig())


def test_cache_key_separates_endpoints_and_instances():
    instance = planted_out_matmul(n=10, out=20)
    config = ExecutionConfig(p=4)
    digest = instance_digest(instance)
    query_key = cache_key("query", digest, instance.query,
                          instance.semiring.name, config)
    compare_key = cache_key("compare", digest, instance.query,
                            instance.semiring.name, config)
    other_key = cache_key("query", "f" * 32, instance.query,
                          instance.semiring.name, config)
    assert len({query_key, compare_key, other_key}) == 3


def test_canonical_query_sorts_relations_and_output():
    instance = star_instance(3, 20, 20, 4, seed=0)
    text = canonical_query(instance.query)
    names = [name for name, _ in instance.query.relations]
    assert text == canonical_query(instance.query)  # deterministic
    for name in names:
        assert name in text


# -- the LRU byte-budget cache -----------------------------------------------


def test_cache_round_trip_and_counters():
    cache = ResultCache(max_bytes=1024)
    assert cache.get("k") is None
    cache.put("k", "d1", b"body")
    assert cache.get("k") == b"body"
    stats = cache.stats()
    assert stats == {
        "entries": 1, "bytes": 4, "hits": 1, "misses": 1,
        "evictions": 0, "invalidations": 0,
    }


def test_cache_evicts_least_recently_used_under_byte_budget():
    cache = ResultCache(max_bytes=10)
    cache.put("a", "d", b"aaaa")
    cache.put("b", "d", b"bbbb")
    assert cache.get("a") == b"aaaa"  # refresh a: b is now the LRU entry
    cache.put("c", "d", b"cccc")      # 12 bytes > 10: evict b
    assert cache.get("b") is None
    assert cache.get("a") == b"aaaa"
    assert cache.get("c") == b"cccc"
    assert cache.stats()["evictions"] == 1
    assert cache.current_bytes <= 10


def test_cache_skips_bodies_larger_than_the_whole_budget():
    cache = ResultCache(max_bytes=4)
    cache.put("huge", "d", b"x" * 100)
    assert len(cache) == 0
    assert cache.get("huge") is None


def test_cache_replaces_in_place_without_double_counting():
    cache = ResultCache(max_bytes=100)
    cache.put("k", "d", b"x" * 40)
    cache.put("k", "d", b"y" * 60)
    assert cache.current_bytes == 60
    assert cache.get("k") == b"y" * 60


def test_cache_invalidates_every_entry_of_a_digest():
    cache = ResultCache(max_bytes=1024)
    cache.put("q1", "digest-a", b"1")
    cache.put("q2", "digest-a", b"2")
    cache.put("q3", "digest-b", b"3")
    assert cache.invalidate("digest-a") == 2
    assert cache.get("q1") is None and cache.get("q2") is None
    assert cache.get("q3") == b"3"
    assert cache.stats()["invalidations"] == 2


def test_cache_zero_budget_disables_storage():
    cache = ResultCache(max_bytes=0)
    cache.put("k", "d", b"")
    # an empty body fits a zero budget; anything real does not
    cache.put("k2", "d", b"body")
    assert cache.get("k2") is None
