"""Semiring-MPC-model discipline (§1.3): algorithms may only combine
annotations through the semiring's ⊕/⊗.

Every algorithm is run over :class:`~repro.testing.OpaqueSemiring`, whose
elements raise on any arithmetic, ordering, or truth-testing performed
outside the semiring object.  A pass proves the implementation creates new
semiring values exclusively by adding/multiplying existing ones — the
precondition of the paper's lower bounds.
"""

import random
import zlib

import pytest

from repro import run_query
from repro.conformance import QUERY_FAMILIES, SKEW_PROFILES, FuzzCase
from repro.conformance.generators import random_query, random_skeleton
from repro.conformance.invariants import check_opaque_discipline
from repro.core.executor import applicable_algorithms
from repro.data import Instance, Relation
from repro.testing import OpaqueSemiring, compare_algorithms, oracle
from tests.conftest import (
    GENERAL_TREE_QUERY,
    LINE3_QUERY,
    MATMUL_QUERY,
    STAR3_QUERY,
    TWIG_QUERY,
)

ALL_QUERIES = [MATMUL_QUERY, LINE3_QUERY, STAR3_QUERY, TWIG_QUERY, GENERAL_TREE_QUERY]


def _opaque_instance(query, seed, tuples=28, domain=5):
    semiring, counters = OpaqueSemiring.make()
    rng = random.Random(seed)
    relations = {}
    for name, attrs in query.relations:
        relation = Relation(name, attrs)
        seen = set()
        attempts = 0
        while len(seen) < tuples and attempts < 60 * tuples:
            attempts += 1
            entry = (rng.randrange(domain), rng.randrange(domain))
            if entry not in seen:
                seen.add(entry)
                relation.add(entry, OpaqueSemiring.wrap(rng.randint(1, 4)))
        relations[name] = relation
    return Instance(query, relations, semiring), counters


@pytest.mark.parametrize("query", ALL_QUERIES, ids=lambda q: q.classify())
@pytest.mark.parametrize("algorithm", ["auto", "yannakakis"])
def test_algorithms_respect_the_semiring_model(query, algorithm):
    instance, counters = _opaque_instance(query, seed=11)
    result = run_query(instance, p=6, algorithm=algorithm)
    # Cross-check values against a plain-integer rerun of the oracle.
    plain = {
        key: OpaqueSemiring.unwrap(value)
        for key, value in oracle(instance).tuples.items()
    }
    got = {
        key: OpaqueSemiring.unwrap(value)
        for key, value in result.relation.tuples.items()
    }
    assert got == plain
    # The algorithm actually used the semiring (for non-empty results).
    if plain:
        assert counters["mul"] > 0


class _SeededConfig:
    p = 5


@pytest.mark.parametrize("family", QUERY_FAMILIES)
@pytest.mark.parametrize("skew", SKEW_PROFILES)
def test_every_registry_algorithm_respects_the_semiring_model(family, skew):
    """§1.3 discipline for EVERY algorithm the registry dispatches to the
    query class — line, star, star-like and tree included, not just the
    matmul path — on conformance-generated instances of every skew."""
    rng = random.Random(zlib.crc32(f"{family}/{skew}".encode()))
    query = random_query(rng, family)
    skeleton = random_skeleton(rng, query, tuples=10, domain=4, skew=skew)
    case = FuzzCase(
        query=query,
        skeleton=skeleton,
        profile="opaque",
        family=family,
        skew=skew,
        seed=0,
    )
    # Exercises every applicable registry algorithm over OpaqueSemiring and
    # cross-checks values against the counting oracle.
    check_opaque_discipline(case, _SeededConfig())
    # Sanity: the specialized algorithm for this family really was covered.
    covered = applicable_algorithms(query)
    assert set(covered) >= {"yannakakis", "tree"}
    if family in ("star", "matmul"):
        assert "star" in covered
    if family in ("matmul", "line"):
        assert "line" in covered
    if family != "tree":
        assert "star-like" in covered


def test_opaque_elements_reject_foreign_arithmetic():
    a = OpaqueSemiring.wrap(3)
    b = OpaqueSemiring.wrap(4)
    with pytest.raises(TypeError):
        _ = a + b
    with pytest.raises(TypeError):
        _ = a * b
    with pytest.raises(TypeError):
        _ = a < b
    with pytest.raises(TypeError):
        bool(a)
    assert a == OpaqueSemiring.wrap(3)


def test_compare_algorithms_helper():
    instance, _counters = _opaque_instance(MATMUL_QUERY, seed=3)
    reports = compare_algorithms(instance, p=4)
    assert set(reports) == {"auto", "yannakakis"}
    assert all(report.max_load >= 0 for report in reports.values())


def test_compare_algorithms_detects_disagreement():
    # A deliberately wrong "algorithm" name raises cleanly instead of
    # silently passing.
    instance, _counters = _opaque_instance(STAR3_QUERY, seed=5)
    with pytest.raises(ValueError):
        compare_algorithms(instance, p=4, algorithms=("line",))
