"""Reduce-by-key, multi-search, and semijoin primitives (paper §2.1)."""

import bisect
import random
from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import Distributed, MPCCluster
from repro.primitives import (
    anti_semijoin,
    count_by_key,
    distinct_keys,
    multi_search,
    reduce_by_key,
    semijoin,
)


def test_reduce_by_key_sums():
    rng = random.Random(1)
    cluster = MPCCluster(8)
    pairs = [(rng.randint(0, 30), rng.randint(1, 9)) for _ in range(800)]
    reduced = reduce_by_key(
        Distributed.from_items(cluster.view(), pairs),
        lambda pair: pair[0],
        lambda pair: pair[1],
        lambda a, b: a + b,
    )
    expected = Counter()
    for key, value in pairs:
        expected[key] += value
    assert dict(reduced.collect()) == dict(expected)


def test_reduce_by_key_with_non_commutative_safe_combiner():
    cluster = MPCCluster(4)
    pairs = [(0, frozenset({i})) for i in range(20)]
    reduced = reduce_by_key(
        Distributed.from_items(cluster.view(), pairs),
        lambda pair: pair[0],
        lambda pair: pair[1],
        lambda a, b: a | b,
    )
    assert dict(reduced.collect()) == {0: frozenset(range(20))}


def test_reduce_by_key_heavy_key_load_stays_linear():
    cluster = MPCCluster(8)
    n = 1600
    pairs = [(0, 1)] * n  # worst skew: one key everywhere
    reduced = reduce_by_key(
        Distributed.from_items(cluster.view(), pairs),
        lambda pair: pair[0],
        lambda pair: pair[1],
        lambda a, b: a + b,
    )
    assert dict(reduced.collect()) == {0: n}
    # Pre-aggregation means ≤ 1 partial per (server, key): final fan-in ≤ p,
    # so the max load is the initial N/p scan, not N.
    assert cluster.report().max_load <= n // 8 + 8


def test_count_and_distinct():
    cluster = MPCCluster(4)
    items = ["a", "b", "a", "c", "a", "b"]
    counted = count_by_key(
        Distributed.from_items(cluster.view(), items), lambda x: x
    )
    assert dict(counted.collect()) == {"a": 3, "b": 2, "c": 1}
    distinct = distinct_keys(
        Distributed.from_items(cluster.view(), items), lambda x: x
    )
    assert sorted(distinct.collect()) == ["a", "b", "c"]


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.integers(0, 100), max_size=80),
    st.lists(st.integers(0, 100), max_size=40),
)
def test_multi_search_matches_bisect(queries, references):
    cluster = MPCCluster(5)
    view = cluster.view()
    result = multi_search(
        Distributed.from_items(view, queries),
        Distributed.from_items(view, references),
        lambda x: x,
        lambda y: y,
    )
    ordered = sorted(references)
    got = dict()
    for query, predecessor in result.collect():
        got.setdefault(query, set()).add(predecessor)
    for query in queries:
        index = bisect.bisect_right(ordered, query)
        expected = ordered[index - 1] if index else None
        assert expected in got[query]


def test_semijoin_keeps_matching_keys():
    rng = random.Random(2)
    cluster = MPCCluster(6)
    view = cluster.view()
    target = [(rng.randint(0, 40), i) for i in range(300)]
    source_keys = set(rng.sample(range(41), 12))
    source = [(k, "s") for k in source_keys]
    kept = semijoin(
        Distributed.from_items(view, target),
        Distributed.from_items(view, source),
        lambda item: item[0],
    )
    expected = sorted(item for item in target if item[0] in source_keys)
    assert sorted(kept.collect()) == expected


def test_anti_semijoin_complements():
    cluster = MPCCluster(4)
    view = cluster.view()
    target = [(i % 5, i) for i in range(50)]
    source = [(0, None), (3, None)]
    kept = semijoin(
        Distributed.from_items(view, target),
        Distributed.from_items(view, source),
        lambda item: item[0],
    )
    dropped = anti_semijoin(
        Distributed.from_items(view, target),
        Distributed.from_items(view, source),
        lambda item: item[0],
    )
    assert sorted(kept.collect() + dropped.collect()) == sorted(target)
    assert all(item[0] in (0, 3) for item in kept.collect())
    assert all(item[0] not in (0, 3) for item in dropped.collect())


def test_semijoin_with_distinct_source_key_fn():
    cluster = MPCCluster(4)
    view = cluster.view()
    target = [("x", 1), ("y", 2)]
    source = [(("x", "payload"),)]
    kept = semijoin(
        Distributed.from_items(view, target),
        Distributed.from_items(view, source),
        lambda item: item[0],
        source_key_fn=lambda s: s[0][0],
    )
    assert kept.collect() == [("x", 1)]
