"""The mode-differential battery: every execution mode, bit for bit.

The columnar backend's contract is not "same answer, roughly" — it is
*bit-identical observables*: the answer relation (tuples and annotations),
the serialized :class:`~repro.mpc.stats.CostReport`, and the full trace
event stream must match the reference backend exactly, because the meters
are the reproduction's scientific output.  This module enforces that
contract over the whole conformance grid — every query family × every
semiring profile × every skew — by running the ``columnar-identity``
invariant (which itself runs every applicable algorithm per case), and
separately pins the Table-1 load meters at benchmark scale.

The ``"process"`` execution mode extends the same contract across OS
process boundaries: ``workers > 1`` dispatches the data-parallel kernels
to a spawn-based worker pool (:mod:`repro.mpc.pool`) and must still be
bit-identical to sequential execution.  The process half of the battery
runs the ``process-identity`` invariant over the full grid with the
pool's dispatch thresholds forced to zero, so every cell really crosses
the process boundary instead of falling back.
"""

from __future__ import annotations

import random

import pytest

from repro.backends.dispatch import HAS_NUMPY
from repro.conformance.generators import (
    PROFILES,
    QUERY_FAMILIES,
    SKEW_PROFILES,
    GeneratorConfig,
    random_case,
)
from repro.conformance.invariants import (
    check_columnar_identity,
    check_process_identity,
)

needs_numpy = pytest.mark.skipif(not HAS_NUMPY, reason="numpy unavailable")


@pytest.fixture
def forced_dispatch(monkeypatch):
    """Shrink the pool's dispatch thresholds so tiny fuzz cases dispatch.

    Production thresholds keep IPC overhead away from small inputs; the
    battery's cases are deliberately small, so without this every cell
    would exercise only the (already-tested) sequential fallback."""
    from repro.mpc import pool as pool_mod

    monkeypatch.setattr(pool_mod, "DISPATCH_MIN_PRODUCTS", 1)
    monkeypatch.setattr(pool_mod, "DISPATCH_MIN_ROWS", 1)
    monkeypatch.setattr(pool_mod, "SHM_MIN_BYTES", 1 << 6)


class _GridConfig:
    """Config shim with the fields invariant checkers read."""

    p = 5
    p_large = 8
    backend = None


def _case_for(family: str, profile: str, skew: str, seed: int):
    """A deterministic fuzz case pinned to one grid cell."""
    generator = GeneratorConfig(
        max_tuples=12,
        domain=5,
        families=(family,),
        profiles=(profile,),
        skews=(skew,),
    )
    return random_case(random.Random(seed), generator, 0)


GRID = [
    (family, profile, skew)
    for family in QUERY_FAMILIES
    for profile in sorted(PROFILES)
    for skew in SKEW_PROFILES
]


@needs_numpy
@pytest.mark.parametrize(
    "family,profile,skew", GRID, ids=["-".join(cell) for cell in GRID]
)
def test_columnar_identical_across_grid(family, profile, skew):
    """5 families × 5 semirings × 3 skews, every applicable algorithm:
    answers, cost reports, and traces agree between the backends."""
    case = _case_for(family, profile, skew, seed=0xD1FF ^ hash((family, profile, skew)) % 4096)
    check_columnar_identity(case, _GridConfig())


@needs_numpy
def test_columnar_identical_under_seed_sweep():
    """A second, rng-driven sweep: fresh skeletons (not the grid's pinned
    seeds) keep the battery from overfitting to one corpus of instances."""
    rng = random.Random(0xBA77E4)
    generator = GeneratorConfig(max_tuples=10, domain=4)
    for index in range(10):
        case = random_case(rng, generator, index)
        check_columnar_identity(case, _GridConfig())


@needs_numpy
@pytest.mark.parametrize(
    "family,profile,skew", GRID, ids=["-".join(cell) for cell in GRID]
)
def test_process_identical_across_grid(family, profile, skew, forced_dispatch):
    """The process-mode half of the battery: the same 5 × 5 × 3 grid,
    every applicable algorithm, answers + cost reports + traces identical
    between ``workers=1`` and ``workers=2`` with dispatch forced on."""
    case = _case_for(family, profile, skew, seed=0xD1FF ^ hash((family, profile, skew)) % 4096)
    check_process_identity(case, _GridConfig())


@needs_numpy
def test_process_identity_exercises_real_dispatch(forced_dispatch):
    """The grid above is not vacuous: under forced thresholds the pool
    really receives waves (a fallback-only run would log nothing)."""
    from repro.mpc.pool import get_pool

    pool = get_pool(2)
    before = len(pool.dispatch_log)
    case = _case_for("matmul", "counting", "uniform", seed=7)
    check_process_identity(case, _GridConfig())
    assert len(pool.dispatch_log) > before
    assert pool.started


@needs_numpy
def test_table1_loads_identical_at_benchmark_scale():
    """Satellite meter check: the Table-1 experiment at scale=300 reports
    the same loads/rounds/communication on both backends, derived on the
    columnar path from array lengths rather than item-list lengths."""
    from repro.api import table1
    from repro.config import ExecutionConfig

    def rows(backend: str):
        return [
            row.to_dict()
            for row in table1(
                scale=300,
                config=ExecutionConfig(p=16, backend=backend),
                families=("matmul",),
            )
        ]

    reference = rows("pytuple")
    columnar = rows("columnar")
    assert reference == columnar


@needs_numpy
def test_table1_identical_with_two_workers():
    """The CI smoke in library form: Table 1 at benchmark scale is
    bit-identical between sequential and 2-worker process execution with
    the *production* dispatch thresholds in force — whatever mix of
    dispatched and threshold-gated kernels that yields (forced-dispatch
    coverage lives in the grid above)."""
    from repro.api import table1
    from repro.config import ExecutionConfig

    def rows(workers: int):
        return [
            row.to_dict()
            for row in table1(
                scale=300,
                config=ExecutionConfig(p=16, backend="columnar", workers=workers),
                families=("matmul",),
            )
        ]

    assert rows(1) == rows(2)
