"""Observability layer: events, sinks, skew metrics, JSONL round-trip.

Includes the PR's acceptance checks: a `repro trace --family line --p 8`
JSONL trace reconstructs `CostReport.max_load` / `total_communication`
exactly, and tracing (or its absence) never perturbs the metered load.
"""

import json

import pytest

from repro.core.executor import run_query
from repro.mpc.cluster import MPCCluster
from repro.mpc.stats import CostReport, LoadTracker
from repro.obs import (
    CallbackSink,
    JsonlSink,
    RingBufferSink,
    TraceEvent,
    Tracer,
    event_from_dict,
    event_to_dict,
    gini,
    load_matrix_from_events,
    load_matrix_from_tracker,
    per_round_stats,
    per_server_totals,
    percentile,
    phase_loads_from_events,
    read_trace,
    render_heatmap,
    report_from_trace,
    round_maxima,
    skew_stats,
    trace_aggregates,
)
from repro.workloads import line_instance, planted_out_matmul


# -- skew-metric math on hand-built vectors -----------------------------------


def test_skew_stats_balanced_vector():
    stats = skew_stats([4, 4, 4, 4])
    assert stats.n == 4 and stats.total == 16
    assert stats.max == 4 and stats.mean == 4.0
    assert stats.p95 == 4
    assert stats.imbalance == 1.0
    assert stats.gini == 0.0


def test_skew_stats_concentrated_vector():
    stats = skew_stats([0, 0, 0, 8])
    assert stats.max == 8 and stats.mean == 2.0
    assert stats.imbalance == 4.0
    assert stats.gini == pytest.approx(0.75)  # (n-1)/n for a single hot server
    assert stats.p95 == 8


def test_skew_stats_empty_vector():
    stats = skew_stats([])
    assert stats.n == 0 and stats.max == 0 and stats.imbalance == 0.0
    assert stats.gini == 0.0


def test_gini_properties():
    assert gini([]) == 0.0
    assert gini([0, 0, 0]) == 0.0
    assert gini([5, 5, 5, 5]) == 0.0
    # More skew ⇒ larger Gini, always within [0, 1).
    g_mild, g_severe = gini([3, 4, 5, 4]), gini([0, 1, 1, 14])
    assert 0.0 < g_mild < g_severe < 1.0


def test_percentile_nearest_rank():
    values = list(range(1, 101))
    assert percentile(values, 95) == 95
    assert percentile(values, 100) == 100
    assert percentile([7], 95) == 7
    assert percentile([], 95) == 0
    with pytest.raises(ValueError):
        percentile([1], 150)


def test_matrix_marginals():
    matrix = [[1, 2, 3], [4, 0, 2]]
    assert per_server_totals(matrix) == [5, 2, 5]
    assert round_maxima(matrix) == [3, 4]
    stats = per_round_stats(matrix)
    assert [s.max for s in stats] == [3, 4]
    assert stats[0].total == 6


# -- event serialization and sinks --------------------------------------------


def test_event_dict_round_trip():
    event = TraceEvent(
        op="exchange",
        round=3,
        servers=(0, 2, 5),
        received=(1, 0, 9),
        phase=("outer", "inner"),
        algorithm="line",
        scope="bench",
        detail={"tasks": [0, 1]},
    )
    assert event_from_dict(event_to_dict(event)) == event
    assert event.total == 10 and event.max_received == 9


def test_event_dict_omits_empty_fields():
    record = event_to_dict(TraceEvent(op="exchange", round=0, servers=(0,),
                                      received=(2,)))
    assert set(record) == {"op", "round", "servers", "received"}


def test_ring_buffer_sink_capacity():
    sink = RingBufferSink(capacity=2)
    for index in range(5):
        sink.write(TraceEvent(op="exchange", round=index, servers=(0,)))
    assert len(sink) == 2
    assert [event.round for event in sink.events] == [3, 4]
    sink.clear()
    assert len(sink) == 0


def test_callback_sink_and_tracer_fanout():
    seen = []
    tracer = Tracer([CallbackSink(seen.append), RingBufferSink()])
    tracer.emit("exchange", 0, (0, 1), (3, 4))
    assert len(seen) == 1
    assert seen[0].received == (3, 4)
    assert tracer.active


def test_inactive_tracer_emits_nothing():
    tracer = Tracer([])
    assert not tracer.active
    tracer.emit("exchange", 0, (0,), (1,))  # no sinks: a no-op, not an error


# -- cluster integration -------------------------------------------------------


def _run_traced(instance, p, algorithm="auto"):
    ring = RingBufferSink()
    cluster = MPCCluster(p, tracer=Tracer([ring]))
    result = run_query(instance, cluster=cluster, algorithm=algorithm)
    return result, ring.events


def test_tracing_does_not_perturb_metering():
    instance = planted_out_matmul(n=120, out=600)
    plain = run_query(instance, p=4)
    traced, events = _run_traced(instance, p=4)
    assert events, "tracer saw no events"
    assert traced.report == plain.report
    assert traced.relation.tuples == plain.relation.tuples


def test_untraced_cluster_has_no_tracer_overhead_path():
    cluster = MPCCluster(4)
    assert cluster.tracker.tracer is None
    view = cluster.view()
    view.exchange([[(0, "x")], [], [], []])  # the None fast path


def test_trace_matches_tracker_matrix():
    instance = line_instance(3, 60, 8, seed=0)
    ring = RingBufferSink()
    cluster = MPCCluster(8, tracer=Tracer([ring]))
    run_query(instance, cluster=cluster)
    from_tracker, servers_t = load_matrix_from_tracker(
        cluster.tracker, servers=list(range(8))
    )
    from_events, servers_e = load_matrix_from_events(ring.events)
    # Event matrix only lists servers that received something; embed and compare.
    column = {server: j for j, server in enumerate(servers_t)}
    embedded = [[0] * len(servers_t) for _ in from_tracker]
    for round_index, row in enumerate(from_events):
        for server, value in zip(servers_e, row):
            embedded[round_index][column[server]] = value
    assert embedded == from_tracker


def test_gather_and_broadcast_ops_are_tagged():
    ring = RingBufferSink()
    cluster = MPCCluster(3, tracer=Tracer([ring]))
    view = cluster.view()
    view.gather([["a"], ["b", "c"], []], dest=1)
    view.broadcast([["x"], [], []])
    ops = [event.op for event in ring.events]
    assert ops == ["gather", "broadcast"]
    assert ring.events[0].received == (0, 3, 0)
    assert ring.events[1].received == (1, 1, 1)


def test_run_parallel_emits_wave_events():
    ring = RingBufferSink()
    cluster = MPCCluster(4, tracer=Tracer([ring]))
    view = cluster.view()

    def task(branch):
        branch.exchange([[(0, "x")]] + [[] for _ in range(branch.p - 1)])

    view.run_parallel([task, task], sizes=[2, 2])
    waves = [event for event in ring.events if event.op == "parallel-wave"]
    assert len(waves) == 1
    assert waves[0].detail["tasks"] == [0, 1]
    assert waves[0].detail["widths"] == [2, 2]
    assert waves[0].detail["depth"] == 1
    assert waves[0].received == ()


# -- JSONL round-trip (acceptance) --------------------------------------------


def test_trace_cli_roundtrip_line_p8(tmp_path, capsys):
    """`repro trace --family line --p 8`: trace aggregates == CostReport."""
    from repro.cli import main

    trace_path = tmp_path / "line.jsonl"
    code = main(["trace", "--family", "line", "--p", "8",
                 "--trace-out", str(trace_path), "--json"])
    assert code == 0
    summary = json.loads(capsys.readouterr().out)
    events = read_trace(str(trace_path))
    assert events, "trace file is empty"
    aggregates = trace_aggregates(events)
    # Per-round max over per-server receive counts == the paper's L…
    assert aggregates["max_load"] == summary["report"]["max_load"]
    # …and the event sum == total communication.
    assert aggregates["total_communication"] == summary["report"]["total_communication"]
    assert aggregates["rounds"] == summary["report"]["rounds"]


def test_report_from_trace(tmp_path):
    instance = line_instance(3, 60, 8, seed=0)
    trace_path = tmp_path / "t.jsonl"
    with Tracer([JsonlSink(str(trace_path))]) as tracer:
        cluster = MPCCluster(8, tracer=tracer)
        result = run_query(instance, cluster=cluster)
    rebuilt = report_from_trace(read_trace(str(trace_path)))
    assert rebuilt.max_load == result.report.max_load
    assert rebuilt.total_communication == result.report.total_communication
    assert rebuilt.rounds == result.report.rounds


def test_jsonl_sink_writes_parseable_lines(tmp_path):
    trace_path = tmp_path / "events.jsonl"
    with JsonlSink(str(trace_path)) as sink:
        sink.write(TraceEvent(op="exchange", round=0, servers=(0, 1),
                              received=(2, 0), phase=("alpha",)))
        sink.write(TraceEvent(op="broadcast", round=1, servers=(0, 1),
                              received=(5, 5)))
    lines = trace_path.read_text().strip().splitlines()
    assert len(lines) == 2
    assert json.loads(lines[0])["phase"] == ["alpha"]
    events = read_trace(str(trace_path))
    assert events[1].op == "broadcast"


def test_jsonl_sink_flushes_every_n_events(tmp_path):
    """Crash-safety: events are on disk every ``flush_every`` writes, so a
    killed run loses at most the unflushed tail."""
    trace_path = tmp_path / "events.jsonl"
    handle = open(trace_path, "w", encoding="utf-8")
    sink = JsonlSink(handle, flush_every=2)
    event = TraceEvent(op="exchange", round=0, servers=(0,), received=(1,))
    sink.write(event)
    sink.write(event)  # second write crosses the flush threshold
    assert len(trace_path.read_text().strip().splitlines()) == 2
    sink.write(event)  # unflushed tail...
    sink.close()       # ...flushed by close
    assert len(trace_path.read_text().strip().splitlines()) == 3
    handle.close()


def test_jsonl_sink_rejects_bad_flush_every(tmp_path):
    with pytest.raises(ValueError):
        JsonlSink(str(tmp_path / "x.jsonl"), flush_every=0)


def test_jsonl_sink_close_is_idempotent(tmp_path):
    sink = JsonlSink(str(tmp_path / "events.jsonl"))
    sink.close()
    sink.close()  # second close must not raise on the closed handle


def test_tracer_close_is_idempotent(tmp_path):
    closes = []

    class CountingSink(RingBufferSink):
        def close(self):
            closes.append(1)

    tracer = Tracer([CountingSink()])
    tracer.close()
    tracer.close()
    assert len(closes) == 1


def test_phase_loads_from_events():
    events = [
        TraceEvent(op="exchange", round=0, servers=(0, 1), received=(4, 1),
                   phase=("build",)),
        TraceEvent(op="exchange", round=1, servers=(0, 1), received=(2, 7),
                   phase=("build", "probe")),
        TraceEvent(op="parallel-wave", round=1, servers=(0, 1), phase=("build",)),
        TraceEvent(op="exchange", round=2, servers=(0, 1), received=(3, 0)),
    ]
    loads = phase_loads_from_events(events)
    assert loads == {"build": 7, "build//probe": 7}


# -- CostReport export ---------------------------------------------------------


def test_cost_report_dict_round_trip():
    report = CostReport(
        max_load=48, total_communication=4162, rounds=71,
        control_messages=12, elementary_products=1232,
        phases=(("line/estimate-out", 19), ("line/heavy-side", 48)),
    )
    assert CostReport.from_dict(report.to_dict()) == report
    assert json.loads(json.dumps(report.to_dict()))["max_load"] == 48


def test_cost_report_from_partial_dict():
    report = CostReport.from_dict(
        {"max_load": 3, "total_communication": 9, "rounds": 2}
    )
    assert report.control_messages == 0 and report.phases == ()


# -- heatmap -------------------------------------------------------------------


def test_heatmap_renders_scale_and_peak():
    text = render_heatmap([[0, 1, 2], [8, 0, 4]], servers=[0, 1, 2])
    lines = text.splitlines()
    assert "round" in lines[0] and "max" in lines[0]
    assert "@" in text  # the hottest cell
    assert "scale:" in lines[-1]
    # Row maxima in the right margin.
    assert lines[2].rstrip().endswith("2")
    assert lines[3].rstrip().endswith("8")


def test_heatmap_empty_matrix():
    assert "empty trace" in render_heatmap([])
    assert "empty trace" in render_heatmap([[0, 0], [0, 0]])


def test_heatmap_buckets_wide_matrices():
    row = [i % 7 for i in range(256)]
    text = render_heatmap([row], max_columns=32)
    assert "bucketed" in text
    body_line = text.splitlines()[2]
    assert len(body_line.split()[1]) == 32


# -- tracker internals ---------------------------------------------------------


def test_tracker_load_cells_is_a_copy():
    tracker = LoadTracker()
    tracker.record_receive(0, 1, 5)
    cells = tracker.load_cells()
    cells[0][1] = 999
    assert tracker.load_cells() == {0: {1: 5}}


def test_tracker_phase_path():
    tracker = LoadTracker()
    assert tracker.phase_path() == ()
    with tracker.phase("outer"):
        with tracker.phase("inner"):
            assert tracker.phase_path() == ("outer", "inner")
    assert tracker.phase_path() == ()


# -- determinism under fault injection -----------------------------------------


def _faulted_trace(path, instance, schedule):
    from repro.mpc import FaultInjector, MPCCluster, RecoveryPolicy

    with Tracer([JsonlSink(str(path))]) as tracer:
        injector = FaultInjector(schedule, RecoveryPolicy(spares=len(schedule)))
        cluster = MPCCluster(4, tracer=tracer, faults=injector)
        result = run_query(instance, cluster=cluster, algorithm="matmul")
    return result.report


def test_same_seed_same_schedule_byte_identical_trace(tmp_path):
    """Same seed + same FaultSchedule ⇒ byte-identical JSONL trace and an
    identical CostReport across two fresh clusters."""
    from repro.mpc import FaultSchedule, MPCCluster

    instance = planted_out_matmul(n=80, out=320, seed=9)
    probe = MPCCluster(4)
    run_query(instance, cluster=probe, algorithm="matmul")
    cells = sorted(
        (r, s)
        for r, row in probe.tracker.load_cells().items()
        for s, count in row.items() if count > 0
    )
    schedule = FaultSchedule.random(seed=23, cells=cells, count=3)
    assert len(schedule) == 3

    first = _faulted_trace(tmp_path / "a.jsonl", instance, schedule)
    second = _faulted_trace(tmp_path / "b.jsonl", instance, schedule)
    assert (tmp_path / "a.jsonl").read_bytes() == (tmp_path / "b.jsonl").read_bytes()
    assert first == second
    # The trace actually contains the fault tier, not just base events.
    ops = {event.op for event in read_trace(str(tmp_path / "a.jsonl"))}
    assert "checkpoint" in ops and "fault" in ops
