"""Relation/instance serialization."""

import io
import math

import pytest

from repro.data import Instance, Relation, TreeQuery
from repro.io import (
    delta_from_json,
    delta_to_json,
    instance_from_json,
    instance_to_json,
    read_delta_json,
    read_relation_tsv,
    write_delta_json,
    write_relation_tsv,
)
from repro.ram import evaluate
from repro.semiring import COUNTING, TROPICAL_MIN_PLUS
from repro.testing import OpaqueSemiring
from tests.conftest import MATMUL_QUERY


def test_tsv_roundtrip(tmp_path):
    relation = Relation(
        "R", ("A", "B"), [((1, "x"), 3), ((2, "y"), 7), ((1, "y"), 1)]
    )
    path = str(tmp_path / "rel.tsv")
    write_relation_tsv(relation, path)
    back = read_relation_tsv(path, name="R")
    assert back.schema == relation.schema
    assert back.tuples == relation.tuples


def test_tsv_stream_roundtrip():
    relation = Relation("R", ("U", "V"), [((0, 1), 2.5), ((3, 4), 0.5)])
    buffer = io.StringIO()
    write_relation_tsv(relation, buffer)
    buffer.seek(0)
    back = read_relation_tsv(buffer)
    assert back.tuples == relation.tuples


def test_tsv_duplicate_combining():
    text = "A\tB\t__annotation\n1\t2\t3\n1\t2\t4\n"
    relation = read_relation_tsv(io.StringIO(text), semiring=COUNTING)
    assert relation.tuples == {(1, 2): 7}


def test_tsv_validation():
    with pytest.raises(ValueError):
        read_relation_tsv(io.StringIO("A\tB\n1\t2\n"))
    with pytest.raises(ValueError):
        read_relation_tsv(io.StringIO("A\t__annotation\n1\t2\t3\n"))


def test_tsv_custom_parsers():
    text = "A\t__annotation\nfoo\t inf\n"
    relation = read_relation_tsv(
        io.StringIO(text),
        parse_value=str.upper,
        parse_annotation=lambda cell: math.inf,
    )
    assert relation.tuples == {("FOO",): math.inf}


def test_json_roundtrip_preserves_answers():
    r1 = Relation("R1", ("A", "B"), [((i, i % 3), float(i + 1)) for i in range(9)])
    r2 = Relation("R2", ("B", "C"), [((i % 3, i), 1.0) for i in range(9)])
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, TROPICAL_MIN_PLUS)
    document = instance_to_json(instance)
    restored = instance_from_json(document)
    assert restored.semiring is TROPICAL_MIN_PLUS
    assert evaluate(restored).tuples == evaluate(instance).tuples


def test_json_roundtrip_tuple_values():
    query = TreeQuery((("R", ("A", "B")),), frozenset({"A", "B"}))
    relation = Relation("R", ("A", "B"), [(((1, 2), ("x", 3)), 5)])
    instance = Instance(query, {"R": relation}, COUNTING)
    restored = instance_from_json(instance_to_json(instance))
    assert restored.relation("R").tuples == relation.tuples


def test_json_rejects_custom_semirings():
    semiring, _ = OpaqueSemiring.make()
    query = TreeQuery((("R", ("A", "B")),), frozenset({"A"}))
    relation = Relation("R", ("A", "B"), [((0, 0), OpaqueSemiring.wrap(1))])
    instance = Instance(query, {"R": relation}, semiring)
    with pytest.raises(ValueError):
        instance_to_json(instance)


def test_json_rejects_unknown_semiring_name():
    with pytest.raises(ValueError):
        instance_from_json('{"semiring": "nope", "output": [], "relations": []}')


def test_delta_json_roundtrip(tmp_path):
    from repro.ivm import DeltaBatch, delete, insert

    batch = DeltaBatch((
        insert("R1", (1, 2), 3),
        insert("R2", ((7, 8), "x"), 2.5),  # tuple-typed attribute value
        delete("R1", (4, 5)),
    ))
    restored = delta_from_json(delta_to_json(batch))
    assert restored == batch

    path = str(tmp_path / "delta.json")
    write_delta_json(batch, path)
    assert read_delta_json(path) == batch
    # the file mirror of write_instance_json: pretty, sorted, newline-ended
    with open(path) as handle:
        text = handle.read()
    assert text.endswith("\n") and '"format": "repro-delta/v1"' in text


def test_delta_json_rejects_wrong_format():
    with pytest.raises(ValueError):
        delta_from_json('{"format": "nope", "changes": []}')
    with pytest.raises(ValueError):
        delta_from_json('{"changes": []}')
    # op validation fires during deserialization
    with pytest.raises(ValueError):
        delta_from_json('{"format": "repro-delta/v1", "changes": '
                        '[{"relation": "R", "op": "upsert", "values": [1]}]}')
