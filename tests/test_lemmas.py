"""Property tests for the combinatorial lemmas the algorithms rely on.

The §5/§6 reductions are only correct-and-tight because of Lemma 6 (the
odd/even split of a sorted degree vector keeps both sides ≤ √λ) and
Lemma 11 (the {n, n−3, n−6, …} split keeps both sides ≤ λ^{2/3} whenever
the largest degree is ≤ √λ).  We test the exact split rules the code uses
against random degree vectors.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st


def _odd_even_split(degrees):
    """§5: positions 1,3,5,… vs 2,4,6,… of the ascending-sorted vector."""
    ordered = sorted(degrees)
    odd = [ordered[k] for k in range(0, len(ordered), 2)]
    even = [ordered[k] for k in range(1, len(ordered), 2)]
    return odd, even


def _lemma11_split(degrees):
    """§6: positions I = {n, n−3, n−6, …} (1-based) vs the rest."""
    ordered = sorted(degrees)
    n = len(ordered)
    in_i = set()
    position = n
    while position >= 1:
        in_i.add(position)
        position -= 3
    i_side = [ordered[k - 1] for k in sorted(in_i)]
    j_side = [ordered[k - 1] for k in range(1, n + 1) if k not in in_i]
    return i_side, j_side


def _product(values):
    result = 1
    for value in values:
        result *= value
    return result


degree_vectors = st.lists(st.integers(min_value=1, max_value=50), min_size=2, max_size=8)


@settings(max_examples=300, deadline=None)
@given(degree_vectors)
def test_lemma6_odd_even_bounded_by_sqrt(degrees):
    """Lemma 6: with I = odd positions of [n−2] … the paper's statement is
    about all-but-the-top-two entries; operationally §5 bounds
    |R_φ(A^odd, B)| ≤ √λ · d_n per value, i.e. dropping the largest entry of
    each side leaves a product ≤ √λ."""
    odd, even = _odd_even_split(degrees)
    lam = _product(degrees)
    # The paper's invariant: each side's product, divided by its largest
    # element, is ≤ √λ (that largest element is the Σ_b factor).
    for side in (odd, even):
        if side:
            assert _product(side) / max(side) <= math.sqrt(lam) + 1e-9


@settings(max_examples=300, deadline=None)
@given(degree_vectors)
def test_lemma11_split_bounded_by_two_thirds(degrees):
    """Lemma 11: if d_n ≤ √λ then both index-set products are ≤ λ^{2/3}."""
    ordered = sorted(degrees)
    lam = _product(ordered)
    if ordered[-1] > math.sqrt(lam):
        return  # premise fails; lemma says nothing
    i_side, j_side = _lemma11_split(ordered)
    bound = lam ** (2.0 / 3.0)
    assert _product(i_side) <= bound * (1 + 1e-9)
    assert _product(j_side) <= bound * (1 + 1e-9)


@settings(max_examples=200, deadline=None)
@given(degree_vectors)
def test_lemma11_split_partitions(degrees):
    i_side, j_side = _lemma11_split(degrees)
    assert sorted(i_side + j_side) == sorted(degrees)
    assert i_side  # I always contains position n


@settings(max_examples=200, deadline=None)
@given(degree_vectors)
def test_small_large_classification_consistency(degrees):
    """§6's small/large test: ∏_{i<n} d_{φ(i)} ≤ d_{φ(n)} ⇒ the product of
    all-but-the-largest is ≤ √λ (Lemma 9 case 1)."""
    ordered = sorted(degrees)
    rest, top = ordered[:-1], ordered[-1]
    lam = _product(ordered)
    if _product(rest) <= top:
        assert _product(rest) <= math.sqrt(lam) + 1e-9
