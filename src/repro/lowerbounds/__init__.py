"""Hard instances realizing the paper's §3.3 lower bounds."""

from .instances import MATMUL_QUERY, HardInstance, theorem2_instance, theorem3_instance

__all__ = ["theorem2_instance", "theorem3_instance", "HardInstance", "MATMUL_QUERY"]
