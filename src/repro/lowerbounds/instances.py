"""Hard-instance constructions of the §3.3 lower bounds.

* :func:`theorem2_instance` — the "two heavy columns" family forcing load
  Ω((N1+N2)/p) even on idempotent semirings: every output pair needs two
  ``R2`` tuples that start on different servers to meet.
* :func:`theorem3_instance` — the Cartesian family
  ``R1 = dom(A)×dom(B), R2 = dom(B)×dom(C)`` with
  ``|A| = √(N1·OUT/N2)``, ``|B| = √(N1N2/OUT)``, ``|C| = √(N2·OUT/N1)``,
  forcing load Ω(min(√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3})).

Both return ordinary :class:`~repro.data.query.Instance` objects (the
matmul query) whose realized sizes are within constant factors of the
requested ``N1, N2, OUT`` — exactly the paper's Θ(·) guarantees — plus the
realized parameters for the benchmark tables.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..semiring import Semiring

__all__ = ["theorem2_instance", "theorem3_instance", "HardInstance", "MATMUL_QUERY"]

MATMUL_QUERY = TreeQuery(
    (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
)


@dataclass
class HardInstance:
    """A lower-bound instance plus its realized parameters."""

    instance: Instance
    n1: int
    n2: int
    out: int


def theorem2_instance(
    n1: int, n2: int, out: int, semiring: Semiring, weight=None
) -> HardInstance:
    """Theorem 2 construction (requires max(N1,N2) ≤ OUT ≤ N1·N2, N1,N2 ≥ 2)."""
    _check_params(n1, n2, out)
    if weight is None:
        weight = semiring.one
    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))

    # Core: a × {b_1..b_{N1}}; {b_1, b_2} × {c_1..c_{N2/2}}.
    core_b = max(2, n1)
    core_c = max(1, n2 // 2)
    for i in range(core_b):
        r1.add((("a", 0), ("b", i)), weight)
    for j in range(core_c):
        for i in range(2):
            r2.add((("b", i), ("c", j)), weight)
    out_so_far = core_c  # pairs (a, c_j)

    # Dummy padding to reach Θ(OUT): disjoint rectangles a' × c' through
    # fresh b values, sized to respect the remaining tuple budgets.
    remaining = max(0, out - out_so_far)
    block_index = 0
    budget1 = max(0, n1 - len(r1))
    budget2 = max(0, n2 - len(r2))
    while remaining > 0 and budget1 > 0 and budget2 > 0:
        rows = min(budget1, max(1, math.ceil(remaining / budget2)))
        cols = min(budget2, max(1, math.ceil(remaining / rows)))
        b = ("bp", block_index)
        for i in range(rows):
            r1.add((("ap", block_index, i), b), weight)
        for j in range(cols):
            r2.add((b, ("cp", block_index, j)), weight)
        remaining -= rows * cols
        budget1 -= rows
        budget2 -= cols
        block_index += 1

    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)
    realized_out = out_so_far + (max(0, out - out_so_far) - max(0, remaining))
    return HardInstance(instance, len(r1), len(r2), realized_out)


def theorem3_instance(
    n1: int, n2: int, out: int, semiring: Semiring, weight=None
) -> HardInstance:
    """Theorem 3 construction (requires 1/OUT ≤ N1/N2 ≤ OUT)."""
    _check_params(n1, n2, out)
    if weight is None:
        weight = semiring.one
    dom_a = max(1, round(math.sqrt(n1 * out / n2)))
    dom_b = max(1, round(math.sqrt(n1 * n2 / out)))
    dom_c = max(1, round(math.sqrt(n2 * out / n1)))

    r1 = Relation("R1", ("A", "B"))
    r2 = Relation("R2", ("B", "C"))
    for a in range(dom_a):
        for b in range(dom_b):
            r1.add((("a", a), ("b", b)), weight)
    for b in range(dom_b):
        for c in range(dom_c):
            r2.add((("b", b), ("c", c)), weight)
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)
    return HardInstance(instance, len(r1), len(r2), dom_a * dom_c)


def _check_params(n1: int, n2: int, out: int) -> None:
    if n1 < 2 or n2 < 2:
        raise ValueError("lower bounds require N1, N2 ≥ 2")
    if not max(n1, n2) <= out <= n1 * n2:
        raise ValueError("lower bounds require max(N1,N2) ≤ OUT ≤ N1·N2")
