"""Materialized join-aggregate views maintained by delta propagation.

A :class:`MaterializedView` pins a query, an
:class:`~repro.config.ExecutionConfig`, and the instance state, and keeps
the query answer live under :class:`~repro.ivm.delta.DeltaBatch` streams.
The design target is the instance-optimality lens of Hu & Yi's acyclic
joins work (arXiv:1903.09717): maintenance cost proportional to *what
changed*, not to instance size N.

How one batch is applied, per touched relation in query order
(sequential telescoping, so multi-relation batches compose exactly):

1. the relation's changes become one *delta relation* ΔR over the
   support semiring ``base × ℤ`` — a brand-new key carries ``(w, +1)``,
   an annotation bump of an existing key carries ``(w, 0)``, and a
   deletion carries ``(negate(w_current), −1)`` so the pair product of a
   combination is already the compensating contribution;
2. every *other* relation is semijoin-restricted to the tuples
   join-reachable from ΔR, walking the join tree outward from the delta
   edge through the view's per-attribute indexes — each relation and
   attribute is visited exactly once (the query hypergraph is a tree),
   so the restricted instance is proportional to the delta's join
   neighbourhood, never to N;
3. the restricted instance runs through the ordinary distributed
   executor (``algorithm="yannakakis"`` — the join-tree propagation pass
   — on a fresh cluster built from the pinned config), and the result is
   ⊕-merged into the maintained answer, dropping keys whose support
   count reaches zero;
4. the stored relation and its indexes absorb the changes.

Steps with an empty ΔR or an empty restriction short-circuit: no cluster
is built and nothing is metered.  All metering from step 3 accumulates
under the distinct ``maintenance`` tag of
:class:`~repro.mpc.stats.CostReport` (load is a max over delta runs,
communication/rounds/products are totals) — the base meters are the
materialization run's and never change afterwards, the same contract as
the fault-injection ``recovery`` tag.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, Union

from ..config import ExecutionConfig
from ..core.executor import run_query
from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..errors import ConfigError
from ..mpc.stats import CostReport
from ..obs.events import MAINTENANCE_OP
from .delta import (
    DELETE,
    INSERT,
    DeltaBatch,
    DeltaChange,
    support_semiring,
    validate_batch,
)

__all__ = ["MaterializedView", "DeltaResult", "materialize"]

#: value → set of tuple keys, one map per schema position.
_AttrIndex = Dict[Any, Set[Tuple[Any, ...]]]


@dataclass(frozen=True)
class DeltaResult:
    """Outcome of one :meth:`MaterializedView.apply` call."""

    #: Number of changes in the applied batch.
    changes: int
    #: Relations the batch touched, in query order.
    relations: Tuple[str, ...]
    #: Propagation runs actually executed (short-circuited steps excluded).
    runs: int
    #: Maintenance cost of this batch: max load over its runs, and
    #: communication/rounds/products totals.
    load: int
    communication: int
    rounds: int
    products: int
    #: Answer size after the batch.
    out_size: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "changes": self.changes,
            "relations": list(self.relations),
            "runs": self.runs,
            "load": self.load,
            "communication": self.communication,
            "rounds": self.rounds,
            "products": self.products,
            "out_size": self.out_size,
        }


class MaterializedView:
    """A live join-aggregate answer over a pinned query and config."""

    def __init__(self, instance: Instance,
                 config: Optional[ExecutionConfig] = None,
                 name: str = "view") -> None:
        config = config if config is not None else ExecutionConfig()
        if config.fault_schedule is not None:
            raise ConfigError(
                "materialized views and fault injection are mutually "
                "exclusive: maintenance runs must be deterministic"
            )
        self.name = name
        self.query: TreeQuery = instance.query
        self.semiring = instance.semiring
        self.config = config
        self.out_schema: Tuple[str, ...] = tuple(sorted(self.query.output))
        #: Delta runs always use the join-tree propagation algorithm; the
        #: restricted instances keep the pinned query's shape, so the
        #: choice is deterministic and uniform across runs.
        self._run_config = dc_replace(config, algorithm="yannakakis")
        self._pair = support_semiring(instance.semiring)
        self._relations: Dict[str, Relation] = {
            rel_name: Relation(rel_name, rel.schema, list(rel))
            for rel_name, rel in instance.relations.items()
        }
        self._indexes: Dict[str, Tuple[_AttrIndex, _AttrIndex]] = {
            rel_name: self._build_index(rel)
            for rel_name, rel in self._relations.items()
        }
        result = run_query(
            Instance(self.query, self._pair_relations(), self._pair),
            config=self._run_config,
        )
        #: answer key → (base annotation, support count).
        self._answer: Dict[Tuple[Any, ...], Tuple[Any, int]] = dict(
            result.relation.tuples
        )
        #: The materialization run's report — the view's base meters.
        self.base_report: CostReport = result.report
        self._maintenance_load = 0
        self._maintenance_communication = 0
        self._maintenance_rounds = 0
        self._maintenance_products = 0
        self.deltas_applied = 0
        self.changes_applied = 0
        #: Bumped on every applied batch; lets callers detect staleness.
        self.generation = 0

    # -- inspection ---------------------------------------------------------

    @property
    def out_size(self) -> int:
        return len(self._answer)

    @property
    def instance_size(self) -> int:
        """Current N = Σ_e |R_e| of the maintained state."""
        return sum(len(rel) for rel in self._relations.values())

    def answer(self) -> Relation:
        """The maintained answer over the *base* semiring."""
        return Relation(
            "result",
            self.out_schema,
            [(key, value) for key, (value, _count) in self._answer.items()],
        )

    def current_instance(self) -> Instance:
        """A fresh copy of the maintained instance (the oracle's input)."""
        return Instance(
            self.query,
            {
                rel_name: Relation(rel_name, rel.schema, list(rel))
                for rel_name, rel in self._relations.items()
            },
            self.semiring,
        )

    def report(self) -> CostReport:
        """Base meters from materialization + accumulated maintenance tag."""
        return dc_replace(
            self.base_report,
            maintenance_load=self._maintenance_load,
            maintenance_communication=self._maintenance_communication,
            maintenance_rounds=self._maintenance_rounds,
            maintenance_products=self._maintenance_products,
        )

    def to_summary(self) -> Dict[str, Any]:
        """JSON-ready description (used by the CLI and the service)."""
        return {
            "name": self.name,
            "algorithm": self.base_report.algorithm,
            "out_size": self.out_size,
            "instance_size": self.instance_size,
            "deltas_applied": self.deltas_applied,
            "changes_applied": self.changes_applied,
            "generation": self.generation,
            "report": self.report().to_dict(),
        }

    # -- maintenance --------------------------------------------------------

    def apply(self, batch: Union[DeltaBatch, Iterable[DeltaChange]]) -> DeltaResult:
        """Apply one delta batch; returns this batch's maintenance costs."""
        if not isinstance(batch, DeltaBatch):
            batch = DeltaBatch(tuple(batch))
        validate_batch(
            batch, Instance(self.query, self._relations, self.semiring)
        )
        load = communication = rounds = products = runs = 0
        touched: List[str] = []
        for rel_name, _attrs in self.query.relations:
            deletions = [c for c in batch
                         if c.relation == rel_name and c.op == DELETE]
            insertions = [c for c in batch
                          if c.relation == rel_name and c.op == INSERT]
            if not deletions and not insertions:
                continue
            touched.append(rel_name)
            delta_rel = self._delta_relation(rel_name, deletions, insertions)
            delta_answer: Optional[Dict[Tuple[Any, ...], Tuple[Any, int]]] = None
            if len(delta_rel):
                restricted = self._restricted(rel_name, delta_rel)
                if restricted is not None:
                    restricted[rel_name] = delta_rel
                    run = run_query(
                        Instance(self.query, restricted, self._pair),
                        config=self._run_config,
                    )
                    delta_answer = run.relation.tuples
                    load = max(load, run.report.max_load)
                    communication += run.report.total_communication
                    rounds += run.report.rounds
                    products += run.report.elementary_products
                    runs += 1
            # Telescoping: this relation's state (and indexes) absorb the
            # changes *before* the next touched relation runs, so later
            # runs see the updated neighbourhood.
            self._apply_state(rel_name, deletions, insertions)
            if delta_answer:
                self._merge_answer(delta_answer)
        self._maintenance_load = max(self._maintenance_load, load)
        self._maintenance_communication += communication
        self._maintenance_rounds += rounds
        self._maintenance_products += products
        self.deltas_applied += 1
        self.changes_applied += len(batch)
        self.generation += 1
        result = DeltaResult(
            changes=len(batch),
            relations=tuple(touched),
            runs=runs,
            load=load,
            communication=communication,
            rounds=rounds,
            products=products,
            out_size=self.out_size,
        )
        tracer = self.config.tracer
        if tracer is not None:
            # Out-of-band summary event (round −1, outside LOAD_OPS), the
            # same pattern as the planner's "plan" header event.
            tracer.emit(MAINTENANCE_OP, -1, (),
                        detail={"view": self.name, **result.to_dict()})
        return result

    # -- internals ----------------------------------------------------------

    def _pair_relations(self) -> Dict[str, Relation]:
        """Current state lifted to the support semiring: every key (w, 1)."""
        return {
            rel_name: Relation(
                rel_name, rel.schema,
                [(key, (value, 1)) for key, value in rel.tuples.items()],
            )
            for rel_name, rel in self._relations.items()
        }

    @staticmethod
    def _build_index(rel: Relation) -> Tuple[_AttrIndex, _AttrIndex]:
        first: _AttrIndex = {}
        second: _AttrIndex = {}
        for key in rel.tuples:
            first.setdefault(key[0], set()).add(key)
            second.setdefault(key[1], set()).add(key)
        return (first, second)

    def _delta_relation(self, rel_name: str, deletions: List[DeltaChange],
                        insertions: List[DeltaChange]) -> Relation:
        """The batch's changes to one relation as a ΔR over ``base × ℤ``."""
        rel = self._relations[rel_name]
        pair = self._pair
        entries: Dict[Tuple[Any, ...], Tuple[Any, int]] = {}

        def merge(key: Tuple[Any, ...], contribution: Tuple[Any, int]) -> None:
            current = entries.get(key)
            entries[key] = (contribution if current is None
                            else pair.add(current, contribution))

        deleted: Set[Tuple[Any, ...]] = set()
        for change in deletions:
            key = change.values
            if key in deleted or key not in rel.tuples:
                raise ConfigError(
                    f"delete of absent tuple {key!r} from {rel_name!r}"
                )
            deleted.add(key)
            merge(key, (self.semiring.negate(rel.tuples[key]), -1))
        present = set(rel.tuples) - deleted
        for change in insertions:
            key = change.values
            if key in present:
                merge(key, (change.annotation, 0))  # bump: support unchanged
            else:
                merge(key, (change.annotation, 1))  # brand-new key
                present.add(key)
        # A delete+reinsert pair can cancel to the exact pair zero; such
        # entries contribute nothing and would only widen the restriction.
        zero = pair.zero
        return Relation(
            rel_name, rel.schema,
            [(key, value) for key, value in entries.items() if value != zero],
        )

    def _restricted(self, delta_name: str,
                    delta_rel: Relation) -> Optional[Dict[str, Relation]]:
        """Every other relation semijoin-restricted to ΔR's neighbourhood.

        Walks the join tree outward from the delta edge; each relation is
        reached through exactly one attribute (tree-ness), so one pass of
        index probes computes the exact set of tuples that can join with
        any delta tuple.  Returns ``None`` when some restriction is empty
        — no combination can involve the delta, the contribution is zero.
        """
        query = self.query
        delta_index = next(
            i for i, (rel_name, _a) in enumerate(query.relations)
            if rel_name == delta_name
        )
        x, y = query.schema_of(delta_name)
        values: Dict[str, Set[Any]] = {
            x: {key[0] for key in delta_rel.tuples},
            y: {key[1] for key in delta_rel.tuples},
        }
        restricted: Dict[str, Relation] = {}
        visited = {delta_index}
        frontier = [x, y]
        while frontier:
            attr = frontier.pop()
            for rel_index, neighbour in query.adjacency[attr]:
                if rel_index in visited:
                    continue
                visited.add(rel_index)
                rel_name, attrs = query.relations[rel_index]
                position = attrs.index(attr)
                index = self._indexes[rel_name][position]
                keys: Set[Tuple[Any, ...]] = set()
                for value in values[attr]:
                    keys.update(index.get(value, ()))
                if not keys:
                    return None
                source = self._relations[rel_name].tuples
                restricted[rel_name] = Relation(
                    rel_name, attrs,
                    [(key, (source[key], 1)) for key in keys],
                )
                values[neighbour] = {key[1 - position] for key in keys}
                frontier.append(neighbour)
        return restricted

    def _apply_state(self, rel_name: str, deletions: List[DeltaChange],
                     insertions: List[DeltaChange]) -> None:
        rel = self._relations[rel_name]
        first, second = self._indexes[rel_name]
        for change in deletions:
            key = change.values
            del rel.tuples[key]
            for index, value in ((first, key[0]), (second, key[1])):
                bucket = index.get(value)
                if bucket is not None:
                    bucket.discard(key)
                    if not bucket:
                        del index[value]
        for change in insertions:
            key = change.values
            if key in rel.tuples:
                rel.tuples[key] = self.semiring.add(
                    rel.tuples[key], change.annotation
                )
            else:
                rel.tuples[key] = change.annotation
                first.setdefault(key[0], set()).add(key)
                second.setdefault(key[1], set()).add(key)
        rel._indexes.clear()

    def _merge_answer(
        self, delta_answer: Dict[Tuple[Any, ...], Tuple[Any, int]]
    ) -> None:
        pair = self._pair
        for key, contribution in delta_answer.items():
            current = self._answer.get(key)
            merged = (contribution if current is None
                      else pair.add(current, contribution))
            if merged[1] == 0:
                # No contributing combination left: the key leaves the
                # answer (the executor keeps computed zeros only while at
                # least one combination supports them).
                self._answer.pop(key, None)
            else:
                self._answer[key] = merged


def materialize(instance: Instance, config: Optional[ExecutionConfig] = None,
                name: str = "view") -> MaterializedView:
    """Build a :class:`MaterializedView` over ``instance``.

    The materialization itself is one ordinary distributed run (its
    meters become the view's base report); subsequent
    :meth:`MaterializedView.apply` calls meter under the ``maintenance``
    tag only.
    """
    return MaterializedView(instance, config=config, name=name)
