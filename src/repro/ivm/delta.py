"""Delta batches over annotated relations (the IVM change model).

A :class:`DeltaBatch` is an ordered set of tuple-level changes against one
:class:`~repro.data.query.Instance`:

* ``insert`` — add a tuple with an annotation; inserting an existing key
  ⊕-combines, exactly like :meth:`~repro.data.relation.Relation.add`;
* ``delete`` — remove a tuple outright (whatever its current annotation).
  Deleting an absent tuple is an error, and deletions are only supported
  when the semiring declares a :attr:`~repro.semiring.Semiring.negate`
  (:class:`~repro.errors.UnsupportedDeltaError` otherwise) — insert-only
  maintenance is the monoid case and works over *any* commutative
  semiring, because the query answer is multilinear in its relations.

Batch semantics are defined once here and shared by the incremental path
(:class:`~repro.ivm.view.MaterializedView`) and the from-scratch oracle
(:func:`mutate_instance`): relations are processed in query order, and
within each relation all deletions apply first (against the pre-batch
state of that relation), then insertions in batch order.

The module also builds the *support semiring* ``base × ℤ``: annotations
are ``(value, support)`` pairs where the second slot counts contributing
join combinations in ordinary integers.  The distributed executor keeps
tuples whose annotation *computes* to zero (e.g. ``+1 ⊕ −1`` over the
reals) as long as at least one combination contributed, so a maintained
answer must track support counts to know when a key truly disappears —
the pair's count slot is exactly that, and deletions carry
``(negate(w), −1)`` so one ⊕-merge both cancels the value and retires the
support.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..data.query import Instance
from ..data.relation import Relation
from ..errors import ConfigError, UnsupportedDeltaError
from ..semiring import Semiring

__all__ = [
    "DeltaChange",
    "DeltaBatch",
    "insert",
    "delete",
    "validate_batch",
    "mutate_instance",
    "support_semiring",
]

INSERT = "insert"
DELETE = "delete"
_OPS = (INSERT, DELETE)


@dataclass(frozen=True)
class DeltaChange:
    """One tuple-level change: ``(relation, op, values[, annotation])``."""

    relation: str
    op: str
    values: Tuple[Any, ...]
    annotation: Any = None

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ConfigError(f"unknown delta op {self.op!r}; expected {_OPS}")
        object.__setattr__(self, "values", tuple(self.values))
        if self.op == INSERT and self.annotation is None:
            raise ConfigError(
                f"insert into {self.relation!r} needs an annotation "
                "(None is not a semiring element)"
            )
        if self.op == DELETE and self.annotation is not None:
            raise ConfigError(
                "delete removes the whole tuple; it does not take an "
                "annotation (the view computes the compensating value itself)"
            )


@dataclass(frozen=True)
class DeltaBatch:
    """An ordered batch of :class:`DeltaChange` applied atomically."""

    changes: Tuple[DeltaChange, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "changes", tuple(self.changes))

    def __len__(self) -> int:
        return len(self.changes)

    def __iter__(self):
        return iter(self.changes)

    def relations(self) -> Tuple[str, ...]:
        """Distinct relation names touched, in first-appearance order."""
        seen: Dict[str, None] = {}
        for change in self.changes:
            seen.setdefault(change.relation, None)
        return tuple(seen)

    @property
    def insert_count(self) -> int:
        return sum(1 for change in self.changes if change.op == INSERT)

    @property
    def delete_count(self) -> int:
        return sum(1 for change in self.changes if change.op == DELETE)

    @property
    def has_deletions(self) -> bool:
        return any(change.op == DELETE for change in self.changes)


def insert(relation: str, values: Sequence[Any], annotation: Any) -> DeltaChange:
    """Convenience constructor for an insertion change."""
    return DeltaChange(relation, INSERT, tuple(values), annotation)


def delete(relation: str, values: Sequence[Any]) -> DeltaChange:
    """Convenience constructor for a deletion change."""
    return DeltaChange(relation, DELETE, tuple(values))


def validate_batch(batch: DeltaBatch, instance: Instance) -> None:
    """Structural validation of ``batch`` against ``instance``.

    Checks relation names, tuple arities, and — for deletions — that the
    semiring is invertible.  Existence of deleted tuples is checked at
    apply time (an earlier change in the batch may affect it).
    """
    schemas = {name: attrs for name, attrs in instance.query.relations}
    for change in batch:
        attrs = schemas.get(change.relation)
        if attrs is None:
            raise ConfigError(
                f"delta touches unknown relation {change.relation!r}; "
                f"query has {sorted(schemas)}"
            )
        if len(change.values) != len(attrs):
            raise ConfigError(
                f"delta tuple {change.values!r} has arity {len(change.values)}, "
                f"but {change.relation!r} has schema {attrs!r}"
            )
    if batch.has_deletions and instance.semiring.negate is None:
        raise UnsupportedDeltaError(
            f"deletions need additive inverses, but semiring "
            f"{instance.semiring.name!r} declares no negate; only insert-only "
            "deltas are maintainable over it (the paper's semiring model "
            "forbids subtraction)"
        )


def _grouped(batch: DeltaBatch, name: str) -> Tuple[List[DeltaChange], List[DeltaChange]]:
    """(deletions, insertions) of one relation, in batch order."""
    deletions = [c for c in batch if c.relation == name and c.op == DELETE]
    insertions = [c for c in batch if c.relation == name and c.op == INSERT]
    return deletions, insertions


def apply_to_relation(relation: Relation, batch: DeltaBatch,
                      semiring: Semiring) -> None:
    """Apply ``batch``'s changes for one relation in place (batch semantics)."""
    deletions, insertions = _grouped(batch, relation.name)
    for change in deletions:
        if change.values not in relation.tuples:
            raise ConfigError(
                f"delete of absent tuple {change.values!r} from "
                f"{relation.name!r}"
            )
        del relation.tuples[change.values]
        relation._indexes.clear()
    for change in insertions:
        relation.add(change.values, change.annotation, semiring)


def mutate_instance(instance: Instance, batch: DeltaBatch) -> Instance:
    """The from-scratch oracle's view of a delta: a new mutated instance.

    Pure — ``instance`` is untouched; the returned instance holds fresh
    :class:`~repro.data.relation.Relation` copies with ``batch`` applied
    under the batch semantics documented in the module docstring.
    """
    validate_batch(batch, instance)
    relations: Dict[str, Relation] = {
        name: Relation(name, rel.schema, list(rel))
        for name, rel in instance.relations.items()
    }
    for name, _ in instance.query.relations:
        apply_to_relation(relations[name], batch, instance.semiring)
    return Instance(instance.query, relations, instance.semiring)


def support_semiring(base: Semiring) -> Semiring:
    """The pair semiring ``base × ℤ`` used for maintained state.

    Componentwise ⊕/⊗ — the count slot is an ordinary integer, outside
    the base semiring's element discipline on purpose: it is bookkeeping
    about *how many* join combinations contribute, not an annotation.
    Both projections of a pair computation equal the corresponding scalar
    computation, so answers over the pair semiring are the base answers
    plus exact support counts.
    """

    def add(a: Tuple[Any, int], b: Tuple[Any, int]) -> Tuple[Any, int]:
        return (base.add(a[0], b[0]), a[1] + b[1])

    def mul(a: Tuple[Any, int], b: Tuple[Any, int]) -> Tuple[Any, int]:
        return (base.mul(a[0], b[0]), a[1] * b[1])

    def normalize(a: Tuple[Any, int]) -> Tuple[Any, int]:
        return (base.normalize(a[0]), a[1])

    return Semiring(
        name=f"{base.name}×support",
        zero=(base.zero, 0),
        one=(base.one, 1),
        add=add,
        mul=mul,
        idempotent_add=False,  # support counts accumulate even when base is
        normalize=normalize,
    )
