"""repro.ivm — incremental view maintenance over semiring deltas.

Keeps a join-aggregate answer live under streams of tuple insertions and
deletions, with maintenance cost proportional to the delta rather than to
instance size N (the instance-optimality lens of Hu & Yi's acyclic joins
work, arXiv:1903.09717):

* :class:`MaterializedView` — pins a query, an
  :class:`~repro.config.ExecutionConfig`, and per-relation indexed state;
  applying a :class:`DeltaBatch` semijoin-restricts the other relations
  to the delta's join neighbourhood, runs the restricted instance through
  the ordinary distributed executor, and ⊕-merges the contribution into
  the maintained answer.  All delta-run metering accumulates under the
  distinct ``maintenance`` tag of :class:`~repro.mpc.stats.CostReport`.
* :class:`DeltaBatch` / :class:`DeltaChange` — the change model.
  Insert-only batches work over *any* commutative semiring (the monoid
  case: answers are multilinear in the relations); deletions additionally
  need additive inverses (:attr:`~repro.semiring.Semiring.negate` — the
  counting and real rings), otherwise a typed
  :class:`~repro.errors.UnsupportedDeltaError` is raised.
* :func:`mutate_instance` — the from-scratch oracle's view of a batch,
  anchoring the metamorphic contract: after any delta sequence the
  incremental answer is bit-identical to recomputing on the mutated
  instance.

See docs/ivm.md for the delta model, the per-semiring invertibility
matrix, and the maintenance-tag metering contract.
"""

from ..errors import UnsupportedDeltaError
from .delta import (
    DeltaBatch,
    DeltaChange,
    delete,
    insert,
    mutate_instance,
    support_semiring,
    validate_batch,
)
from .view import DeltaResult, MaterializedView, materialize

__all__ = [
    "MaterializedView",
    "DeltaResult",
    "DeltaBatch",
    "DeltaChange",
    "UnsupportedDeltaError",
    "materialize",
    "insert",
    "delete",
    "mutate_instance",
    "support_semiring",
    "validate_batch",
]
