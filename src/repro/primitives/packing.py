"""Parallel-packing (paper §2.1, [14]).

Given items with sizes ``0 < x_i ≤ 1``, group them into sets ``Y_1 … Y_m``
with every group total ≤ 1, all but (at most) one group total ≥ 1/2, and
``m ≤ 1 + 2·Σx_i``.

Construction (zero data rounds, O(m) control traffic):

1. *Big* items (size ≥ 1/2) each form their own group.
2. *Small* items are pre-grouped by a distributed exclusive prefix sum with
   window ½ (pre-group = ⌊prefix/½⌋), so every pre-group total is < 1 and
   the number of pre-groups is ≤ 1 + 2·Σx.
3. The coordinator greedily merges consecutive pre-group totals until each
   merged group reaches ≥ ½ (staying < 1 because every pre-group added to a
   deficient group is itself < 1 − ½ + … see inline invariant), and scatters
   the pre-group → group map.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Tuple

from ..mpc.distributed import Distributed
from .scan import exclusive_prefix

__all__ = ["parallel_packing", "scoped_parallel_packing"]


def parallel_packing(
    dist: Distributed, size_fn: Callable[[Any], float]
) -> Tuple[Distributed, int]:
    """Return ``(pairs, m)``: pairs are ``(item, group_index)`` on the same
    view; ``m`` is the number of groups.  Raises on sizes outside ``(0, 1]``."""
    view = dist.view

    def checked_size(item: Any) -> float:
        size = size_fn(item)
        if not 0 < size <= 1:
            raise ValueError(f"parallel-packing size {size!r} outside (0, 1]")
        return size

    big = dist.filter_items(lambda item: checked_size(item) >= 0.5)
    small = dist.filter_items(lambda item: size_fn(item) < 0.5)

    # Step 2: distributed pre-grouping of the small items.
    prefixed, _small_total = exclusive_prefix(small, size_fn)
    pre_pairs = prefixed.map_items(lambda pair: (pair[0], int(pair[1] // 0.5)))

    # Pre-group totals (control channel: one partial per (server, pre-group),
    # at most 2 pre-groups overlap a server boundary so this is O(m + p)).
    local_totals: List[Dict[int, float]] = []
    for part in pre_pairs.parts:
        totals: Dict[int, float] = {}
        for item, pre_group in part:
            totals[pre_group] = totals.get(pre_group, 0.0) + size_fn(item)
        local_totals.append(totals)
    flattened = [pair for totals in local_totals for pair in totals.items()]
    view.control_gather(flattened)
    pre_totals: Dict[int, float] = {}
    for pre_group, value in flattened:
        pre_totals[pre_group] = pre_totals.get(pre_group, 0.0) + value

    # Step 3: coordinator merge.  Invariant: a group is closed as soon as its
    # total reaches ½; every pre-group total is < 1, and a pre-group is only
    # added to a group with total < ½ — but a pre-group of total ≥ ½ then
    # closes it at < ½ + 1 = 1.5…  To keep totals ≤ 1 we treat pre-groups of
    # total ≥ ½ like big items (own group) and only merge the < ½ ones,
    # giving merged totals < ½ + ½ = 1.
    group_of_pre: Dict[int, int] = {}
    next_group = 0
    current_total = 0.0
    current_members: List[int] = []
    for pre_group in sorted(pre_totals):
        total = pre_totals[pre_group]
        if total >= 0.5:
            group_of_pre[pre_group] = next_group
            next_group += 1
            continue
        current_members.append(pre_group)
        current_total += total
        if current_total >= 0.5:
            for member in current_members:
                group_of_pre[member] = next_group
            next_group += 1
            current_members = []
            current_total = 0.0
    if current_members:
        for member in current_members:
            group_of_pre[member] = next_group
        next_group += 1
    view.control_scatter(max(1, len(group_of_pre)))

    small_offset = next_group
    small_final = pre_pairs.map_items(
        lambda pair: (pair[0], group_of_pre[pair[1]])
    )

    # Step 1: big items numbered after the merged groups via a zero-round
    # prefix count.
    big_prefixed, big_count = exclusive_prefix(big, lambda _item: 1.0)
    big_final = big_prefixed.map_items(
        lambda pair: (pair[0], small_offset + int(pair[1]))
    )

    groups = small_offset + int(big_count)
    return small_final.concat(big_final), groups


def scoped_parallel_packing(
    dist: Distributed,
    scope_fn: Callable[[Any], Any],
    size_fn: Callable[[Any], float],
) -> Tuple[Distributed, Dict[Any, int]]:
    """Parallel-packing *within scopes*: items of different scopes never share
    a group (needed by §3.2 step 4, which packs light columns per row-group).

    Returns ``(pairs, groups_per_scope)`` where pairs are
    ``(item, (scope, group_index))`` and group indices are dense within each
    scope.  The per-scope invariants match :func:`parallel_packing`:
    every group total ≤ 1 and all but at most one group per scope ≥ ½.

    One data round (the sort by scope); control traffic O(#pre-groups).
    """
    from .sort import distributed_sort

    def checked_size(item: Any) -> float:
        size = size_fn(item)
        if not 0 < size <= 1:
            raise ValueError(f"parallel-packing size {size!r} outside (0, 1]")
        return size

    ordered = distributed_sort(dist, lambda item: _scope_sort_key(scope_fn(item)))
    big = ordered.filter_items(lambda item: checked_size(item) >= 0.5)
    small = ordered.filter_items(lambda item: size_fn(item) < 0.5)

    prefixed, _total = exclusive_prefix(small, size_fn)
    pre_pairs = prefixed.map_items(
        lambda pair: (pair[0], (scope_fn(pair[0]), int(pair[1] // 0.5)))
    )

    view = dist.view
    local_totals: List[Dict[Tuple[Any, int], float]] = []
    for part in pre_pairs.parts:
        totals: Dict[Tuple[Any, int], float] = {}
        for item, pre_key in part:
            totals[pre_key] = totals.get(pre_key, 0.0) + size_fn(item)
        local_totals.append(totals)
    flattened = [pair for totals in local_totals for pair in totals.items()]
    view.control_gather(flattened)
    pre_totals: Dict[Tuple[Any, int], float] = {}
    for pre_key, value in flattened:
        pre_totals[pre_key] = pre_totals.get(pre_key, 0.0) + value

    group_of_pre: Dict[Tuple[Any, int], int] = {}
    groups_per_scope: Dict[Any, int] = {}

    def next_group(scope: Any) -> int:
        index = groups_per_scope.get(scope, 0)
        groups_per_scope[scope] = index + 1
        return index

    current_scope: Any = object()  # sentinel distinct from every real scope
    current_total = 0.0
    current_members: List[Tuple[Any, int]] = []

    def flush() -> None:
        nonlocal current_total, current_members
        if current_members:
            index = next_group(current_scope)
            for member in current_members:
                group_of_pre[member] = index
        current_members = []
        current_total = 0.0

    for pre_key in sorted(pre_totals, key=lambda k: (_scope_sort_key(k[0]), k[1])):
        scope, _window = pre_key
        if scope != current_scope:
            flush()
            current_scope = scope
        total = pre_totals[pre_key]
        if total >= 0.5:
            group_of_pre[pre_key] = next_group(scope)
            continue
        current_members.append(pre_key)
        current_total += total
        if current_total >= 0.5:
            flush()
            current_scope = scope
    flush()
    view.control_scatter(max(1, len(group_of_pre)))

    small_final = pre_pairs.map_items(
        lambda pair: (pair[0], (pair[1][0], group_of_pre[pair[1]]))
    )

    def big_group(item: Any) -> Tuple[Any, int]:
        scope = scope_fn(item)
        return (scope, next_group(scope))

    big_final = big.map_items(lambda item: (item, big_group(item)))
    return small_final.concat(big_final), groups_per_scope


def _scope_sort_key(scope: Any) -> Any:
    """Sortable proxy for arbitrary hashable scopes (mixed types)."""
    return (str(type(scope)), repr(scope))
