"""Distributed dangling-tuple removal (paper §2.1, [14, 25]).

For an acyclic join, tuples that cannot participate in any full join result
are removed by a bottom-up and a top-down pass of semijoins along the
query's join tree.  O(1) rounds (2 × number of relations, constant for a
fixed query), O(N/p) load.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..data.hypergraph import join_tree_edges
from ..data.query import TreeQuery
from ..data.relation import DistRelation
from .semijoin import semijoin

__all__ = ["remove_dangling", "elimination_order"]


def elimination_order(query: TreeQuery) -> List[Tuple[str, str]]:
    """A leaf-elimination order of the query's join tree.

    Returns ``(leaf, host)`` relation-name pairs: ``leaf`` is a current leaf
    of the join tree (see :func:`repro.data.hypergraph.join_tree_edges`) and
    ``host`` its unique remaining neighbour.
    """
    adjacency: Dict[str, Set[str]] = {name: set() for name, _ in query.relations}
    for name_a, name_b, _shared in join_tree_edges(query.relations):
        adjacency[name_a].add(name_b)
        adjacency[name_b].add(name_a)
    order: List[Tuple[str, str]] = []
    while len(adjacency) > 1:
        leaf = min(name for name in adjacency if len(adjacency[name]) == 1)
        (host,) = adjacency[leaf]
        order.append((leaf, host))
        adjacency[host].discard(leaf)
        del adjacency[leaf]
    return order


def remove_dangling(
    query: TreeQuery, relations: Dict[str, DistRelation]
) -> Dict[str, DistRelation]:
    """Return semijoin-reduced copies of ``relations``.

    After this step every remaining tuple participates in at least one full
    join result, and the query result is empty iff any relation is empty.
    """
    reduced = dict(relations)
    order = elimination_order(query)

    def reduce_pair(target_name: str, source_name: str) -> None:
        target = reduced[target_name]
        source = reduced[source_name]
        shared = tuple(sorted(set(target.schema) & set(source.schema)))
        if not shared:
            return
        filtered = semijoin(
            target.data,
            source.data,
            target.key_fn(shared),
            source.key_fn(shared),
        )
        reduced[target_name] = target.with_data(filtered)

    for leaf, host in order:  # bottom-up
        reduce_pair(host, leaf)
    for leaf, host in reversed(order):  # top-down
        reduce_pair(leaf, host)
    return reduced
