"""Degree statistics and degree-annotation joins (paper §2.1).

The degree of value ``a`` in relation ``R_e`` w.r.t. attribute ``v`` is
``|σ_{v=a} R_e|``.  Degrees drive every heavy/light decomposition in the
paper.  ``attach_by_key`` co-partitions a dataset with a small per-key side
table (degrees, sketch estimates, group ids, …) and tags each item with its
key's entry — the workhorse for "identify tuples as heavy or light".
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from ..mpc.distributed import Distributed
from .multi_search import multi_search_items
from .reduce_by_key import count_by_key

__all__ = ["degree_table", "attach_by_key", "lookup_table"]


def degree_table(
    dist: Distributed, key_fn: Callable[[Any], Any], salt: int = 0
) -> Distributed:
    """``(key, degree)`` pairs, hash-partitioned by key."""
    return count_by_key(dist, key_fn, salt)


def attach_by_key(
    dist: Distributed,
    table: Distributed,
    key_fn: Callable[[Any], Any],
    default: Any = None,
    salt: int = 0,
) -> Distributed:
    """Pair every item with its key's table entry: ``(item, entry)``.

    ``table`` holds ``(key, entry)`` pairs (one per key).  Implemented as a
    multi-search against the table so a heavy key's items stay spread over
    many servers (a hash co-partitioning would stack them on one); missing
    keys get ``default``.  The result is key-sorted with ties split.
    """
    del salt  # kept for API stability; the sorted formulation needs no hash
    matched = multi_search_items(dist, table, key_fn, lambda pair: pair[0])
    return matched.map_items(
        lambda row: (
            row[0],
            row[1][1]
            if row[1] is not None and row[1][0] == key_fn(row[0])
            else default,
        )
    )


def lookup_table(pairs: Distributed) -> Dict[Any, Any]:
    """Materialize a small ``(key, entry)`` dataset at the coordinator
    (control channel); used for O(p)-sized statistics such as heavy-value
    lists, never for bulk data."""
    view = pairs.view
    collected = pairs.collect()
    view.control_gather(collected)
    return dict(collected)
