"""Distributed sorting (paper §2.1, [10]).

Sample sort with regular sampling: O(1) rounds, O(N/p) load.  Each server
sorts locally, contributes p evenly spaced sample keys over the control
channel, the coordinator picks p−1 splitters, items are range-partitioned,
and each range is sorted locally.

By default a *unique tiebreak* (origin server, position) extends every key,
so heavily duplicated keys spread across servers — required for the O(N/p)
guarantee under skew.  ``split_ties=False`` keeps equal keys on one server,
which some algorithms rely on (e.g. the §3 unbalanced matmul case sorts by
the output attribute and needs each output value co-located; the paper
proves the relevant degree is ≤ N/p there, so the bound still holds).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, List, Tuple

from ..mpc.distributed import Distributed

__all__ = ["distributed_sort", "splitters_for"]


def splitters_for(
    dist: Distributed, key_fn: Callable[[Any], Any]
) -> List[Any]:
    """p−1 range splitters chosen by regular sampling (control-channel cost)."""
    view = dist.view
    p = view.p
    samples: List[Any] = []
    for part in dist.parts:
        keys = sorted(key_fn(item) for item in part)
        if not keys:
            continue
        step = max(1, len(keys) // p)
        samples.extend(keys[::step][:p])
    view.control_gather(samples)
    samples.sort()
    if not samples:
        return []
    step = max(1, len(samples) // p)
    splitters = samples[step::step][: p - 1]
    view.control_scatter(len(splitters))
    return splitters


def distributed_sort(
    dist: Distributed,
    key_fn: Callable[[Any], Any],
    split_ties: bool = True,
) -> Distributed:
    """Globally sort ``dist`` by ``key_fn``.

    Returns a dataset whose parts are locally sorted and globally
    range-ordered: every key on server ``i`` ≤ every key on server ``j`` for
    ``i < j``.  One data round (plus control traffic).
    """
    if not split_ties:
        splitters = splitters_for(dist, key_fn)
        routed = dist.repartition(
            lambda item: bisect.bisect_right(splitters, key_fn(item))
        )
        return routed.map_parts(lambda part: sorted(part, key=key_fn))

    # Tag with a unique (origin, position) tiebreak, sort by the extended
    # key, then strip the tags.
    tagged_parts: List[List[Tuple[Any, Tuple[int, int], Any]]] = []
    for part_index, part in enumerate(dist.parts):
        tagged_parts.append(
            [
                (key_fn(item), (part_index, position), item)
                for position, item in enumerate(part)
            ]
        )
    tagged = Distributed(dist.view, tagged_parts)
    splitters = splitters_for(tagged, lambda row: (row[0], row[1]))
    routed = tagged.repartition(
        lambda row: bisect.bisect_right(splitters, (row[0], row[1]))
    )
    ordered = routed.map_parts(
        lambda part: sorted(part, key=lambda row: (row[0], row[1]))
    )
    return ordered.map_items(lambda row: row[2])
