"""Distributed sorting (paper §2.1, [10]).

Sample sort with regular sampling: O(1) rounds, O(N/p) load.  Each server
sorts locally, contributes p evenly spaced sample keys over the control
channel, the coordinator picks p−1 splitters, items are range-partitioned,
and each range is sorted locally.

By default a *unique tiebreak* (origin server, position) extends every key,
so heavily duplicated keys spread across servers — required for the O(N/p)
guarantee under skew.  ``split_ties=False`` keeps equal keys on one server,
which some algorithms rely on (e.g. the §3 unbalanced matmul case sorts by
the output attribute and needs each output value co-located; the paper
proves the relevant degree is ≤ N/p there, so the bound still holds).
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, List, Optional, Tuple

from ..backends.dispatch import np, numpy_enabled
from ..mpc.distributed import Distributed

__all__ = ["distributed_sort", "splitters_for"]


def splitters_for(
    dist: Distributed, key_fn: Callable[[Any], Any]
) -> List[Any]:
    """p−1 range splitters chosen by regular sampling (control-channel cost)."""
    view = dist.view
    p = view.p
    samples: List[Any] = []
    for part in dist.parts:
        keys = sorted(key_fn(item) for item in part)
        if not keys:
            continue
        step = max(1, len(keys) // p)
        samples.extend(keys[::step][:p])
    view.control_gather(samples)
    samples.sort()
    if not samples:
        return []
    step = max(1, len(samples) // p)
    splitters = samples[step::step][: p - 1]
    view.control_scatter(len(splitters))
    return splitters


def distributed_sort(
    dist: Distributed,
    key_fn: Callable[[Any], Any],
    split_ties: bool = True,
) -> Distributed:
    """Globally sort ``dist`` by ``key_fn``.

    Returns a dataset whose parts are locally sorted and globally
    range-ordered: every key on server ``i`` ≤ every key on server ``j`` for
    ``i < j``.  One data round (plus control traffic).
    """
    if not split_ties:
        if numpy_enabled(dist.view):
            from ..mpc.columnar import ColumnarData

            if isinstance(dist, ColumnarData):
                columnar = _sort_columnar(dist, key_fn)
                if columnar is not None:
                    return columnar
            vectorized = _sort_vec(dist, key_fn)
            if vectorized is not None:
                return vectorized
        splitters = splitters_for(dist, key_fn)
        routed = dist.repartition(
            lambda item: bisect.bisect_right(splitters, key_fn(item))
        )
        return routed.map_parts(lambda part: sorted(part, key=key_fn))

    # Tag with a unique (origin, position) tiebreak, sort by the extended
    # key, then strip the tags.
    tagged_parts: List[List[Tuple[Any, Tuple[int, int], Any]]] = []
    for part_index, part in enumerate(dist.parts):
        tagged_parts.append(
            [
                (key_fn(item), (part_index, position), item)
                for position, item in enumerate(part)
            ]
        )
    tagged = Distributed(dist.view, tagged_parts)
    splitters = splitters_for(tagged, lambda row: (row[0], row[1]))
    routed = tagged.repartition(
        lambda row: bisect.bisect_right(splitters, (row[0], row[1]))
    )
    ordered = routed.map_parts(
        lambda part: sorted(part, key=lambda row: (row[0], row[1]))
    )
    return ordered.map_items(lambda row: row[2])


#: int64 keys must convert exactly.
_SORT_INT_LIMIT = 1 << 62


def _scalar_keys(keys: List[Any]) -> Optional[Any]:
    """The keys as a numeric array ordering identically to Python ``sorted``,
    or None (non-scalar keys, mixed types, NaN, oversized ints).

    1-tuples are unwrapped — comparing ``(k,)`` tuples is comparing ``k``.
    """
    scalars: List[Any] = []
    for key in keys:
        if isinstance(key, tuple):
            if len(key) != 1:
                return None
            key = key[0]
        if type(key) is bool:
            return None
        scalars.append(key)
    if all(type(key) is int for key in scalars):
        if any(not -_SORT_INT_LIMIT < key < _SORT_INT_LIMIT for key in scalars):
            return None
        return np.asarray(scalars, dtype=np.int64)
    if all(type(key) is float for key in scalars):
        if any(key != key for key in scalars):
            return None
        return np.asarray(scalars, dtype=np.float64)
    return None


def _sort_columnar(dist, key_fn: Callable[[Any], Any]):
    """Array-shipping sample sort for a :class:`ColumnarData` keyed on one
    int attribute: the exact samples, splitters, routing, and local order
    of :func:`_sort_vec`, with the exchange moving batches instead of
    items.  None ⇒ fall back (no communication has happened)."""
    from ..backends.kernels import select_splitters
    from ..mpc.columnar import ColumnarData

    indices = getattr(key_fn, "indices", None)
    if indices is None or len(indices) != 1:
        return None
    view = dist.view
    p = view.p
    codec = dist.codec
    column_index = indices[0]
    staged: List[Any] = []
    for batch in dist.batches:
        if column_index >= len(batch.columns):
            return None
        values = codec.int_values(batch.columns[column_index])
        if values is None:
            return None
        staged.append(values)

    sample_blocks: List[Any] = []
    gathered = 0
    for values in staged:
        if values.shape[0] == 0:
            continue
        ordered = np.sort(values, kind="stable")
        step = max(1, ordered.shape[0] // p)
        block = ordered[::step][:p]
        sample_blocks.append(block)
        gathered += block.shape[0]
    view.control_gather([None] * gathered)
    if sample_blocks:
        samples = np.sort(np.concatenate(sample_blocks), kind="stable")
    else:
        samples = np.empty(0, dtype=np.int64)
    splitters = select_splitters(samples, p)
    view.control_scatter(int(splitters.shape[0]))

    dests = [
        np.searchsorted(splitters, values, side="right").astype(np.int64)
        for values in staged
    ]
    inboxes = view.exchange_batches(dests, dist.batches)

    sorted_batches = []
    for inbox in inboxes:
        values = codec.int_values(inbox.columns[column_index])
        order = np.argsort(values, kind="stable")
        sorted_batches.append(inbox.take(order))
    return ColumnarData(view, sorted_batches, codec)


def _sort_vec(dist: Distributed, key_fn: Callable[[Any], Any]) -> Optional[Distributed]:
    """Vectorized no-tiebreak sample sort for numeric scalar (or 1-tuple)
    keys: same samples, same splitters, same routing, same local order as
    the bisect path — stable argsort reproduces Timsort's permutation.

    Returns None (before any communication) when any part's keys are not
    uniformly numeric.
    """
    from ..backends.kernels import select_splitters

    view = dist.view
    p = view.p
    staged: List[Any] = []
    for part in dist.parts:
        arrays = _scalar_keys([key_fn(item) for item in part])
        if arrays is None and part:
            return None
        staged.append(arrays)

    sample_blocks: List[Any] = []
    gathered = 0
    for arrays in staged:
        if arrays is None or arrays.shape[0] == 0:
            continue
        ordered = np.sort(arrays, kind="stable")
        step = max(1, ordered.shape[0] // p)
        block = ordered[::step][:p]
        sample_blocks.append(block)
        gathered += block.shape[0]
    view.control_gather([None] * gathered)
    if sample_blocks:
        samples = np.sort(np.concatenate(sample_blocks), kind="stable")
    else:
        samples = np.empty(0, dtype=np.int64)
    splitters = select_splitters(samples, p)
    view.control_scatter(int(splitters.shape[0]))

    outboxes: List[List[Tuple[int, Any]]] = []
    for part, arrays in zip(dist.parts, staged):
        if arrays is None or arrays.shape[0] == 0:
            outboxes.append([])
            continue
        dests = np.searchsorted(splitters, arrays, side="right").tolist()
        outboxes.append(list(zip(dests, part)))
    inboxes = view.exchange(outboxes)

    sorted_parts: List[List[Any]] = []
    for inbox in inboxes:
        arrays = _scalar_keys([key_fn(item) for item in inbox])
        if arrays is None:
            sorted_parts.append(sorted(inbox, key=key_fn))
            continue
        order = np.argsort(arrays, kind="stable").tolist()
        sorted_parts.append([inbox[i] for i in order])
    return Distributed(view, sorted_parts)
