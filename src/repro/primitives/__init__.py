"""MPC primitives (paper §2.1–2.2): the O(N/p)-load, O(1)-round toolbox."""

from .dangling import elimination_order, remove_dangling
from .degrees import attach_by_key, degree_table, lookup_table
from .estimate_out import estimate_path_out, propagate_sketches, sketch_column
from .kmv import KMV, MultiKMV, median_estimate
from .multi_search import multi_search
from .packing import parallel_packing
from .reduce_by_key import count_by_key, distinct_keys, reduce_by_key
from .scan import exclusive_prefix
from .semijoin import anti_semijoin, semijoin
from .sort import distributed_sort, splitters_for

__all__ = [
    "distributed_sort",
    "splitters_for",
    "exclusive_prefix",
    "reduce_by_key",
    "count_by_key",
    "distinct_keys",
    "multi_search",
    "semijoin",
    "anti_semijoin",
    "parallel_packing",
    "degree_table",
    "attach_by_key",
    "lookup_table",
    "remove_dangling",
    "elimination_order",
    "KMV",
    "MultiKMV",
    "median_estimate",
    "estimate_path_out",
    "propagate_sketches",
    "sketch_column",
]
