"""Prefix sums over a distributed dataset (helper for parallel-packing).

The values never move: each server computes its local sum, the coordinator
turns the p sums into p offsets (control channel), and each server produces
its local exclusive prefixes.  Zero data rounds.
"""

from __future__ import annotations

from typing import Any, Callable, List, Tuple

from ..mpc.distributed import Distributed

__all__ = ["exclusive_prefix"]


def exclusive_prefix(
    dist: Distributed, value_fn: Callable[[Any], float]
) -> Tuple[Distributed, float]:
    """Pair every item with the sum of the values of all items before it
    (in part order, then within-part order).  Returns ``(pairs, total)``
    where pairs are ``(item, prefix_before)``.
    """
    view = dist.view
    local_sums = [sum(value_fn(item) for item in part) for part in dist.parts]
    view.control_gather(local_sums)
    offsets: List[float] = []
    running = 0.0
    for value in local_sums:
        offsets.append(running)
        running += value
    view.control_scatter(1)

    parts = []
    for part, offset in zip(dist.parts, offsets):
        prefix = offset
        rows = []
        for item in part:
            rows.append((item, prefix))
            prefix += value_fn(item)
        parts.append(rows)
    return Distributed(view, parts), running
