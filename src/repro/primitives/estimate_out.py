"""Output-size estimation for line queries (paper §2.2).

For a line query ``∑ R1(A1,A2) ⋈ … ⋈ Rn(An,An+1)`` the output size is
``OUT = Σ_a OUT_a`` where ``OUT_a`` counts the distinct ``A_{n+1}`` values
reachable from ``a ∈ dom(A1)``.  The paper computes a constant-factor
approximation of every ``OUT_a`` (and hence of OUT) with linear load by
pushing KMV sketches from right to left with n reduce-by-key passes, using
the sketch merge as the "sum".

Sketch bundles are metered as one communication unit each: their true size
is O(k log N) = Õ(1), absorbed by the paper's Õ notation (see DESIGN.md).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..backends.dispatch import np, numpy_enabled
from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from .degrees import attach_by_key
from .kmv import KMV, MultiKMV
from .reduce_by_key import reduce_by_key

__all__ = ["estimate_path_out", "sketch_column", "propagate_sketches"]

#: Default sketch parameters: k controls the per-sketch accuracy (≈1/√k
#: relative error), repetitions the median boosting.
DEFAULT_K = 64
DEFAULT_REPETITIONS = 5


def sketch_column(
    relation: DistRelation,
    counted_attr: str,
    key_attr: str,
    k: int = DEFAULT_K,
    repetitions: int = DEFAULT_REPETITIONS,
    base_salt: int = 1000,
) -> Distributed:
    """Per ``key_attr`` value, a :class:`MultiKMV` over the joined
    ``counted_attr`` values: ``(key_value, bundle)`` pairs."""
    counted_index = relation.attr_index(counted_attr)
    key_index = relation.attr_index(key_attr)
    if numpy_enabled(relation.view):
        return _sketch_column_vec(
            relation, counted_index, key_index, k, repetitions, base_salt
        )
    singles = relation.data.map_items(
        lambda item: (
            item[0][key_index],
            MultiKMV.of([item[0][counted_index]], k, repetitions, base_salt),
        )
    )
    return reduce_by_key(
        singles,
        lambda pair: pair[0],
        lambda pair: pair[1],
        lambda a, b: a.merge(b),
    )


def _sketch_column_vec(
    relation: DistRelation,
    counted_index: int,
    key_index: int,
    k: int,
    repetitions: int,
    base_salt: int,
) -> Distributed:
    """The vectorized sketch build: equals the tuple path's reduce-by-key
    over singleton bundles (same partial bundles, same first-occurrence
    emission order, same exchange, same final merge).

    Folding singleton :class:`MultiKMV` merges per key leaves exactly the
    ``k`` smallest *distinct* hash units of the key's counted values, per
    repetition — computed here with one lexsort per repetition instead of
    one sketch allocation per tuple.
    """
    from ..backends.kernels import first_occurrence_unique

    view = relation.view
    p = view.p
    codec = view.cluster.codec

    outboxes: List[List[Tuple[int, Tuple]]] = []
    for part in relation.data.parts:
        key_ids = codec.encode_many([item[0][key_index] for item in part])
        counted_ids = codec.encode_many([item[0][counted_index] for item in part])
        unique_ids = first_occurrence_unique(key_ids)
        per_rep: List[Dict[int, Tuple[float, ...]]] = []
        for repetition in range(repetitions):
            units = codec.units(counted_ids, base_salt + repetition)
            per_rep.append(_k_smallest_distinct(key_ids, units, k))
        destinations = codec.buckets(unique_ids, p, 0).tolist()
        unique_keys = codec.decode_many(unique_ids)
        outbox = []
        for dest, key, key_id in zip(destinations, unique_keys, unique_ids.tolist()):
            bundle = MultiKMV(
                tuple(
                    KMV(k, base_salt + repetition, per_rep[repetition].get(key_id, ()))
                    for repetition in range(repetitions)
                )
            )
            outbox.append((dest, (key, bundle)))
        outboxes.append(outbox)

    inboxes = view.exchange(outboxes)
    final_parts: List[List[Tuple]] = []
    for inbox in inboxes:
        totals: Dict[Tuple, MultiKMV] = {}
        for key, bundle in inbox:
            if key in totals:
                totals[key] = totals[key].merge(bundle)
            else:
                totals[key] = bundle
        final_parts.append(list(totals.items()))
    return Distributed(view, final_parts)


def _k_smallest_distinct(
    key_ids, units, k: int
) -> Dict[int, Tuple[float, ...]]:
    """Per key id, the ``k`` smallest distinct unit hashes (ascending) —
    the ``tuple(sorted(set(...)))[:k]`` of :meth:`KMV.merge`, batched."""
    if key_ids.shape[0] == 0:
        return {}
    order = np.lexsort((units, key_ids))
    ks = key_ids[order]
    us = units[order]
    fresh = np.concatenate(([True], (ks[1:] != ks[:-1]) | (us[1:] != us[:-1])))
    ks = ks[fresh]
    us = us[fresh]
    starts = np.flatnonzero(np.concatenate(([True], ks[1:] != ks[:-1])))
    counts = np.diff(np.concatenate((starts, [ks.shape[0]])))
    ranks = np.arange(ks.shape[0], dtype=np.int64) - np.repeat(starts, counts)
    keep = ranks < k
    ks = ks[keep]
    us = us[keep]
    result: Dict[int, Tuple[float, ...]] = {}
    boundaries = np.flatnonzero(
        np.concatenate(([True], ks[1:] != ks[:-1]))
    ).tolist() + [ks.shape[0]]
    key_list = ks.tolist()
    unit_list = us.tolist()
    for i in range(len(boundaries) - 1):
        start, end = boundaries[i], boundaries[i + 1]
        result[key_list[start]] = tuple(unit_list[start:end])
    return result


def propagate_sketches(
    sketches: Distributed,
    relation: DistRelation,
    from_attr: str,
    to_attr: str,
) -> Distributed:
    """One right-to-left step: merge, for every ``to`` value, the bundles of
    all ``from`` values it joins with."""
    from_index = relation.attr_index(from_attr)
    to_index = relation.attr_index(to_attr)

    # Skew-safe attachment: a heavy `from` value must not pile its tuples
    # onto one server, so the bundles are joined in via multi-search.
    tagged = attach_by_key(
        relation.data, sketches, lambda item: item[0][from_index], default=None
    )
    emitted = tagged.filter_items(lambda entry: entry[1] is not None).map_items(
        lambda entry: (entry[0][0][to_index], entry[1])
    )
    return reduce_by_key(
        emitted,
        lambda pair: pair[0],
        lambda pair: pair[1],
        lambda a, b: a.merge(b),
    )


def estimate_path_out(
    relations: Sequence[DistRelation],
    attrs: Sequence[str],
    k: int = DEFAULT_K,
    repetitions: int = DEFAULT_REPETITIONS,
    base_salt: int = 1000,
) -> Tuple[float, Distributed]:
    """Estimate reachable-distinct counts along a path.

    ``attrs = [X0, …, Xm]`` and ``relations[i]`` has schema containing
    ``(X_i, X_{i+1})``.  Counts, for every value of ``X0``, the distinct
    ``Xm`` values reachable through the path, and returns
    ``(total_estimate, per_value)`` where ``per_value`` holds
    ``(x0_value, estimate)`` pairs hash-partitioned by value.

    This is the paper's OUT estimator when the path is the whole line query
    (then ``total ≈ OUT`` and per-value ≈ OUT_a), and the arm-statistics
    estimator ``d_i(b)`` for star-like queries (§6).
    """
    if len(relations) != len(attrs) - 1 or not relations:
        raise ValueError("need m relations for m+1 path attributes")
    sketches = sketch_column(
        relations[-1], attrs[-1], attrs[-2], k, repetitions, base_salt
    )
    for i in range(len(relations) - 2, -1, -1):
        sketches = propagate_sketches(sketches, relations[i], attrs[i + 1], attrs[i])
    per_value = sketches.map_items(lambda pair: (pair[0], pair[1].estimate()))
    local_sums = [sum(est for _value, est in part) for part in per_value.parts]
    per_value.view.control_gather(local_sums)
    return float(sum(local_sums)), per_value
