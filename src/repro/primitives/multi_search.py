"""Multi-search (paper §2.1, [13]).

Given a set ``X`` of queries and a set ``Y`` of ordered reference records,
find for every ``x ∈ X`` its predecessor in ``Y`` — the reference with the
largest key ≤ the query's key (the variant semijoins and table-attachment
need: an equal reference must be found).  O(1) rounds, O(N/p) load.

Crucially, the tagged union is sorted with a *unique tiebreak* per record,
so a heavily duplicated key spreads over many servers instead of landing on
one (the skew case where hash co-partitioning fails and the paper reaches
for multi-search).  The per-server boundary is stitched by carrying each
server's last reference record across the control channel.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Tuple

from ..mpc.distributed import Distributed
from .sort import distributed_sort

__all__ = ["multi_search", "multi_search_items"]


def multi_search_items(
    queries: Distributed,
    references: Distributed,
    query_key: Callable[[Any], Any],
    reference_key: Callable[[Any], Any],
) -> Distributed:
    """``(query_item, predecessor_reference_item_or_None)`` pairs.

    Both datasets must live on the same view.  The result keeps the sorted
    (by key, ties split) distribution of the queries.
    """
    view = queries.view

    def tag(dist: Distributed, rank: int, key_fn) -> Distributed:
        parts = []
        for part_index, part in enumerate(dist.parts):
            parts.append(
                [
                    (key_fn(item), rank, (part_index, position), item)
                    for position, item in enumerate(part)
                ]
            )
        return Distributed(view, parts)

    # References sort before queries at equal keys (rank 0 < 1); the unique
    # (origin server, position) tiebreak splits duplicated keys evenly.
    tagged = tag(references, 0, reference_key).concat(tag(queries, 1, query_key))
    ordered = distributed_sort(tagged, lambda row: (row[0], row[1], row[2]))

    last_refs: List[Optional[Tuple[Any, Any]]] = []
    for part in ordered.parts:
        last: Optional[Tuple[Any, Any]] = None
        for key, rank, _uid, item in part:
            if rank == 0:
                last = (key, item)
        last_refs.append(last)
    view.control_gather([ref is not None for ref in last_refs])
    carry: List[Optional[Tuple[Any, Any]]] = []
    running: Optional[Tuple[Any, Any]] = None
    for ref in last_refs:
        carry.append(running)
        if ref is not None:
            running = ref
    view.control_scatter(1)

    parts: List[List[Tuple[Any, Optional[Any]]]] = []
    for part, incoming in zip(ordered.parts, carry):
        current = incoming
        rows: List[Tuple[Any, Optional[Any]]] = []
        for key, rank, _uid, item in part:
            if rank == 0:
                current = (key, item)
            else:
                rows.append((item, current[1] if current is not None else None))
        parts.append(rows)
    return Distributed(view, parts)


def multi_search(
    queries: Distributed,
    references: Distributed,
    query_key: Callable[[Any], Any],
    reference_key: Callable[[Any], Any],
) -> Distributed:
    """``(query_item, predecessor_reference_key_or_None)`` pairs (the paper's
    original formulation: only the predecessor's key is reported)."""
    with_items = multi_search_items(queries, references, query_key, reference_key)
    return with_items.map_items(
        lambda pair: (pair[0], None if pair[1] is None else reference_key(pair[1]))
    )
