"""k-minimum-values (KMV) distinct-count sketches (paper §2.2, [4, 7]).

A KMV sketch keeps the ``k`` smallest hash values of the elements inserted
into it.  With hashes uniform in [0, 1), the estimator ``(k−1)/v_k`` (where
``v_k`` is the k-th smallest value) is a constant-factor approximation of
the number of distinct elements with constant probability; sketches over
the *same* hash function merge by keeping the k smallest of the union,
which is exactly what reduce-by-key needs.  Running O(log N) independent
hash functions and taking the median boosts the success probability to
``1 − 1/N^{O(1)}``.
"""

from __future__ import annotations

import statistics
from typing import Any, Iterable, Tuple

from ..mpc.hashing import hash_to_unit

__all__ = ["KMV", "MultiKMV", "median_estimate"]


class KMV:
    """One KMV sketch under one hash function (identified by ``salt``)."""

    __slots__ = ("k", "salt", "values")

    def __init__(self, k: int, salt: int = 0, values: Tuple[float, ...] = ()) -> None:
        if k < 2:
            raise ValueError("KMV needs k ≥ 2")
        self.k = k
        self.salt = salt
        self.values: Tuple[float, ...] = values  # sorted, ≤ k, distinct

    @classmethod
    def of(cls, elements: Iterable[Any], k: int, salt: int = 0) -> "KMV":
        sketch = cls(k, salt)
        for element in elements:
            sketch = sketch.add(element)
        return sketch

    def add(self, element: Any) -> "KMV":
        value = hash_to_unit(element, self.salt)
        if len(self.values) == self.k and value >= self.values[-1]:
            return self
        if value in self.values:
            return self
        merged = tuple(sorted(set(self.values) | {value}))[: self.k]
        return KMV(self.k, self.salt, merged)

    def merge(self, other: "KMV") -> "KMV":
        if other.k != self.k or other.salt != self.salt:
            raise ValueError("cannot merge KMV sketches with different parameters")
        # Both sides are sorted and distinct; a linear merge (dedup, stop at
        # k) yields exactly sorted(set(a) | set(b))[:k] without the set/sort.
        mine, theirs = self.values, other.values
        if not theirs:
            return self
        if not mine:
            return other
        merged_list = []
        i = j = 0
        len_mine, len_theirs = len(mine), len(theirs)
        while len(merged_list) < self.k and i < len_mine and j < len_theirs:
            a, b = mine[i], theirs[j]
            if a < b:
                merged_list.append(a)
                i += 1
            elif b < a:
                merged_list.append(b)
                j += 1
            else:
                merged_list.append(a)
                i += 1
                j += 1
        if len(merged_list) < self.k:
            tail = mine[i:] if i < len_mine else theirs[j:]
            merged_list.extend(tail[: self.k - len(merged_list)])
        return KMV(self.k, self.salt, tuple(merged_list))

    def estimate(self) -> float:
        """Distinct-count estimate; exact when fewer than k values were seen."""
        if len(self.values) < self.k:
            return float(len(self.values))
        return (self.k - 1) / self.values[-1]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"KMV(k={self.k}, n={len(self.values)}, est={self.estimate():.1f})"


class MultiKMV:
    """A bundle of KMV sketches under independent hash functions.

    The bundle is the unit that flows through reduce-by-key during OUT
    estimation; the final estimate is the median of the per-sketch
    estimates (the paper's probability-boosting step).
    """

    __slots__ = ("sketches",)

    def __init__(self, sketches: Tuple[KMV, ...]) -> None:
        self.sketches = sketches

    @classmethod
    def of(
        cls, elements: Iterable[Any], k: int, repetitions: int, base_salt: int = 0
    ) -> "MultiKMV":
        elements = list(elements)
        return cls(
            tuple(
                KMV.of(elements, k, base_salt + repetition)
                for repetition in range(repetitions)
            )
        )

    def merge(self, other: "MultiKMV") -> "MultiKMV":
        return MultiKMV(
            tuple(mine.merge(theirs) for mine, theirs in zip(self.sketches, other.sketches))
        )

    def estimate(self) -> float:
        return median_estimate(sketch.estimate() for sketch in self.sketches)

    @property
    def size(self) -> int:
        """Communication size of the bundle in units (values held)."""
        return sum(len(sketch.values) for sketch in self.sketches)


def median_estimate(estimates: Iterable[float]) -> float:
    """Median of per-hash-function estimates (the boosting step)."""
    values = list(estimates)
    if not values:
        return 0.0
    return float(statistics.median(values))
