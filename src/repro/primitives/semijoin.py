"""Distributed semijoin (paper §2.1: "a semijoin can be computed by a
multi-search").

Built on :func:`~repro.primitives.multi_search.multi_search_items` so that a
*heavy* key — one matching N tuples — spreads its tuples across servers
(the sorted union splits ties); a hash co-partitioning formulation would
pile all of them onto one server and break the O(N/p) load bound.
"""

from __future__ import annotations

from typing import Any, Callable

from ..mpc.distributed import Distributed
from .multi_search import multi_search_items
from .reduce_by_key import distinct_keys

__all__ = ["semijoin", "anti_semijoin"]


def _filtered(
    target: Distributed,
    source: Distributed,
    key_fn: Callable[[Any], Any],
    source_key_fn: Callable[[Any], Any],
    keep_present: bool,
    salt: int,
) -> Distributed:
    keys = distinct_keys(source, source_key_fn, salt)
    matched = multi_search_items(
        target, keys, key_fn, lambda key: key
    )
    return matched.filter_items(
        lambda pair: (pair[1] == key_fn(pair[0])) == keep_present
    ).map_items(lambda pair: pair[0])


def semijoin(
    target: Distributed,
    source: Distributed,
    key_fn: Callable[[Any], Any],
    source_key_fn: Callable[[Any], Any] | None = None,
    salt: int = 0,
) -> Distributed:
    """Target items whose key appears in the source (key-sorted layout)."""
    return _filtered(target, source, key_fn, source_key_fn or key_fn, True, salt)


def anti_semijoin(
    target: Distributed,
    source: Distributed,
    key_fn: Callable[[Any], Any],
    source_key_fn: Callable[[Any], Any] | None = None,
    salt: int = 0,
) -> Distributed:
    """Target items whose key does *not* appear in the source."""
    return _filtered(target, source, key_fn, source_key_fn or key_fn, False, salt)
