"""Reduce-by-key (paper §2.1, [13]).

Computes the "sum" of values per key under any associative, commutative
combiner in O(1) rounds with O(N/p + K/p) load: local pre-aggregation first
(so each server emits at most one partial per key), then a hash
repartitioning of the ≤ p·K partials, then a final local combine.  The
pre-aggregation is what caps the per-key fan-in at p and keeps heavy keys
harmless.

When the cluster runs the numpy backend and the caller identifies the
combiner via a ``profile`` (an :class:`~repro.backends.columnar
.AnnotationProfile`, or ``"distinct"`` for dedup-only reductions), both
aggregation stages run as sort-and-segment-reduce kernels instead of dict
folds.  The vectorized path emits partials in the same first-occurrence
order, routes them to the same hashed destinations through the same
``exchange``, and therefore meters identically; anything it cannot encode
exactly falls back to the dict kernels before any communication happens.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from ..backends.dispatch import numpy_enabled
from ..mpc.distributed import Distributed
from ..mpc.hashing import hash_to_bucket

__all__ = ["reduce_by_key", "count_by_key", "distinct_keys"]

#: Pre-aggregated partials may be much larger than raw annotations; the
#: final stage admits ints below 2^40 (sums of ≤ 2^22 of them stay exact).
_FINAL_INT_LIMIT = 1 << 40
_FINAL_MAX_ITEMS = 1 << 22


def reduce_by_key(
    dist: Distributed,
    key_fn: Callable[[Any], Any],
    value_fn: Callable[[Any], Any],
    combine: Callable[[Any, Any], Any],
    salt: int = 0,
    profile: Optional[Any] = None,
) -> Distributed:
    """Return a dataset of ``(key, combined_value)`` pairs, one per distinct key,
    hash-partitioned by key.

    ``profile`` (optional) declares what ``combine`` computes so the numpy
    backend may vectorize: pass the semiring's
    :func:`~repro.backends.columnar.profile_of` result, or ``"distinct"``
    when ``combine`` just keeps the first value.  The caller is responsible
    for profile/combine agreement; results and metering are identical with
    or without it.
    """
    view = dist.view
    p = view.p

    if profile is not None and numpy_enabled(view):
        result = _reduce_by_key_columnar(dist, key_fn, value_fn, combine, salt, profile)
        if result is not None:
            return result

    def pre_aggregate(part: List[Any]) -> List[Any]:
        partials: Dict[Any, Any] = {}
        for item in part:
            key = key_fn(item)
            value = value_fn(item)
            if key in partials:
                partials[key] = combine(partials[key], value)
            else:
                partials[key] = value
        return list(partials.items())

    partials = dist.map_parts(pre_aggregate)
    routed = partials.repartition(lambda pair: hash_to_bucket(pair[0], p, salt))

    def final_aggregate(part: List[Any]) -> List[Any]:
        totals: Dict[Any, Any] = {}
        for key, value in part:
            if key in totals:
                totals[key] = combine(totals[key], value)
            else:
                totals[key] = value
        return list(totals.items())

    return routed.map_parts(final_aggregate)


def _reduce_by_key_columnar(
    dist: Distributed,
    key_fn: Callable[[Any], Any],
    value_fn: Callable[[Any], Any],
    combine: Callable[[Any, Any], Any],
    salt: int,
    profile: Any,
) -> Optional[Distributed]:
    """The vectorized both-stages path; None ⇒ caller falls back (and no
    communication has happened yet)."""
    from ..backends.columnar import encode_annotations
    from ..backends.dispatch import columnar_enabled
    from ..backends.kernels import first_occurrence_unique, group_reduce

    view = dist.view
    p = view.p
    codec = view.cluster.codec
    distinct = profile == "distinct"

    # Stage 1 (local): encode every part before touching the network, so a
    # non-encodable annotation anywhere aborts cleanly into the dict path.
    staged: List[tuple] = []
    for part in dist.parts:
        keys = [key_fn(item) for item in part]
        if distinct:
            values = None
        else:
            values = encode_annotations([value_fn(item) for item in part], profile)
            if values is None and part:
                return None
        staged.append((keys, values))

    reduced_parts: List[tuple] = []
    for keys, values in staged:
        key_ids = codec.encode_many(keys)
        if distinct:
            unique_ids = first_occurrence_unique(key_ids)
            reduced = None
        else:
            unique_ids, reduced = group_reduce(key_ids, values, profile.add_ufunc)
        destinations = codec.buckets(unique_ids, p, salt)
        reduced_parts.append((unique_ids, reduced, destinations))

    if columnar_enabled(view) and _uniform_dtype(reduced_parts):
        # Array-shipping path: the per-part partials go through the wire as
        # one (key-code column, value array) batch per server — same
        # destinations, same delivery order, same per-server counts.
        return _ship_columnar(view, codec, profile, distinct, combine,
                              reduced_parts)

    outboxes: List[List[Any]] = []
    for unique_ids, reduced, destinations in reduced_parts:
        dest_list = destinations.tolist()
        unique_keys = codec.decode_many(unique_ids)
        if distinct:
            outboxes.append(
                [(dest, (key, None)) for dest, key in zip(dest_list, unique_keys)]
            )
        else:
            outboxes.append(
                [
                    (dest, (key, value))
                    for dest, key, value in zip(
                        dest_list, unique_keys, reduced.tolist()
                    )
                ]
            )

    inboxes = view.exchange(outboxes)

    # Stage 2 (local): same kernel per inbox; a partial that no longer fits
    # the dtype falls back to the dict fold *locally* — the exchange already
    # happened and is identical either way.
    final_parts: List[List[Any]] = []
    for inbox in inboxes:
        vectorized = None
        if len(inbox) < _FINAL_MAX_ITEMS:
            vectorized = _final_columnar(inbox, codec, profile, distinct)
        if vectorized is None:
            totals: Dict[Any, Any] = {}
            for key, value in inbox:
                if key in totals:
                    totals[key] = combine(totals[key], value)
                else:
                    totals[key] = value
            vectorized = list(totals.items())
        final_parts.append(vectorized)
    return Distributed(view, final_parts)


def _uniform_dtype(reduced_parts: List[tuple]) -> bool:
    """True when every non-empty partial array shares one dtype.

    Mixed dtypes (a "number" profile may encode one part as int64 and
    another as float64) must not concatenate — promotion would turn ints
    into floats where the reference path keeps the original objects."""
    dtypes = {
        reduced.dtype
        for _ids, reduced, _dests in reduced_parts
        if reduced is not None and reduced.shape[0]
    }
    return len(dtypes) <= 1


def _ship_columnar(
    view: Any,
    codec: Any,
    profile: Any,
    distinct: bool,
    combine: Callable[[Any, Any], Any],
    reduced_parts: List[tuple],
) -> Distributed:
    """Stage 1→2 over batches: partials ship as arrays, the final fold is
    the same segment-reduce, and the result stays array-native (consumers
    that need tuples decode lazily)."""
    from ..backends.batch import ColumnarBatch
    from ..backends.dispatch import np
    from ..backends.kernels import first_occurrence_unique, group_reduce
    from ..mpc.columnar import ColumnarData

    dests = []
    batches = []
    for unique_ids, reduced, destinations in reduced_parts:
        dests.append(destinations)
        batches.append(
            ColumnarBatch((unique_ids,), reduced, int(unique_ids.shape[0]),
                          "pairs")
        )
    inboxes = view.exchange_batches(dests, batches)

    final_batches: List[Any] = []
    for inbox in inboxes:
        key_ids = inbox.columns[0]
        if distinct:
            unique_ids = first_occurrence_unique(key_ids)
            final_batches.append(
                ColumnarBatch((unique_ids,), None, int(unique_ids.shape[0]),
                              "pairs")
            )
            continue
        values = inbox.annotations
        if (
            values.dtype == np.int64
            and values.shape[0]
            and max(abs(int(values.max())), abs(int(values.min())))
            >= _FINAL_INT_LIMIT
        ):
            final_batches = None  # oversized partials: dict-fold everywhere
            break
        unique_ids, reduced = group_reduce(key_ids, values, profile.add_ufunc)
        final_batches.append(
            ColumnarBatch((unique_ids,), reduced, int(unique_ids.shape[0]),
                          "pairs")
        )
    if final_batches is not None:
        return ColumnarData(view, final_batches, codec)

    # Local fallback after the (already identical) exchange: dict folds over
    # the decoded pairs, exactly the reference stage 2.
    final_parts: List[List[Any]] = []
    for inbox in inboxes:
        totals: Dict[Any, Any] = {}
        for key, value in inbox.to_items(codec):
            if key in totals:
                totals[key] = combine(totals[key], value)
            else:
                totals[key] = value
        final_parts.append(list(totals.items()))
    return Distributed(view, final_parts)


def _final_columnar(
    inbox: List[Any], codec: Any, profile: Any, distinct: bool
) -> Optional[List[Any]]:
    from ..backends.columnar import encode_annotations
    from ..backends.kernels import first_occurrence_unique, group_reduce

    keys = [pair[0] for pair in inbox]
    key_ids = codec.encode_many(keys)
    if distinct:
        unique_keys = codec.decode_many(first_occurrence_unique(key_ids))
        return [(key, None) for key in unique_keys]
    values = encode_annotations(
        [pair[1] for pair in inbox], profile, int_limit=_FINAL_INT_LIMIT
    )
    if values is None and inbox:
        return None
    unique_ids, reduced = group_reduce(key_ids, values, profile.add_ufunc)
    return list(zip(codec.decode_many(unique_ids), reduced.tolist()))


def count_by_key(
    dist: Distributed, key_fn: Callable[[Any], Any], salt: int = 0
) -> Distributed:
    """Degree computation (§2.1): ``(key, multiplicity)`` pairs."""
    from ..backends.columnar import profile_of
    from ..semiring.standard import COUNTING

    return reduce_by_key(
        dist,
        key_fn,
        lambda _item: 1,
        lambda a, b: a + b,
        salt,
        profile=profile_of(COUNTING),
    )


def distinct_keys(
    dist: Distributed, key_fn: Callable[[Any], Any], salt: int = 0
) -> Distributed:
    """Distinct keys of the dataset, hash-partitioned (items are bare keys)."""
    reduced = reduce_by_key(
        dist, key_fn, lambda _item: None, lambda a, _b: a, salt, profile="distinct"
    )
    return reduced.map_items(lambda pair: pair[0])
