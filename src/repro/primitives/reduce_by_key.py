"""Reduce-by-key (paper §2.1, [13]).

Computes the "sum" of values per key under any associative, commutative
combiner in O(1) rounds with O(N/p + K/p) load: local pre-aggregation first
(so each server emits at most one partial per key), then a hash
repartitioning of the ≤ p·K partials, then a final local combine.  The
pre-aggregation is what caps the per-key fan-in at p and keeps heavy keys
harmless.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List

from ..mpc.distributed import Distributed
from ..mpc.hashing import hash_to_bucket

__all__ = ["reduce_by_key", "count_by_key", "distinct_keys"]


def reduce_by_key(
    dist: Distributed,
    key_fn: Callable[[Any], Any],
    value_fn: Callable[[Any], Any],
    combine: Callable[[Any, Any], Any],
    salt: int = 0,
) -> Distributed:
    """Return a dataset of ``(key, combined_value)`` pairs, one per distinct key,
    hash-partitioned by key."""
    view = dist.view
    p = view.p

    def pre_aggregate(part: List[Any]) -> List[Any]:
        partials: Dict[Any, Any] = {}
        for item in part:
            key = key_fn(item)
            value = value_fn(item)
            if key in partials:
                partials[key] = combine(partials[key], value)
            else:
                partials[key] = value
        return list(partials.items())

    partials = dist.map_parts(pre_aggregate)
    routed = partials.repartition(lambda pair: hash_to_bucket(pair[0], p, salt))

    def final_aggregate(part: List[Any]) -> List[Any]:
        totals: Dict[Any, Any] = {}
        for key, value in part:
            if key in totals:
                totals[key] = combine(totals[key], value)
            else:
                totals[key] = value
        return list(totals.items())

    return routed.map_parts(final_aggregate)


def count_by_key(
    dist: Distributed, key_fn: Callable[[Any], Any], salt: int = 0
) -> Distributed:
    """Degree computation (§2.1): ``(key, multiplicity)`` pairs."""
    return reduce_by_key(dist, key_fn, lambda _item: 1, lambda a, b: a + b, salt)


def distinct_keys(
    dist: Distributed, key_fn: Callable[[Any], Any], salt: int = 0
) -> Distributed:
    """Distinct keys of the dataset, hash-partitioned (items are bare keys)."""
    reduced = reduce_by_key(dist, key_fn, lambda _item: None, lambda a, _b: a, salt)
    return reduced.map_items(lambda pair: pair[0])
