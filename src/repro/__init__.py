"""repro — MPC algorithms for sparse matrix multiplication and join-aggregate
queries.

A from-scratch reproduction of *Hu & Yi, "Parallel Algorithms for Sparse
Matrix Multiplication and Join-Aggregate Queries", PODS 2020*: a simulated
Massively Parallel Computation cluster with exact load metering, the MPC
primitive toolbox, the distributed Yannakakis baseline, and the paper's
worst-case-optimal / output-sensitive algorithms for matrix multiplication,
line, star, star-like, and general tree queries over arbitrary commutative
semirings.

Quickstart::

    from repro import Relation, Instance, TreeQuery, run_query
    from repro.semiring import COUNTING

    query = TreeQuery((("R1", ("A", "B")), ("R2", ("B", "C"))),
                      output=frozenset({"A", "C"}))
    r1 = Relation("R1", ("A", "B"), [((i, i % 10), 1) for i in range(100)])
    r2 = Relation("R2", ("B", "C"), [((i % 10, i), 1) for i in range(100)])
    result = run_query(Instance(query, {"R1": r1, "R2": r2}, COUNTING), p=16)
    print(result.relation, result.report)
"""

from .config import ExecutionConfig
from .core import (
    QueryResult,
    line_query,
    run_query,
    sparse_matmul,
    star_query,
    starlike_query,
    tree_query,
    yannakakis_mpc,
)
from .data import DistRelation, Instance, Relation, TreeQuery
from .mpc import CostReport, Distributed, MPCCluster
from .semiring import (
    BOOLEAN,
    COUNTING,
    REAL,
    TROPICAL_MIN_PLUS,
    Semiring,
)

__version__ = "1.0.0"

__all__ = [
    "run_query",
    "QueryResult",
    "ExecutionConfig",
    "sparse_matmul",
    "line_query",
    "star_query",
    "starlike_query",
    "tree_query",
    "yannakakis_mpc",
    "Relation",
    "DistRelation",
    "TreeQuery",
    "Instance",
    "MPCCluster",
    "Distributed",
    "CostReport",
    "Semiring",
    "COUNTING",
    "REAL",
    "BOOLEAN",
    "TROPICAL_MIN_PLUS",
    "__version__",
]
