"""Failing-case corpus: serialize minimal repros, replay them as tests.

A corpus entry is one JSON file::

    {
      "format": "repro-conformance-case/v1",
      "meta": {"invariant": ..., "profile": ..., "family": ..., "skew": ...,
               "p": ..., "p_large": ..., "seed": ..., "message": ...},
      "instance": { ... repro.io instance document, counting semiring ... }
    }

The data rides in :mod:`repro.io`'s instance interchange format — always
over the counting semiring (the skeleton's integer weights), because the
semiring *profile* in ``meta`` re-annotates deterministically at replay
time (see :func:`repro.conformance.generators.materialize`).  That is what
lets a provenance- or opaque-semiring failure round-trip through JSON.

``pytest`` replays every entry under ``tests/corpus/`` automatically
(tests/test_corpus_replay.py), so a shrunk fuzz failure checked in there
becomes a permanent regression test.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

from ..io import instance_from_json, instance_to_json
from .generators import FuzzCase, materialize, skeleton_size
from .invariants import INVARIANTS

__all__ = [
    "FORMAT",
    "case_to_document",
    "case_from_document",
    "save_case",
    "corpus_files",
    "load_case",
    "replay_case",
]

FORMAT = "repro-conformance-case/v1"


class ReplayConfig:
    """Minimal config shim handed to invariant checkers during replay."""

    def __init__(self, p: int, p_large: int) -> None:
        self.p = p
        self.p_large = p_large


def case_to_document(case: FuzzCase, meta: Dict[str, object]) -> Dict[str, object]:
    """The JSON document for one corpus entry."""
    skeleton_instance = materialize(case, profile="counting")
    merged = {
        "invariant": meta.get("invariant", "differential"),
        "profile": case.profile,
        "family": case.family,
        "skew": case.skew,
        "seed": case.seed,
        "tuples": skeleton_size(case),
        **meta,
    }
    return {
        "format": FORMAT,
        "meta": merged,
        "instance": json.loads(instance_to_json(skeleton_instance)),
    }


def case_from_document(document: Dict[str, object]) -> Tuple[FuzzCase, Dict[str, object]]:
    """Inverse of :func:`case_to_document`."""
    if document.get("format") != FORMAT:
        raise ValueError(f"not a conformance case document: {document.get('format')!r}")
    meta = dict(document["meta"])
    instance = instance_from_json(json.dumps(document["instance"]))
    skeleton = {
        name: [(values, weight) for values, weight in instance.relation(name)]
        for name, _attrs in instance.query.relations
    }
    case = FuzzCase(
        query=instance.query,
        skeleton=skeleton,
        profile=str(meta.get("profile", "counting")),
        family=str(meta.get("family", "unknown")),
        skew=str(meta.get("skew", "uniform")),
        seed=int(meta.get("seed", 0)),
    )
    return case, meta


def save_case(
    case: FuzzCase, meta: Dict[str, object], directory: str
) -> str:
    """Write one corpus entry; returns its path.

    File names are deterministic in (run seed, iteration, invariant) so a
    rerun of the same fuzz configuration overwrites rather than piles up.
    """
    os.makedirs(directory, exist_ok=True)
    name = (
        f"case-s{meta.get('run_seed', case.seed)}"
        f"-i{meta.get('iteration', 0)}"
        f"-{meta.get('invariant', 'differential')}.json"
    )
    path = os.path.join(directory, name)
    with open(path, "w") as handle:
        json.dump(case_to_document(case, meta), handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def corpus_files(directory: str) -> List[str]:
    """Sorted corpus entry paths under ``directory`` (empty if absent)."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(".json")
    )


def load_case(path: str) -> Tuple[FuzzCase, Dict[str, object]]:
    """Load one corpus entry from disk."""
    with open(path) as handle:
        return case_from_document(json.load(handle))


def replay_case(
    case: FuzzCase,
    meta: Dict[str, object],
    p: Optional[int] = None,
) -> None:
    """Re-run the failing invariant on a corpus case.

    Raises :class:`~repro.conformance.invariants.InvariantViolation` (or
    whatever the algorithms raise) while the underlying bug is present;
    passes silently once it is fixed.
    """
    invariant = str(meta.get("invariant", "differential"))
    check = INVARIANTS.get(invariant)
    if check is None:
        raise ValueError(f"unknown invariant {invariant!r} in corpus entry")
    config = ReplayConfig(
        p=int(p if p is not None else meta.get("p", 4)),
        p_large=int(meta.get("p_large", 8)),
    )
    check(case, config)
