"""Conformance & fuzzing subsystem (see docs/conformance.md).

The paper's claims are algebraic — correct answers over *any* commutative
semiring — and structural — every query class has its own algorithm.  This
package checks both continuously:

* :mod:`~repro.conformance.generators` — seeded random queries + instances
  over every dispatched query class, skew profile, and semiring profile;
* :mod:`~repro.conformance.invariants` — the differential oracle plus the
  metamorphic catalog (homomorphism commutation, permutation invariance,
  load/round scaling, opaque-semiring discipline);
* :mod:`~repro.conformance.runner` — the budgeted campaign driver with a
  deterministic JSON summary (``repro fuzz`` on the command line);
* :mod:`~repro.conformance.shrink` — delta-debugging to minimal repros;
* :mod:`~repro.conformance.corpus` — serialized repros that pytest replays
  as regression tests;
* :mod:`~repro.conformance.mutation` — planted bugs proving the harness
  actually fires;
* :mod:`~repro.conformance.chaos` — the chaos tier: the differential
  oracle and load/round bounds re-checked under injected faults
  (:mod:`repro.mpc.faults`), with unrecoverable schedules failing loudly.
"""

from .chaos import CHAOS_FAULTS, CHAOS_SCHEDULES, check_chaos
from .corpus import (
    case_from_document,
    case_to_document,
    corpus_files,
    load_case,
    replay_case,
    save_case,
)
from .generators import (
    PROFILES,
    QUERY_FAMILIES,
    SKEW_PROFILES,
    FuzzCase,
    GeneratorConfig,
    materialize,
    random_case,
    random_query,
    random_skeleton,
    skeleton_size,
)
from .invariants import DEFAULT_INVARIANTS, INVARIANTS, InvariantViolation
from .mutation import planted_drop_blackhole, planted_exchange_off_by_one
from .runner import FuzzConfig, FuzzFailure, FuzzSummary, fuzz
from .shrink import failing_predicate, shrink_case

__all__ = [
    "CHAOS_FAULTS",
    "CHAOS_SCHEDULES",
    "DEFAULT_INVARIANTS",
    "FuzzCase",
    "FuzzConfig",
    "FuzzFailure",
    "FuzzSummary",
    "GeneratorConfig",
    "INVARIANTS",
    "InvariantViolation",
    "PROFILES",
    "check_chaos",
    "QUERY_FAMILIES",
    "SKEW_PROFILES",
    "case_from_document",
    "case_to_document",
    "corpus_files",
    "failing_predicate",
    "fuzz",
    "load_case",
    "materialize",
    "planted_drop_blackhole",
    "planted_exchange_off_by_one",
    "random_case",
    "random_query",
    "random_skeleton",
    "replay_case",
    "save_case",
    "shrink_case",
    "skeleton_size",
]
