"""The differential fuzz runner: generate → check invariants → shrink → save.

One :func:`fuzz` call is one seeded, reproducible campaign.  Budgeting is by
iterations (deterministic: the same seed produces a byte-identical JSON
summary) or by wall-clock seconds (for nightly CI; iteration counts then
vary with machine speed, and the summary still contains no timestamps).

Per iteration the runner draws a case from the generator grid (query family
× semiring profile × skew), always checks the ``differential`` invariant,
and cycles one secondary invariant from the catalog so every default-budget
run exercises all of them.  Failures are delta-debugged down to a minimal
repro (:mod:`repro.conformance.shrink`) and — when a corpus directory is
configured — serialized for pytest auto-replay
(:mod:`repro.conformance.corpus`).
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .corpus import save_case
from .generators import (
    PROFILES,
    QUERY_FAMILIES,
    SKEW_PROFILES,
    FuzzCase,
    GeneratorConfig,
    random_case,
    skeleton_size,
)
from .invariants import DEFAULT_INVARIANTS, INVARIANTS, InvariantViolation
from .shrink import failing_predicate, shrink_case

__all__ = ["FuzzConfig", "FuzzFailure", "FuzzSummary", "fuzz"]


@dataclass
class FuzzConfig:
    """Configuration of one fuzz campaign (CLI flags map 1:1 onto this)."""

    iterations: int = 25
    seconds: Optional[float] = None
    seed: int = 0
    p: int = 4
    p_large: int = 8
    max_tuples: int = 12
    domain: int = 5
    families: Sequence[str] = QUERY_FAMILIES
    profiles: Sequence[str] = tuple(PROFILES)
    skews: Sequence[str] = SKEW_PROFILES
    invariants: Sequence[str] = DEFAULT_INVARIANTS
    corpus: Optional[str] = None
    shrink: bool = True
    fail_fast: bool = False
    #: Kernel backend every invariant's runs use (``"pytuple"``/``"numpy"``/
    #: ``"auto"``/None, see :mod:`repro.backends`).  Results and meters are
    #: backend-independent, so summaries stay byte-identical across
    #: backends — the field is deliberately absent from the JSON summary.
    backend: Optional[str] = None
    #: Chaos-tier knobs (only read when the ``chaos`` invariant is active):
    #: recoverable schedules per (case, algorithm) and faults per schedule.
    chaos_schedules: int = 2
    chaos_faults: int = 3
    #: Worker count the opt-in ``process-identity`` invariant compares
    #: against sequential execution (the process execution mode,
    #: :mod:`repro.mpc.pool`); clamped to ≥ 2 there, since comparing
    #: ``workers=1`` with itself would be vacuous.  Every other
    #: invariant runs sequentially regardless.
    workers: int = 2
    #: Clock used for the ``seconds`` deadline: a zero-arg callable returning
    #: monotonic seconds (default ``time.monotonic``).  Injectable so tests
    #: can drive wall-clock budgets deterministically — the same contract as
    #: :class:`repro.obs.profile.Profiler`'s clock.
    clock: Optional[Callable[[], float]] = None

    def generator(self) -> GeneratorConfig:
        return GeneratorConfig(
            max_tuples=self.max_tuples,
            domain=self.domain,
            families=tuple(self.families),
            profiles=tuple(self.profiles),
            skews=tuple(self.skews),
        )


@dataclass
class FuzzFailure:
    """One invariant violation, after shrinking."""

    iteration: int
    invariant: str
    family: str
    query_class: str
    profile: str
    skew: str
    case_seed: int
    message: str
    original_tuples: int
    shrunk_tuples: int
    corpus_file: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


@dataclass
class FuzzSummary:
    """Outcome of one campaign; serializes deterministically per seed."""

    seed: int
    iterations_run: int
    p: int
    p_large: int
    max_tuples: int
    domain: int
    checked: int = 0
    coverage: Dict[str, Dict[str, int]] = field(default_factory=dict)
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def count(self, dimension: str, key: str) -> None:
        bucket = self.coverage.setdefault(dimension, {})
        bucket[key] = bucket.get(key, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "iterations_run": self.iterations_run,
            "p": self.p,
            "p_large": self.p_large,
            "max_tuples": self.max_tuples,
            "domain": self.domain,
            "checked": self.checked,
            "ok": self.ok,
            "coverage": {
                dimension: dict(sorted(bucket.items()))
                for dimension, bucket in sorted(self.coverage.items())
            },
            "failures": [failure.to_dict() for failure in self.failures],
        }

    def to_json(self) -> str:
        """Machine-readable summary; byte-identical across same-seed runs."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)


def fuzz(config: FuzzConfig) -> FuzzSummary:
    """Run one fuzz campaign; never raises on invariant failures — they are
    collected (shrunk, serialized) in the returned summary."""
    rng = random.Random(config.seed)
    generator = config.generator()
    summary = FuzzSummary(
        seed=config.seed,
        iterations_run=0,
        p=config.p,
        p_large=config.p_large,
        max_tuples=config.max_tuples,
        domain=config.domain,
    )
    secondary = [name for name in config.invariants if name != "differential"]
    clock = config.clock if config.clock is not None else time.monotonic
    deadline = clock() + config.seconds if config.seconds is not None else None

    iteration = 0
    while True:
        if deadline is not None:
            if clock() >= deadline and iteration >= 1:
                break
            if iteration >= 100000:  # hard stop for pathological budgets
                break
        elif iteration >= config.iterations:
            break

        case = random_case(rng, generator, iteration)
        checks: List[str] = []
        if "differential" in config.invariants:
            checks.append("differential")
        if secondary:
            checks.append(secondary[iteration % len(secondary)])

        for invariant in checks:
            summary.count("invariant", invariant)
            try:
                INVARIANTS[invariant](case, config)
            except Exception as error:  # noqa: BLE001 — crashes are findings too
                failure = _handle_failure(
                    config, summary, case, invariant, iteration, error
                )
                summary.failures.append(failure)
                if config.fail_fast:
                    summary.checked += 1
                    summary.iterations_run = iteration + 1
                    _count_case(summary, case)
                    return summary
        summary.checked += 1
        _count_case(summary, case)
        iteration += 1
    summary.iterations_run = iteration
    return summary


def _count_case(summary: FuzzSummary, case: FuzzCase) -> None:
    summary.count("family", case.family)
    summary.count("query_class", case.query_class)
    summary.count("semiring", case.profile)
    summary.count("skew", case.skew)


def _handle_failure(
    config: FuzzConfig,
    summary: FuzzSummary,
    case: FuzzCase,
    invariant: str,
    iteration: int,
    error: Exception,
) -> FuzzFailure:
    original_size = skeleton_size(case)
    shrunk = case
    if config.shrink:
        predicate = failing_predicate(INVARIANTS[invariant], config)
        shrunk = shrink_case(case, predicate)
    failure = FuzzFailure(
        iteration=iteration,
        invariant=invariant,
        family=case.family,
        query_class=case.query_class,
        profile=case.profile,
        skew=case.skew,
        case_seed=case.seed,
        message=f"{type(error).__name__}: {error}",
        original_tuples=original_size,
        shrunk_tuples=skeleton_size(shrunk),
    )
    if config.corpus:
        failure.corpus_file = save_case(
            shrunk,
            {
                "invariant": invariant,
                "iteration": iteration,
                "run_seed": config.seed,
                "p": config.p,
                "p_large": config.p_large,
                "message": failure.message,
            },
            config.corpus,
        )
    return failure
