"""Instance shrinking: delta-debug a failing case down to a minimal repro.

Classic ddmin over the case's tuple skeleton: repeatedly try removing chunks
of tuples (halving granularity down to single tuples, per relation, until a
fixpoint) and, once minimal in tuples, try normalizing every weight to 1.
The query shape is never changed — a repro must fail *the same query* the
fuzzer generated — and every candidate is re-validated by re-running the
failing invariant, so the result is guaranteed to still be red.

Removal can empty a relation entirely; the algorithms must handle empty
inputs, and a candidate that merely *changes* the failure (a different
exception) still counts as failing — standard delta-debugging practice,
since any red instance this small is worth keeping.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from .generators import FuzzCase, skeleton_size

__all__ = ["shrink_case", "failing_predicate"]

#: Safety valve: predicate evaluations per shrink (each runs algorithms).
MAX_PREDICATE_CALLS = 400


def failing_predicate(
    check: Callable[[FuzzCase, object], None], config
) -> Callable[[FuzzCase], bool]:
    """Wrap an invariant checker as a ``case -> still-failing?`` predicate.

    Any exception — the original :class:`InvariantViolation` or a crash the
    smaller instance provokes instead — counts as "still failing".
    """

    def predicate(case: FuzzCase) -> bool:
        try:
            check(case, config)
        except Exception:
            return True
        return False

    return predicate


def shrink_case(
    case: FuzzCase,
    predicate: Callable[[FuzzCase], bool],
    budget: int = MAX_PREDICATE_CALLS,
) -> FuzzCase:
    """Smallest failing variant of ``case`` reachable by tuple removal.

    ``predicate`` must return True while the case still fails.  Returns the
    original case unchanged if it does not fail to begin with (nothing to
    shrink) or if no reduction survives.
    """
    calls = [0]

    def still_fails(candidate: FuzzCase) -> bool:
        if calls[0] >= budget:
            return False
        calls[0] += 1
        return predicate(candidate)

    if not still_fails(case):
        return case

    current = case
    improved = True
    while improved and calls[0] < budget:
        improved = False
        for name in sorted(current.skeleton):
            rows = current.skeleton[name]
            if not rows:
                continue
            reduced = _shrink_relation(current, name, still_fails)
            if skeleton_size(reduced) < skeleton_size(current):
                current = reduced
                improved = True

    # Weight normalization: a repro with unit weights is easier to read.
    flattened = {
        name: [(values, 1) for values, _weight in rows]
        for name, rows in current.skeleton.items()
    }
    if flattened != current.skeleton:
        candidate = current.replace_skeleton(flattened)
        if still_fails(candidate):
            current = candidate
    return current


def _shrink_relation(
    case: FuzzCase,
    name: str,
    still_fails: Callable[[FuzzCase], bool],
) -> FuzzCase:
    """ddmin on one relation's tuple list, keeping the others fixed."""
    current = case
    chunk = max(1, len(current.skeleton[name]) // 2)
    while chunk >= 1:
        rows = current.skeleton[name]
        start = 0
        removed_any = False
        while start < len(current.skeleton[name]):
            rows = current.skeleton[name]
            candidate_rows = rows[:start] + rows[start + chunk:]
            if len(candidate_rows) == len(rows):
                break
            skeleton = dict(current.skeleton)
            skeleton[name] = candidate_rows
            candidate = current.replace_skeleton(skeleton)
            if still_fails(candidate):
                current = candidate
                removed_any = True
                # Retry the same window — new rows shifted into it.
            else:
                start += chunk
        if chunk == 1 and not removed_any:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if removed_any else 0)
    return current
