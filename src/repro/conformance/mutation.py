"""Mutation helpers: prove the fuzzer has teeth.

A conformance harness that never fires might be vacuous.  The mutation
smoke test (tests/test_conformance.py) plants a deliberate bug with
:func:`planted_exchange_off_by_one` and asserts the fuzzer (a) detects it
within a bounded budget, (b) shrinks the failure to a handful of tuples,
and (c) produces a corpus entry that replays red while the bug is in place
and green once it is reverted.

The planted bug is the classic off-by-one: one server's outbox loses its
final message in every exchange round (``range(len(xs) - 1)`` written where
``range(len(xs))`` was meant).  The RAM oracle never touches the cluster,
so every distributed algorithm drifts from it as soon as real data moves.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from ..mpc.cluster import ClusterView
from ..mpc.faults import FaultInjector

__all__ = [
    "planted_exchange_off_by_one",
    "planted_drop_blackhole",
    "planted_unordered_merge",
]


@contextmanager
def planted_exchange_off_by_one() -> Iterator[None]:
    """Monkeypatch :meth:`ClusterView.exchange` with an off-by-one bug.

    While active, the last non-empty outbox of every exchange silently
    drops its final message before delivery.  Metering and tracing are
    untouched — only correctness breaks, which is exactly what the
    differential oracle must catch.
    """
    original = ClusterView.exchange

    def buggy_exchange(self, outboxes, *, op="exchange"):
        clipped = [list(outbox) for outbox in outboxes]
        for outbox in reversed(clipped):
            if outbox:
                del outbox[-1]  # the planted off-by-one
                break
        return original(self, clipped, op=op)

    ClusterView.exchange = buggy_exchange
    try:
        yield
    finally:
        ClusterView.exchange = original


@contextmanager
def planted_unordered_merge() -> Iterator[None]:
    """Monkeypatch the pool's chunk merge into a lost-update reduce.

    The ``"process"`` mode's determinism rests on ⊕-merging every chunk's
    partial for a group key.  While active, a key that appears in more
    than one chunk keeps only its *first* chunk's partial — the classic
    nondeterministic-reduce race, where the merge takes whichever worker
    "won" instead of combining, and concurrent updates are lost.  Any
    group whose product stream spans a chunk boundary now reduces to a
    wrong annotation, so the ``process-identity`` differential oracle
    must flag the divergence.  Sequential runs are untouched.
    """
    from ..mpc import pool as pool_mod

    original = pool_mod.parallel_join_reduce

    def buggy_join_reduce(pool, **kwargs):
        sound_wave = pool_mod.WorkerPool.run_wave

        def lossy_wave(self, kernel, calls, label=None):
            results = sound_wave(self, kernel, calls, label=label)
            seen: set = set()
            for result in results:
                keys = result["unique"].tolist()
                fresh = pool_mod.np.fromiter(
                    (key not in seen for key in keys),
                    dtype=bool,
                    count=len(keys),
                )
                seen.update(keys)
                # the planted lost update: drop repeat keys instead of
                # letting the parent ⊕-combine them
                result["unique"] = result["unique"][fresh]
                result["reduced"] = result["reduced"][fresh]
            return results

        pool_mod.WorkerPool.run_wave = lossy_wave
        try:
            return original(pool, **kwargs)
        finally:
            pool_mod.WorkerPool.run_wave = sound_wave

    pool_mod.parallel_join_reduce = buggy_join_reduce
    try:
        yield
    finally:
        pool_mod.parallel_join_reduce = original


@contextmanager
def planted_drop_blackhole() -> Iterator[None]:
    """Monkeypatch drop-fault recovery into a silent blackhole.

    While active, whenever a ``drop`` fault fires the retransmission never
    arrives: the faulted server's inbox is emptied *after* metering, so
    every meter still claims a successful recovery while the algorithm
    silently computes on lost data.  Fault-free runs are untouched — only
    the chaos tier (``repro chaos`` / the ``chaos`` invariant) can catch
    this bug, which is exactly what the chaos mutation smoke test asserts.
    """
    original = FaultInjector.deliver

    def buggy_deliver(self, view, round_index, counts, op, payloads=None):
        fired_before = len(self.fired)
        next_round = original(self, view, round_index, counts, op, payloads)
        if payloads is not None:
            for fault in self.fired[fired_before:]:
                if fault.kind == "drop":
                    payloads[view.servers.index(fault.server)].clear()
        return next_round

    FaultInjector.deliver = buggy_deliver
    try:
        yield
    finally:
        FaultInjector.deliver = original
