"""The conformance invariant catalog (docs/conformance.md has the prose).

Every invariant is a function ``check(case, config) -> None`` raising
:class:`InvariantViolation` on failure.  The catalog:

* ``differential`` — every algorithm whose shape predicate accepts the query
  (:func:`repro.core.executor.applicable_algorithms`) must reproduce the
  sequential oracle exactly, annotations included, over the case's semiring
  profile;
* ``homomorphism`` — semiring homomorphisms commute with evaluation:
  ``h(alg_ℕ(I)) = alg_T(h(I))`` for h: ℕ→𝔹 (positivity) and h: ℕ→ℤ₉₇
  (reduction mod a prime);
* ``permutation`` — renaming attributes, permuting the relation list, and
  reinserting tuples in a different order must not change the answer;
* ``scaling`` — growing p must not blow up the max load (generously bounded
  monotonicity) and must keep the round count stable (the paper's
  algorithms are O(1)-round for every fixed query);
* ``opaque-discipline`` — algorithms run over
  :class:`~repro.testing.OpaqueSemiring` touch annotations only through
  ⊕/⊗ and still produce the exact counting answer;
* ``columnar-identity`` (opt-in) — the ``"columnar"`` backend is
  *bit-identical* to the ``"pytuple"`` reference: every applicable
  algorithm produces the same answer, the same serialized cost report,
  and the same trace event stream on both backends;
* ``process-identity`` (opt-in) — the ``"process"`` execution mode
  (``workers > 1``, an OS worker pool) is *bit-identical* to the
  sequential simulator: same answer, same serialized cost report, same
  trace event stream at every worker count;
* ``planner-choice`` (opt-in, like ``chaos`` — registered in
  :data:`INVARIANTS` but not :data:`DEFAULT_INVARIANTS`) — cost-based
  dispatch picks an algorithm from ``applicable_algorithms``, reproduces
  the oracle exactly, and attaches a self-consistent plan to the report;
* ``ivm-identity`` (opt-in) — the metamorphic IVM oracle: a
  :class:`~repro.ivm.MaterializedView` fed a deterministic delta
  sequence (inserts, annotation bumps, and — where the semiring is
  invertible — deletions) must answer bit-identically to recomputing
  from scratch on the mutated instance, and the maintained answers plus
  the maintenance-tagged cost reports must agree across backends.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Tuple

from ..core.executor import applicable_algorithms, run_query
from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..ram.evaluate import evaluate
from ..semiring import BOOLEAN, COUNTING, Semiring
from ..testing import OpaqueSemiring
from .generators import FuzzCase, PROFILES, materialize

__all__ = [
    "InvariantViolation",
    "INVARIANTS",
    "DEFAULT_INVARIANTS",
    "check_differential",
    "check_homomorphism",
    "check_permutation",
    "check_scaling",
    "check_opaque_discipline",
    "check_columnar_identity",
    "check_planner_choice",
    "check_process_identity",
    "check_ivm_identity",
]

#: Generous load-growth allowance for the scaling invariant: constants
#: dominate at fuzz-sized instances, so we only flag gross blow-ups.
LOAD_GROWTH_FACTOR = 1.5
LOAD_GROWTH_SLACK = 64
#: Extra rounds allowed when p grows.  Heavy/light partitioning shifts with
#: the p-dependent threshold, so the metered round count wobbles by a
#: constant factor of itself (never asymptotically in p): allow an absolute
#: floor plus a quarter of the baseline.
ROUND_SLACK = 6


class InvariantViolation(AssertionError):
    """A conformance invariant failed on a concrete instance."""

    def __init__(self, invariant: str, algorithm: str, message: str) -> None:
        super().__init__(f"[{invariant}/{algorithm}] {message}")
        self.invariant = invariant
        self.algorithm = algorithm
        self.message = message


def _result_map(relation: Relation) -> Dict[Tuple[Any, ...], Any]:
    return dict(relation.tuples)


def _backend(config) -> Any:
    """The campaign's kernel backend (older configs predate the field)."""
    return getattr(config, "backend", None)


def check_differential(case: FuzzCase, config) -> None:
    """Every applicable algorithm against the RAM oracle, exact equality."""
    instance = materialize(case)
    expected = _result_map(evaluate(instance))
    for algorithm in applicable_algorithms(case.query):
        result = run_query(
            instance, p=config.p, algorithm=algorithm, backend=_backend(config)
        )
        got = _result_map(result.relation)
        if got != expected:
            missing = len(expected.keys() - got.keys())
            extra = len(got.keys() - expected.keys())
            raise InvariantViolation(
                "differential",
                algorithm,
                f"disagrees with oracle over {case.profile}: "
                f"{len(got)} vs {len(expected)} tuples "
                f"({missing} missing, {extra} extra, "
                f"{sum(1 for k in expected if k in got and got[k] != expected[k])} "
                f"wrong annotations)",
            )


_MOD = 97


def _hom_semirings() -> List[Tuple[str, Semiring, Callable[[int], Any]]]:
    mod97 = Semiring(
        name="mod-97",
        zero=0,
        one=1,
        add=lambda a, b: (a + b) % _MOD,
        mul=lambda a, b: (a * b) % _MOD,
    )
    return [
        ("positivity:ℕ→𝔹", BOOLEAN, lambda value: value > 0),
        ("mod-97:ℕ→ℤ", mod97, lambda value: value % _MOD),
    ]


def check_homomorphism(case: FuzzCase, config) -> None:
    """h(alg(I)) == alg(h(I)) for semiring homomorphisms h out of ℕ."""
    instance = materialize(case, profile="counting")
    base = run_query(
        instance, p=config.p, algorithm="auto", backend=_backend(config)
    )
    for label, target, hom in _hom_semirings():
        mapped_relations = {
            name: Relation(
                name,
                relation.schema,
                [(values, hom(weight)) for values, weight in relation],
                semiring=target,
            )
            for name, relation in instance.relations.items()
        }
        mapped_instance = Instance(case.query, mapped_relations, target)
        mapped = run_query(
            mapped_instance, p=config.p, algorithm="auto", backend=_backend(config)
        )
        expected = {k: hom(v) for k, v in base.relation.tuples.items()}
        if _result_map(mapped.relation) != expected:
            raise InvariantViolation(
                "homomorphism",
                mapped.algorithm,
                f"evaluation does not commute with {label}",
            )


def check_permutation(case: FuzzCase, config) -> None:
    """Attribute renaming + relation/tuple reorder leave the answer fixed."""
    instance = materialize(case, profile="counting")
    base = run_query(
        instance, p=config.p, algorithm="auto", backend=_backend(config)
    )

    rng = random.Random(case.seed ^ 0x5EED)
    attrs = sorted(case.query.attributes)
    shuffled = list(attrs)
    rng.shuffle(shuffled)
    # Fresh names whose sort order is itself permuted.
    rename = {attr: f"X{i:02d}_{attr}" for attr, i in zip(attrs, _ranks(shuffled, attrs))}

    specs = [
        (name, (rename[a], rename[b])) for name, (a, b) in case.query.relations
    ]
    rng.shuffle(specs)
    permuted_query = TreeQuery(
        tuple(specs), frozenset(rename[a] for a in case.query.output)
    )
    permuted_relations = {}
    for name, _attrs in case.query.relations:
        rows = list(case.skeleton[name])
        rng.shuffle(rows)
        schema = permuted_query.schema_of(name)
        relation = Relation(name, schema)
        for values, weight in rows:
            relation.add(values, weight, COUNTING)
        permuted_relations[name] = relation
    permuted_instance = Instance(permuted_query, permuted_relations, COUNTING)
    permuted = run_query(
        permuted_instance, p=config.p, algorithm="auto", backend=_backend(config)
    )

    # Re-key the permuted result onto the original output order.
    permuted_schema = tuple(sorted(permuted_query.output))
    original_schema = tuple(sorted(case.query.output))
    position = {
        rename[attr]: index for index, attr in enumerate(original_schema)
    }
    rekeyed: Dict[Tuple[Any, ...], Any] = {}
    for values, weight in permuted.relation:
        key: List[Any] = [None] * len(values)
        for renamed_attr, value in zip(permuted_schema, values):
            key[position[renamed_attr]] = value
        rekeyed[tuple(key)] = weight
    if rekeyed != _result_map(base.relation):
        raise InvariantViolation(
            "permutation",
            permuted.algorithm,
            "result changed under attribute renaming / input reordering",
        )


def _ranks(shuffled: List[str], attrs: List[str]) -> List[int]:
    order = {attr: index for index, attr in enumerate(shuffled)}
    return [order[attr] for attr in attrs]


def check_scaling(case: FuzzCase, config) -> None:
    """Load must not blow up and rounds must stay stable as p grows."""
    instance = materialize(case, profile="counting")
    small = run_query(instance, p=config.p, algorithm="auto", backend=_backend(config))
    large = run_query(
        instance, p=config.p_large, algorithm="auto", backend=_backend(config)
    )
    if large.relation.tuples != small.relation.tuples:
        raise InvariantViolation(
            "scaling", small.algorithm, "answer changed with the server count"
        )
    load_bound = small.report.max_load * LOAD_GROWTH_FACTOR + LOAD_GROWTH_SLACK
    if large.report.max_load > load_bound:
        raise InvariantViolation(
            "scaling",
            small.algorithm,
            f"max load grew from {small.report.max_load} (p={config.p}) to "
            f"{large.report.max_load} (p={config.p_large})",
        )
    round_bound = small.report.rounds + max(ROUND_SLACK, small.report.rounds // 4)
    if large.report.rounds > round_bound:
        raise InvariantViolation(
            "scaling",
            small.algorithm,
            f"rounds grew from {small.report.rounds} (p={config.p}) to "
            f"{large.report.rounds} (p={config.p_large})",
        )


def check_opaque_discipline(case: FuzzCase, config) -> None:
    """§1.3 discipline: annotations only ever combined through ⊕/⊗.

    Runs every applicable algorithm over the opaque semiring; any arithmetic
    outside the semiring object raises ``TypeError`` inside the algorithm,
    and the unwrapped values must equal the plain counting oracle's.
    """
    counting = materialize(case, profile="counting")
    expected = _result_map(evaluate(counting))
    for algorithm in applicable_algorithms(case.query):
        semiring, counters = OpaqueSemiring.make()
        relations = {}
        for name, attrs in case.query.relations:
            relation = Relation(name, attrs)
            for values, weight in case.skeleton[name]:
                relation.add(values, OpaqueSemiring.wrap(weight), semiring)
            relations[name] = relation
        instance = Instance(case.query, relations, semiring)
        try:
            result = run_query(
            instance, p=config.p, algorithm=algorithm, backend=_backend(config)
        )
        except TypeError as error:
            raise InvariantViolation(
                "opaque-discipline", algorithm, f"discipline violation: {error}"
            ) from error
        got = {
            key: OpaqueSemiring.unwrap(value)
            for key, value in result.relation.tuples.items()
        }
        if got != expected:
            raise InvariantViolation(
                "opaque-discipline",
                algorithm,
                f"opaque run disagrees with counting oracle: "
                f"{len(got)} vs {len(expected)} tuples",
            )
        if expected and counters["mul"] == 0:
            raise InvariantViolation(
                "opaque-discipline",
                algorithm,
                "non-empty result produced without any ⊗ invocation",
            )


def check_columnar_identity(case: FuzzCase, config) -> None:
    """The columnar backend is bit-identical to the reference backend.

    Every applicable algorithm runs twice — ``backend="pytuple"`` and
    ``backend="columnar"`` — and the answers (tuples *and* annotations),
    the serialized cost reports, and the full trace event streams must
    match exactly.  Opt-in like ``planner-choice`` (and a no-op without
    numpy): the default campaign already cycles ``differential`` per
    backend, while this invariant pins the stronger meter/trace contract.
    """
    from ..backends.dispatch import HAS_NUMPY
    from ..config import ExecutionConfig
    from ..obs.events import RingBufferSink, Tracer, event_to_dict

    if not HAS_NUMPY:
        return
    instance = materialize(case)
    for algorithm in applicable_algorithms(case.query):
        outcomes = {}
        for backend in ("pytuple", "columnar"):
            sink = RingBufferSink()
            result = run_query(
                instance,
                config=ExecutionConfig(
                    p=config.p,
                    algorithm=algorithm,
                    backend=backend,
                    tracer=Tracer((sink,)),
                ),
            )
            outcomes[backend] = (
                _result_map(result.relation),
                result.report.to_dict(),
                [event_to_dict(event) for event in sink.events],
            )
        reference, columnar = outcomes["pytuple"], outcomes["columnar"]
        for what, index in (("answer", 0), ("cost report", 1), ("trace", 2)):
            if reference[index] != columnar[index]:
                raise InvariantViolation(
                    "columnar-identity",
                    algorithm,
                    f"columnar {what} diverges from pytuple over "
                    f"{case.profile}/{case.skew}",
                )


def check_process_identity(case: FuzzCase, config) -> None:
    """The ``"process"`` execution mode is bit-identical to sequential.

    Every applicable algorithm runs under ``workers=1`` and under
    ``workers=N`` (``config.workers`` clamped to ≥ 2) on the ``"columnar"``
    backend — the mode's full parallel surface: chunked local joins *and*
    array-shipping exchange splits — and the answers (tuples and
    annotations), serialized cost reports, and full trace event streams
    must match exactly.  Opt-in like ``columnar-identity``, and a no-op
    without numpy (no pool without array kernels).  Small fuzz cases
    exercise the gating/fallback logic; the test battery additionally
    forces dispatch by shrinking :mod:`repro.mpc.pool` thresholds.
    """
    from ..backends.dispatch import HAS_NUMPY
    from ..config import ExecutionConfig
    from ..obs.events import RingBufferSink, Tracer, event_to_dict

    if not HAS_NUMPY:
        return
    instance = materialize(case)
    workers = max(2, getattr(config, "workers", 2) or 2)
    for algorithm in applicable_algorithms(case.query):
        outcomes = {}
        for worker_count in (1, workers):
            sink = RingBufferSink()
            result = run_query(
                instance,
                config=ExecutionConfig(
                    p=config.p,
                    algorithm=algorithm,
                    backend="columnar",
                    tracer=Tracer((sink,)),
                    workers=worker_count,
                ),
            )
            outcomes[worker_count] = (
                _result_map(result.relation),
                result.report.to_dict(),
                [event_to_dict(event) for event in sink.events],
            )
        sequential, process = outcomes[1], outcomes[workers]
        for what, index in (("answer", 0), ("cost report", 1), ("trace", 2)):
            if sequential[index] != process[index]:
                raise InvariantViolation(
                    "process-identity",
                    algorithm,
                    f"workers={workers} {what} diverges from sequential "
                    f"over {case.profile}/{case.skew}",
                )


def check_planner_choice(case: FuzzCase, config) -> None:
    """Cost-based dispatch is sound: legal choice, oracle-exact answer,
    self-consistent plan metadata.

    Opt-in (``repro fuzz --invariants differential planner-choice``): the
    planner runs per case, so cycling it by default would slow every
    campaign and — being registered but not in :data:`DEFAULT_INVARIANTS`
    — would otherwise change default same-seed summaries.
    """
    instance = materialize(case)
    expected = _result_map(evaluate(instance))
    result = run_query(
        instance, p=config.p, algorithm="cost", backend=_backend(config)
    )
    legal = applicable_algorithms(case.query)
    if result.algorithm not in legal:
        raise InvariantViolation(
            "planner-choice",
            result.algorithm,
            f"planner chose {result.algorithm!r}, not one of {legal}",
        )
    if _result_map(result.relation) != expected:
        raise InvariantViolation(
            "planner-choice",
            result.algorithm,
            f"cost-based run disagrees with oracle over {case.profile}: "
            f"{len(result.relation)} vs {len(expected)} tuples",
        )
    plan = result.report.plan
    if not plan or plan.get("algorithm") != result.algorithm:
        raise InvariantViolation(
            "planner-choice",
            result.algorithm,
            f"report plan {plan!r} does not name the algorithm that ran",
        )
    ranked = [entry["algorithm"] for entry in plan.get("candidates", ())]
    if ranked and ranked[0] != result.algorithm:
        raise InvariantViolation(
            "planner-choice",
            result.algorithm,
            f"plan candidates are not ranked chosen-first: {ranked}",
        )


def _ivm_delta_batches(case: FuzzCase, batches: int = 3):
    """A deterministic delta sequence for ``case`` (same seed, same deltas).

    Each batch mixes brand-new inserts, annotation bumps of existing keys,
    and — when the case's semiring profile has additive inverses —
    deletions, touching at most one key per relation per batch so the
    generated sequence is order-independent within a batch.  Values are
    drawn from the case's active domain so deltas actually join.
    """
    from ..ivm.delta import DeltaBatch, DeltaChange

    spec = PROFILES[case.profile]
    invertible = spec.make().negate is not None
    rng = random.Random(case.seed ^ 0x1D3A)
    state: Dict[str, set] = {
        name: {values for values, _weight in rows}
        for name, rows in case.skeleton.items()
    }
    domain = sorted(
        {value for rows in case.skeleton.values()
         for values, _weight in rows for value in values}
    ) or [0]
    names = [name for name, _ in case.query.relations]
    result = []
    fresh = 1000  # values outside any generated domain: guaranteed-new keys
    for index in range(batches):
        changes = []
        used: set = set()
        for step in range(rng.randint(1, 3)):
            name = names[(index + step) % len(names)]
            keys = sorted(key for key in state[name]
                          if (name, key) not in used)
            roll = rng.random()
            if invertible and keys and roll < 0.34:
                key = rng.choice(keys)
                state[name].discard(key)
                used.add((name, key))
                changes.append(DeltaChange(name, "delete", key))
                continue
            if keys and roll < 0.67:
                key = rng.choice(keys)  # bump an existing key
            else:
                key = (rng.choice(domain), rng.choice(domain))
                if key in state[name] or (name, key) in used:
                    key = (fresh, rng.choice(domain))
                    fresh += 1
                state[name].add(key)
            if (name, key) in used:
                continue
            used.add((name, key))
            weight = rng.randint(1, 4)
            changes.append(DeltaChange(
                name, "insert", key, spec.annotate(name, key, weight)
            ))
        if changes:
            result.append(DeltaBatch(tuple(changes)))
    return result


def check_ivm_identity(case: FuzzCase, config) -> None:
    """Incremental maintenance equals recompute-from-scratch, bit for bit.

    Builds a :class:`~repro.ivm.MaterializedView` per backend, applies the
    case's deterministic delta sequence, and requires (a) every backend's
    maintained answer to equal the RAM oracle on the sequentially mutated
    instance — annotations included — and (b) the maintained answers and
    maintenance-tagged serialized cost reports to be identical across
    backends.  Opt-in like ``columnar-identity`` (replay:
    ``repro fuzz --invariants differential ivm-identity``).
    """
    from ..backends.dispatch import HAS_NUMPY
    from ..config import ExecutionConfig
    from ..ivm import MaterializedView
    from ..ivm.delta import mutate_instance

    batches = _ivm_delta_batches(case)
    oracle_instance = materialize(case)
    for batch in batches:
        oracle_instance = mutate_instance(oracle_instance, batch)
    expected = _result_map(evaluate(oracle_instance))

    backends = ["pytuple"] + (["columnar"] if HAS_NUMPY else [])
    outcomes = {}
    for backend in backends:
        view = MaterializedView(
            materialize(case),
            config=ExecutionConfig(p=config.p, backend=backend),
        )
        for batch in batches:
            view.apply(batch)
        answer = _result_map(view.answer())
        if answer != expected:
            missing = len(expected.keys() - answer.keys())
            extra = len(answer.keys() - expected.keys())
            raise InvariantViolation(
                "ivm-identity",
                backend,
                f"incremental answer disagrees with recompute oracle over "
                f"{case.profile}/{case.skew} after {len(batches)} batches: "
                f"{len(answer)} vs {len(expected)} tuples "
                f"({missing} missing, {extra} extra, "
                f"{sum(1 for k in expected if k in answer and answer[k] != expected[k])} "
                f"wrong annotations)",
            )
        outcomes[backend] = (answer, view.report().to_dict())
    if len(outcomes) == 2:
        reference, columnar = outcomes["pytuple"], outcomes["columnar"]
        for what, index in (("answer", 0), ("cost report", 1)):
            if reference[index] != columnar[index]:
                raise InvariantViolation(
                    "ivm-identity",
                    "columnar",
                    f"maintained {what} diverges between backends over "
                    f"{case.profile}/{case.skew}",
                )


#: Name → checker; the runner cycles through this catalog.  The chaos tier
#: (:mod:`repro.conformance.chaos`) registers its ``"chaos"`` invariant
#: here too, so corpus replay resolves it by name.  ``planner-choice``,
#: ``columnar-identity``, ``process-identity``, and ``ivm-identity`` are
#: registered but opt-in (absent from :data:`DEFAULT_INVARIANTS`).
INVARIANTS: Dict[str, Callable[[FuzzCase, Any], None]] = {
    "differential": check_differential,
    "homomorphism": check_homomorphism,
    "permutation": check_permutation,
    "scaling": check_scaling,
    "opaque-discipline": check_opaque_discipline,
    "columnar-identity": check_columnar_identity,
    "process-identity": check_process_identity,
    "planner-choice": check_planner_choice,
    "ivm-identity": check_ivm_identity,
}

#: The invariants a plain ``repro fuzz`` campaign cycles by default.  Kept
#: explicit (rather than ``tuple(INVARIANTS)``) so opt-in registrations
#: like ``chaos`` never change default summaries — same seed, same bytes.
DEFAULT_INVARIANTS: Tuple[str, ...] = (
    "differential",
    "homomorphism",
    "permutation",
    "scaling",
    "opaque-discipline",
)
