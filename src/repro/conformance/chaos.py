"""The chaos tier: conformance under injected faults (docs/conformance.md).

``check_chaos`` extends the differential oracle into the fault model of
:mod:`repro.mpc.faults`: for every applicable algorithm it first runs
fault-free, learns where data actually moved (the tracker's delivery
cells), then derives several *recoverable* fault schedules — seeded by the
case, so a corpus replay sees the exact same crashes, drops, duplicates
and stragglers — and asserts that under each one

* the answer still equals the sequential oracle (annotations included);
* the base meters are untouched — ``max_load`` and ``total_communication``
  equal the fault-free run's, and the round count grows by at most the
  metered ``recovery_rounds``;
* the recovery overhead is self-consistent (``recovery`` tag ≥ 0, zero
  when nothing fired).

Finally it plants one deliberately *unrecoverable* schedule (a crash with
no spare server) and asserts the run fails loudly with an
:class:`~repro.mpc.errors.UnrecoverableFaultError` naming the failing
round.

The invariant registers itself in the catalog under ``"chaos"`` but is
**not** part of :data:`~repro.conformance.invariants.DEFAULT_INVARIANTS`:
plain ``repro fuzz`` summaries stay byte-identical to a chaos-free build,
and the tier is opted into with ``repro chaos`` or ``repro fuzz --chaos``.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Tuple

from ..core.executor import applicable_algorithms, run_query
from ..backends.dispatch import resolve_backend
from ..mpc import (
    Fault,
    FaultInjector,
    FaultSchedule,
    MPCCluster,
    RecoveryPolicy,
    UnrecoverableFaultError,
)
from ..ram.evaluate import evaluate
from .generators import FuzzCase, materialize
from .invariants import INVARIANTS, InvariantViolation

__all__ = [
    "CHAOS_SCHEDULES",
    "CHAOS_FAULTS",
    "check_chaos",
    "delivery_cells",
    "recoverable_schedules",
]

#: Recoverable schedules tried per (case, algorithm) by default; FuzzConfig
#: overrides via ``chaos_schedules``.
CHAOS_SCHEDULES = 2
#: Faults per generated schedule; FuzzConfig overrides via ``chaos_faults``.
CHAOS_FAULTS = 3

#: Seed salt separating chaos schedule derivation from the case generator.
_CHAOS_SALT = 0xC4A05


def delivery_cells(cluster: MPCCluster) -> List[Tuple[int, int]]:
    """Sorted ``(round, server)`` cells where a run actually delivered data.

    Faults are only worth scheduling where messages move — a crash of an
    idle server at an idle round can never fire.
    """
    return sorted(
        (round_index, server)
        for round_index, row in cluster.tracker.load_cells().items()
        for server, count in row.items()
        if count > 0
    )


def recoverable_schedules(
    case_seed: int,
    algorithm_index: int,
    cells: List[Tuple[int, int]],
    schedules: int,
    faults: int,
) -> List[FaultSchedule]:
    """Deterministic recoverable schedules for one (case, algorithm) pair."""
    base = random.Random((case_seed ^ _CHAOS_SALT) + 7919 * algorithm_index)
    return [
        FaultSchedule.random(
            seed=base.randrange(2**32), cells=cells, count=faults
        )
        for _ in range(schedules)
    ]


def _answers(relation: Any) -> Dict[Tuple[Any, ...], Any]:
    return dict(relation.tuples)


def check_chaos(case: FuzzCase, config) -> None:
    """Answers and base meters must survive every recoverable schedule."""
    schedules = int(getattr(config, "chaos_schedules", CHAOS_SCHEDULES))
    faults = int(getattr(config, "chaos_faults", CHAOS_FAULTS))
    instance = materialize(case, profile="counting")
    expected = _answers(evaluate(instance))
    # Faulted runs force the pytuple kernels (recovery replays inboxes), but
    # the fault-free reference honours the campaign's backend choice.
    backend = resolve_backend(getattr(config, "backend", None), instance.total_size)

    planted_cell: Tuple[int, int] = (-1, -1)
    planted_algorithm = ""
    for algorithm_index, algorithm in enumerate(applicable_algorithms(case.query)):
        clean_cluster = MPCCluster(config.p, backend=backend)
        clean = run_query(instance, cluster=clean_cluster, algorithm=algorithm)
        if _answers(clean.relation) != expected:
            raise InvariantViolation(
                "chaos", algorithm, "fault-free run already disagrees with the oracle"
            )
        cells = delivery_cells(clean_cluster)
        if not cells:
            continue  # nothing ever moved: no fault can fire
        if planted_cell == (-1, -1):
            planted_cell = cells[0]
            planted_algorithm = algorithm

        for schedule in recoverable_schedules(
            case.seed, algorithm_index, cells, schedules, faults
        ):
            injector = FaultInjector(
                schedule, RecoveryPolicy(spares=len(schedule))
            )
            cluster = MPCCluster(config.p, faults=injector)
            try:
                result = run_query(instance, cluster=cluster, algorithm=algorithm)
            except UnrecoverableFaultError as error:
                raise InvariantViolation(
                    "chaos",
                    algorithm,
                    f"recoverable schedule judged unrecoverable: {error}",
                ) from error
            report = result.report
            if _answers(result.relation) != expected:
                raise InvariantViolation(
                    "chaos",
                    algorithm,
                    f"answer diverged from the oracle under faults "
                    f"{[f.to_dict() for f in injector.fired]}: "
                    f"{len(result.relation)} vs {len(expected)} tuples",
                )
            if report.max_load != clean.report.max_load:
                raise InvariantViolation(
                    "chaos",
                    algorithm,
                    f"base load changed under faults: {report.max_load} vs "
                    f"fault-free {clean.report.max_load}",
                )
            if report.total_communication != clean.report.total_communication:
                raise InvariantViolation(
                    "chaos",
                    algorithm,
                    f"base communication changed under faults: "
                    f"{report.total_communication} vs "
                    f"{clean.report.total_communication}",
                )
            if not (
                clean.report.rounds
                <= report.rounds
                <= clean.report.rounds + report.recovery_rounds
            ):
                raise InvariantViolation(
                    "chaos",
                    algorithm,
                    f"rounds {report.rounds} outside "
                    f"[{clean.report.rounds}, {clean.report.rounds} + "
                    f"{report.recovery_rounds}] recovery window",
                )
            if report.recovery_load > report.recovery_communication:
                raise InvariantViolation(
                    "chaos", algorithm, "recovery max exceeds recovery total"
                )
            if not injector.fired and (
                report.recovery_communication or report.recovery_rounds
            ):
                raise InvariantViolation(
                    "chaos", algorithm, "recovery charged without any fired fault"
                )

    if planted_cell == (-1, -1):
        return  # fully empty case: nothing to crash

    # One planted unrecoverable schedule: a crash with no spare server must
    # fail loudly, naming the failing round.
    round_index, server = planted_cell
    injector = FaultInjector(
        FaultSchedule([Fault("crash", round_index, server)]),
        RecoveryPolicy(spares=0),
    )
    try:
        run_query(
            instance,
            cluster=MPCCluster(config.p, faults=injector),
            algorithm=planted_algorithm,
        )
    except UnrecoverableFaultError as error:
        if error.round != round_index or f"round {round_index}" not in str(error):
            raise InvariantViolation(
                "chaos",
                planted_algorithm,
                f"unrecoverable crash at round {round_index} misreported: {error}",
            ) from error
    else:
        raise InvariantViolation(
            "chaos",
            planted_algorithm,
            f"planted unrecoverable crash at round {round_index} did not raise",
        )


# Register in the shared catalog (corpus replay resolves invariants by name)
# without joining DEFAULT_INVARIANTS — the chaos tier is opt-in.
INVARIANTS["chaos"] = check_chaos
