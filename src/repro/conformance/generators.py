"""Seeded random query/instance generators for the conformance fuzzer.

A generated :class:`FuzzCase` is deliberately *semiring-free*: it couples a
:class:`~repro.data.query.TreeQuery` with an integer-weighted tuple
**skeleton** plus the name of a :class:`SemiringProfile`.  The profile turns
integer weights into annotations of its semiring deterministically
(``materialize``), so the same skeleton can be replayed over counting,
boolean, tropical, provenance-polynomial, or opaque annotations — and the
shrinker and corpus serializer only ever deal with JSON-friendly integers.

Knobs (:class:`GeneratorConfig`): tuples per relation, attribute domain
width (which indirectly controls OUT), skew profile (uniform / zipf /
planted-heavy), query family, and semiring profile.  Everything is driven by
one :class:`random.Random` — same seed, same case, byte for byte.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..semiring import BOOLEAN, COUNTING, Semiring, TROPICAL_MIN_PLUS
from ..semiring.provenance import POLYNOMIAL, monomial
from ..testing import OpaqueSemiring

__all__ = [
    "FuzzCase",
    "GeneratorConfig",
    "SemiringProfile",
    "PROFILES",
    "QUERY_FAMILIES",
    "SKEW_PROFILES",
    "random_case",
    "random_query",
    "random_skeleton",
    "materialize",
    "skeleton_size",
]

#: Query families the executor dispatches on; the generator covers them all.
QUERY_FAMILIES: Tuple[str, ...] = ("matmul", "line", "star", "star-like", "tree")

#: Value-distribution shapes for the join attributes.
SKEW_PROFILES: Tuple[str, ...] = ("uniform", "zipf", "planted-heavy")


# -- semiring profiles ---------------------------------------------------------


@dataclass(frozen=True)
class SemiringProfile:
    """How a skeleton's integer weights become annotations of one semiring.

    ``annotate(relation_name, values, weight)`` must be deterministic —
    provenance profiles derive variable names from the tuple itself, the
    opaque profile wraps the integer.  ``make()`` builds a fresh semiring
    (the opaque profile returns a new instrumented instance every time).
    """

    name: str
    make: Callable[[], Semiring]
    annotate: Callable[[str, Tuple[Any, ...], int], Any]


def _provenance_annotation(name: str, values: Tuple[Any, ...], weight: int) -> Any:
    token = f"{name}:{','.join(str(v) for v in values)}"
    return monomial(*([token] * max(1, weight)))


#: The fuzzer's semiring menu: one exact non-idempotent semiring (counting),
#: one idempotent (boolean), one ordered-idempotent (tropical), the universal
#: provenance semiring ℕ[X], and the discipline-checking opaque semiring.
PROFILES: Dict[str, SemiringProfile] = {
    profile.name: profile
    for profile in (
        SemiringProfile("counting", lambda: COUNTING, lambda n, v, w: w),
        SemiringProfile("boolean", lambda: BOOLEAN, lambda n, v, w: True),
        SemiringProfile(
            "tropical-min-plus", lambda: TROPICAL_MIN_PLUS, lambda n, v, w: float(w)
        ),
        SemiringProfile("provenance", lambda: POLYNOMIAL, _provenance_annotation),
        SemiringProfile(
            "opaque",
            lambda: OpaqueSemiring.make()[0],
            lambda n, v, w: OpaqueSemiring.wrap(w),
        ),
    )
}


# -- the case ------------------------------------------------------------------


@dataclass
class FuzzCase:
    """One generated conformance instance (query + integer skeleton).

    ``skeleton[name]`` is a list of ``(values, weight)`` pairs with distinct
    ``values`` per relation; ``profile`` names the :data:`PROFILES` entry
    used at materialization time.
    """

    query: TreeQuery
    skeleton: Dict[str, List[Tuple[Tuple[Any, ...], int]]]
    profile: str
    family: str
    skew: str
    seed: int

    @property
    def query_class(self) -> str:
        return self.query.classify()

    def replace_skeleton(
        self, skeleton: Dict[str, List[Tuple[Tuple[Any, ...], int]]]
    ) -> "FuzzCase":
        """A copy of this case over a different (typically smaller) skeleton."""
        return FuzzCase(self.query, skeleton, self.profile, self.family,
                        self.skew, self.seed)


def skeleton_size(case: FuzzCase) -> int:
    """Total tuple count of the case (the paper's N)."""
    return sum(len(rows) for rows in case.skeleton.values())


def materialize(case: FuzzCase, profile: Optional[str] = None) -> Instance:
    """Build the annotated :class:`Instance` for ``case``.

    ``profile`` overrides the case's own profile (invariants re-materialize
    one skeleton over several semirings).
    """
    spec = PROFILES[profile or case.profile]
    semiring = spec.make()
    relations = {}
    for name, attrs in case.query.relations:
        relation = Relation(name, attrs)
        for values, weight in case.skeleton[name]:
            relation.add(values, spec.annotate(name, values, weight), semiring)
        relations[name] = relation
    return Instance(case.query, relations, semiring)


# -- query shapes --------------------------------------------------------------


def random_query(rng: random.Random, family: str) -> TreeQuery:
    """A random tree query of the given family (see :data:`QUERY_FAMILIES`)."""
    if family == "matmul":
        return TreeQuery(
            (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
        )
    if family == "line":
        length = rng.randint(3, 4)
        attrs = [f"A{i}" for i in range(length + 1)]
        specs = tuple((f"R{i}", (attrs[i], attrs[i + 1])) for i in range(length))
        return TreeQuery(specs, frozenset({attrs[0], attrs[-1]}))
    if family == "star":
        arms = rng.randint(3, 4)
        specs = tuple((f"R{i}", (f"A{i}", "B")) for i in range(arms))
        return TreeQuery(specs, frozenset(f"A{i}" for i in range(arms)))
    if family == "star-like":
        arms = [1, 2, rng.randint(1, 2)]
        rng.shuffle(arms)
        specs: List[Tuple[str, Tuple[str, str]]] = []
        outputs = []
        for arm, length in enumerate(arms):
            previous = "B"
            for step in range(length):
                last = step == length - 1
                attr = f"A{arm}" if last else f"C{arm}_{step}"
                specs.append((f"R{arm}_{step}", (previous, attr)))
                previous = attr
            outputs.append(f"A{arm}")
        return TreeQuery(tuple(specs), frozenset(outputs))
    if family == "tree":
        # The Figure-3 twig (two hubs, two output legs each), sometimes with
        # an extra non-leaf output so the query classifies as general "tree".
        specs = (
            ("Ra1", ("A1", "B1")),
            ("Ra2", ("A2", "B1")),
            ("Rm", ("B1", "B2")),
            ("Rb1", ("A3", "B2")),
            ("Rb2", ("A4", "B2")),
        )
        outputs = {"A1", "A2", "A3", "A4"}
        if rng.random() < 0.5:
            outputs.add("B1")  # non-leaf output: exercises the general case
        return TreeQuery(specs, frozenset(outputs))
    raise ValueError(f"unknown query family {family!r}")


# -- data skeletons ------------------------------------------------------------


def _value_sampler(
    rng: random.Random, skew: str, domain: int
) -> Callable[[], int]:
    """A sampler of attribute values under the requested skew profile."""
    if skew == "uniform":
        return lambda: rng.randrange(domain)
    if skew == "zipf":
        weights = [1.0 / (rank + 1) ** 1.3 for rank in range(domain)]
        total = sum(weights)
        probabilities = [w / total for w in weights]
        return lambda: rng.choices(range(domain), probabilities)[0]
    if skew == "planted-heavy":
        # One hot value absorbs about half the draws.
        return lambda: 0 if rng.random() < 0.5 else rng.randrange(domain)
    raise ValueError(f"unknown skew profile {skew!r}")


def random_skeleton(
    rng: random.Random,
    query: TreeQuery,
    tuples: int,
    domain: int,
    skew: str,
) -> Dict[str, List[Tuple[Tuple[Any, ...], int]]]:
    """Random distinct-tuple data for every relation of ``query``.

    Each relation holds up to ``tuples`` distinct pairs over ``domain``
    values per attribute, sampled under ``skew``; weights are 1–4.
    """
    sample = _value_sampler(rng, skew, domain)
    skeleton: Dict[str, List[Tuple[Tuple[Any, ...], int]]] = {}
    for name, _attrs in query.relations:
        count = rng.randint(1, max(1, tuples))
        seen = set()
        rows: List[Tuple[Tuple[Any, ...], int]] = []
        attempts = 0
        while len(rows) < count and attempts < 50 * count:
            attempts += 1
            entry = (sample(), sample())
            if entry not in seen:
                seen.add(entry)
                rows.append((entry, rng.randint(1, 4)))
        skeleton[name] = rows
    return skeleton


# -- top-level case generator --------------------------------------------------


@dataclass
class GeneratorConfig:
    """Knobs of the case generator (see docs/conformance.md)."""

    max_tuples: int = 12
    domain: int = 5
    families: Sequence[str] = QUERY_FAMILIES
    profiles: Sequence[str] = tuple(PROFILES)
    skews: Sequence[str] = SKEW_PROFILES


def random_case(
    rng: random.Random, config: GeneratorConfig, index: int
) -> FuzzCase:
    """Case ``index`` of a fuzz run.

    Families and profiles are cycled (not sampled) so a default-budget run
    deterministically covers the full family × profile grid; skew and the
    per-case seed come from ``rng``.
    """
    family = config.families[index % len(config.families)]
    profile = config.profiles[(index // len(config.families)) % len(config.profiles)]
    skew = config.skews[index % len(config.skews)] if config.skews else "uniform"
    case_seed = rng.randrange(2**32)
    case_rng = random.Random(case_seed)
    query = random_query(case_rng, family)
    skeleton = random_skeleton(
        case_rng, query, config.max_tuples, config.domain, skew
    )
    return FuzzCase(query, skeleton, profile, family, skew, case_seed)
