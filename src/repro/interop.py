"""Interop with the numeric Python ecosystem.

Sparse matrices are annotated binary relations; this module converts
between :class:`scipy.sparse` / :class:`numpy.ndarray` matrices and
:class:`~repro.data.relation.Relation`, and offers
:func:`sparse_matmul_scipy`, a drop-in ``A @ B`` over the simulated cluster
that returns both the product and the paper's cost report — so numeric
users can adopt the library without touching the query API.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from .core.executor import run_query
from .data.query import Instance, TreeQuery
from .data.relation import Relation
from .mpc.stats import CostReport
from .semiring import REAL, Semiring

__all__ = [
    "relation_from_matrix",
    "matrix_from_relation",
    "sparse_matmul_scipy",
]

MATMUL_QUERY = TreeQuery(
    (("R1", ("A", "B")), ("R2", ("B", "C"))), frozenset({"A", "C"})
)


def relation_from_matrix(
    matrix, name: str = "M", schema: Tuple[str, str] = ("A", "B")
) -> Relation:
    """Build a relation from a 2-D array or any scipy.sparse matrix: one
    tuple ``((i, j), value)`` per structurally non-zero entry."""
    relation = Relation(name, schema)
    if hasattr(matrix, "tocoo"):  # scipy.sparse
        coo = matrix.tocoo()
        for i, j, value in zip(coo.row, coo.col, coo.data):
            relation.add((int(i), int(j)), float(value))
        return relation
    array = np.asarray(matrix)
    if array.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    rows, cols = np.nonzero(array)
    for i, j in zip(rows, cols):
        relation.add((int(i), int(j)), float(array[i, j]))
    return relation


def matrix_from_relation(
    relation: Relation, shape: Optional[Tuple[int, int]] = None
):
    """Materialize a binary float-annotated relation as a scipy.sparse
    COO matrix (row = first attribute, column = second)."""
    from scipy import sparse

    if len(relation.schema) != 2:
        raise ValueError("matrix_from_relation needs a binary relation")
    rows, cols, data = [], [], []
    for (i, j), value in relation:
        rows.append(i)
        cols.append(j)
        data.append(value)
    if shape is None:
        shape = (
            (max(rows) + 1) if rows else 0,
            (max(cols) + 1) if cols else 0,
        )
    return sparse.coo_matrix((data, (rows, cols)), shape=shape)


def sparse_matmul_scipy(
    a,
    b,
    p: int = 16,
    semiring: Semiring = REAL,
    algorithm: str = "auto",
) -> Tuple["object", CostReport]:
    """``A @ B`` on the simulated MPC cluster.

    ``a`` and ``b`` are scipy.sparse matrices (or dense arrays); returns
    ``(product_as_coo_matrix, cost_report)``.  With the default REAL
    semiring this matches ``(a @ b)`` on the non-zero structure produced by
    actual cancellation-free arithmetic; any other semiring reinterprets
    "+"/"×" accordingly (the whole point of the paper's model).
    """
    r1 = relation_from_matrix(a, "R1", ("A", "B"))
    r2 = relation_from_matrix(b, "R2", ("B", "C"))
    instance = Instance(MATMUL_QUERY, {"R1": r1, "R2": r2}, semiring)
    result = run_query(instance, p=p, algorithm=algorithm)
    shape = (
        a.shape[0] if hasattr(a, "shape") else np.asarray(a).shape[0],
        b.shape[1] if hasattr(b, "shape") else np.asarray(b).shape[1],
    )
    return matrix_from_relation(result.relation, shape=shape), result.report
