"""Command-line interface: ``python -m repro <command>``.

Commands aimed at kicking the tires without writing code:

* ``compare`` — generate an instance from one of the built-in workload
  families, run the distributed Yannakakis baseline and the paper's
  algorithm (or any ``--algorithm``, including the cost-based planner via
  ``--algorithm cost``), and print both cost reports side by side;
* ``sweep`` — the same across a sweep of the family's size knob (OUT for
  ``matmul``, ``--tuples`` for every other family), printing a
  Table-1-style series;
* ``table1`` — the paper's Table 1 with measured loads;
* ``explain`` — the cost-based planner's candidate table for one instance
  (docs/planner.md), **without executing anything**: predicted load per
  applicable algorithm, the chosen one, and the statistics behind the
  decision (``--stats in-model`` meters the statistics collection);
* ``trace`` — run one instance with the observability layer on: dump a
  JSONL trace (see docs/observability.md for the schema) and print an
  ASCII per-round × per-server load heatmap plus skew statistics
  (``--phase``/``--op`` narrow the analysis, ``--top N`` adds a per-phase
  load table);
* ``profile`` — run one instance under the wall-clock profiler
  (docs/observability.md): print a hotspot table (self/cumulative seconds
  per phase × op × backend) and write a speedscope flamegraph JSON;
  ``--chrome-out`` adds a Chrome/Perfetto trace, ``--metrics-out`` a
  Prometheus text-format metrics snapshot;
* ``fuzz`` — run a conformance fuzzing campaign (differential oracle +
  metamorphic invariants, docs/conformance.md): deterministic per seed,
  shrinks failures to minimal repros and optionally serializes them to a
  replayable corpus directory (``--chaos`` adds the fault-injection tier);
* ``chaos`` — the chaos tier on its own: every case is re-checked under
  seeded recoverable fault schedules (crash/drop/duplicate/straggler with
  checkpoint-replay recovery, docs/model.md) plus one planted
  unrecoverable schedule that must fail loudly;
* ``ivm`` — materialize a view over an instance JSON file and apply one
  or more delta JSON files (the ``repro-delta/v1`` format,
  docs/ivm.md): prints the maintained answer size and the
  ``maintenance``-tagged cost report; ``--check`` recomputes from
  scratch on the mutated instance and fails unless the incremental
  answer is bit-identical, ``--export`` writes the maintained answer as
  TSV;
* ``serve`` — run the long-running HTTP/JSON query service
  (docs/service.md): named registered instances, a result cache with an
  LRU byte budget, planner-driven admission control, and Prometheus
  metrics at ``/metrics``; ``--preload NAME=PATH`` registers instance
  JSON files (the ``repro.io`` format) at startup.

``compare``/``sweep``/``table1`` accept ``--json`` (machine-readable
output on stdout), ``--trace-out PATH`` (JSONL trace of the paper
algorithm's runs), and ``--profile`` / ``--profile-out PATH`` (wall-clock
hotspot table / speedscope profile of every run the command makes; with
profiling off the outputs are byte-identical to earlier releases).  Every
command takes ``--backend`` to select the kernel implementation
(``pytuple``/``numpy``/``auto``) — outputs are identical across backends,
only wall-clock differs — and ``--workers N`` to enable the process
execution mode (a persistent OS worker pool runs the data-parallel
kernels; outputs stay bit-identical at any worker count).

The commands are thin argparse shells: all the work happens in
:mod:`repro.api`, so anything printed here is available as structured data
from the library.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional

from . import api
from .backends.dispatch import BACKENDS
from .config import ExecutionConfig
from .conformance import (
    DEFAULT_INVARIANTS,
    INVARIANTS,
    PROFILES,
    QUERY_FAMILIES,
    FuzzConfig,
)
from .data.query import Instance
from .obs import (
    JsonlSink,
    MetricsRegistry,
    Profiler,
    RingBufferSink,
    Tracer,
    load_matrix_from_events,
    observe_profile,
    observe_report,
    per_round_stats,
    phase_loads_from_events,
    render_heatmap,
    skew_stats,
)
from .obs.profile import write_json
from .workloads import (
    bowtie_line,
    line_instance,
    overlapping_star,
    planted_out_matmul,
    star_instance,
    starlike_instance,
    twig_instance,
    zipf_matmul,
)

__all__ = ["main"]


def _families() -> Dict[str, Callable[[argparse.Namespace], Instance]]:
    return {
        "matmul": lambda a: planted_out_matmul(n=a.tuples, out=a.out or 4 * a.tuples),
        "matmul-zipf": lambda a: zipf_matmul(a.tuples, a.tuples, max(4, a.domain),
                                             seed=a.seed),
        "line": lambda a: line_instance(3, a.tuples, a.domain, seed=a.seed),
        "line-bowtie": lambda a: bowtie_line(
            blocks=max(1, a.tuples // 25), fan_out=25, fan_mid=a.domain
        ),
        "star": lambda a: star_instance(3, a.tuples, max(a.domain, a.tuples),
                                        max(2, a.domain // 3), seed=a.seed),
        "star-overlap": lambda a: overlapping_star(
            arms=3, centres=a.domain, fan=max(2, a.tuples // a.domain)
        ),
        "starlike": lambda a: starlike_instance([1, 2, 2], a.tuples, a.domain,
                                                seed=a.seed),
        "twig": lambda a: twig_instance(a.tuples, a.domain, seed=a.seed),
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPC join-aggregate algorithms (Hu & Yi, PODS 2020) — demo CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", choices=sorted(_families()), default="matmul")
        p.add_argument("--tuples", type=int, default=400,
                       help="tuples per relation (size knob)")
        p.add_argument("--domain", type=int, default=20,
                       help="domain width / family-specific knob")
        p.add_argument("--out", type=int, default=None,
                       help="target OUT (planted families)")
        p.add_argument("--p", type=int, default=16, help="number of servers")
        p.add_argument("--seed", type=int, default=0)
        add_backend(p)

    def add_backend(p: argparse.ArgumentParser) -> None:
        p.add_argument("--backend", choices=BACKENDS, default="pytuple",
                       help="kernel backend (results and meters are "
                       "identical; numpy is faster on large instances)")
        p.add_argument("--workers", type=int, default=1, metavar="N",
                       help="OS worker processes for the process execution "
                       "mode (default: 1 = sequential; answers, meters, and "
                       "traces are bit-identical at any worker count)")

    def add_export(p: argparse.ArgumentParser) -> None:
        p.add_argument("--json", action="store_true",
                       help="print a machine-readable JSON document instead of tables")
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write a JSONL trace of the paper algorithm's run(s)")
        p.add_argument("--profile", action="store_true",
                       help="record wall-clock spans over every run and print "
                       "a hotspot table (answers and meters are unchanged)")
        p.add_argument("--profile-out", default=None, metavar="PATH",
                       help="write a speedscope flamegraph JSON of the runs "
                       "(implies --profile)")

    def add_algorithm(p: argparse.ArgumentParser) -> None:
        p.add_argument("--algorithm", default="auto",
                       help="what to run against the baseline: 'auto' (the "
                       "paper's per-class choice), 'cost' (the cost-based "
                       "planner), or an explicit algorithm name")

    compare = sub.add_parser("compare", help="baseline vs paper algorithm, one instance")
    add_common(compare)
    add_export(compare)
    add_algorithm(compare)

    sweep = sub.add_parser(
        "sweep",
        help="sweep the family's size knob (OUT for matmul, --tuples otherwise)",
    )
    add_common(sweep)
    add_export(sweep)
    add_algorithm(sweep)
    sweep.add_argument("--points", type=int, default=4)

    explain = sub.add_parser(
        "explain",
        help="print the cost-based planner's candidate table (no execution)",
    )
    add_common(explain)
    explain.add_argument("--stats", choices=("offline", "in-model"),
                         default="offline", dest="stats_mode",
                         help="statistics collection mode (in-model meters "
                         "the collection on a throwaway cluster)")
    explain.add_argument("--json", action="store_true",
                         help="print the full plan as JSON (byte-stable for "
                         "a fixed instance and calibration)")

    table1 = sub.add_parser(
        "table1", help="reproduce the paper's Table 1 (one row per query class)"
    )
    table1.add_argument("--p", type=int, default=16)
    table1.add_argument("--scale", type=int, default=300,
                        help="instance size knob (tuples per relation)")
    table1.add_argument("--families", nargs="*", default=None, metavar="FAMILY",
                        help="subset of Table-1 rows to measure (default: all)")
    add_backend(table1)
    add_export(table1)

    trace = sub.add_parser(
        "trace",
        help="run one instance with tracing on: JSONL trace + ASCII load heatmap",
    )
    add_common(trace)
    trace.add_argument("--algorithm", default="auto",
                       help="algorithm to trace (default: the paper's choice)")
    trace.add_argument("--trace-out", default="repro-trace.jsonl", metavar="PATH",
                       help="JSONL trace destination (default: %(default)s)")
    trace.add_argument("--json", action="store_true",
                       help="print the run summary as JSON instead of the heatmap")
    trace.add_argument("--phase", default=None, metavar="SUBSTR",
                       help="analyse only events whose phase path contains "
                       "SUBSTR (the JSONL file still holds every event)")
    trace.add_argument("--op", default=None, metavar="OP",
                       help="analyse only events of this operation "
                       "(exchange/broadcast/gather/transfer/...)")
    trace.add_argument("--top", type=int, default=0, metavar="N",
                       help="also print the N highest-load phase paths")

    profile = sub.add_parser(
        "profile",
        help="run one instance under the wall-clock profiler: hotspot table "
        "+ speedscope flamegraph JSON",
    )
    add_common(profile)
    add_algorithm(profile)
    profile.add_argument("--profile-out", default="repro-profile.speedscope.json",
                         metavar="PATH",
                         help="speedscope JSON destination (default: %(default)s)")
    profile.add_argument("--chrome-out", default=None, metavar="PATH",
                         help="also write a Chrome about://tracing / Perfetto "
                         "trace JSON")
    profile.add_argument("--metrics-out", default=None, metavar="PATH",
                         help="also write a Prometheus text-format metrics "
                         "snapshot of the profile")
    profile.add_argument("--top", type=int, default=15,
                         help="hotspot rows to print (default: %(default)s)")
    profile.add_argument("--tree", action="store_true",
                         help="print the full span tree instead of the "
                         "hotspot table")
    profile.add_argument("--json", action="store_true",
                         help="print the profile summary as JSON")

    def add_campaign(p: argparse.ArgumentParser, iterations: int) -> None:
        p.add_argument("--iterations", type=int, default=iterations,
                       help="cases to check (ignored when --seconds is given)")
        p.add_argument("--seconds", type=float, default=None,
                       help="wall-clock budget instead of an iteration count")
        p.add_argument("--seed", type=int, default=0,
                       help="campaign seed; same seed → byte-identical --json output")
        p.add_argument("--p", type=int, default=4, help="number of servers")
        p.add_argument("--p-large", type=int, default=8,
                       help="larger server count for the scaling invariant")
        p.add_argument("--tuples", type=int, default=12,
                       help="max tuples per generated relation")
        p.add_argument("--domain", type=int, default=5,
                       help="attribute domain width of generated instances")
        p.add_argument("--families", nargs="+", default=None,
                       metavar="FAMILY", help="restrict query families "
                       f"(default: all of {', '.join(QUERY_FAMILIES)})")
        p.add_argument("--profiles", nargs="+", default=None,
                       metavar="SEMIRING", help="restrict semiring profiles "
                       f"(default: all of {', '.join(PROFILES)})")
        p.add_argument("--corpus", default=None, metavar="DIR",
                       help="serialize shrunk failures into this directory")
        p.add_argument("--no-shrink", action="store_true",
                       help="skip delta-debugging of failures")
        p.add_argument("--fail-fast", action="store_true",
                       help="stop at the first invariant violation")
        p.add_argument("--json", action="store_true",
                       help="print the campaign summary as JSON")
        add_backend(p)

    fuzz = sub.add_parser(
        "fuzz",
        help="conformance fuzzing: differential + metamorphic invariants",
    )
    add_campaign(fuzz, iterations=25)
    fuzz.add_argument("--invariants", nargs="+", default=None,
                      metavar="NAME", help="restrict the invariant catalog "
                      f"(default: {', '.join(DEFAULT_INVARIANTS)})")
    fuzz.add_argument("--chaos", action="store_true",
                      help="also cycle the fault-injection chaos invariant")

    chaos = sub.add_parser(
        "chaos",
        help="chaos tier: conformance under injected faults + recovery",
    )
    add_campaign(chaos, iterations=10)
    chaos.add_argument("--schedules", type=int, default=2,
                       help="recoverable fault schedules per case × algorithm")
    chaos.add_argument("--faults", type=int, default=3,
                       help="faults per generated schedule")

    ivm = sub.add_parser(
        "ivm",
        help="materialize a view and apply delta batches (docs/ivm.md)",
    )
    ivm.add_argument("--instance", required=True, metavar="PATH",
                     help="instance JSON file (the repro.io format)")
    ivm.add_argument("--delta", action="append", default=[], metavar="PATH",
                     help="delta JSON file (repro-delta/v1); repeatable, "
                     "applied in order")
    ivm.add_argument("--p", type=int, default=8, help="number of servers")
    add_backend(ivm)
    ivm.add_argument("--check", action="store_true",
                     help="also recompute from scratch on the mutated "
                     "instance and exit 1 unless the incremental answer "
                     "is bit-identical")
    ivm.add_argument("--json", action="store_true",
                     help="print a machine-readable JSON document")
    ivm.add_argument("--export", default=None, metavar="PATH",
                     help="write the maintained answer as TSV")

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON query service (docs/service.md)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: %(default)s)")
    serve.add_argument("--port", type=int, default=8750,
                       help="TCP port, 0 = ephemeral (default: %(default)s)")
    serve.add_argument("--cache-bytes", type=int, default=64 * 1024 * 1024,
                       metavar="N",
                       help="result-cache byte budget; 0 disables caching "
                       "(default: 64 MiB)")
    serve.add_argument("--max-concurrent", type=int, default=4, metavar="N",
                       help="executions allowed to run simultaneously "
                       "(default: %(default)s)")
    serve.add_argument("--queue-depth", type=int, default=8, metavar="N",
                       help="requests allowed to wait for a slot before 429 "
                       "(default: %(default)s)")
    serve.add_argument("--load-budget", type=float, default=None, metavar="L",
                       help="reject requests whose planner-predicted load "
                       "exceeds L (default: unlimited)")
    serve.add_argument("--p", type=int, default=8,
                       help="default server count for requests that omit "
                       "config.p (default: %(default)s)")
    serve.add_argument("--backend", choices=BACKENDS, default="pytuple",
                       help="default kernel backend for requests that omit "
                       "config.backend")
    serve.add_argument("--preload", nargs="*", default=(), metavar="NAME=PATH",
                       help="register instance JSON files (repro.io format) "
                       "at startup")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress per-request access logging")

    return parser


def _print_report(label: str, result) -> None:
    report = result.report
    print(f"{label:<34} load={report.max_load:<8} comm={report.total_communication:<9} "
          f"rounds={report.rounds:<4} products={report.elementary_products}")


def _tracer_for(args: argparse.Namespace) -> Optional[Tracer]:
    """A JSONL-backed tracer when ``--trace-out`` was given, else None."""
    if getattr(args, "trace_out", None) is None:
        return None
    return Tracer([JsonlSink(args.trace_out)])


def _profiler_for(args: argparse.Namespace) -> Optional[Profiler]:
    """A :class:`Profiler` when ``--profile``/``--profile-out`` was given.

    ``None`` otherwise, which keeps the command's output byte-identical to
    a build without the profiler at all.
    """
    if getattr(args, "profile", False) or getattr(args, "profile_out", None):
        return Profiler()
    return None


def _finish_profile(args: argparse.Namespace, profiler: Optional[Profiler],
                    top: int = 15) -> Optional[Dict[str, Any]]:
    """Write ``--profile-out`` and build the profile's JSON payload.

    Returns ``None`` when profiling was off — callers only attach the
    ``"profile"`` key (or print the hotspot table) when a payload exists,
    so the default output stays unchanged.
    """
    if profiler is None:
        return None
    if args.profile_out:
        write_json(profiler.to_speedscope(name=f"repro {args.command}"),
                   args.profile_out)
    return {
        "total_wall_s": profiler.total_wall,
        "hotspots": [row.to_dict() for row in profiler.hotspots(top)],
        "profile_out": args.profile_out,
    }


def _print_profile(args: argparse.Namespace, profiler: Optional[Profiler],
                   top: int = 15) -> None:
    """Human-readable tail of a ``--profile`` run (hotspots + file notes)."""
    if profiler is None:
        return
    print()
    print(f"wall-clock profile ({profiler.total_wall:.3f}s total):")
    print(profiler.render_hotspots(top))
    if args.profile_out:
        print(f"speedscope profile written to {args.profile_out}")


def _command_compare(args: argparse.Namespace) -> int:
    instance = _families()[args.family](args)
    tracer = _tracer_for(args)
    profiler = _profiler_for(args)
    if not args.json:
        print(f"family={args.family}  N={instance.total_size}  p={args.p}  "
              f"class={instance.query.classify()}")
    config = ExecutionConfig(p=args.p, algorithm=args.algorithm,
                             backend=args.backend, tracer=tracer,
                             profiler=profiler, workers=args.workers)
    try:
        result = api.compare(instance, config, scope=args.family)
    except AssertionError:
        print("ERROR: algorithms disagree!", file=sys.stderr)
        return 1
    except ValueError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            tracer.close()
    baseline, ours = result.baseline, result.ours
    speedup = result.speedup
    payload = _finish_profile(args, profiler)
    if args.json:
        document = {
            "family": args.family,
            "p": args.p,
            "input_size": instance.total_size,
            "query_class": ours.query_class,
            "algorithm": ours.algorithm,
            "out_size": ours.out_size,
            "baseline": baseline.report.to_dict(),
            "ours": ours.report.to_dict(),
            "speedup": speedup,
            "trace_out": args.trace_out,
        }
        if payload is not None:
            document["profile"] = payload
        print(json.dumps(document, indent=2))
        return 0
    print(f"OUT={ours.out_size}")
    _print_report("distributed Yannakakis (baseline)", baseline)
    _print_report(f"paper algorithm ({ours.algorithm})", ours)
    print(f"load speedup: {speedup:.2f}×")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    _print_profile(args, profiler)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    """Sweep OUT for ``matmul``; sweep ``--tuples`` (doubling) otherwise."""
    tracer = _tracer_for(args)
    profiler = _profiler_for(args)
    config = ExecutionConfig(p=args.p, algorithm=args.algorithm,
                             backend=args.backend, tracer=tracer,
                             profiler=profiler, workers=args.workers)
    matmul = args.family == "matmul"
    knob_name = "OUT" if matmul else "tuples"
    points: List[Dict[str, Any]] = []

    def instances():
        n = args.tuples
        out = n
        tuples = args.tuples
        for _ in range(args.points):
            if matmul:
                knob = min(out, n * n)
                instance = planted_out_matmul(n=n, out=knob)
            else:
                knob = tuples
                args.tuples = tuples
                try:
                    instance = _families()[args.family](args)
                except ValueError as error:
                    # e.g. doubling --tuples past the family's domain capacity.
                    print(f"sweep stopped at {knob_name.lower()}={knob}: {error} "
                          f"(try a larger --domain)", file=sys.stderr)
                    return
            yield f"{args.family}/{knob_name}={knob}", knob, instance
            out *= 8
            tuples *= 2

    for scope, knob, instance in instances():
        try:
            result = api.compare(instance, config, scope=scope)
        except ValueError as error:
            print(f"ERROR: {error}", file=sys.stderr)
            if tracer is not None:
                tracer.close()
            return 2
        points.append({
            knob_name.lower(): knob,
            "input_size": instance.total_size,
            "out_size": result.ours.out_size,
            "baseline_load": result.baseline.report.max_load,
            "new_load": result.ours.report.max_load,
            "speedup": result.speedup,
        })
    if tracer is not None:
        tracer.close()
    if not points:
        return 1

    payload = _finish_profile(args, profiler)
    if args.json:
        document = {
            "family": args.family,
            "p": args.p,
            "knob": knob_name.lower(),
            "points": points,
            "trace_out": args.trace_out,
        }
        if payload is not None:
            document["profile"] = payload
        print(json.dumps(document, indent=2))
        return 0
    print(f"{knob_name:>10} {'L(yann)':>10} {'L(ours)':>10} {'speedup':>8}")
    for point in points:
        print(f"{point[knob_name.lower()]:>10} {point['baseline_load']:>10} "
              f"{point['new_load']:>10} {point['speedup']:>8.2f}")
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    _print_profile(args, profiler)
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    """One adversarial instance per Table-1 row, baseline vs new algorithm."""
    tracer = _tracer_for(args)
    profiler = _profiler_for(args)
    config = ExecutionConfig(p=args.p, backend=args.backend, tracer=tracer,
                             profiler=profiler, workers=args.workers)
    try:
        rows = api.table1(scale=args.scale, config=config, families=args.families)
    except (AssertionError, ValueError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    finally:
        if tracer is not None:
            tracer.close()
    payload = _finish_profile(args, profiler)
    if args.json:
        document = {
            "p": args.p,
            "scale": args.scale,
            "rows": [row.to_dict() for row in rows],
            "trace_out": args.trace_out,
        }
        if payload is not None:
            document["profile"] = payload
        print(json.dumps(document, indent=2))
        return 0
    print(f"Table 1 reproduction (p={args.p}, scale={args.scale}); "
          f"loads are measured\n")
    print(f"{'query':>8} {'N':>7} {'OUT':>9} {'L(yann)':>9} {'L(ours)':>9} {'speedup':>8}")
    for row in rows:
        print(
            f"{row.label:>8} {row.input_size:>7} {row.out_size:>9} "
            f"{row.baseline_load:>9} {row.new_load:>9} {row.speedup:>8.2f}"
        )
    if args.trace_out:
        print(f"trace written to {args.trace_out}")
    _print_profile(args, profiler)
    return 0


def _command_explain(args: argparse.Namespace) -> int:
    """Print the planner's candidate table for one instance, no execution."""
    instance = _families()[args.family](args)
    config = ExecutionConfig(p=args.p, backend=args.backend,
                             stats_mode=args.stats_mode, workers=args.workers)
    plan = api.explain(instance, config)
    if args.json:
        print(json.dumps(plan.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"family={args.family}  stats={plan.statistics.mode}"
          + (f" (metered load {plan.statistics.metered_load})"
             if plan.statistics.mode == "in-model" else ""))
    print(plan.render())
    return 0


def _command_trace(args: argparse.Namespace) -> int:
    instance = _families()[args.family](args)
    ring = RingBufferSink()
    sinks = [ring]
    if args.trace_out:
        sinks.append(JsonlSink(args.trace_out))
    tracer = Tracer(sinks, scope=args.family)
    config = ExecutionConfig(p=args.p, algorithm=args.algorithm,
                             backend=args.backend, tracer=tracer,
                             workers=args.workers)
    try:
        result = api.run_query(instance, config)
    except (KeyError, ValueError) as error:
        print(f"ERROR: cannot run {args.algorithm!r} on family "
              f"{args.family!r}: {error}", file=sys.stderr)
        return 2
    finally:
        tracer.close()

    report = result.report
    events = ring.events
    filtered = args.phase is not None or args.op is not None
    if filtered:
        events = [
            event for event in events
            if (args.op is None or event.op == args.op)
            and (args.phase is None or args.phase in "/".join(event.phase))
        ]
    phase_loads = sorted(
        phase_loads_from_events(events).items(), key=lambda kv: (-kv[1], kv[0])
    )[: args.top] if args.top > 0 else []
    matrix, servers = load_matrix_from_events(events)
    rounds = per_round_stats(matrix)
    overall = skew_stats([value for row in matrix for value in row])
    peak_round = max(range(len(rounds)), key=lambda r: rounds[r].max, default=0)

    if args.json:
        document = {
            "family": args.family,
            "p": args.p,
            "algorithm": result.algorithm,
            "query_class": result.query_class,
            "input_size": instance.total_size,
            "out_size": result.out_size,
            "report": report.to_dict(),
            "events": len(events),
            "trace_out": args.trace_out or None,
            "per_round": [stats.to_dict() for stats in rounds],
            "overall_skew": overall.to_dict(),
            "peak_round": peak_round,
        }
        if filtered:
            document["filters"] = {"phase": args.phase, "op": args.op}
        if args.top > 0:
            document["phase_loads"] = [
                {"phase": path, "max_load": load} for path, load in phase_loads
            ]
        print(json.dumps(document, indent=2))
        return 0

    print(f"family={args.family}  N={instance.total_size}  p={args.p}  "
          f"algorithm={result.algorithm}  OUT={result.out_size}")
    print(f"load L={report.max_load}  comm={report.total_communication}  "
          f"rounds={report.rounds}  products={report.elementary_products}")
    if filtered:
        shown = []
        if args.phase is not None:
            shown.append(f"phase~{args.phase!r}")
        if args.op is not None:
            shown.append(f"op={args.op}")
        print(f"filters: {' '.join(shown)}  ({len(events)} matching events)")
    if args.trace_out:
        print(f"trace: {len(ring.events)} events -> {args.trace_out}")
    print()
    print(render_heatmap(matrix, servers))
    print()
    if rounds:
        peak = rounds[peak_round]
        print(f"peak round {peak_round}: max={peak.max} mean={peak.mean:.1f} "
              f"p95={peak.p95} imbalance={peak.imbalance:.2f} gini={peak.gini:.2f}")
    if report.phases:
        print("phase loads: " + "  ".join(
            f"{label}={load}" for label, load in report.phases
        ))
    if args.top > 0:
        print()
        print(f"top {len(phase_loads)} phase paths by max per-server load:")
        width = max((len(path) for path, _ in phase_loads), default=5)
        for path, load in phase_loads:
            print(f"  {path:<{width}}  {load}")
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    """Run one instance under the profiler; hotspots + flamegraph exports."""
    instance = _families()[args.family](args)
    profiler = Profiler()
    config = ExecutionConfig(p=args.p, algorithm=args.algorithm,
                             backend=args.backend, profiler=profiler,
                             workers=args.workers)
    try:
        result = api.run_query(instance, config)
    except (KeyError, ValueError) as error:
        print(f"ERROR: cannot run {args.algorithm!r} on family "
              f"{args.family!r}: {error}", file=sys.stderr)
        return 2

    name = f"{args.family} p={args.p} backend={args.backend}"
    write_json(profiler.to_speedscope(name=name), args.profile_out)
    if args.chrome_out:
        write_json(profiler.to_chrome_trace(), args.chrome_out)
    if args.metrics_out:
        registry = MetricsRegistry()
        observe_profile(registry, profiler)
        observe_report(registry, result.report, scope=args.family)
        with open(args.metrics_out, "w", encoding="utf-8") as handle:
            handle.write(registry.render())

    if args.json:
        print(json.dumps({
            "family": args.family,
            "p": args.p,
            "backend": args.backend,
            "algorithm": result.algorithm,
            "query_class": result.query_class,
            "input_size": instance.total_size,
            "out_size": result.out_size,
            "report": result.report.to_dict(),
            "total_wall_s": profiler.total_wall,
            "hotspots": [row.to_dict() for row in profiler.hotspots(args.top)],
            "tree": [child.to_dict()
                     for child in profiler.root.children.values()],
            "profile_out": args.profile_out,
            "chrome_out": args.chrome_out,
            "metrics_out": args.metrics_out,
        }, indent=2))
        return 0

    print(f"family={args.family}  N={instance.total_size}  p={args.p}  "
          f"backend={args.backend}  algorithm={result.algorithm}  "
          f"OUT={result.out_size}")
    print(f"load L={result.report.max_load}  wall={profiler.total_wall:.3f}s")
    print()
    print(profiler.tree() if args.tree else profiler.render_hotspots(args.top))
    print()
    print(f"speedscope profile written to {args.profile_out} "
          f"(open at https://speedscope.app)")
    if args.chrome_out:
        print(f"chrome trace written to {args.chrome_out}")
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out}")
    return 0


def _check_campaign_names(args: argparse.Namespace) -> bool:
    checks = [
        ("--families", args.families, QUERY_FAMILIES),
        ("--profiles", args.profiles, tuple(PROFILES)),
    ]
    if getattr(args, "invariants", None) is not None:
        checks.append(("--invariants", args.invariants, tuple(INVARIANTS)))
    for flag, chosen, allowed in checks:
        for name in chosen or ():
            if name not in allowed:
                print(f"ERROR: unknown {flag} value {name!r} "
                      f"(choose from {', '.join(allowed)})", file=sys.stderr)
                return False
    return True


def _run_campaign(args: argparse.Namespace, invariants, label: str,
                  **extra) -> int:
    config = FuzzConfig(
        iterations=args.iterations,
        seconds=args.seconds,
        seed=args.seed,
        p=args.p,
        p_large=args.p_large,
        max_tuples=args.tuples,
        domain=args.domain,
        families=tuple(args.families) if args.families else QUERY_FAMILIES,
        profiles=tuple(args.profiles) if args.profiles else tuple(PROFILES),
        invariants=invariants,
        corpus=args.corpus,
        shrink=not args.no_shrink,
        fail_fast=args.fail_fast,
        backend=args.backend,
        workers=args.workers,
        **extra,
    )
    summary = api.chaos(config) if label == "chaos" else api.fuzz(config)
    if args.json:
        print(summary.to_json())
        return 0 if summary.ok else 1

    print(f"{label}: seed={summary.seed} checked={summary.checked} "
          f"p={summary.p}->{summary.p_large} "
          f"max_tuples={summary.max_tuples} domain={summary.domain}")
    for dimension in sorted(summary.coverage):
        bucket = summary.coverage[dimension]
        cells = "  ".join(f"{key}={count}" for key, count in sorted(bucket.items()))
        print(f"  {dimension:<12} {cells}")
    if summary.ok:
        print("OK: no invariant violations")
        return 0
    print(f"FAILURES: {len(summary.failures)}", file=sys.stderr)
    for failure in summary.failures:
        print(f"  [{failure.invariant}] iteration={failure.iteration} "
              f"family={failure.family} class={failure.query_class} "
              f"semiring={failure.profile} skew={failure.skew} "
              f"seed={failure.case_seed}", file=sys.stderr)
        print(f"    {failure.message}", file=sys.stderr)
        print(f"    shrunk {failure.original_tuples} -> "
              f"{failure.shrunk_tuples} tuples"
              + (f", saved to {failure.corpus_file}" if failure.corpus_file else ""),
              file=sys.stderr)
    return 1


def _answer_map(relation) -> Dict[Any, Any]:
    """Tuples keyed by sorted-attribute order, so answers from relations
    with different column orders compare directly."""
    order = sorted(range(len(relation.schema)), key=lambda i: relation.schema[i])
    return {tuple(values[i] for i in order): annotation
            for values, annotation in relation}


def _command_ivm(args: argparse.Namespace) -> int:
    """Materialize a view, stream deltas through it, optionally verify."""
    from .errors import ReproError
    from .io import read_delta_json, read_instance_json, write_relation_tsv
    from .ivm import mutate_instance

    try:
        instance = read_instance_json(args.instance)
        batches = [read_delta_json(path) for path in args.delta]
    except (OSError, ReproError, ValueError, KeyError) as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    config = ExecutionConfig(p=args.p, backend=args.backend,
                             workers=args.workers)
    try:
        view = api.materialize(instance, config)
        results = [view.apply(batch) for batch in batches]
    except ReproError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2
    report = view.report()
    answer = view.answer()

    check: Optional[Dict[str, Any]] = None
    if args.check:
        mutated = instance
        for batch in batches:
            mutated = mutate_instance(mutated, batch)
        recompute = api.run_query(mutated, ExecutionConfig(
            p=args.p, backend=args.backend, workers=args.workers))
        check = {
            "identical": _answer_map(answer) == _answer_map(recompute.relation),
            "recompute_load": recompute.report.max_load,
            "maintenance_load": report.maintenance_load,
        }
    if args.export:
        write_relation_tsv(answer, args.export)

    if args.json:
        document = {
            "instance": args.instance,
            "input_size": instance.total_size,
            "deltas": [result.to_dict() for result in results],
            "out_size": view.out_size,
            "report": report.to_dict(),
            "export": args.export,
        }
        if check is not None:
            document["check"] = check
        print(json.dumps(document, indent=2, sort_keys=True))
        return 0 if check is None or check["identical"] else 1

    print(f"instance={args.instance}  N={instance.total_size}  p={args.p}  "
          f"semiring={instance.semiring.name}")
    for path, result in zip(args.delta, results):
        print(f"delta {path}: {result.changes} changes  "
              f"runs={result.runs}  load={result.load}  "
              f"out_size={result.out_size}")
    print(f"OUT={view.out_size}  maintenance: "
          f"load={report.maintenance_load} "
          f"comm={report.maintenance_communication} "
          f"rounds={report.maintenance_rounds} "
          f"products={report.maintenance_products}")
    if args.export:
        print(f"answer written to {args.export}")
    if check is not None:
        if check["identical"]:
            print(f"check: incremental answer identical to recompute "
                  f"(maintenance load {check['maintenance_load']} vs "
                  f"recompute load {check['recompute_load']})")
        else:
            print("check: MISMATCH between incremental answer and recompute",
                  file=sys.stderr)
            return 1
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    """Start the HTTP/JSON query service (blocks until interrupted)."""
    from .errors import ConfigError, ReproError
    from .service import ServiceState, serve

    try:
        state = ServiceState(
            cache_bytes=args.cache_bytes,
            max_concurrent=args.max_concurrent,
            queue_depth=args.queue_depth,
            load_budget=args.load_budget,
            default_config=ExecutionConfig(p=args.p, backend=args.backend),
        )
    except ConfigError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 2

    from .io import instance_from_json

    for spec in args.preload:
        name, separator, path = spec.partition("=")
        if not separator or not name or not path:
            print(f"ERROR: --preload wants NAME=PATH, got {spec!r}",
                  file=sys.stderr)
            return 2
        try:
            with open(path, "r", encoding="utf-8") as handle:
                instance = instance_from_json(handle.read())
            entry = state.registry.register(name, instance)
        except (OSError, ReproError, ValueError, KeyError) as error:
            print(f"ERROR: cannot preload {name!r} from {path}: {error}",
                  file=sys.stderr)
            return 2
        print(f"preloaded {name!r} digest={entry.digest} "
              f"({entry.instance.total_size} tuples)")

    serve(state, host=args.host, port=args.port, verbose=not args.quiet)
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    if not _check_campaign_names(args):
        return 2
    invariants = (
        tuple(args.invariants) if args.invariants else DEFAULT_INVARIANTS
    )
    if args.chaos and "chaos" not in invariants:
        invariants = invariants + ("chaos",)
    return _run_campaign(args, invariants, "fuzz")


def _command_chaos(args: argparse.Namespace) -> int:
    if not _check_campaign_names(args):
        return 2
    return _run_campaign(
        args,
        ("differential", "chaos"),
        "chaos",
        chaos_schedules=args.schedules,
        chaos_faults=args.faults,
    )


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "table1":
        return _command_table1(args)
    if args.command == "explain":
        return _command_explain(args)
    if args.command == "trace":
        return _command_trace(args)
    if args.command == "profile":
        return _command_profile(args)
    if args.command == "fuzz":
        return _command_fuzz(args)
    if args.command == "chaos":
        return _command_chaos(args)
    if args.command == "ivm":
        return _command_ivm(args)
    if args.command == "serve":
        return _command_serve(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
