"""Command-line interface: ``python -m repro <command>``.

Two commands aimed at kicking the tires without writing code:

* ``compare`` — generate an instance from one of the built-in workload
  families, run the distributed Yannakakis baseline and the paper's
  algorithm, and print both cost reports side by side;
* ``sweep`` — the same across a sweep of the family's size knob, printing a
  Table-1-style series.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict

from .core.executor import run_query
from .data.query import Instance
from .workloads import (
    bowtie_line,
    line_instance,
    overlapping_star,
    planted_out_matmul,
    star_instance,
    starlike_instance,
    twig_instance,
    zipf_matmul,
)

__all__ = ["main"]


def _families() -> Dict[str, Callable[[argparse.Namespace], Instance]]:
    return {
        "matmul": lambda a: planted_out_matmul(n=a.tuples, out=a.out or 4 * a.tuples),
        "matmul-zipf": lambda a: zipf_matmul(a.tuples, a.tuples, max(4, a.domain),
                                             seed=a.seed),
        "line": lambda a: line_instance(3, a.tuples, a.domain, seed=a.seed),
        "line-bowtie": lambda a: bowtie_line(
            blocks=max(1, a.tuples // 25), fan_out=25, fan_mid=a.domain
        ),
        "star": lambda a: star_instance(3, a.tuples, max(a.domain, a.tuples),
                                        max(2, a.domain // 3), seed=a.seed),
        "star-overlap": lambda a: overlapping_star(
            arms=3, centres=a.domain, fan=max(2, a.tuples // a.domain)
        ),
        "starlike": lambda a: starlike_instance([1, 2, 2], a.tuples, a.domain,
                                                seed=a.seed),
        "twig": lambda a: twig_instance(a.tuples, a.domain, seed=a.seed),
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MPC join-aggregate algorithms (Hu & Yi, PODS 2020) — demo CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--family", choices=sorted(_families()), default="matmul")
        p.add_argument("--tuples", type=int, default=400,
                       help="tuples per relation (size knob)")
        p.add_argument("--domain", type=int, default=20,
                       help="domain width / family-specific knob")
        p.add_argument("--out", type=int, default=None,
                       help="target OUT (planted families)")
        p.add_argument("--p", type=int, default=16, help="number of servers")
        p.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="baseline vs paper algorithm, one instance")
    add_common(compare)

    sweep = sub.add_parser("sweep", help="sweep OUT (matmul family) and print the series")
    add_common(sweep)
    sweep.add_argument("--points", type=int, default=4)

    table1 = sub.add_parser(
        "table1", help="reproduce the paper's Table 1 (one row per query class)"
    )
    table1.add_argument("--p", type=int, default=16)
    table1.add_argument("--scale", type=int, default=300,
                        help="instance size knob (tuples per relation)")

    return parser


def _print_report(label: str, result) -> None:
    report = result.report
    print(f"{label:<34} load={report.max_load:<8} comm={report.total_communication:<9} "
          f"rounds={report.rounds:<4} products={report.elementary_products}")


def _command_compare(args: argparse.Namespace) -> int:
    instance = _families()[args.family](args)
    print(f"family={args.family}  N={instance.total_size}  p={args.p}  "
          f"class={instance.query.classify()}")
    baseline = run_query(instance, p=args.p, algorithm="yannakakis")
    ours = run_query(instance, p=args.p, algorithm="auto")
    if baseline.relation.tuples != ours.relation.tuples:
        print("ERROR: algorithms disagree!", file=sys.stderr)
        return 1
    print(f"OUT={ours.out_size}")
    _print_report("distributed Yannakakis (baseline)", baseline)
    _print_report(f"paper algorithm ({ours.algorithm})", ours)
    speedup = baseline.report.max_load / max(1, ours.report.max_load)
    print(f"load speedup: {speedup:.2f}×")
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    if args.family != "matmul":
        print("sweep currently supports --family matmul", file=sys.stderr)
        return 2
    n = args.tuples
    print(f"{'OUT':>10} {'L(yann)':>10} {'L(ours)':>10} {'speedup':>8}")
    out = n
    for _ in range(args.points):
        instance = planted_out_matmul(n=n, out=min(out, n * n))
        baseline = run_query(instance, p=args.p, algorithm="yannakakis")
        ours = run_query(instance, p=args.p, algorithm="auto")
        speedup = baseline.report.max_load / max(1, ours.report.max_load)
        print(f"{ours.out_size:>10} {baseline.report.max_load:>10} "
              f"{ours.report.max_load:>10} {speedup:>8.2f}")
        out *= 8
    return 0


def _command_table1(args: argparse.Namespace) -> int:
    """One adversarial instance per Table-1 row, baseline vs new algorithm."""
    from .reporting import table1_report

    try:
        rows = table1_report(scale=args.scale, p=args.p)
    except AssertionError as error:
        print(f"ERROR: {error}", file=sys.stderr)
        return 1
    print(f"Table 1 reproduction (p={args.p}, scale={args.scale}); "
          f"loads are measured\n")
    print(f"{'query':>8} {'N':>7} {'OUT':>9} {'L(yann)':>9} {'L(ours)':>9} {'speedup':>8}")
    for row in rows:
        print(
            f"{row.label:>8} {row.input_size:>7} {row.out_size:>9} "
            f"{row.baseline_load:>9} {row.new_load:>9} {row.speedup:>8.2f}"
        )
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "compare":
        return _command_compare(args)
    if args.command == "sweep":
        return _command_sweep(args)
    if args.command == "table1":
        return _command_table1(args)
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
