"""Public testing utilities for downstream users.

Adopters extending the library — custom semirings, new workloads, modified
algorithms — need the same validation machinery the internal test suite
uses.  This module productizes it:

* :func:`check_semiring` — axiom spot-checks plus algebraic property
  sampling for a custom :class:`~repro.semiring.Semiring`;
* :func:`oracle` — the exact sequential answer for any instance;
* :func:`compare_algorithms` — run several algorithms on one instance,
  assert they agree with the oracle, and return their cost reports;
* :class:`OpaqueSemiring` — an instrumentation semiring whose elements
  refuse every operation except ⊕/⊗ through the semiring object, proving
  an algorithm obeys the *semiring MPC model* discipline (§1.3): new
  annotation values arise only by adding/multiplying existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple

from .core.executor import run_query
from .data.query import Instance
from .data.relation import Relation
from .mpc.stats import CostReport
from .ram.evaluate import evaluate
from .semiring import Semiring

__all__ = [
    "check_semiring",
    "oracle",
    "compare_algorithms",
    "OpaqueSemiring",
]


def check_semiring(semiring: Semiring, samples: Iterable[Any]) -> None:
    """Raise :class:`~repro.semiring.SemiringError` if any semiring axiom
    fails on the sampled elements (commutativity, associativity,
    distributivity, identities, absorption, idempotency when claimed)."""
    semiring.check_axioms(samples)


def oracle(instance: Instance) -> Relation:
    """The exact sequential answer (variable elimination on the query tree)."""
    return evaluate(instance)


def compare_algorithms(
    instance: Instance,
    p: int = 8,
    algorithms: Sequence[str] = ("auto", "yannakakis"),
) -> Dict[str, CostReport]:
    """Run each algorithm, assert all results equal the oracle exactly
    (annotations included), and return the per-algorithm cost reports."""
    expected = oracle(instance)
    reports: Dict[str, CostReport] = {}
    for algorithm in algorithms:
        result = run_query(instance, p=p, algorithm=algorithm)
        if result.relation.tuples != expected.tuples:
            raise AssertionError(
                f"{algorithm!r} disagrees with the oracle: "
                f"{len(result.relation)} vs {len(expected)} tuples"
            )
        reports[algorithm] = result.report
    return reports


class _Opaque:
    """An annotation value that only the owning semiring can combine."""

    __slots__ = ("value", "owner")

    def __init__(self, value: int, owner: "OpaqueSemiring") -> None:
        self.value = value
        self.owner = owner

    # Equality is the one operation the model allows algorithms to observe
    # implicitly (hash-based data structures key on *tuples*, not
    # annotations, but results are compared at the end).
    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Opaque) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("_Opaque", self.value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"⟨{self.value}⟩"

    # Every arithmetic/ordering dunder is a discipline violation.
    def _forbidden(self, *_args):
        raise TypeError(
            "semiring-model violation: annotation combined outside ⊕/⊗"
        )

    __add__ = __radd__ = __mul__ = __rmul__ = _forbidden
    __sub__ = __rsub__ = __lt__ = __le__ = __gt__ = __ge__ = _forbidden
    __bool__ = None  # type: ignore[assignment]


class OpaqueSemiring:
    """Factory for an instrumented counting semiring.

    ``make()`` returns ``(semiring, counters)``: the semiring computes
    ordinary integer sums/products but wraps every element in an opaque
    shell that raises on any arithmetic performed outside the semiring
    object, and counts ⊕/⊗ invocations.
    """

    @staticmethod
    def make() -> Tuple[Semiring, Dict[str, int]]:
        counters = {"add": 0, "mul": 0}
        semiring_box: list = []

        def add(a: _Opaque, b: _Opaque) -> _Opaque:
            counters["add"] += 1
            return _Opaque(a.value + b.value, semiring_box[0])

        def mul(a: _Opaque, b: _Opaque) -> _Opaque:
            counters["mul"] += 1
            return _Opaque(a.value * b.value, semiring_box[0])

        semiring = Semiring(
            name="opaque-counting",
            zero=_Opaque(0, None),  # type: ignore[arg-type]
            one=_Opaque(1, None),  # type: ignore[arg-type]
            add=add,
            mul=mul,
        )
        semiring_box.append(semiring)
        return semiring, counters

    @staticmethod
    def wrap(value: int) -> _Opaque:
        return _Opaque(value, None)  # type: ignore[arg-type]

    @staticmethod
    def unwrap(value: _Opaque) -> int:
        return value.value
