"""Admission control: concurrency cap, bounded queue, load budget.

Three gates stand between an accepted HTTP request and the executor, all
of which reject with :class:`AdmissionRejected` (HTTP 429) *before* any
cluster work happens:

1. **Load budget** — the planner's predicted load for the request
   (:meth:`AdmissionController.check_load`) must not exceed the
   controller's budget (or the request's own stricter one).  Estimation
   reuses the server-side statistics catalog, so a repeated query pays
   nothing for it.
2. **Concurrency cap** — at most ``max_concurrent`` executions run at
   once.
3. **Queue depth** — when the cap is reached, up to ``queue_depth``
   requests wait their turn; anything beyond that is rejected
   immediately rather than piling up.

The controller is pure :mod:`threading` bookkeeping: it never touches
the executor, so it can be unit-tested deterministically with events.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Optional

from contextlib import contextmanager

from ..errors import ReproError

__all__ = ["AdmissionRejected", "AdmissionController"]


class AdmissionRejected(ReproError):
    """A request was turned away before executing (HTTP 429).

    ``reason`` is machine-readable: ``"load-budget"`` (predicted load
    exceeds the budget), ``"queue-full"`` (concurrency cap reached and
    the wait queue is at depth).
    """

    def __init__(self, message: str, *, reason: str,
                 predicted_load: Optional[float] = None,
                 budget: Optional[float] = None) -> None:
        super().__init__(message)
        self.reason = reason
        self.predicted_load = predicted_load
        self.budget = budget


class AdmissionController:
    """Gatekeeper for concurrent executions.

    ``max_concurrent`` — executions allowed to run simultaneously;
    ``queue_depth`` — requests allowed to *wait* when the cap is hit
    (0 = reject immediately at the cap);
    ``load_budget`` — maximum predicted load (in tuples, the paper's L)
    admitted per request, ``None`` = unlimited.
    """

    def __init__(self, max_concurrent: int = 4, queue_depth: int = 8,
                 load_budget: Optional[float] = None) -> None:
        if max_concurrent < 1:
            from ..errors import ConfigError

            raise ConfigError("admission needs max_concurrent >= 1")
        if queue_depth < 0:
            from ..errors import ConfigError

            raise ConfigError("admission needs queue_depth >= 0")
        self.max_concurrent = max_concurrent
        self.queue_depth = queue_depth
        self.load_budget = load_budget
        self._condition = threading.Condition()
        self._active = 0
        self._queued = 0
        #: High-water mark of simultaneously running executions — the e2e
        #: battery asserts it never exceeds ``max_concurrent``.
        self.peak_active = 0
        self.admitted = 0
        self.rejections: Dict[str, int] = {"load-budget": 0, "queue-full": 0}

    @property
    def active(self) -> int:
        with self._condition:
            return self._active

    @property
    def queued(self) -> int:
        with self._condition:
            return self._queued

    def check_load(self, predicted_load: Optional[float],
                   request_budget: Optional[float] = None) -> None:
        """Reject when the planner's prediction exceeds the budget.

        ``request_budget`` (from the request body) can only *tighten* the
        server-wide budget.  An unknown prediction (``None``) passes: the
        planner could not score the request, and guessing a rejection
        would turn estimator gaps into outages.
        """
        budget = self.load_budget
        if request_budget is not None:
            budget = request_budget if budget is None else min(budget, request_budget)
        if budget is None or predicted_load is None:
            return
        if predicted_load > budget:
            with self._condition:
                self.rejections["load-budget"] += 1
            raise AdmissionRejected(
                f"predicted load {predicted_load:.0f} exceeds the admission "
                f"budget {budget:.0f}; narrow the query or raise the budget",
                reason="load-budget",
                predicted_load=predicted_load,
                budget=budget,
            )

    @contextmanager
    def slot(self, timeout: Optional[float] = None) -> Iterator[None]:
        """Hold one execution slot; queue up to ``queue_depth`` deep.

        Raises :class:`AdmissionRejected` (``reason="queue-full"``) when
        the cap is reached and the queue is full, or when ``timeout``
        seconds pass without a slot freeing up.
        """
        with self._condition:
            if self._active >= self.max_concurrent:
                if self._queued >= self.queue_depth:
                    self.rejections["queue-full"] += 1
                    raise AdmissionRejected(
                        f"{self._active} executions running and "
                        f"{self._queued} queued (cap {self.max_concurrent}, "
                        f"depth {self.queue_depth}); retry later",
                        reason="queue-full",
                    )
                self._queued += 1
                try:
                    granted = self._condition.wait_for(
                        lambda: self._active < self.max_concurrent,
                        timeout=timeout,
                    )
                finally:
                    self._queued -= 1
                if not granted:
                    self.rejections["queue-full"] += 1
                    raise AdmissionRejected(
                        "timed out waiting for an execution slot",
                        reason="queue-full",
                    )
            self._active += 1
            self.admitted += 1
            if self._active > self.peak_active:
                self.peak_active = self._active
        try:
            yield
        finally:
            with self._condition:
                self._active -= 1
                self._condition.notify()

    def stats(self) -> Dict[str, float]:
        """A snapshot for ``/metrics`` and tests."""
        with self._condition:
            return {
                "active": self._active,
                "queued": self._queued,
                "peak_active": self.peak_active,
                "admitted": self.admitted,
                "rejected_load_budget": self.rejections["load-budget"],
                "rejected_queue_full": self.rejections["queue-full"],
            }
