"""Named instance registry with content digests.

The service operates on *registered* instances: clients upload data once
(``POST /instances``) and refer to it by name afterwards, so query
requests stay small and the server can reuse per-instance state — the
result cache and the planner's statistics catalog — across requests.

Every registration computes the instance's content digest
(:func:`~repro.service.cache.instance_digest`); re-registering a name
with different data yields a different digest, which is the cache- and
statistics-invalidation signal.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..data.query import Instance
from ..errors import ReproError
from .cache import instance_digest

__all__ = ["UnknownInstanceError", "RegisteredInstance", "InstanceRegistry"]


class UnknownInstanceError(ReproError, KeyError):
    """A request named an instance that is not registered (HTTP 404)."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no registered instance named {name!r}")
        self.name = name

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass(frozen=True)
class RegisteredInstance:
    """One named instance plus its derived identity."""

    name: str
    instance: Instance
    #: Content digest — the cache/statistics key component.
    digest: str
    #: How many times this name has been (re-)registered.
    generation: int

    def describe(self) -> Dict[str, object]:
        """A JSON-able summary (no tuple data)."""
        query = self.instance.query
        return {
            "name": self.name,
            "digest": self.digest,
            "generation": self.generation,
            "semiring": self.instance.semiring.name,
            "query_class": query.classify(),
            "relations": {
                rel_name: len(self.instance.relation(rel_name))
                for rel_name, _ in query.relations
            },
            "total_tuples": self.instance.total_size,
            "output": sorted(query.output),
        }


class InstanceRegistry:
    """Thread-safe name → :class:`RegisteredInstance` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instances: Dict[str, RegisteredInstance] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._instances)

    def register(self, name: str, instance: Instance) -> RegisteredInstance:
        """Register (or replace) ``name``; returns the new entry.

        The caller learns about a replaced digest via
        :meth:`previous_digest` semantics: register returns the *new*
        entry and stores it; use the return value of :meth:`replace` when
        the old digest is needed for invalidation.
        """
        return self.replace(name, instance)[0]

    def replace(
        self, name: str, instance: Instance
    ) -> "tuple[RegisteredInstance, Optional[str]]":
        """Register ``name``, returning ``(entry, old_digest)`` where
        ``old_digest`` is the digest the name previously pointed at (None
        for a first registration, or when the data is unchanged)."""
        digest = instance_digest(instance)
        with self._lock:
            previous = self._instances.get(name)
            generation = previous.generation + 1 if previous else 1
            entry = RegisteredInstance(
                name=name, instance=instance, digest=digest,
                generation=generation,
            )
            self._instances[name] = entry
            old_digest = None
            if previous is not None and previous.digest != digest:
                old_digest = previous.digest
            return entry, old_digest

    def get(self, name: str) -> RegisteredInstance:
        with self._lock:
            entry = self._instances.get(name)
        if entry is None:
            raise UnknownInstanceError(name)
        return entry

    def drop(self, name: str) -> RegisteredInstance:
        """Unregister ``name``; returns the dropped entry (for cache
        invalidation)."""
        with self._lock:
            entry = self._instances.pop(name, None)
        if entry is None:
            raise UnknownInstanceError(name)
        return entry

    def list(self) -> List[Dict[str, object]]:
        """Summaries of every registered instance, sorted by name."""
        with self._lock:
            entries = sorted(self._instances.values(), key=lambda e: e.name)
        return [entry.describe() for entry in entries]

    def digests(self) -> Dict[str, str]:
        with self._lock:
            return {name: entry.digest for name, entry in self._instances.items()}
