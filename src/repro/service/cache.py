"""Result cache: canonical keys, LRU eviction under a byte budget.

The service promises *bit-identical* responses for warm hits, so the
cache stores the exact serialized response body and keys it by everything
that could change that body:

* the **instance digest** — a content hash of the registered data
  (:func:`instance_digest`), stable under tuple insertion order and
  independent of any codec interning state, so re-registering the same
  logical data hits and mutating it misses;
* the **canonical query form** (:func:`canonical_query`) — relation
  names, schemas, and output attributes in sorted order;
* the **semiring** name;
* the **config fingerprint** (:func:`config_fingerprint`) — only the
  *semantic* :class:`~repro.config.ExecutionConfig` fields.  Observers
  (``tracer``, ``profiler``) never change answers, reports, or traces, so
  they are excluded; so are ``backend`` and ``workers``, which the
  backend-differential battery proves bit-identical by contract — a
  result computed under ``backend="numpy"`` legally serves a
  ``"pytuple"`` request.

Entries are evicted least-recently-used once the byte budget is
exceeded, and dropped eagerly when their instance is mutated or
unregistered (:meth:`ResultCache.invalidate`).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Tuple

from ..config import ExecutionConfig
from ..data.query import Instance, TreeQuery

__all__ = [
    "canonical_query",
    "canonical_value",
    "config_fingerprint",
    "instance_digest",
    "cache_key",
    "ResultCache",
]

#: ``ExecutionConfig`` fields that can change a response body.  Everything
#: else (tracer, profiler, backend, workers, fault_schedule — the service
#: rejects schedules outright) is non-semantic under the library's
#: bit-identity contracts.
SEMANTIC_CONFIG_FIELDS = ("p", "algorithm", "seed", "validate", "stats_mode")


def canonical_value(value: Any) -> Any:
    """A JSON-able form of an attribute/annotation value with a total
    order-friendly representation (tuples become tagged lists, exactly the
    :mod:`repro.io` convention)."""
    if isinstance(value, tuple):
        return {"__tuple__": [canonical_value(v) for v in value]}
    return value


def canonical_query(query: TreeQuery) -> str:
    """The query's shape as a canonical JSON string: relation (name,
    schema) pairs sorted by name, output attributes sorted."""
    return json.dumps(
        {
            "relations": sorted(
                [name, list(attrs)] for name, attrs in query.relations
            ),
            "output": sorted(query.output),
        },
        sort_keys=True,
        separators=(",", ":"),
    )


def instance_digest(instance: Instance) -> str:
    """A content digest of the instance: query shape, semiring name, and
    every relation's tuples in *sorted* order.

    Stable under tuple insertion order (tuples are sorted by their
    canonical JSON encoding before hashing) and under any codec interning
    order (the digest never looks at encoded columns, only at the logical
    values).  Two instances with the same digest produce byte-identical
    responses for the same request, which is what makes the digest a
    sound cache-key component.
    """
    hasher = hashlib.blake2b(digest_size=16)
    hasher.update(canonical_query(instance.query).encode("utf-8"))
    hasher.update(instance.semiring.name.encode("utf-8"))
    for name, _attrs in sorted(instance.query.relations):
        hasher.update(name.encode("utf-8"))
        rows = [
            json.dumps(
                [canonical_value(v) for v in values] + [canonical_value(w)],
                sort_keys=True,
                separators=(",", ":"),
                default=repr,
            )
            for values, w in instance.relation(name)
        ]
        for row in sorted(rows):
            hasher.update(row.encode("utf-8"))
            hasher.update(b"\n")
    return hasher.hexdigest()


def config_fingerprint(config: ExecutionConfig) -> str:
    """The semantic fields of ``config`` as a canonical JSON string.

    Ignores the observer fields (``tracer``, ``profiler``) and the
    backend/worker knobs — none of them can change the response body (the
    backend-differential and process-identity batteries are the proof),
    so including them would only fragment the cache.
    """
    return json.dumps(
        {field: getattr(config, field) for field in SEMANTIC_CONFIG_FIELDS},
        sort_keys=True,
        separators=(",", ":"),
    )


def cache_key(
    endpoint: str,
    digest: str,
    query: TreeQuery,
    semiring_name: str,
    config: ExecutionConfig,
) -> str:
    """The full cache key for one request: endpoint × instance digest ×
    canonical query form × semiring × config fingerprint."""
    return "|".join(
        (
            endpoint,
            digest,
            canonical_query(query),
            semiring_name,
            config_fingerprint(config),
        )
    )


class ResultCache:
    """A thread-safe LRU byte-budgeted map from cache keys to response
    bodies.

    ``max_bytes`` bounds the *sum of stored body sizes*; inserting past
    the budget evicts least-recently-used entries first.  A single body
    larger than the whole budget is simply not cached.  Each entry
    remembers its instance digest so :meth:`invalidate` can drop every
    response derived from a mutated or unregistered instance in one call.
    """

    def __init__(self, max_bytes: int = 64 * 1024 * 1024) -> None:
        if max_bytes < 0:
            from ..errors import ConfigError

            raise ConfigError("cache max_bytes must be >= 0")
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, Tuple[str, bytes]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: str) -> Optional[bytes]:
        """The cached body for ``key`` (refreshing its recency), or None."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]

    def put(self, key: str, digest: str, body: bytes) -> None:
        """Store ``body`` under ``key`` (tagged with its instance digest),
        evicting LRU entries to stay under the byte budget."""
        size = len(body)
        if size > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old[1])
            self._entries[key] = (digest, body)
            self._bytes += size
            while self._bytes > self.max_bytes and self._entries:
                _, (_, evicted) = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.evictions += 1

    def invalidate(self, digest: str) -> int:
        """Drop every entry derived from instance ``digest``; returns how
        many entries were removed."""
        with self._lock:
            doomed = [
                key for key, (entry_digest, _) in self._entries.items()
                if entry_digest == digest
            ]
            for key in doomed:
                _, body = self._entries.pop(key)
                self._bytes -= len(body)
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def stats(self) -> Dict[str, int]:
        """A snapshot for ``/metrics`` and tests."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
