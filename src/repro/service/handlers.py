"""Endpoint logic, HTTP-free: a :class:`ServiceState` plus pure handlers.

The HTTP layer (:mod:`repro.service.server`) is a dumb shell: it parses
the request line and body, calls :meth:`ServiceState.handle`, and writes
back whatever ``(status, content_type, body, headers)`` it gets.  All the
actual behaviour lives here, so tests can drive the full service without
opening a socket — and so cached bodies are the *exact* bytes a cold
execution produced.

Endpoints:

====================  =======================================================
``GET /healthz``       liveness probe
``GET /metrics``       Prometheus 0.0.4 text exposition
``GET /instances``     registered-instance summaries
``POST /instances``    register ``{"name": …, "instance": <instance JSON>}``
``DELETE /instances/<name>``  unregister (drops dependent views)
``POST /instances/<name>/deltas``  apply ``{"delta": <repro-delta/v1>}``:
                       mutate the instance, invalidate only stale cache
                       entries, refresh dependent views incrementally
``GET /views``         materialized-view summaries
``POST /views``        materialize ``{"name": …, "instance": …, "config"?}``
``GET /views/<name>``  one view's summary plus its maintained answer
``DELETE /views/<name>``  drop a view
``POST /query``        execute ``{"instance": …, "config": {…}}``
``POST /compare``      baseline vs configured algorithm, both reports
``POST /explain``      the planner's candidate table, no execution
====================  =======================================================

Failures map deterministically from the typed hierarchy in
:mod:`repro.errors` to HTTP statuses via :data:`ERROR_STATUS`.
"""

from __future__ import annotations

import json
import time
from dataclasses import replace
from typing import Any, Dict, List, Optional, Tuple

from .. import api
from ..config import ExecutionConfig
from ..data.query import Instance
from ..errors import (
    ApplicabilityError,
    ConfigError,
    FaultError,
    MPCError,
    ReproError,
    UnsupportedDeltaError,
    WorkerCrashError,
)
from ..io import delta_from_json, instance_from_json
from ..ivm import mutate_instance
from ..obs import RingBufferSink, Tracer, observe_report
from ..obs.registry import MetricsRegistry
from ..planner import plan_query
from ..planner.stats import StatisticsCatalog
from .admission import AdmissionController, AdmissionRejected
from .cache import ResultCache, cache_key
from .registry import InstanceRegistry, UnknownInstanceError
from .views import UnknownViewError, ViewRegistry

__all__ = [
    "ERROR_STATUS",
    "status_for",
    "ServiceState",
]

#: Deterministic exception-class → HTTP status mapping, checked in MRO
#: order (first match wins).  Subclasses inherit their nearest ancestor's
#: status unless listed themselves.
ERROR_STATUS: Tuple[Tuple[type, int], ...] = (
    (AdmissionRejected, 429),
    (UnknownInstanceError, 404),
    (UnknownViewError, 404),
    (UnsupportedDeltaError, 422),
    (ConfigError, 400),
    (ApplicabilityError, 422),
    (WorkerCrashError, 503),
    (FaultError, 500),
    (MPCError, 500),
    (ReproError, 500),
    (KeyError, 404),
    (ValueError, 400),
)


def status_for(error: BaseException) -> int:
    """The HTTP status for ``error``: the first :data:`ERROR_STATUS` entry
    matching its class (500 for anything unlisted)."""
    for cls, status in ERROR_STATUS:
        if isinstance(error, cls):
            return status
    return 500


#: Config keys a request body may set.  Observer objects (tracer,
#: profiler) and fault schedules are server-side concerns and rejected.
ALLOWED_CONFIG_KEYS = ("p", "algorithm", "backend", "seed", "validate",
                       "stats_mode", "workers")

_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"


def _canonical_body(document: Dict[str, Any]) -> bytes:
    """The service's one serialization: sorted keys, no whitespace — the
    bytes cached and diffed by the bit-identity battery."""
    return json.dumps(
        document, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _jsonify(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"__tuple__": [_jsonify(v) for v in value]}
    return value


def _answer_rows(relation: Any) -> List[List[Any]]:
    """The answer relation as sorted JSON rows (values…, annotation).

    Sorting by the canonical encoding makes the order independent of any
    execution detail, so cold and warm responses agree byte for byte."""
    rows = [
        [_jsonify(v) for v in values] + [_jsonify(annotation)]
        for values, annotation in relation
    ]
    rows.sort(key=lambda row: json.dumps(row, sort_keys=True, default=repr))
    return rows


def _trace_summary(events: List[Any]) -> Dict[str, Any]:
    """A deterministic digest of the run's trace stream."""
    by_op: Dict[str, int] = {}
    items_by_op: Dict[str, int] = {}
    max_round = -1
    for event in events:
        by_op[event.op] = by_op.get(event.op, 0) + 1
        total = event.total
        if total:
            items_by_op[event.op] = items_by_op.get(event.op, 0) + total
        if event.round > max_round:
            max_round = event.round
    return {
        "events": len(events),
        "by_op": dict(sorted(by_op.items())),
        "items_by_op": dict(sorted(items_by_op.items())),
        "rounds_traced": max_round + 1,
    }


class ServiceState:
    """Everything one server process owns, wired together.

    * an :class:`InstanceRegistry` (named data + digests);
    * a :class:`ResultCache` (bit-identical warm responses);
    * an :class:`AdmissionController` (429 before work, never after);
    * a :class:`~repro.planner.stats.StatisticsCatalog` keyed by instance
      digest — the planner's statistics are collected once per registered
      dataset and reused by every ``/query`` admission estimate and
      ``/explain`` request;
    * a :class:`~repro.obs.registry.MetricsRegistry` rendered by
      ``GET /metrics``.

    ``default_config`` seeds request configs: body ``"config"`` keys
    override its fields.
    """

    def __init__(
        self,
        cache_bytes: int = 64 * 1024 * 1024,
        max_concurrent: int = 4,
        queue_depth: int = 8,
        load_budget: Optional[float] = None,
        default_config: Optional[ExecutionConfig] = None,
    ) -> None:
        self.registry = InstanceRegistry()
        self.views = ViewRegistry()
        self.cache = ResultCache(max_bytes=cache_bytes)
        self.admission = AdmissionController(
            max_concurrent=max_concurrent,
            queue_depth=queue_depth,
            load_budget=load_budget,
        )
        self.statistics = StatisticsCatalog()
        self.metrics = MetricsRegistry()
        self.default_config = default_config or ExecutionConfig()
        self._requests = self.metrics.counter(
            "repro_service_requests_total",
            "HTTP requests served, by endpoint and status.",
            labelnames=("endpoint", "status"),
        )
        self._executions = self.metrics.counter(
            "repro_service_executions_total",
            "Cluster executions actually run, by endpoint.",
            labelnames=("endpoint",),
        )
        self._cache_hits = self.metrics.counter(
            "repro_service_cache_hits_total",
            "Requests answered from the result cache.",
            labelnames=("endpoint",),
        )
        self._cache_misses = self.metrics.counter(
            "repro_service_cache_misses_total",
            "Requests that had to execute.",
            labelnames=("endpoint",),
        )
        self._rejections = self.metrics.counter(
            "repro_service_rejections_total",
            "Requests rejected by admission control, by reason.",
            labelnames=("reason",),
        )
        self._errors = self.metrics.counter(
            "repro_service_errors_total",
            "Requests that failed, by exception class.",
            labelnames=("error",),
        )
        self._deltas_applied = self.metrics.counter(
            "repro_service_delta_applied_total",
            "Delta batches applied to registered instances.",
            labelnames=("instance",),
        )
        self._view_refresh_seconds = self.metrics.counter(
            "repro_service_view_refresh_seconds",
            "Wall-clock seconds spent refreshing materialized views.",
        )

    # -- request-level plumbing ------------------------------------------------

    def handle(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Tuple[int, str, bytes, Dict[str, str]]:
        """Route one request; never raises.

        Returns ``(status, content_type, body_bytes, extra_headers)``.
        """
        endpoint, handler, needs_body = self._route(method, path)
        headers: Dict[str, str] = {}
        try:
            if handler is None:
                raise LookupError(f"no route for {method} {path}")
            document = self._parse_json(body) if needs_body else None
            status, payload, extra = handler(path, document)
            content_type = extra.pop("__content_type__", _JSON)
            headers.update(extra)
            response = (
                payload if isinstance(payload, bytes)
                else _canonical_body(payload)
            )
        except Exception as error:  # deterministic mapping, no bare 500 pages
            status = 404 if isinstance(error, LookupError) and not isinstance(
                error, ReproError
            ) else status_for(error)
            if isinstance(error, AdmissionRejected):
                self._rejections.inc(reason=error.reason)
                headers["Retry-After"] = "1"
            self._errors.inc(error=type(error).__name__)
            response = _canonical_body(
                {
                    "error": type(error).__name__,
                    "message": str(error),
                    "status": status,
                }
            )
            content_type = _JSON
        self._requests.inc(endpoint=endpoint, status=str(status))
        return status, content_type, response, headers

    def _route(self, method: str, path: str):
        clean = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET":
            if clean == "/healthz":
                return "healthz", self._handle_healthz, False
            if clean == "/metrics":
                return "metrics", self._handle_metrics, False
            if clean == "/instances":
                return "instances", self._handle_list, False
            if clean == "/views":
                return "views", self._handle_view_list, False
            if clean.startswith("/views/"):
                return "views", self._handle_view_get, False
        elif method == "POST":
            if clean == "/instances":
                return "instances", self._handle_register, True
            if clean.startswith("/instances/") and clean.endswith("/deltas"):
                return "deltas", self._handle_apply_delta, True
            if clean == "/views":
                return "views", self._handle_view_create, True
            if clean == "/query":
                return "query", self._handle_query, True
            if clean == "/compare":
                return "compare", self._handle_compare, True
            if clean == "/explain":
                return "explain", self._handle_explain, True
        elif method == "DELETE":
            if clean.startswith("/views/"):
                return "views", self._handle_view_drop, False
            if clean.startswith("/instances/"):
                return "instances", self._handle_drop, False
        return clean.strip("/").split("/", 1)[0] or "root", None, False

    @staticmethod
    def _parse_json(body: Optional[bytes]) -> Dict[str, Any]:
        if not body:
            raise ConfigError("request body must be a JSON object")
        try:
            document = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ConfigError(f"request body is not valid JSON: {error}")
        if not isinstance(document, dict):
            raise ConfigError("request body must be a JSON object")
        return document

    def _config_from(self, document: Dict[str, Any]) -> ExecutionConfig:
        """Build the request's :class:`ExecutionConfig` — eager validation
        turns bad knobs into a 400 before anything runs."""
        overrides = document.get("config") or {}
        if not isinstance(overrides, dict):
            raise ConfigError('"config" must be a JSON object')
        unknown = sorted(set(overrides) - set(ALLOWED_CONFIG_KEYS))
        if unknown:
            raise ConfigError(
                f"unsupported config key(s) {unknown}; the service accepts "
                f"{', '.join(ALLOWED_CONFIG_KEYS)} (observers and fault "
                "schedules are server-side concerns)"
            )
        return replace(self.default_config, **overrides)

    def _resolve(self, document: Dict[str, Any]):
        name = document.get("instance")
        if not isinstance(name, str) or not name:
            raise ConfigError('request needs an "instance": "<name>" field')
        return self.registry.get(name)

    def _predicted_load(self, entry, config: ExecutionConfig) -> Optional[float]:
        """The planner's load estimate for this request, from cached
        statistics.  ``None`` when the planner cannot score it."""
        try:
            statistics = self.statistics.for_instance(
                entry.digest, entry.instance
            )
            plan = plan_query(
                entry.instance,
                p=config.p,
                statistics=statistics,
                backend=config.backend,
            )
        except ReproError:
            return None
        if config.algorithm not in ("auto", "cost"):
            try:
                return plan.candidate(config.algorithm).predicted_load
            except KeyError:
                return None
        return plan.predicted_load

    def _observe_execution(self, endpoint: str, entry, result) -> None:
        self._executions.inc(endpoint=endpoint)
        observe_report(self.metrics, result.report, scope=entry.name)

    def _refresh_gauges(self) -> None:
        cache = self.cache.stats()
        admission = self.admission.stats()
        self.metrics.gauge(
            "repro_service_cache_entries", "Entries in the result cache."
        ).set(cache["entries"])
        self.metrics.gauge(
            "repro_service_cache_bytes", "Bytes held by the result cache."
        ).set(cache["bytes"])
        self.metrics.gauge(
            "repro_service_instances", "Registered instances."
        ).set(len(self.registry))
        self.metrics.gauge(
            "repro_service_views", "Registered materialized views."
        ).set(len(self.views))
        self.metrics.gauge(
            "repro_service_active_executions", "Executions running now."
        ).set(admission["active"])
        self.metrics.gauge(
            "repro_service_peak_active_executions",
            "High-water mark of concurrent executions.",
        ).set(admission["peak_active"])
        self.metrics.counter(
            "repro_service_cache_evictions_total",
            "Cache entries evicted by the LRU byte budget.",
        )  # registered so it renders as 0 before the first eviction
        evictions = self.metrics.get("repro_service_cache_evictions_total")
        delta = cache["evictions"] - evictions.value()
        if delta > 0:
            evictions.inc(delta)

    # -- endpoints -------------------------------------------------------------

    def _handle_healthz(self, path, document):
        return 200, {"status": "ok", "api_version": api.__version__}, {}

    def _handle_metrics(self, path, document):
        self._refresh_gauges()
        body = self.metrics.render().encode("utf-8")
        return 200, body, {"__content_type__": _TEXT}

    def _handle_list(self, path, document):
        return 200, {"instances": self.registry.list()}, {}

    def _handle_register(self, path, document):
        name = document.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigError('registration needs a "name": "<string>" field')
        payload = document.get("instance")
        if payload is None:
            raise ConfigError('registration needs an "instance" document')
        try:
            instance = instance_from_json(payload)
        except (ValueError, KeyError, TypeError) as error:
            raise ConfigError(f"malformed instance document: {error}")
        entry, old_digest = self.registry.replace(name, instance)
        document_out = {"registered": entry.describe()}
        if old_digest is not None:
            # The name now points at different data: every cached response
            # and statistics snapshot derived from the old content is stale
            # — and so is the maintained state of any dependent view
            # (wholesale replacement is not a delta; re-materialize).
            self.cache.invalidate(old_digest)
            self.statistics.entries.pop(old_digest, None)
            dropped_views = self.views.drop_instance(name)
            if dropped_views:
                document_out["views_dropped"] = dropped_views
        return 200, document_out, {}

    def _handle_drop(self, path, document):
        name = path.rstrip("/").rsplit("/", 1)[-1]
        entry = self.registry.drop(name)
        self.cache.invalidate(entry.digest)
        self.statistics.entries.pop(entry.digest, None)
        document_out = {"dropped": entry.describe()}
        dropped_views = self.views.drop_instance(name)
        if dropped_views:
            document_out["views_dropped"] = dropped_views
        return 200, document_out, {}

    def _handle_apply_delta(self, path, document):
        """Mutate a registered instance by one delta batch.

        The instance is replaced by its mutated form (new digest → only
        the *old* digest's cache entries and statistics are invalidated;
        responses for other instances stay warm), and every dependent
        view refreshes by delta propagation — never by recomputation.
        """
        name = path.rstrip("/").rsplit("/", 2)[-2]
        entry = self.registry.get(name)
        payload = document.get("delta")
        if payload is None:
            raise ConfigError('request needs a "delta" document '
                              '(the repro-delta/v1 format)')
        try:
            batch = delta_from_json(payload)
        except (ValueError, KeyError, TypeError) as error:
            if isinstance(error, ReproError):
                raise
            raise ConfigError(f"malformed delta document: {error}")
        mutated = mutate_instance(entry.instance, batch)
        new_entry, old_digest = self.registry.replace(name, mutated)
        if old_digest is not None:
            self.cache.invalidate(old_digest)
            self.statistics.entries.pop(old_digest, None)
        refreshed: List[Dict[str, Any]] = []
        for view_entry in self.views.views_for(name):
            started = time.perf_counter()
            result = view_entry.view.apply(batch)
            self._view_refresh_seconds.inc(time.perf_counter() - started)
            refreshed.append({"view": view_entry.name, **result.to_dict()})
        self._deltas_applied.inc(instance=name)
        return 200, {
            "instance": name,
            "digest": new_entry.digest,
            "generation": new_entry.generation,
            "changes": len(batch),
            "cache_invalidated": old_digest is not None,
            "views_refreshed": refreshed,
        }, {}

    def _handle_view_list(self, path, document):
        return 200, {"views": self.views.list()}, {}

    def _handle_view_get(self, path, document):
        name = path.rstrip("/").rsplit("/", 1)[-1]
        entry = self.views.get(name)
        summary = entry.describe()
        summary["answer"] = _answer_rows(entry.view.answer())
        return 200, {"view": summary}, {}

    def _handle_view_create(self, path, document):
        """Materialize a view over a registered instance.

        The materialization is a real execution (one distributed run), so
        it takes an admission slot like ``/query``; subsequent deltas
        refresh the view under the ``maintenance`` meter tag only.
        """
        name = document.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigError('view creation needs a "name": "<string>" field')
        entry = self._resolve(document)
        config = self._config_from(document)
        with self.admission.slot():
            view = api.materialize(entry.instance, config, name=name)
        self._executions.inc(endpoint="views")
        observe_report(self.metrics, view.base_report, scope=entry.name)
        view_entry = self.views.register(name, entry.name, view)
        return 200, {
            "view": view_entry.describe(),
            "digest": entry.digest,
        }, {}

    def _handle_view_drop(self, path, document):
        name = path.rstrip("/").rsplit("/", 1)[-1]
        entry = self.views.drop(name)
        return 200, {"dropped": entry.describe()}, {}

    def _handle_query(self, path, document):
        return self._execute_cached("query", document, self._run_query)

    def _handle_compare(self, path, document):
        return self._execute_cached("compare", document, self._run_compare)

    def _handle_explain(self, path, document):
        entry = self._resolve(document)
        config = self._config_from(document)
        statistics = self.statistics.for_instance(entry.digest, entry.instance)
        plan = plan_query(
            entry.instance,
            p=config.p,
            statistics=statistics,
            backend=config.backend,
        )
        return 200, {
            "instance": entry.name,
            "digest": entry.digest,
            "plan": plan.to_dict(),
        }, {}

    # -- execution core --------------------------------------------------------

    def _execute_cached(self, endpoint: str, document, runner):
        entry = self._resolve(document)
        config = self._config_from(document)
        budget = document.get("load_budget")
        if budget is not None and not isinstance(budget, (int, float)):
            raise ConfigError('"load_budget" must be a number')
        key = cache_key(
            endpoint,
            entry.digest,
            entry.instance.query,
            entry.instance.semiring.name,
            config,
        )
        cached = self.cache.get(key)
        if cached is not None:
            self._cache_hits.inc(endpoint=endpoint)
            return 200, cached, {"X-Repro-Cache": "hit"}
        self._cache_misses.inc(endpoint=endpoint)
        # Admission: budget first (cheap, uses cached statistics), then a
        # slot — both reject with 429 before any cluster work.
        self.admission.check_load(
            self._predicted_load(entry, config),
            request_budget=budget,
        )
        with self.admission.slot():
            body = runner(endpoint, entry, config)
        self.cache.put(key, entry.digest, body)
        return 200, body, {"X-Repro-Cache": "miss"}

    def _run_query(self, endpoint: str, entry, config: ExecutionConfig) -> bytes:
        sink = RingBufferSink()
        traced = replace(config, tracer=Tracer([sink], scope=entry.name))
        result = api.run_query(entry.instance, traced)
        self._observe_execution(endpoint, entry, result)
        return _canonical_body(
            {
                "api_version": api.__version__,
                "instance": entry.name,
                "digest": entry.digest,
                "algorithm": result.algorithm,
                "query_class": result.query_class,
                "out_size": result.out_size,
                "answer": _answer_rows(result.relation),
                "report": result.report.to_dict(),
                "trace": _trace_summary(sink.events),
            }
        )

    def _run_compare(self, endpoint: str, entry, config: ExecutionConfig) -> bytes:
        sink = RingBufferSink()
        traced = replace(config, tracer=Tracer([sink], scope=entry.name))
        outcome = api.compare(entry.instance, traced, scope=entry.name)
        self._observe_execution(endpoint, entry, outcome.ours)
        return _canonical_body(
            {
                "api_version": api.__version__,
                "instance": entry.name,
                "digest": entry.digest,
                "query_class": outcome.ours.query_class,
                "algorithm": outcome.ours.algorithm,
                "out_size": outcome.ours.out_size,
                "answer": _answer_rows(outcome.ours.relation),
                "baseline": outcome.baseline.report.to_dict(),
                "ours": outcome.ours.report.to_dict(),
                "speedup": outcome.speedup,
                "trace": _trace_summary(sink.events),
            }
        )
