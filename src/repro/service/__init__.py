"""repro.service — the long-running query service over the ``repro.api``
facade.

A dependency-free HTTP/JSON server (stdlib ``http.server`` with the
threading mix-in) that turns the batch reproduction into something that
can plausibly serve traffic:

* **named registered instances** (:mod:`~repro.service.registry`) —
  upload data once, query it by name; every registration carries a
  content digest;
* **a result cache** (:mod:`~repro.service.cache`) keyed by
  (instance digest, canonical query form, semiring, config fingerprint),
  LRU-evicted under a byte budget and invalidated when an instance is
  mutated — warm hits return *bit-identical* bytes to cold execution;
* **admission control** (:mod:`~repro.service.admission`) — a
  concurrency cap, a bounded wait queue, and a per-request load budget
  checked against the planner's prediction *before* anything runs
  (HTTP 429 on rejection);
* **observability** — ``GET /metrics`` renders the shared
  :class:`~repro.obs.registry.MetricsRegistry` in Prometheus 0.0.4 text
  format; ``GET /healthz`` is the liveness probe;
* **planner reuse** — a server-side
  :class:`~repro.planner.stats.StatisticsCatalog` keyed by instance
  digest feeds both admission estimates and ``POST /explain``;
* **materialized views** (:mod:`~repro.service.views`) — ``POST /views``
  pins a :class:`~repro.ivm.MaterializedView` over a registered
  instance; ``POST /instances/<name>/deltas`` mutates the instance,
  invalidates only the stale digest's cache entries, and refreshes
  dependent views by delta propagation instead of recomputing
  (docs/ivm.md).

See docs/service.md for the endpoint reference and the error → HTTP
status table.

>>> from repro.service import ReproServer, ServiceState
>>> with ReproServer(ServiceState(max_concurrent=2)) as server:
...     ...  # POST instances and queries at server.url
"""

from .admission import AdmissionController, AdmissionRejected
from .cache import (
    ResultCache,
    cache_key,
    canonical_query,
    config_fingerprint,
    instance_digest,
)
from .handlers import ERROR_STATUS, ServiceState, status_for
from .registry import InstanceRegistry, RegisteredInstance, UnknownInstanceError
from .server import ReproServer, serve
from .views import RegisteredView, UnknownViewError, ViewRegistry

__all__ = [
    "AdmissionController",
    "AdmissionRejected",
    "ERROR_STATUS",
    "InstanceRegistry",
    "RegisteredInstance",
    "RegisteredView",
    "ReproServer",
    "ResultCache",
    "ServiceState",
    "UnknownInstanceError",
    "UnknownViewError",
    "ViewRegistry",
    "cache_key",
    "canonical_query",
    "config_fingerprint",
    "instance_digest",
    "serve",
    "status_for",
]
