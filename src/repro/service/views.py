"""Materialized views held by the service.

``POST /views`` pins a :class:`~repro.ivm.MaterializedView` over a
registered instance; ``POST /instances/<name>/deltas`` then refreshes
every dependent view by delta propagation instead of recomputing.  The
registry is the instance-name → views mapping behind that flow: when an
instance is mutated its views are refreshed in place, and when it is
dropped (or wholesale re-registered with different data, which would
leave a view's state stale) its views go with it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, List

from ..errors import ReproError
from ..ivm import MaterializedView

__all__ = ["UnknownViewError", "RegisteredView", "ViewRegistry"]


class UnknownViewError(ReproError, KeyError):
    """A request named a view that is not registered (HTTP 404)."""

    def __init__(self, name: str) -> None:
        super().__init__(f"no registered view named {name!r}")
        self.name = name

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


@dataclass(frozen=True)
class RegisteredView:
    """One named view plus the instance name it maintains."""

    name: str
    instance: str
    view: MaterializedView

    def describe(self) -> Dict[str, object]:
        """A JSON-able summary (no tuple data)."""
        summary = self.view.to_summary()
        summary["name"] = self.name
        summary["instance"] = self.instance
        return summary


class ViewRegistry:
    """Thread-safe name → :class:`RegisteredView` map."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._views: Dict[str, RegisteredView] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def register(self, name: str, instance: str,
                 view: MaterializedView) -> RegisteredView:
        """Register (or replace) ``name``; returns the new entry."""
        entry = RegisteredView(name=name, instance=instance, view=view)
        with self._lock:
            self._views[name] = entry
        return entry

    def get(self, name: str) -> RegisteredView:
        with self._lock:
            entry = self._views.get(name)
        if entry is None:
            raise UnknownViewError(name)
        return entry

    def drop(self, name: str) -> RegisteredView:
        with self._lock:
            entry = self._views.pop(name, None)
        if entry is None:
            raise UnknownViewError(name)
        return entry

    def views_for(self, instance: str) -> List[RegisteredView]:
        """Views over ``instance``, sorted by name (the refresh order)."""
        with self._lock:
            entries = [entry for entry in self._views.values()
                       if entry.instance == instance]
        return sorted(entries, key=lambda entry: entry.name)

    def drop_instance(self, instance: str) -> List[str]:
        """Drop every view over ``instance``; returns their names sorted."""
        with self._lock:
            names = sorted(name for name, entry in self._views.items()
                           if entry.instance == instance)
            for name in names:
                del self._views[name]
        return names

    def list(self) -> List[Dict[str, object]]:
        """Summaries of every registered view, sorted by name."""
        with self._lock:
            entries = sorted(self._views.values(), key=lambda e: e.name)
        return [entry.describe() for entry in entries]
