"""The HTTP shell: stdlib ``ThreadingHTTPServer`` over a ServiceState.

Dependency-free by design (``http.server`` + the ``ThreadingMixIn``
built into :class:`~http.server.ThreadingHTTPServer`): one daemon thread
per connection, all real work delegated to
:meth:`repro.service.handlers.ServiceState.handle`.  Concurrency is
governed by the state's :class:`~repro.service.admission.AdmissionController`,
not by the socket layer — threads past the cap either queue or get 429.

Two entry points:

* :class:`ReproServer` — embeddable: binds (port 0 = ephemeral), runs in
  a background thread, exposes ``.port``/``.url``; the shape the tests
  and notebooks use;
* :func:`serve` — blocking convenience for ``repro serve``.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from .handlers import ServiceState

__all__ = ["ReproServer", "serve"]


class _Handler(BaseHTTPRequestHandler):
    """Parses HTTP, forwards to the state, writes the reply.  Nothing else."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service"

    # The ThreadingHTTPServer subclass carries the state.
    @property
    def state(self) -> ServiceState:
        return self.server.state  # type: ignore[attr-defined]

    def _dispatch(self, method: str) -> None:
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        status, content_type, payload, headers = self.state.handle(
            method, self.path, body
        )
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def do_GET(self) -> None:  # noqa: N802 - http.server convention
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:
        if getattr(self.server, "verbose", False):  # pragma: no cover
            super().log_message(format, *args)


class _Server(ThreadingHTTPServer):
    daemon_threads = True
    #: Reuse the port promptly across quick restarts (tests, CI smoke).
    allow_reuse_address = True

    def __init__(self, address, state: ServiceState, verbose: bool = False):
        super().__init__(address, _Handler)
        self.state = state
        self.verbose = verbose


class ReproServer:
    """An embeddable service: bind, serve in a thread, shut down cleanly.

    >>> server = ReproServer(ServiceState())
    >>> server.start()
    >>> server.url
    'http://127.0.0.1:<port>'
    >>> server.close()

    ``port=0`` (the default) binds an ephemeral port — read ``.port``
    after construction.
    """

    def __init__(self, state: Optional[ServiceState] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 verbose: bool = False) -> None:
        self.state = state or ServiceState()
        self._server = _Server((host, port), self.state, verbose=verbose)
        self.host = host
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproServer":
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="repro-service", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve (the CLI path); Ctrl-C returns cleanly."""
        try:
            self._server.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            pass
        finally:
            self._server.server_close()

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def serve(state: Optional[ServiceState] = None, host: str = "127.0.0.1",
          port: int = 8750, verbose: bool = True) -> None:
    """Run the service until interrupted (the ``repro serve`` entry)."""
    server = ReproServer(state, host=host, port=port, verbose=verbose)
    print(f"repro service listening on {server.url}")
    server.serve_forever()
