"""Loading and saving relations and instances.

Plain-text formats so instances can come from anywhere:

* **TSV** — one tuple per line, attribute columns then an annotation
  column; values are kept as strings unless a ``parse`` hook converts them
  (``int``/``float`` are built in);
* **JSON** — a whole :class:`~repro.data.query.Instance` (query shape,
  output attributes, relations, named semiring) in one document, the
  interchange format used to pin down benchmark inputs;
* **delta JSON** (``repro-delta/v1``) — a :class:`~repro.ivm.DeltaBatch`
  as one document, so change streams are replayable corpus artifacts
  alongside the instances they mutate.

Only the standard semirings can be named in JSON (annotations must be JSON
values); arbitrary semirings still work through the TSV path with a custom
``parse_annotation``.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union

from .data.query import Instance, TreeQuery
from .data.relation import Relation
from .semiring import STANDARD_SEMIRINGS, Semiring

__all__ = [
    "write_relation_tsv",
    "read_relation_tsv",
    "instance_to_json",
    "instance_from_json",
    "write_instance_json",
    "read_instance_json",
    "delta_to_json",
    "delta_from_json",
    "write_delta_json",
    "read_delta_json",
]

#: Format tag stamped into every serialized delta document.
DELTA_FORMAT = "repro-delta/v1"

_SEMIRINGS_BY_NAME: Dict[str, Semiring] = {s.name: s for s in STANDARD_SEMIRINGS}


def write_relation_tsv(relation: Relation, target: Union[str, IO[str]]) -> None:
    """Write ``relation`` as TSV: a header row of attribute names plus
    ``__annotation``, then one row per tuple."""

    def dump(handle: IO[str]) -> None:
        handle.write("\t".join([*relation.schema, "__annotation"]) + "\n")
        for values, annotation in relation:
            row = [str(value) for value in values] + [str(annotation)]
            handle.write("\t".join(row) + "\n")

    if isinstance(target, str):
        with open(target, "w") as handle:
            dump(handle)
    else:
        dump(target)


def read_relation_tsv(
    source: Union[str, IO[str]],
    name: str = "R",
    parse_value: Callable[[str], Any] = None,
    parse_annotation: Callable[[str], Any] = None,
    semiring: Optional[Semiring] = None,
) -> Relation:
    """Read a TSV written by :func:`write_relation_tsv` (or hand-made).

    ``parse_value``/``parse_annotation`` convert the string cells; the
    defaults try ``int`` then ``float`` then keep the string.  Duplicate
    tuples are ⊕-combined when a semiring is supplied.
    """
    parse_value = parse_value or _auto_parse
    parse_annotation = parse_annotation or _auto_parse

    def load(handle: IO[str]) -> Relation:
        header = handle.readline().rstrip("\n").split("\t")
        if not header or header[-1] != "__annotation":
            raise ValueError("TSV must end with an __annotation column")
        schema = tuple(header[:-1])
        relation = Relation(name, schema)
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            cells = line.split("\t")
            if len(cells) != len(header):
                raise ValueError(f"line {line_number}: expected {len(header)} cells")
            values = tuple(parse_value(cell) for cell in cells[:-1])
            relation.add(values, parse_annotation(cells[-1]), semiring)
        return relation

    if isinstance(source, str):
        with open(source) as handle:
            return load(handle)
    return load(source)


def _auto_parse(cell: str) -> Any:
    for converter in (int, float):
        try:
            return converter(cell)
        except ValueError:
            continue
    return cell


def instance_to_json(instance: Instance) -> str:
    """Serialize an instance (query + data + semiring name) to JSON.

    Annotations and attribute values must be JSON-serializable; tuples in
    values are stored as lists and restored as tuples.
    """
    if instance.semiring.name not in _SEMIRINGS_BY_NAME:
        raise ValueError(
            f"only standard semirings can be serialized, not "
            f"{instance.semiring.name!r}"
        )
    document = {
        "semiring": instance.semiring.name,
        "output": sorted(instance.query.output),
        "relations": [
            {
                "name": name,
                "schema": list(attrs),
                "tuples": [
                    [_jsonify(v) for v in values] + [_jsonify(w)]
                    for values, w in instance.relation(name)
                ],
            }
            for name, attrs in instance.query.relations
        ],
    }
    return json.dumps(document)


def instance_from_json(document: Union[str, dict]) -> Instance:
    """Inverse of :func:`instance_to_json`."""
    data = json.loads(document) if isinstance(document, str) else document
    semiring = _SEMIRINGS_BY_NAME.get(data["semiring"])
    if semiring is None:
        raise ValueError(f"unknown semiring {data['semiring']!r}")
    specs: List[Tuple[str, Tuple[str, str]]] = []
    relations: Dict[str, Relation] = {}
    for entry in data["relations"]:
        schema = tuple(entry["schema"])
        specs.append((entry["name"], schema))
        relation = Relation(entry["name"], schema)
        for row in entry["tuples"]:
            values = tuple(_unjsonify(v) for v in row[:-1])
            relation.add(values, _unjsonify(row[-1]), semiring)
        relations[entry["name"]] = relation
    query = TreeQuery(tuple(specs), frozenset(data["output"]))
    return Instance(query, relations, semiring)


def write_instance_json(instance: Instance, path: str, indent: int = 2) -> None:
    """Write :func:`instance_to_json` output to ``path`` (pretty-printed,
    stable key order — suitable for checked-in fixtures and fuzz corpora)."""
    document = json.loads(instance_to_json(instance))
    with open(path, "w") as handle:
        json.dump(document, handle, indent=indent, sort_keys=True)
        handle.write("\n")


def read_instance_json(path: str) -> Instance:
    """Load an instance written by :func:`write_instance_json`."""
    with open(path) as handle:
        return instance_from_json(json.load(handle))


def delta_to_json(batch: "DeltaBatch") -> str:
    """Serialize a :class:`~repro.ivm.DeltaBatch` to JSON.

    Annotations and attribute values must be JSON-serializable (the same
    constraint as :func:`instance_to_json`); tuples in values are stored
    as lists and restored as tuples.
    """
    document = {
        "format": DELTA_FORMAT,
        "changes": [
            {
                "relation": change.relation,
                "op": change.op,
                "values": [_jsonify(v) for v in change.values],
                **(
                    {"annotation": _jsonify(change.annotation)}
                    if change.annotation is not None
                    else {}
                ),
            }
            for change in batch
        ],
    }
    return json.dumps(document)


def delta_from_json(document: Union[str, dict]) -> "DeltaBatch":
    """Inverse of :func:`delta_to_json`."""
    from .ivm.delta import DeltaBatch, DeltaChange

    data = json.loads(document) if isinstance(document, str) else document
    if data.get("format") != DELTA_FORMAT:
        raise ValueError(
            f"not a delta document: format {data.get('format')!r}, "
            f"expected {DELTA_FORMAT!r}"
        )
    return DeltaBatch(
        tuple(
            DeltaChange(
                relation=entry["relation"],
                op=entry["op"],
                values=tuple(_unjsonify(v) for v in entry["values"]),
                annotation=_unjsonify(entry.get("annotation")),
            )
            for entry in data["changes"]
        )
    )


def write_delta_json(batch: "DeltaBatch", path: str, indent: int = 2) -> None:
    """Write :func:`delta_to_json` output to ``path`` (pretty-printed,
    stable key order — the mirror of :func:`write_instance_json`)."""
    document = json.loads(delta_to_json(batch))
    with open(path, "w") as handle:
        json.dump(document, handle, indent=indent, sort_keys=True)
        handle.write("\n")


def read_delta_json(path: str) -> "DeltaBatch":
    """Load a delta batch written by :func:`write_delta_json`."""
    with open(path) as handle:
        return delta_from_json(json.load(handle))


def _jsonify(value: Any) -> Any:
    if isinstance(value, tuple):
        return {"__tuple__": [_jsonify(v) for v in value]}
    return value


def _unjsonify(value: Any) -> Any:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_unjsonify(v) for v in value["__tuple__"])
    return value
