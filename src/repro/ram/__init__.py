"""Sequential (RAM-model) reference implementations — the correctness oracle."""

from .evaluate import brute_force, evaluate, full_join_size, output_size, result_schema
from .yannakakis import JoinStep, run_yannakakis, semijoin_reduce, yannakakis_plan

__all__ = [
    "brute_force",
    "evaluate",
    "output_size",
    "full_join_size",
    "result_schema",
    "JoinStep",
    "yannakakis_plan",
    "run_yannakakis",
    "semijoin_reduce",
]
