"""Sequential (RAM-model) reference evaluation of join-aggregate queries.

Two evaluators:

* :func:`brute_force` — materializes the full join ``Q(R)`` by backtracking
  and then aggregates.  Exponentially safe only for tiny inputs; used to
  validate the second evaluator.
* :func:`evaluate` — exact variable elimination on the query tree (the
  RAM Yannakakis algorithm generalized to arbitrary output attributes):
  messages flow bottom-up along the attribute tree, carrying the output
  attributes of their subtree.  Always correct; its intermediate size is the
  paper's ``J`` for non-free-connex queries.

Both return a :class:`~repro.data.relation.Relation` over the query's output
attributes in sorted order (the canonical result schema used throughout the
test suite), dropping result tuples whose aggregate annotation is the
semiring zero only when they received no contribution at all (i.e. we keep
computed zeros, matching the semantics "t_y ∈ π_y Q(R)").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..data.query import Instance, TreeQuery
from ..data.relation import Relation

__all__ = ["brute_force", "evaluate", "output_size", "full_join_size"]


def result_schema(query: TreeQuery) -> Tuple[str, ...]:
    """Canonical output schema: output attributes in sorted order."""
    return tuple(sorted(query.output))


def brute_force(instance: Instance) -> Relation:
    """Materialize Q(R) tuple-by-tuple, then group and ⊕-aggregate."""
    query = instance.query
    semiring = instance.semiring
    schema = result_schema(query)
    result = Relation("brute_force", schema)

    order = _relation_order(query)
    assignments: Dict[str, Any] = {}

    def backtrack(position: int, annotation: Any) -> None:
        if position == len(order):
            key = tuple(assignments[a] for a in schema)
            result.add(key, annotation, semiring)
            return
        name, attrs = order[position]
        relation = instance.relation(name)
        for values, weight in relation:
            bound = dict(zip(attrs, values))
            if any(assignments.get(a, v) != v for a, v in bound.items()):
                continue
            added = [a for a in bound if a not in assignments]
            assignments.update({a: bound[a] for a in added})
            backtrack(position + 1, semiring.mul(annotation, weight))
            for a in added:
                del assignments[a]

    backtrack(0, semiring.one)
    return result


def _relation_order(query: TreeQuery) -> List[Tuple[str, Tuple[str, str]]]:
    """Relations ordered so each one (after the first) shares an attribute
    with the already-placed prefix (valid backtracking order on a tree)."""
    remaining = list(query.relations)
    ordered = [remaining.pop(0)]
    placed = set(ordered[0][1])
    while remaining:
        for index, (name, attrs) in enumerate(remaining):
            if set(attrs) & placed:
                ordered.append(remaining.pop(index))
                placed |= set(attrs)
                break
        else:  # pragma: no cover - impossible on a tree
            ordered.append(remaining.pop(0))
            placed |= set(ordered[-1][1])
    return ordered


# -- exact variable elimination ------------------------------------------------


def evaluate(instance: Instance) -> Relation:
    """Exact join-aggregate by message passing on the attribute tree."""
    query = instance.query
    semiring = instance.semiring
    schema = result_schema(query)

    root = _pick_root(query)
    messages = [
        _message(instance, rel_index, child, root_side)
        for rel_index, child, root_side in _root_edges(query, root)
    ]
    keep_root = root in query.output
    combined = _combine_messages(instance, root, messages)

    result = Relation("evaluate", schema)
    for root_value, rows in combined.items():
        for extra_key, weight in rows.items():
            bound = dict(extra_key)
            if keep_root:
                bound[root] = root_value
            key = tuple(bound[a] for a in schema)
            result.add(key, weight, semiring)
    return result


def _pick_root(query: TreeQuery) -> str:
    for attribute in sorted(query.attributes):
        if attribute in query.output:
            return attribute
    return sorted(query.attributes)[0]


def _root_edges(query: TreeQuery, root: str) -> List[Tuple[int, str, str]]:
    return [(rel_index, neighbour, root) for rel_index, neighbour in query.adjacency[root]]


#: message: value-of-parent-attr → { frozenset((attr, value), ...) → annotation }
Message = Dict[Any, Dict[frozenset, Any]]


def _message(instance: Instance, rel_index: int, child: str, parent: str) -> Message:
    """⊕-aggregated message over relation ``rel_index`` from ``child`` towards
    ``parent``, retaining the output attributes of the child's subtree."""
    query = instance.query
    semiring = instance.semiring
    name, attrs = query.relations[rel_index]
    relation = instance.relation(name)
    child_index = attrs.index(child)
    parent_index = attrs.index(parent)

    sub_messages = [
        _message(instance, sub_index, neighbour, child)
        for sub_index, neighbour in query.adjacency[child]
        if sub_index != rel_index
    ]
    child_rows = _combine_messages(instance, child, sub_messages)
    keep_child = child in query.output

    out: Message = {}
    for values, weight in relation:
        child_value = values[child_index]
        parent_value = values[parent_index]
        rows = child_rows.get(child_value)
        if rows is None:
            continue
        target = out.setdefault(parent_value, {})
        for extra_key, sub_weight in rows.items():
            total = semiring.mul(weight, sub_weight)
            key = extra_key | {(child, child_value)} if keep_child else extra_key
            key = frozenset(key)
            if key in target:
                target[key] = semiring.add(target[key], total)
            else:
                target[key] = total
    return out


def _combine_messages(
    instance: Instance, attribute: str, messages: Sequence[Message]
) -> Dict[Any, Dict[frozenset, Any]]:
    """⊗-join messages on their shared attribute value.

    With no messages, every value joins with the empty row of weight 1 —
    returned as a defaulting mapping handled by callers via ``.get``.
    """
    semiring = instance.semiring
    if not messages:
        return _AllValues(semiring.one)
    values = set(messages[0])
    for message in messages[1:]:
        values &= set(message)
    combined: Dict[Any, Dict[frozenset, Any]] = {}
    for value in values:
        rows: Dict[frozenset, Any] = {frozenset(): semiring.one}
        for message in messages:
            new_rows: Dict[frozenset, Any] = {}
            for extra_key, weight in rows.items():
                for other_key, other_weight in message[value].items():
                    merged = extra_key | other_key
                    total = semiring.mul(weight, other_weight)
                    if merged in new_rows:
                        new_rows[merged] = semiring.add(new_rows[merged], total)
                    else:
                        new_rows[merged] = total
            rows = new_rows
        combined[value] = rows
    return combined


class _AllValues:
    """A mapping that reports the trivial row for *every* key (leaf case)."""

    def __init__(self, one: Any) -> None:
        self._row = {frozenset(): one}

    def get(self, _key: Any, default: Any = None) -> Dict[frozenset, Any]:
        return self._row

    def items(self):  # pragma: no cover - not iterated at leaves
        raise TypeError("leaf message cannot be enumerated")


def output_size(instance: Instance) -> int:
    """OUT = |π_y Q(R)| computed exactly (oracle-side)."""
    return len(evaluate(instance))


def full_join_size(instance: Instance) -> int:
    """|Q(R)| — size of the full join (oracle-side, by backtrack counting)."""
    query = instance.query
    order = _relation_order(query)
    assignments: Dict[str, Any] = {}
    count = 0

    def backtrack(position: int) -> None:
        nonlocal count
        if position == len(order):
            count += 1
            return
        name, attrs = order[position]
        for values, _ in instance.relation(name):
            bound = dict(zip(attrs, values))
            if any(assignments.get(a, v) != v for a, v in bound.items()):
                continue
            added = [a for a in bound if a not in assignments]
            assignments.update({a: bound[a] for a in added})
            backtrack(position + 1)
            for a in added:
                del assignments[a]

    backtrack(0)
    return count
