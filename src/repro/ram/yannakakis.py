"""The (sequential) Yannakakis algorithm and its join plan (paper §1.2).

The Yannakakis algorithm removes dangling tuples with semijoins, then
repeatedly joins a leaf relation of the *join tree* into its neighbour,
projecting/aggregating down to the attributes still needed (output
attributes plus connectors to the remaining relations).

This module provides:

* :func:`yannakakis_plan` — the sequence of pairwise join steps, shared by
  the sequential executor here and the distributed baseline
  (:mod:`repro.core.yannakakis_mpc`), so both run literally the same plan;
* :func:`run_yannakakis` — sequential execution, returning the result and
  the maximum intermediate join size ``J`` (the quantity that determines the
  baseline's MPC load ``O(N/p + J/p)``);
* :func:`semijoin_reduce` — dangling-tuple removal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..data.hypergraph import join_tree_edges
from ..data.query import Instance, TreeQuery
from ..data.relation import Relation
from ..semiring import Semiring

__all__ = ["JoinStep", "yannakakis_plan", "run_yannakakis", "semijoin_reduce"]


@dataclass(frozen=True)
class JoinStep:
    """Merge relation ``leaf`` into ``host``, keeping ``keep`` attributes.

    Semantics: ``host ← Σ_{attrs(leaf ⋈ host) − keep} (leaf ⋈ host)``.
    """

    leaf: str
    host: str
    keep: Tuple[str, ...]


def yannakakis_plan(query: TreeQuery) -> List[JoinStep]:
    """The bottom-up pairwise join-aggregate plan for ``query``.

    Builds an explicit join tree (see
    :func:`repro.data.hypergraph.join_tree_edges`) and repeatedly folds a
    leaf into its join-tree neighbour.  Kept attributes = (union of both
    schemas) ∩ (output ∪ attributes of untouched relations).
    """
    nodes: Dict[str, Set[str]] = {name: set(attrs) for name, attrs in query.relations}
    adjacency: Dict[str, Set[str]] = {name: set() for name in nodes}
    for name_a, name_b, _shared in join_tree_edges(query.relations):
        adjacency[name_a].add(name_b)
        adjacency[name_b].add(name_a)
    output = set(query.output)
    steps: List[JoinStep] = []

    while len(nodes) > 1:
        leaf_name = min(name for name in nodes if len(adjacency[name]) == 1)
        (host_name,) = adjacency[leaf_name]
        merged_attrs = nodes[leaf_name] | nodes[host_name]
        others: Set[str] = set()
        for name, attrs in nodes.items():
            if name not in (leaf_name, host_name):
                others |= attrs
        keep = tuple(sorted(merged_attrs & (output | others)))
        steps.append(JoinStep(leaf_name, host_name, keep))
        nodes[host_name] = set(keep)
        del nodes[leaf_name]
        adjacency[host_name].discard(leaf_name)
        del adjacency[leaf_name]
    return steps


# -- sequential execution -------------------------------------------------------


def semijoin_reduce(instance: Instance) -> Dict[str, Relation]:
    """Remove dangling tuples: leaf-to-root then root-to-leaf semijoin passes.

    Returns new relations; the input instance is left untouched.
    """
    query = instance.query
    relations: Dict[str, Relation] = {
        name: Relation(name, rel.schema, list(rel)) for name, rel in instance.relations.items()
    }
    plan = yannakakis_plan(query)
    # Bottom-up: semijoin host by leaf along the plan order.
    order: List[Tuple[str, str]] = [(step.leaf, step.host) for step in plan]
    for leaf, host in order:
        _semijoin_in_place(relations[host], relations[leaf])
    # Top-down: reverse order, semijoin leaf by host.
    for leaf, host in reversed(order):
        _semijoin_in_place(relations[leaf], relations[host])
    return relations


def _semijoin_in_place(target: Relation, source: Relation) -> None:
    shared = tuple(sorted(set(target.schema) & set(source.schema)))
    if not shared:
        return
    source_keys = source.project_keys(shared)
    indices = [target.attr_index(a) for a in shared]
    target.tuples = {
        values: weight
        for values, weight in target.tuples.items()
        if tuple(values[i] for i in indices) in source_keys
    }


def run_yannakakis(instance: Instance) -> Tuple[Relation, int]:
    """Execute the sequential Yannakakis algorithm.

    Returns ``(result, J)`` where ``J`` is the maximum intermediate join size
    encountered (paper §1.2: the baseline's complexity driver).
    """
    query = instance.query
    semiring = instance.semiring
    relations = semijoin_reduce(instance)
    max_intermediate = 0

    for step in yannakakis_plan(query):
        leaf = relations.pop(step.leaf)
        host = relations[step.host]
        joined, join_size = _join_aggregate(leaf, host, step.keep, semiring)
        max_intermediate = max(max_intermediate, join_size)
        relations[step.host] = joined

    (final,) = relations.values()
    schema = tuple(sorted(query.output))
    result = Relation("yannakakis", schema)
    for values, weight in final:
        key = tuple(values[final.attr_index(a)] for a in schema)
        result.add(key, weight, semiring)
    return result, max_intermediate


def _join_aggregate(
    left: Relation, right: Relation, keep: Sequence[str], semiring: Semiring
) -> Tuple[Relation, int]:
    """``Σ_{−keep} (left ⋈ right)`` plus the intermediate join cardinality."""
    shared = tuple(sorted(set(left.schema) & set(right.schema)))
    index: Dict[Tuple, List[Tuple[Tuple, object]]] = {}
    left_shared = [left.attr_index(a) for a in shared]
    for values, weight in left:
        key = tuple(values[i] for i in left_shared)
        index.setdefault(key, []).append((values, weight))

    right_shared = [right.attr_index(a) for a in shared]
    out_schema = tuple(keep)
    result = Relation(f"{left.name}⋈{right.name}", out_schema)
    join_size = 0
    for r_values, r_weight in right:
        key = tuple(r_values[i] for i in right_shared)
        for l_values, l_weight in index.get(key, ()):
            join_size += 1
            bound = dict(zip(left.schema, l_values))
            bound.update(zip(right.schema, r_values))
            out_key = tuple(bound[a] for a in out_schema)
            result.add(out_key, semiring.mul(l_weight, r_weight), semiring)
    return result, join_size
