"""Provenance semirings (Green, Karvounarakis & Tannen, PODS 2007).

The paper cites annotated relations [11, 15]; provenance semirings are the
canonical non-numeric instantiation.  We provide:

* :data:`WHY_PROVENANCE` — sets of sets of tuple identifiers ("witness
  bases"): ⊕ is union, ⊗ is pairwise union of witnesses.  Idempotent.
* :data:`LINEAGE` — flat sets of tuple identifiers: ⊕ and ⊗ are both union.
  Idempotent; the coarsest informative provenance.
* :func:`polynomial_semiring` — provenance polynomials ℕ[X] represented as
  monomial→coefficient mappings; the most general (universal) provenance.

These semirings stress algorithms differently from numeric ones: elements
grow structurally, ⊗ is not cheap, and nothing cancels.
"""

from __future__ import annotations

from typing import FrozenSet, Mapping, Tuple

from .base import Semiring

__all__ = ["LINEAGE", "WHY_PROVENANCE", "polynomial_semiring", "POLYNOMIAL", "monomial"]


def _lineage_add(a: FrozenSet, b: FrozenSet) -> FrozenSet:
    return a | b


LINEAGE = Semiring(
    name="lineage",
    zero=frozenset(),
    one=frozenset(),
    add=_lineage_add,
    mul=_lineage_add,
    idempotent_add=True,
    normalize=frozenset,
)
# Note: lineage has zero == one; it is a degenerate (but legal) semiring in
# which "absent" and "present with empty support" coincide.  Tests that rely
# on distinguishing zero from one skip it.


def _why_add(a: FrozenSet[FrozenSet], b: FrozenSet[FrozenSet]) -> FrozenSet[FrozenSet]:
    return a | b


def _why_mul(a: FrozenSet[FrozenSet], b: FrozenSet[FrozenSet]) -> FrozenSet[FrozenSet]:
    return frozenset(wa | wb for wa in a for wb in b)


WHY_PROVENANCE = Semiring(
    name="why-provenance",
    zero=frozenset(),
    one=frozenset({frozenset()}),
    add=_why_add,
    mul=_why_mul,
    idempotent_add=True,
    normalize=frozenset,
)


# -- provenance polynomials ℕ[X] ---------------------------------------------

#: A monomial is a sorted tuple of (variable, exponent) pairs.
Monomial = Tuple[Tuple[str, int], ...]
#: A polynomial maps monomials to positive integer coefficients.
Polynomial = Mapping[Monomial, int]


def monomial(*variables: str) -> "frozenset":
    """Build the polynomial ``x1·x2·…`` as a canonical element of ℕ[X]."""
    exponents: dict[str, int] = {}
    for variable in variables:
        exponents[variable] = exponents.get(variable, 0) + 1
    mono: Monomial = tuple(sorted(exponents.items()))
    return _poly_normalize({mono: 1})


def _poly_normalize(poly) -> "frozenset":
    items = tuple(sorted((m, c) for m, c in dict(poly).items() if c))
    return frozenset(items)


def _poly_add(a, b):
    out: dict[Monomial, int] = dict(a)
    for mono, coeff in b:
        out[mono] = out.get(mono, 0) + coeff
    return _poly_normalize(out)


def _poly_mul(a, b):
    out: dict[Monomial, int] = {}
    for mono_a, coeff_a in a:
        for mono_b, coeff_b in b:
            exponents: dict[str, int] = dict(mono_a)
            for variable, exponent in mono_b:
                exponents[variable] = exponents.get(variable, 0) + exponent
            mono = tuple(sorted(exponents.items()))
            out[mono] = out.get(mono, 0) + coeff_a * coeff_b
    return _poly_normalize(out)


def polynomial_semiring() -> Semiring:
    """ℕ[X], the universal provenance semiring.

    Elements are frozensets of ``(monomial, coefficient)`` pairs (a hashable
    canonical form of the polynomial).  ``zero`` is the empty polynomial and
    ``one`` is the constant 1.
    """
    return Semiring(
        name="polynomial-provenance",
        zero=_poly_normalize({}),
        one=_poly_normalize({(): 1}),
        add=_poly_add,
        mul=_poly_mul,
        normalize=lambda value: value,
    )


#: Shared ready-made instance of ℕ[X].
POLYNOMIAL = polynomial_semiring()
