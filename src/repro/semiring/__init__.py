"""Commutative semirings for annotated relations (paper §1.1)."""

from .base import Semiring, SemiringError
from .provenance import LINEAGE, POLYNOMIAL, WHY_PROVENANCE, monomial, polynomial_semiring
from .standard import (
    BOOLEAN,
    top_k_smallest,
    COUNTING,
    IDEMPOTENT_SEMIRINGS,
    MAX_MIN,
    MAX_TIMES,
    REAL,
    STANDARD_SEMIRINGS,
    TROPICAL_MAX_PLUS,
    TROPICAL_MIN_PLUS,
)

__all__ = [
    "Semiring",
    "SemiringError",
    "COUNTING",
    "REAL",
    "BOOLEAN",
    "TROPICAL_MIN_PLUS",
    "TROPICAL_MAX_PLUS",
    "MAX_MIN",
    "MAX_TIMES",
    "top_k_smallest",
    "STANDARD_SEMIRINGS",
    "IDEMPOTENT_SEMIRINGS",
    "LINEAGE",
    "WHY_PROVENANCE",
    "POLYNOMIAL",
    "monomial",
    "polynomial_semiring",
]
