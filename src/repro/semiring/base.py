"""Commutative semiring abstraction.

The paper computes join-aggregate queries over an arbitrary commutative
semiring ``(R, ⊕, ⊗)``: tuples carry annotations in ``R``, the annotation of
a join result is the ⊗-product of the annotations of its constituent tuples,
and output groups are ⊕-aggregated.  Nothing in the algorithms may assume
additive inverses (no subtraction), and the lower bounds additionally hold
for *idempotent* semirings (``a ⊕ a = a``).

Every algorithm in :mod:`repro` manipulates annotations exclusively through a
:class:`Semiring` instance, which makes the semiring-model discipline
("new elements arise only by adding/multiplying existing ones") auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional

__all__ = ["Semiring", "SemiringError"]


class SemiringError(ValueError):
    """Raised when semiring axioms are violated or elements are malformed."""


@dataclass(frozen=True)
class Semiring:
    """A commutative semiring ``(R, add, mul, zero, one)``.

    Parameters
    ----------
    name:
        Human-readable identifier, used in reprs and error messages.
    zero:
        Additive identity; also the annotation of "absent" tuples.
        Must be absorbing for ``mul`` (``a ⊗ 0 = 0``).
    one:
        Multiplicative identity.
    add / mul:
        Binary operators implementing ⊕ and ⊗.  Both must be commutative
        and associative, and ``mul`` must distribute over ``add``.
    idempotent_add:
        True when ``a ⊕ a = a`` for all elements (e.g. boolean, tropical).
        The paper's lower bounds are stated for this subclass; some tests
        key off it.
    normalize:
        Optional canonicalization applied to every produced element (e.g.
        ``frozenset`` for provenance sets).  Defaults to identity.
    negate:
        Additive inverse (``a ⊕ negate(a) = 0``) when the structure is in
        fact a ring.  ``None`` — the default, and the paper's model, which
        forbids subtraction — means deletions cannot be maintained
        incrementally (:mod:`repro.ivm` raises ``UnsupportedDeltaError``).
    """

    name: str
    zero: Any
    one: Any
    add: Callable[[Any, Any], Any]
    mul: Callable[[Any, Any], Any]
    idempotent_add: bool = False
    normalize: Callable[[Any], Any] = field(default=lambda value: value)
    negate: Optional[Callable[[Any], Any]] = None

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Semiring({self.name})"

    # -- aggregation helpers -------------------------------------------------

    def sum(self, values: Iterable[Any]) -> Any:
        """⊕-fold of ``values`` (``zero`` when empty)."""
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return self.normalize(total)

    def product(self, values: Iterable[Any]) -> Any:
        """⊗-fold of ``values`` (``one`` when empty)."""
        total = self.one
        for value in values:
            total = self.mul(total, value)
        return self.normalize(total)

    def is_zero(self, value: Any) -> bool:
        """Whether ``value`` equals the additive identity."""
        return value == self.zero

    # -- axiom spot-checks (used by tests and by validating constructors) ----

    def check_axioms(self, sample: Iterable[Any]) -> None:
        """Verify the semiring axioms on a finite ``sample`` of elements.

        Raises :class:`SemiringError` on the first violated identity.  This
        is a *spot check*, not a proof; property tests drive it with many
        random samples.
        """
        elements = [self.normalize(value) for value in sample]
        elements.extend([self.zero, self.one])
        add, mul = self.add, self.mul
        for a in elements:
            if add(a, self.zero) != a:
                raise SemiringError(f"{self.name}: 0 is not additive identity for {a!r}")
            if mul(a, self.one) != a:
                raise SemiringError(f"{self.name}: 1 is not multiplicative identity for {a!r}")
            if mul(a, self.zero) != self.zero:
                raise SemiringError(f"{self.name}: 0 is not absorbing for {a!r}")
            if self.idempotent_add and add(a, a) != a:
                raise SemiringError(f"{self.name}: ⊕ not idempotent on {a!r}")
        for a in elements:
            for b in elements:
                if add(a, b) != add(b, a):
                    raise SemiringError(f"{self.name}: ⊕ not commutative on {a!r}, {b!r}")
                if mul(a, b) != mul(b, a):
                    raise SemiringError(f"{self.name}: ⊗ not commutative on {a!r}, {b!r}")
        for a in elements:
            for b in elements:
                for c in elements:
                    if add(add(a, b), c) != add(a, add(b, c)):
                        raise SemiringError(f"{self.name}: ⊕ not associative")
                    if mul(mul(a, b), c) != mul(a, mul(b, c)):
                        raise SemiringError(f"{self.name}: ⊗ not associative")
                    if mul(a, add(b, c)) != add(mul(a, b), mul(a, c)):
                        raise SemiringError(f"{self.name}: ⊗ does not distribute over ⊕")
