"""Standard semirings used throughout the reproduction.

The paper's running examples are COUNT(*)-style aggregation (ℕ, +, ×) and
idempotent semirings for the lower bounds (boolean, tropical).  We also ship
numeric, min/max, and bounded variants so tests can exercise algorithms over
semirings with very different algebraic behaviour (idempotency, absence of
inverses, non-cancellativity).
"""

from __future__ import annotations

import math
import operator

from .base import Semiring

__all__ = [
    "COUNTING",
    "REAL",
    "BOOLEAN",
    "TROPICAL_MIN_PLUS",
    "TROPICAL_MAX_PLUS",
    "MAX_MIN",
    "MAX_TIMES",
    "top_k_smallest",
    "STANDARD_SEMIRINGS",
    "IDEMPOTENT_SEMIRINGS",
]

#: Natural numbers under (+, ×): COUNT / SUM aggregation.  With all
#: annotations set to 1 a join-aggregate query computes COUNT(*) GROUP BY y.
#: Actually lives inside the ring ℤ, so deltas with deletions are invertible.
COUNTING = Semiring(
    name="counting",
    zero=0,
    one=1,
    add=operator.add,
    mul=operator.mul,
    negate=operator.neg,
)

#: Reals under (+, ×): numeric sparse matrix multiplication.  A ring, so
#: deltas with deletions are invertible.
REAL = Semiring(
    name="real",
    zero=0.0,
    one=1.0,
    add=operator.add,
    mul=operator.mul,
    negate=operator.neg,
)

#: Booleans under (∨, ∧): join-project / reachability.  Idempotent.
BOOLEAN = Semiring(
    name="boolean",
    zero=False,
    one=True,
    add=operator.or_,
    mul=operator.and_,
    idempotent_add=True,
)

#: (min, +) over ℝ ∪ {∞}: shortest paths.  Idempotent.
TROPICAL_MIN_PLUS = Semiring(
    name="tropical-min-plus",
    zero=math.inf,
    one=0.0,
    add=min,
    mul=operator.add,
    idempotent_add=True,
)

#: (max, +) over ℝ ∪ {−∞}: longest/critical paths.  Idempotent.
TROPICAL_MAX_PLUS = Semiring(
    name="tropical-max-plus",
    zero=-math.inf,
    one=0.0,
    add=max,
    mul=operator.add,
    idempotent_add=True,
)

#: (max, min) over [0, ∞]: bottleneck capacity / fuzzy joins.  Idempotent.
MAX_MIN = Semiring(
    name="max-min",
    zero=0.0,
    one=math.inf,
    add=max,
    mul=min,
    idempotent_add=True,
)

#: (max, ×) over nonnegative reals: most-probable derivation (Viterbi).
MAX_TIMES = Semiring(
    name="max-times",
    zero=0.0,
    one=1.0,
    add=max,
    mul=operator.mul,
    idempotent_add=True,
)

#: All ready-made semirings, for parameterized tests.
STANDARD_SEMIRINGS = (
    COUNTING,
    REAL,
    BOOLEAN,
    TROPICAL_MIN_PLUS,
    TROPICAL_MAX_PLUS,
    MAX_MIN,
    MAX_TIMES,
)

#: The idempotent subset (the class the paper's lower bounds target).
IDEMPOTENT_SEMIRINGS = tuple(s for s in STANDARD_SEMIRINGS if s.idempotent_add)


def top_k_smallest(k: int) -> Semiring:
    """The k-shortest-paths semiring.

    Elements are sorted tuples of ≤ k path costs; ⊕ merges two cost lists
    keeping the k smallest, ⊗ forms all pairwise sums and keeps the k
    smallest.  With k = 1 this degenerates to (min, +); for k ≥ 2 it is
    *not* idempotent (two routes of equal cost are distinct), a useful
    stress case precisely because duplicates are observable.

    Use ``(cost,)`` as the annotation of a base tuple.
    """
    if k < 1:
        raise ValueError("top_k_smallest needs k ≥ 1")

    def add(a, b):
        return tuple(sorted(a + b)[:k])

    def mul(a, b):
        return tuple(sorted(x + y for x in a for y in b)[:k])

    return Semiring(
        name=f"top-{k}-smallest",
        zero=(),
        one=(0.0,),
        add=add,
        mul=mul,
        idempotent_add=False,  # (1,) ⊕ (1,) = (1, 1) for k ≥ 2
        normalize=lambda value: tuple(sorted(value)[:k]),
    )
