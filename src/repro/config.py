"""Execution configuration for the distributed executor.

:class:`ExecutionConfig` gathers the knobs that were historically loose
keyword arguments scattered over ``run_query``/CLI call sites — server
count, algorithm choice, kernel backend, tracing, fault injection — into
one declarative object that both the :mod:`repro.api` facade and the CLI
pass around.  It is a plain frozen dataclass: construct it once, reuse it
across queries; ``make_cluster`` builds a fresh
:class:`~repro.mpc.cluster.MPCCluster` per run so meters never leak
between executions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Optional

from .backends.dispatch import BACKENDS, resolve_backend
from .errors import ConfigError
from .mpc.cluster import MPCCluster

__all__ = ["ExecutionConfig"]


@dataclass(frozen=True)
class ExecutionConfig:
    """Everything an execution needs besides the instance itself.

    ``backend`` is one of ``"pytuple"`` (portable reference kernels,
    default), ``"numpy"`` (vectorized columnar kernels, identical results
    and meters), ``"columnar"`` (end-to-end array execution: relations
    load as code columns and exchanges ship batches — still identical
    results and meters), or ``"auto"`` (numpy when available and the
    instance is large enough to amortize encoding).  ``fault_schedule``
    (a :class:`~repro.mpc.faults.FaultSchedule`) forces the pytuple
    kernels for the faulted run — recovery replays inboxes
    item-at-a-time.
    """

    p: int = 8
    algorithm: str = "auto"
    backend: Optional[str] = None
    seed: int = 0
    tracer: Optional[Any] = None
    fault_schedule: Optional[Any] = None
    validate: bool = False
    #: Optional :class:`~repro.obs.profile.Profiler` recording wall-clock
    #: spans (phases, cluster ops, kernels, executor steps) of every run
    #: made under this config.  ``None`` (the default) keeps hot paths at
    #: a single ``None`` check; answers, CostReports, and traces are
    #: bit-identical either way.
    profiler: Optional[Any] = None
    #: How ``algorithm="cost"`` collects its planner statistics:
    #: ``"offline"`` (free ANALYZE-style scan) or ``"in-model"`` (collected
    #: on the cluster with metered load, charged to the run's report).
    stats_mode: str = "offline"
    #: OS worker processes for the ``"process"`` execution mode.  ``1``
    #: (the default) is fully sequential; ``workers > 1`` lets the
    #: data-parallel kernels (vectorized local joins, batch splits)
    #: dispatch in deterministic chunks to a persistent spawn-based pool
    #: (:mod:`repro.mpc.pool`).  Answers, CostReports, and traces are
    #: bit-identical at any worker count; faults, profiling, and
    #: profile-less semirings silently fall back to sequential execution.
    workers: int = 1

    def __post_init__(self) -> None:
        """Eager validation: a bad config never reaches the executor.

        Every rejected combination raises :class:`~repro.errors.ConfigError`
        (a ``ValueError`` subclass) at *construction* time — including the
        faults + process-mode pairing, which has no coherent meaning:
        recovery replays inboxes item-at-a-time, so a faulted run could
        never dispatch to the worker pool anyway.
        """
        if self.p < 1:
            raise ConfigError("ExecutionConfig needs p >= 1")
        if self.workers < 1:
            raise ConfigError("ExecutionConfig needs workers >= 1")
        if self.backend is not None and self.backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.stats_mode not in ("offline", "in-model"):
            raise ConfigError(
                f"unknown stats_mode {self.stats_mode!r}; "
                "expected 'offline' or 'in-model'"
            )
        if self.fault_schedule is not None and self.workers > 1:
            raise ConfigError(
                "fault injection and the process execution mode are "
                "mutually exclusive: recovery replays inboxes "
                "item-at-a-time on the sequential engine; use workers=1 "
                "with a fault_schedule (or drop the schedule)"
            )

    def with_backend(self, backend: Optional[str]) -> "ExecutionConfig":
        return replace(self, backend=backend)

    def make_cluster(self, total_size: Optional[int] = None) -> MPCCluster:
        """A fresh cluster honouring every knob (meters start at zero).

        ``total_size`` feeds the ``"auto"`` backend decision; pass the
        instance's total tuple count when known.
        """
        return MPCCluster(
            self.p,
            seed=self.seed,
            tracer=self.tracer,
            faults=self.fault_schedule,
            backend=resolve_backend(self.backend, total_size),
            profiler=self.profiler,
            workers=self.workers,
        )
