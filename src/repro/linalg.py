"""Semiring linear algebra on the simulated cluster.

The paper's sparse matmul is the kernel; this module builds the classic
iterated operations on top of it, all distributed:

* :func:`matrix_power` — ``R^k`` by repeated squaring (⌈log₂ k⌉ matmuls
  instead of the k−1 a length-k line query performs — the right tool once
  ``k`` is large);
* :func:`transitive_closure` — the Kleene closure ``R ∪ R² ∪ R³ ∪ …`` for
  *idempotent* semirings (reachability over boolean, all-pairs shortest
  paths over (min,+)), iterated to a fixpoint by doubling.

Both operate on square "matrices" given as binary relations whose two
columns share one value domain.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .core.matmul import sparse_matmul
from .core.two_way_join import vector_profile
from .data.relation import DistRelation, Relation
from .mpc.cluster import ClusterView, MPCCluster
from .mpc.stats import CostReport
from .primitives.reduce_by_key import reduce_by_key
from .semiring import Semiring

__all__ = ["matrix_power", "transitive_closure"]


def _as_dist(view: ClusterView, relation: Relation, schema) -> DistRelation:
    oriented = Relation(relation.name, schema, list(relation))
    return DistRelation.load(view, oriented)


def _multiply(
    left: DistRelation, right: DistRelation, semiring: Semiring, salt: int
) -> DistRelation:
    """One distributed semiring matmul with schema bookkeeping A×B → (A, C)."""
    lhs = DistRelation(("A", "B"), left.data)
    rhs = DistRelation(("B", "C"), right.data)
    product = sparse_matmul(lhs, rhs, semiring, salt=salt)
    return DistRelation(("A", "B"), product.data)  # rename C → B for chaining


def _add(
    left: DistRelation, right: DistRelation, semiring: Semiring, salt: int
) -> DistRelation:
    """Entrywise ⊕ of two matrices (a reduce-by-key union)."""
    union = left.data.concat(right.data)
    summed = reduce_by_key(
        union, lambda item: item[0], lambda item: item[1], semiring.add, salt,
        profile=vector_profile(left.view, semiring),
    )
    return DistRelation(("A", "B"), summed.map_items(lambda kv: (tuple(kv[0]), kv[1])))


def matrix_power(
    matrix: Relation,
    k: int,
    semiring: Semiring,
    p: int = 16,
    cluster: Optional[MPCCluster] = None,
) -> Tuple[Relation, CostReport]:
    """``matrix^k`` under the semiring, by repeated squaring.

    Over COUNTING this counts length-k walks; over (min,+) it is the
    cheapest k-step cost; over BOOLEAN, k-step reachability.
    """
    if k < 1:
        raise ValueError("matrix_power needs k ≥ 1")
    if len(matrix.schema) != 2:
        raise ValueError("matrix_power needs a binary relation")
    if cluster is None:
        cluster = MPCCluster(p)
    view = cluster.view()

    base = _as_dist(view, matrix, ("A", "B"))
    result: Optional[DistRelation] = None
    square = base
    salt = 0
    remaining = k
    while remaining:
        if remaining & 1:
            result = square if result is None else _multiply(
                result, square, semiring, salt
            )
            salt += 101
        remaining >>= 1
        if remaining:
            square = _multiply(square, square, semiring, salt + 53)
            salt += 101
    collected = result.collect(f"{matrix.name}^{k}", semiring)
    return Relation(f"{matrix.name}^{k}", matrix.schema, list(collected)), cluster.report()


def transitive_closure(
    matrix: Relation,
    semiring: Semiring,
    p: int = 16,
    include_identity: bool = False,
    max_doublings: int = 64,
    cluster: Optional[MPCCluster] = None,
) -> Tuple[Relation, CostReport]:
    """The Kleene closure ``R ⊕ R² ⊕ R³ ⊕ …`` for idempotent semirings.

    Uses path doubling: ``C ← C ⊕ C·C`` converges in ⌈log₂ diameter⌉
    iterations.  Raises for non-idempotent semirings, whose closure
    diverges (infinitely many walks).  ``include_identity`` ⊕-adds the
    diagonal (``a → a`` with weight 1) before closing, yielding the
    reflexive-transitive closure.
    """
    if not semiring.idempotent_add:
        raise ValueError("transitive closure needs an idempotent semiring")
    if len(matrix.schema) != 2:
        raise ValueError("transitive_closure needs a binary relation")
    if cluster is None:
        cluster = MPCCluster(p)
    view = cluster.view()

    working = Relation(matrix.name, ("A", "B"), list(matrix))
    if include_identity:
        values = working.active_domain("A") | working.active_domain("B")
        for value in values:
            working.add((value, value), semiring.one, semiring)

    closure = _as_dist(view, working, ("A", "B"))
    salt = 0
    for _ in range(max_doublings):
        squared = _multiply(closure, closure, semiring, salt)
        candidate = _add(closure, squared, semiring, salt + 7)
        salt += 23
        if _same_matrix(candidate, closure):
            closure = candidate
            break
        closure = candidate
    collected = closure.collect(f"{matrix.name}+", semiring)
    return (
        Relation(f"{matrix.name}+", matrix.schema, list(collected)),
        cluster.report(),
    )


def _same_matrix(a: DistRelation, b: DistRelation) -> bool:
    """Fixpoint check (simulation-side; a real cluster would reduce a
    change-counter, an O(1)-load operation)."""
    return dict(a.data.collect()) == dict(b.data.collect())
