"""Closed-form Table 1 / lower-bound load formulas."""

from .em import (
    em_io_cost_from_mpc,
    em_lower_bound_pagh_stockel,
    minimal_servers_for_memory,
    mpc_lower_bound_via_em,
)
from .bounds import (
    matmul_lower_bound,
    matmul_new_load,
    matmul_yannakakis_load,
    new_algorithm_load,
    yannakakis_load,
)

__all__ = [
    "yannakakis_load",
    "new_algorithm_load",
    "matmul_lower_bound",
    "matmul_new_load",
    "matmul_yannakakis_load",
    "em_io_cost_from_mpc",
    "em_lower_bound_pagh_stockel",
    "minimal_servers_for_memory",
    "mpc_lower_bound_via_em",
]
