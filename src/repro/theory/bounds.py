"""Closed-form load bounds of Table 1 (both columns) and the §3.3 lower
bounds.

These are the *shapes* the benchmarks compare measured loads against.  All
functions return "expected load in tuples" without hidden constants — the
benchmark harness fits/compares ratios, never absolute equality.
"""

from __future__ import annotations

import math

__all__ = [
    "yannakakis_load",
    "new_algorithm_load",
    "matmul_lower_bound",
    "matmul_new_load",
    "matmul_yannakakis_load",
]


def matmul_yannakakis_load(n: float, out: float, p: int) -> float:
    """Baseline for matrix multiplication: O(N/p + N·√OUT/p) [2, 15]."""
    return n / p + n * math.sqrt(max(out, 1.0)) / p


def matmul_new_load(n1: float, n2: float, out: float, p: int) -> float:
    """Theorem 1: O((N1+N2)/p + min(√(N1N2)/√p, (N1N2)^{1/3}OUT^{1/3}/p^{2/3}))."""
    balanced = math.sqrt(n1 * n2 / p)
    sensitive = (n1 * n2 * max(out, 1.0)) ** (1.0 / 3.0) / p ** (2.0 / 3.0)
    return (n1 + n2) / p + min(balanced, sensitive)


def matmul_lower_bound(n1: float, n2: float, out: float, p: int) -> float:
    """Theorems 2–3: Ω((N1+N2)/p + min(√(N1N2/p), (N1N2·OUT)^{1/3}/p^{2/3}))."""
    return max(
        (n1 + n2) / p,
        min(
            math.sqrt(n1 * n2 / p),
            (n1 * n2 * max(out, 1.0)) ** (1.0 / 3.0) / p ** (2.0 / 3.0),
        ),
    )


def yannakakis_load(query_class: str, n: float, out: float, p: int, arms: int = 3) -> float:
    """First column of Table 1 (baseline loads)."""
    out = max(out, 1.0)
    if query_class in ("free-connex",):
        return (n + out) / p
    if query_class == "matmul":
        return matmul_yannakakis_load(n, out, p)
    if query_class == "star":
        return n / p + n * out ** (1.0 - 1.0 / arms) / p
    if query_class in ("line", "tree", "twig", "star-like"):
        return n / p + n * out / p
    raise ValueError(f"unknown query class {query_class!r}")


def new_algorithm_load(query_class: str, n: float, out: float, p: int, arms: int = 3) -> float:
    """Second column of Table 1 (this paper's loads)."""
    out = max(out, 1.0)
    if query_class == "free-connex":
        return (n + out) / p
    if query_class == "matmul":
        return matmul_new_load(n, n, out, p)
    if query_class in ("star", "line", "star-like"):
        return (
            (n * out / p) ** (2.0 / 3.0)
            + n * math.sqrt(out) / p
            + (n + out) / p
        )
    if query_class in ("tree", "twig"):
        return n * out ** (2.0 / 3.0) / p + (n + out) / p
    raise ValueError(f"unknown query class {query_class!r}")
