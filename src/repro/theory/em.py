"""The MPC-to-external-memory reduction (paper §3.3, Remark; [17, 21]).

The paper closes §3.3 by relating its MPC bounds to the external-memory
(EM) model: an MPC algorithm running in ``r`` rounds with load
``L(N, OUT, p)`` converts to an EM algorithm incurring
``O(N/B + r·p*·M/B)`` I/Os, where ``p* = min{p : L(N, OUT, p) ≤ M/r}``;
and conversely Pagh–Stöckel's EM lower bound implies (with M = Θ(B)) the
constant-round MPC bound ``Ω(min((N/p)^{2/3}·OUT^{1/3}, N/√p))``.

This module provides those translations as checkable formulas, so the
remark — like Table 1 — is reproducible rather than prose.
"""

from __future__ import annotations

import math
from typing import Callable

__all__ = [
    "em_io_cost_from_mpc",
    "minimal_servers_for_memory",
    "em_lower_bound_pagh_stockel",
    "mpc_lower_bound_via_em",
]


def minimal_servers_for_memory(
    load_fn: Callable[[int], float], memory: float, rounds: int, p_max: int = 1 << 20
) -> int:
    """``p* = min{p : L(p) ≤ M/r}`` — the fewest servers whose load fits in
    memory per round.  ``load_fn`` maps p to the algorithm's load; raises if
    even ``p_max`` servers cannot fit (M too small)."""
    budget = memory / rounds
    p = 1
    while p <= p_max:
        if load_fn(p) <= budget:
            return p
        p *= 2
    raise ValueError("no server count satisfies the memory budget")


def em_io_cost_from_mpc(
    n: float, rounds: int, p_star: int, memory: float, block: float
) -> float:
    """[17]: the I/O cost of the simulated EM algorithm,
    ``O(N/B + r·p*·M/B)``."""
    return n / block + rounds * p_star * memory / block


def em_lower_bound_pagh_stockel(
    n: float, out: float, memory: float, block: float
) -> float:
    """[21]: sparse matmul needs ``Ω(min(N/B·√(OUT/M), N²/(M·B)))`` I/Os in
    the semiring EM model (N1 = N2 = N)."""
    return min(
        (n / block) * math.sqrt(max(out, 1.0) / memory),
        n * n / (memory * block),
    )


def mpc_lower_bound_via_em(n: float, out: float, p: int) -> float:
    """The MPC load bound implied by the EM bound at M = Θ(B):
    ``Ω(min((N/p)^{2/3}·OUT^{1/3}, N/√p))`` (§3.3 Remark).

    Weaker than Theorem 3's direct bound for unequal N1, N2 and off by
    polylog factors — which is exactly the paper's point for proving
    Theorem 3 natively in MPC.
    """
    return min(
        (n / p) ** (2.0 / 3.0) * max(out, 1.0) ** (1.0 / 3.0),
        n / math.sqrt(p),
    )
