"""Array-native distributed datasets (the ``"columnar"`` backend).

A :class:`ColumnarData` is a :class:`~repro.mpc.distributed.Distributed`
whose physical payload is one :class:`~repro.backends.batch.ColumnarBatch`
per server instead of a Python list per server.  Primitives that understand
batches move them through
:meth:`~repro.mpc.cluster.ClusterView.exchange_batches` without touching a
Python object per row; everything else transparently *decays* to the
reference item representation through the lazily-decoded :attr:`parts`
property and proceeds on the tuple path — with identical routing, and
therefore identical meters and traces, either way.

``total_size``/``part_sizes`` read array lengths directly, so the logical
tuple counts the load meter and the algorithms' statistics consume never
require a decode.

Because the payload is already numpy arrays, this is also the
representation the ``"process"`` execution mode parallelizes:
``exchange_batches`` hands large destination splits — and the columnar
local join its chunked reduce waves — to the OS worker pool of
:mod:`repro.mpc.pool` when :func:`repro.backends.dispatch.process_enabled`
says the run qualifies.  The handoff is invisible here by design: batches,
routing, meters, and traces are bit-identical whether a wave ran in the
parent or across workers.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

from ..backends.batch import ColumnarBatch
from ..backends.dispatch import np
from .cluster import ClusterView
from .distributed import Distributed
from .errors import RoutingError

__all__ = ["ColumnarData", "columnar_parts"]


class ColumnarData(Distributed):
    """Items spread across servers, physically stored as array batches.

    ``batches[i]`` holds local server ``i``'s rows; ``codec`` is the
    cluster's shared :class:`~repro.backends.columnar.ValueCodec` used to
    decode on demand.  The decoded item lists are memoized: decoding
    happens at most once, only when some consumer actually needs tuples.
    """

    def __init__(
        self, view: ClusterView, batches: Sequence[ColumnarBatch], codec: Any
    ) -> None:
        if len(batches) != view.p:
            raise RoutingError(f"expected {view.p} parts, got {len(batches)}")
        self.view = view
        self.batches: List[ColumnarBatch] = list(batches)
        self.codec = codec
        self._decoded: Optional[List[List[Any]]] = None

    # -- lazy decode (the "convert at the edge" boundary) ----------------------

    @property
    def parts(self) -> List[List[Any]]:  # type: ignore[override]
        """Item lists, decoded from the batches on first access."""
        if self._decoded is None:
            codec = self.codec
            self._decoded = [batch.to_items(codec) for batch in self.batches]
        return self._decoded

    # -- array-backed inspection (no decode) -----------------------------------

    @property
    def total_size(self) -> int:
        return sum(batch.size for batch in self.batches)

    def part_sizes(self) -> List[int]:
        return [batch.size for batch in self.batches]

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_batch(
        cls, view: ClusterView, batch: ColumnarBatch, codec: Any
    ) -> "ColumnarData":
        """Place one whole-dataset batch contiguously, ⌈n/p⌉ rows per
        server — the same free round-0 placement as ``from_items``."""
        p = view.p
        size = batch.size
        chunk = (size + p - 1) // p if size else 0
        return cls(
            view,
            [batch.slice(i * chunk, (i + 1) * chunk) if chunk else
             batch.slice(0, 0) for i in range(p)],
            codec,
        )

    # -- batch-native transformations ------------------------------------------

    def map_batches(self, fn) -> "ColumnarData":
        """Apply a local per-server batch transformation; no communication."""
        return ColumnarData(self.view, [fn(b) for b in self.batches], self.codec)

    def repartition_batches(self, dests: Sequence[Any]) -> "ColumnarData":
        """Send row ``i`` of each batch to ``dests[...][i]``; one round,
        delivered and metered identically to item ``repartition``."""
        inboxes = self.view.exchange_batches(dests, self.batches)
        return ColumnarData(self.view, inboxes, self.codec)

    def concat(self, other: Distributed) -> Distributed:
        if (
            isinstance(other, ColumnarData)
            and other.view is self.view
            and other.batches
            and self.batches
            and other.batches[0].kind == self.batches[0].kind
            and len(other.batches[0].columns) == len(self.batches[0].columns)
            and (other.batches[0].annotations is None)
            == (self.batches[0].annotations is None)
        ):
            return ColumnarData(
                self.view,
                [ColumnarBatch.concat([a, b])
                 for a, b in zip(self.batches, other.batches)],
                self.codec,
            )
        return super().concat(other)

    def rebalance(self) -> Distributed:
        """Array form of contiguous re-chunking: identical destinations
        (global row order, ⌈n/p⌉ chunks), shipped as batches."""
        total = self.total_size
        p = self.view.p
        chunk = (total + p - 1) // p if total else 1
        dests: List[Any] = []
        offset = 0
        for batch in self.batches:
            positions = np.arange(offset, offset + batch.size, dtype=np.int64)
            dests.append(np.minimum(positions // chunk, p - 1))
            offset += batch.size
        return self.repartition_batches(dests)


def columnar_parts(dist: Distributed) -> Optional[List[ColumnarBatch]]:
    """The undecoded batches of ``dist`` when it is array-native, else None.

    The gate primitives use to decide whether a batch fast path applies
    without forcing a decode.
    """
    if isinstance(dist, ColumnarData):
        return dist.batches
    return None
