"""Deterministic keyed hashing for partitioning and sketches.

Python's builtin ``hash`` is randomized per process (PYTHONHASHSEED), which
would make simulated runs non-reproducible.  All MPC partitioning and all KMV
sketches therefore use a keyed blake2b over a canonical byte encoding.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, List, Sequence

__all__ = [
    "stable_hash",
    "stable_hash_many",
    "encode_key",
    "stable_hash_encoded",
    "hash_to_unit",
    "hash_to_bucket",
]

_MASK64 = (1 << 64) - 1


def _encode(value: Any) -> bytes:
    """Canonical byte encoding of values used as keys (ints, floats, strings,
    bytes, bools, None, and nested tuples thereof)."""
    if isinstance(value, bool):
        return b"b" + (b"\x01" if value else b"\x00")
    if isinstance(value, int):
        return b"i" + value.to_bytes((value.bit_length() + 8) // 8 + 1, "big", signed=True)
    if isinstance(value, float):
        return b"f" + struct.pack(">d", value)
    if isinstance(value, str):
        return b"s" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"y" + value
    if value is None:
        return b"n"
    if isinstance(value, tuple):
        parts = [b"t", len(value).to_bytes(4, "big")]
        for element in value:
            encoded = _encode(element)
            parts.append(len(encoded).to_bytes(4, "big"))
            parts.append(encoded)
        return b"".join(parts)
    if isinstance(value, frozenset):
        encoded_elements = sorted(_encode(element) for element in value)
        parts = [b"F", len(encoded_elements).to_bytes(4, "big")]
        for encoded in encoded_elements:
            parts.append(len(encoded).to_bytes(4, "big"))
            parts.append(encoded)
        return b"".join(parts)
    raise TypeError(f"unhashable key type for stable_hash: {type(value)!r}")


def stable_hash(value: Any, salt: int = 0) -> int:
    """A 64-bit deterministic hash of ``value`` under a ``salt`` (hash-function
    index).  Different salts behave as independent hash functions."""
    digest = hashlib.blake2b(
        _encode(value), digest_size=8, key=salt.to_bytes(8, "big")
    ).digest()
    return int.from_bytes(digest, "big") & _MASK64


def stable_hash_many(values: Sequence[Any], salt: int = 0) -> List[int]:
    """``stable_hash`` of every value, batched.

    Identical results to the scalar function; hoisting the key bytes and
    attribute lookups out of the loop roughly halves the per-value cost,
    which matters to the columnar backend's hash caches.
    """
    key = salt.to_bytes(8, "big")
    blake2b = hashlib.blake2b
    encode = _encode
    from_bytes = int.from_bytes
    return [
        from_bytes(blake2b(encode(value), digest_size=8, key=key).digest(), "big")
        & _MASK64
        for value in values
    ]


def encode_key(value: Any) -> bytes:
    """The canonical byte encoding :func:`stable_hash` digests.

    Exposed so callers hashing the same value under many salts (the
    columnar codec's per-salt caches, KMV repetitions) can pay the
    encoding once and feed :func:`stable_hash_encoded` afterwards.
    """
    return _encode(value)


def stable_hash_encoded(encoded: Sequence[bytes], salt: int = 0) -> List[int]:
    """``stable_hash`` over pre-encoded keys (see :func:`encode_key`)."""
    key = salt.to_bytes(8, "big")
    blake2b = hashlib.blake2b
    from_bytes = int.from_bytes
    return [
        from_bytes(blake2b(raw, digest_size=8, key=key).digest(), "big") & _MASK64
        for raw in encoded
    ]


def hash_to_unit(value: Any, salt: int = 0) -> float:
    """Hash ``value`` to a float uniform in [0, 1)."""
    return stable_hash(value, salt) / float(1 << 64)


def hash_to_bucket(value: Any, buckets: int, salt: int = 0) -> int:
    """Hash ``value`` to a bucket index in ``[0, buckets)``."""
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    return stable_hash(value, salt) % buckets
