"""Distributed datasets over a :class:`~repro.mpc.cluster.ClusterView`.

A :class:`Distributed` is simply "one list of items per server of the view".
Every repartitioning physically moves items via the view's ``exchange`` and
is therefore metered.  Initial input placement (the model's round-0 state,
``N/p`` tuples per server) is free, matching §1.3.

Item-path datasets always execute in the parent process: the ``"process"``
execution mode (:mod:`repro.mpc.pool`) only parallelizes array-batch
subclasses (:class:`~repro.mpc.columnar.ColumnarData`), whose payloads can
cross a process boundary without touching a Python object per row.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Sequence, TypeVar

from .cluster import ClusterView
from .errors import RoutingError

__all__ = ["Distributed", "transfer"]

T = TypeVar("T")


class Distributed:
    """Items spread across the servers of one view."""

    def __init__(self, view: ClusterView, parts: Sequence[List[Any]]) -> None:
        if len(parts) != view.p:
            raise RoutingError(f"expected {view.p} parts, got {len(parts)}")
        self.view = view
        self.parts: List[List[Any]] = [list(part) for part in parts]

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_items(cls, view: ClusterView, items: Iterable[Any]) -> "Distributed":
        """Place ``items`` contiguously, ⌈n/p⌉ per server (free: round-0 input)."""
        data = list(items)
        p = view.p
        size = len(data)
        chunk = (size + p - 1) // p if size else 0
        parts = [data[i * chunk : (i + 1) * chunk] for i in range(p)]
        return cls(view, parts)

    @classmethod
    def empty(cls, view: ClusterView) -> "Distributed":
        return cls(view, [[] for _ in range(view.p)])

    # -- inspection --------------------------------------------------------------

    @property
    def total_size(self) -> int:
        return sum(len(part) for part in self.parts)

    def part_sizes(self) -> List[int]:
        """Per-server item counts."""
        return [len(part) for part in self.parts]

    def items(self) -> Iterable[Any]:
        """Iterate all items (simulation-side inspection, not a cluster op)."""
        for part in self.parts:
            yield from part

    def collect(self) -> List[Any]:
        """All items as one list (simulation-side inspection)."""
        return [item for part in self.parts for item in part]

    # -- local (communication-free) transformations -------------------------------

    def map_parts(self, fn: Callable[[List[Any]], List[Any]]) -> "Distributed":
        """Apply a per-server local transformation; no communication."""
        return Distributed(self.view, [fn(part) for part in self.parts])

    def map_items(self, fn: Callable[[Any], Any]) -> "Distributed":
        """Apply ``fn`` to every item in place (no communication)."""
        return self.map_parts(lambda part: [fn(item) for item in part])

    def filter_items(self, predicate: Callable[[Any], bool]) -> "Distributed":
        """Keep the items satisfying ``predicate`` (no communication)."""
        return self.map_parts(lambda part: [item for item in part if predicate(item)])

    def concat(self, other: "Distributed") -> "Distributed":
        """Union of two datasets living on the same view; no communication."""
        if other.view is not self.view and other.view.servers != self.view.servers:
            raise RoutingError("concat requires datasets on the same view")
        return Distributed(
            self.view, [a + b for a, b in zip(self.parts, other.parts)]
        )

    # -- communication -------------------------------------------------------------

    def repartition(self, dest_fn: Callable[[Any], int]) -> "Distributed":
        """Send each item to local server ``dest_fn(item)``; one round."""
        inboxes = self.view.route(self.parts, dest_fn)
        return Distributed(self.view, inboxes)

    def repartition_multi(self, dests_fn: Callable[[Any], Iterable[int]]) -> "Distributed":
        """Replicate each item to all servers in ``dests_fn(item)``; one round."""
        inboxes = self.view.route_multi(self.parts, dests_fn)
        return Distributed(self.view, inboxes)

    def broadcast(self) -> List[Any]:
        """Materialize all items on every server; returns the shared list."""
        return self.view.broadcast(self.parts)

    def gather(self, dest: int = 0) -> List[Any]:
        """Ship every item to one server (metered there); one round."""
        return self.view.gather(self.parts, dest)

    def rebalance(self) -> "Distributed":
        """Spread items evenly (contiguous re-chunking); one round."""
        total = self.total_size
        p = self.view.p
        chunk = (total + p - 1) // p if total else 1
        counter = 0
        outboxes: List[List] = []
        for part in self.parts:
            outbox = []
            for item in part:
                outbox.append((min(counter // chunk, p - 1), item))
                counter += 1
            outboxes.append(outbox)
        inboxes = self.view.exchange(outboxes)
        return Distributed(self.view, inboxes)


def transfer(
    source: Distributed,
    dest_view: ClusterView,
    dest_fn: Callable[[Any], int],
) -> Distributed:
    """Move a dataset from its view onto ``dest_view`` (possibly different
    servers of the same cluster); one round, charged at the receivers.

    The two views' cursors are synchronized to ``max(src, dst) + 1``, which is
    what a globally synchronous cluster would observe.
    """
    profiler = dest_view.tracker.profiler
    if profiler is None:
        return _transfer(source, dest_view, dest_fn)
    profiler.start("transfer", kind="op", backend=dest_view.cluster.backend)
    try:
        moved = _transfer(source, dest_view, dest_fn)
    except BaseException:
        profiler.stop()
        raise
    profiler.stop(items=moved.total_size)
    return moved


def _transfer(
    source: Distributed,
    dest_view: ClusterView,
    dest_fn: Callable[[Any], int],
) -> Distributed:
    if source.view.cluster is not dest_view.cluster:
        raise RoutingError("transfer requires views of the same cluster")
    round_index = max(source.view.round, dest_view.round)
    tracker = dest_view.tracker
    inboxes: List[List[Any]] = [[] for _ in range(dest_view.p)]
    for part in source.parts:
        for item in part:
            dest = dest_fn(item)
            if not 0 <= dest < dest_view.p:
                raise RoutingError(f"destination {dest} outside view of size {dest_view.p}")
            inboxes[dest].append(item)
    injector = dest_view.cluster.faults
    if injector is not None:
        next_round = injector.deliver(
            dest_view, round_index, tuple(len(inbox) for inbox in inboxes),
            "transfer", inboxes,
        )
        source.view.round = next_round
        dest_view.round = next_round
        return Distributed(dest_view, inboxes)
    for local_index, inbox in enumerate(inboxes):
        tracker.record_receive(round_index, dest_view.servers[local_index], len(inbox))
    tracker.note_round(round_index)
    tracer = tracker.tracer
    if tracer is not None and tracer.active:
        tracer.emit(
            "transfer",
            round_index,
            dest_view.servers,
            tuple(len(inbox) for inbox in inboxes),
            tracker.phase_path(),
        )
    source.view.round = round_index + 1
    dest_view.round = round_index + 1
    return Distributed(dest_view, inboxes)
