"""Exceptions raised by the MPC simulator."""

__all__ = [
    "MPCError",
    "RoutingError",
    "AllocationError",
    "FaultError",
    "UnrecoverableFaultError",
    "WorkerCrashError",
]


class MPCError(RuntimeError):
    """Base class for simulator failures."""


class RoutingError(MPCError):
    """A message was addressed to a server outside the executing view."""


class AllocationError(MPCError):
    """A server-allocation request could not be satisfied."""


class FaultError(MPCError):
    """Base class for injected-fault failures (see :mod:`repro.mpc.faults`).

    Carries the identifying coordinates of the fault so harnesses can
    assert *which* failure fired: ``kind`` (``crash``/``drop``/
    ``duplicate``/``straggler``), ``round`` and global ``server`` id.
    """

    def __init__(self, message: str, *, kind: str = "", round_index: int = -1,
                 server: int = -1) -> None:
        super().__init__(message)
        self.kind = kind
        self.round = round_index
        self.server = server


class UnrecoverableFaultError(FaultError):
    """An injected fault the recovery policy cannot repair.

    Raised from inside the faulted cluster operation, naming the failing
    round — the run is torn down loudly instead of silently producing a
    wrong answer.
    """


class WorkerCrashError(MPCError):
    """An OS worker of the ``"process"`` execution mode died or failed.

    Carries the identifying coordinates of the failure so harnesses can
    assert *which* dispatch fired: the ``wave`` label (one label per
    kernel-dispatch batch, e.g. ``"join-reduce:3"`` or ``"exchange:r5"``),
    the ``kernel`` name, and the pool ``worker`` index.  ``detail`` holds
    the remote traceback when the worker survived long enough to send one
    (a Python-level kernel failure); hard deaths (signal, ``os._exit``)
    leave it empty.
    """

    def __init__(self, message: str, *, wave: str = "", kernel: str = "",
                 worker: int = -1, detail: str = "") -> None:
        super().__init__(message)
        self.wave = wave
        self.kernel = kernel
        self.worker = worker
        self.detail = detail
