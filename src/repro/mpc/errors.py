"""Exceptions raised by the MPC simulator."""

__all__ = ["MPCError", "RoutingError", "AllocationError"]


class MPCError(RuntimeError):
    """Base class for simulator failures."""


class RoutingError(MPCError):
    """A message was addressed to a server outside the executing view."""


class AllocationError(MPCError):
    """A server-allocation request could not be satisfied."""
