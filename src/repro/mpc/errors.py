"""Exceptions raised by the MPC simulator.

The classes moved to :mod:`repro.errors` — the library's single typed
hierarchy rooted at :class:`~repro.errors.ReproError` — and this module
re-exports the MPC branch so the historical import paths keep working.
"""

from ..errors import (
    AllocationError,
    FaultError,
    MPCError,
    RoutingError,
    UnrecoverableFaultError,
    WorkerCrashError,
)

__all__ = [
    "MPCError",
    "RoutingError",
    "AllocationError",
    "FaultError",
    "UnrecoverableFaultError",
    "WorkerCrashError",
]
