"""Simulated MPC cluster (paper §1.3).

``MPCCluster`` hosts ``p`` logical servers.  Algorithms act through a
:class:`ClusterView` — an ordered subset of servers with a round cursor —
so that the paper's "allocate ``p_i`` servers to subquery ``i``" steps map
directly onto code (``view.run_parallel``).  All data movement goes through
:meth:`ClusterView.exchange`, which physically delivers items and charges the
:class:`~repro.mpc.stats.LoadTracker` at the receiving servers, making the
measured load the paper's ``L`` by construction.

Round semantics: each view carries a cursor; ``exchange`` consumes one round.
``run_parallel`` executes branch tasks on disjoint sub-views starting at the
same base round and advances the parent cursor by the *maximum* branch depth,
which is exactly what a real synchronous cluster running the branches side by
side would do.  When the requested server counts exceed ``p``, branches are
packed into sequential waves (a real cluster would do the same); the paper's
allocation lemmas guarantee O(1) waves for its algorithms.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple

from .errors import AllocationError, RoutingError
from .stats import CostReport, LoadTracker

__all__ = ["MPCCluster", "ClusterView"]


class MPCCluster:
    """A simulated cluster of ``p`` interconnected servers.

    ``tracer`` (a :class:`repro.obs.events.Tracer`, optional) turns on the
    structured event stream: every exchange/broadcast/gather/transfer and
    every ``run_parallel`` wave emits one event.  Without it, operations pay
    only a ``None`` check — the metered load ``L`` is identical either way.

    ``faults`` (a :class:`~repro.mpc.faults.FaultSchedule` or pre-built
    :class:`~repro.mpc.faults.FaultInjector`, optional) enables
    deterministic fault injection with checkpoint/replay recovery; without
    it (the default) every delivering operation pays a single ``None``
    check and all meters are bit-identical to a fault-free build.

    ``backend`` (``"pytuple"``, ``"numpy"``, or ``"columnar"``, default
    ``"pytuple"``) selects the kernel implementation the primitives use
    for their local work; ``"columnar"`` additionally ships encoded
    arrays through ``exchange_batches`` instead of item lists.  No choice
    changes what is delivered or metered (see :mod:`repro.backends`).
    ``cluster.codec`` is the backend's shared value codec, created lazily
    on first use.

    ``profiler`` (a :class:`~repro.obs.profile.Profiler`, optional) turns
    on wall-clock span profiling: every delivering operation and
    ``run_parallel`` wave records its elapsed time and items moved.  With
    none attached (the default), operations pay a single ``None`` check
    and results/meters/traces are bit-identical to an unprofiled run.

    ``workers`` (default 1) turns on the ``"process"`` execution mode:
    with ``workers > 1`` the data-parallel kernels — vectorized local
    join-aggregates and ``exchange_batches`` destination splits — may
    dispatch in deterministic chunks to a persistent OS worker pool
    (:mod:`repro.mpc.pool`).  All routing, codec interning, metering, and
    tracing stay in this (parent) process, so answers, CostReports, and
    trace streams are bit-identical to ``workers=1``; faults, profiling,
    and profile-less semirings fall back to sequential execution
    (:func:`~repro.backends.dispatch.process_enabled`).
    """

    def __init__(self, p: int, seed: int = 0, tracer: Optional[Any] = None,
                 faults: Optional[Any] = None, backend: str = "pytuple",
                 profiler: Optional[Any] = None, workers: int = 1) -> None:
        if p < 1:
            raise ValueError("cluster needs at least one server")
        if workers < 1:
            raise ValueError("cluster needs at least one worker")
        self.p = p
        self.seed = seed
        self.backend = backend
        self.workers = workers
        self._codec: Optional[Any] = None
        self.tracker = LoadTracker(tracer=tracer, profiler=profiler)
        if faults is None:
            self.faults = None
        else:
            from .faults import as_injector

            self.faults = as_injector(faults)

    @property
    def pool(self) -> Optional[Any]:
        """The shared :class:`~repro.mpc.pool.WorkerPool` this cluster's
        kernels dispatch to, or ``None`` in sequential mode.  Pools are
        borrowed from the module cache (warm workers survive across
        clusters), never owned: tearing one down is
        :func:`repro.mpc.pool.shutdown_pools`'s job."""
        if self.workers <= 1:
            return None
        from .pool import get_pool

        return get_pool(self.workers, self.seed)

    @property
    def codec(self) -> Any:
        """The cluster-wide :class:`~repro.backends.columnar.ValueCodec`."""
        if self._codec is None:
            from ..backends.columnar import ValueCodec

            self._codec = ValueCodec()
        return self._codec

    def view(self) -> "ClusterView":
        """The root view over all ``p`` servers, cursor at the current round."""
        return ClusterView(self, tuple(range(self.p)), self.tracker.rounds)

    def report(self) -> CostReport:
        """Snapshot of the cluster's cost meters."""
        return self.tracker.report()

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MPCCluster(p={self.p})"


class ClusterView:
    """An ordered subset of cluster servers with a round cursor.

    Local server indices ``0..p-1`` map to global ids ``self.servers``.
    """

    def __init__(self, cluster: MPCCluster, servers: Tuple[int, ...], round_index: int) -> None:
        if not servers:
            raise AllocationError("a view needs at least one server")
        self.cluster = cluster
        self.servers = servers
        self.round = round_index

    # -- basic properties ------------------------------------------------------

    @property
    def p(self) -> int:
        return len(self.servers)

    @property
    def tracker(self) -> LoadTracker:
        return self.cluster.tracker

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"ClusterView(p={self.p}, round={self.round})"

    # -- communication ---------------------------------------------------------

    def exchange(
        self,
        outboxes: Sequence[Iterable[Tuple[int, Any]]],
        *,
        op: str = "exchange",
    ) -> List[List[Any]]:
        """One communication round within this view.

        ``outboxes[i]`` holds ``(dest_local_index, item)`` messages emitted by
        local server ``i``.  Returns the per-server inboxes.  Charges every
        delivery to the receiving server at the current round, then advances
        the cursor.  ``op`` only labels the trace event (``gather`` routes
        through here and tags itself).
        """
        profiler = self.tracker.profiler
        if profiler is None:
            return self._exchange(outboxes, op)
        profiler.start(op, kind="op", backend=self.cluster.backend)
        try:
            inboxes = self._exchange(outboxes, op)
        except BaseException:
            profiler.stop()
            raise
        profiler.stop(items=sum(len(inbox) for inbox in inboxes))
        return inboxes

    def _exchange(
        self, outboxes: Sequence[Iterable[Tuple[int, Any]]], op: str
    ) -> List[List[Any]]:
        if len(outboxes) != self.p:
            raise RoutingError(f"expected {self.p} outboxes, got {len(outboxes)}")
        inboxes: List[List[Any]] = [[] for _ in range(self.p)]
        tracker = self.tracker
        round_index = self.round
        for outbox in outboxes:
            for dest, item in outbox:
                if not 0 <= dest < self.p:
                    raise RoutingError(f"destination {dest} outside view of size {self.p}")
                inboxes[dest].append(item)
        injector = self.cluster.faults
        if injector is not None:
            self.round = injector.deliver(
                self, round_index, tuple(len(inbox) for inbox in inboxes), op,
                inboxes,
            )
            return inboxes
        for local_index, inbox in enumerate(inboxes):
            tracker.record_receive(round_index, self.servers[local_index], len(inbox))
        tracker.note_round(round_index)
        tracer = tracker.tracer
        if tracer is not None and tracer.active:
            tracer.emit(
                op,
                round_index,
                self.servers,
                tuple(len(inbox) for inbox in inboxes),
                tracker.phase_path(),
            )
        self.round = round_index + 1
        return inboxes

    def exchange_batches(
        self,
        dests: Sequence[Any],
        batches: Sequence[Any],
        *,
        op: str = "exchange",
    ) -> List[Any]:
        """One communication round moving *arrays* instead of item lists.

        ``batches[i]`` is local server ``i``'s outgoing
        :class:`~repro.backends.batch.ColumnarBatch`; ``dests[i]`` is the
        parallel int64 array of destination local indices (one per row).
        Returns the per-server inbound batches.

        Delivery order is identical to :meth:`exchange`: each source batch
        is stably split by destination (rows keep their outbox order) and
        every inbox concatenates its fragments in source order.  Each
        server is charged the *logical tuple count* it receives — the sum
        of its fragments' array lengths — at the current round, so the
        load/communication meters and the trace event are bit-identical to
        the item-at-a-time path for the same routing decisions.
        """
        from ..backends.batch import ColumnarBatch
        from ..backends.dispatch import np

        if len(batches) != self.p or len(dests) != self.p:
            raise RoutingError(
                f"expected {self.p} outgoing batches, got {len(batches)}"
            )
        if self.cluster.faults is not None:
            raise RoutingError(
                "exchange_batches under fault injection: the injector "
                "replays item lists; columnar paths must be gated off"
            )
        profiler = self.tracker.profiler
        if profiler is not None:
            profiler.start(op, kind="op", backend=self.cluster.backend)
        try:
            # Validate every source before any work (all-or-nothing, like
            # the item path's routing checks).
            for dest_array, batch in zip(dests, batches):
                if batch.size == 0:
                    continue
                if dest_array.shape[0] != batch.size:
                    raise RoutingError("destination array does not match batch")
                low, high = int(dest_array.min()), int(dest_array.max())
                if low < 0 or high >= self.p:
                    bad = low if low < 0 else high
                    raise RoutingError(
                        f"destination {bad} outside view of size {self.p}"
                    )
            # Per source: the batch's rows gathered into stable destination
            # order plus per-destination bounds.  Large sources may compute
            # this on the worker pool ("process" mode); the math (stable
            # argsort + bincount) is identical either way, and fragment
            # slices of the gathered batch equal ``take(order[start:stop])``
            # row for row, so inboxes — and the meters charged from their
            # lengths — cannot depend on where the split ran.
            split_of: List[Optional[Tuple[Any, Any]]] = [None] * self.p
            pool = None
            from ..backends.dispatch import process_enabled

            if process_enabled(self):
                from .pool import DISPATCH_MIN_ROWS

                pool = self.cluster.pool
                calls = []
                call_sources = []
                for source, (dest_array, batch) in enumerate(zip(dests, batches)):
                    # Object-dtype annotations (opaque semirings) may hold
                    # unpicklable values; those sources split inline below.
                    if batch.annotations is not None and (
                        batch.annotations.dtype.kind == "O"
                    ):
                        continue
                    if batch.size >= DISPATCH_MIN_ROWS:
                        arrays = {"dest": dest_array}
                        for position, column in enumerate(batch.columns):
                            arrays[f"col{position}"] = column
                        if batch.annotations is not None:
                            arrays["ann"] = batch.annotations
                        calls.append((arrays, {"p": self.p}))
                        call_sources.append(source)
                if calls:
                    results = pool.run_wave(
                        "split-batch", calls, label=f"{op}:r{self.round}"
                    )
                    for source, result in zip(call_sources, results):
                        batch = batches[source]
                        gathered = ColumnarBatch(
                            tuple(
                                result[f"col{position}"]
                                for position in range(len(batch.columns))
                            ),
                            result.get("ann"),
                            batch.size,
                            batch.kind,
                        )
                        split_of[source] = (gathered, result["bounds"])
            fragments: List[List[Any]] = [[] for _ in range(self.p)]
            for source, (dest_array, batch) in enumerate(zip(dests, batches)):
                if batch.size == 0:
                    continue
                if split_of[source] is None:
                    order = np.argsort(dest_array, kind="stable")
                    counts = np.bincount(dest_array, minlength=self.p)
                    bounds = np.concatenate(([0], np.cumsum(counts)))
                    split_of[source] = (batch.take(order), bounds)
                gathered, bounds = split_of[source]
                for local in range(self.p):
                    start, stop = int(bounds[local]), int(bounds[local + 1])
                    if stop > start:
                        fragments[local].append(gathered.slice(start, stop))
            template = next(b for b in batches if b is not None)
            inboxes = [
                ColumnarBatch.concat(parts)
                if parts
                else ColumnarBatch.empty(
                    len(template.columns),
                    template.annotations is not None,
                    template.kind,
                    None
                    if template.annotations is None
                    else template.annotations.dtype,
                )
                for parts in fragments
            ]
            tracker = self.tracker
            round_index = self.round
            for local_index, inbox in enumerate(inboxes):
                tracker.record_receive(
                    round_index, self.servers[local_index], inbox.size
                )
            tracker.note_round(round_index)
            tracer = tracker.tracer
            if tracer is not None and tracer.active:
                tracer.emit(
                    op,
                    round_index,
                    self.servers,
                    tuple(inbox.size for inbox in inboxes),
                    tracker.phase_path(),
                )
            self.round = round_index + 1
        except BaseException:
            if profiler is not None:
                profiler.stop()
            raise
        if profiler is not None:
            profiler.stop(items=sum(inbox.size for inbox in inboxes))
        return inboxes

    def broadcast_batches(self, batches: Sequence[Any]) -> Any:
        """Batch form of :meth:`broadcast`: every server receives the
        concatenation of all parts; charged the total row count each.

        Always parent-side, even in ``"process"`` mode: a broadcast is one
        ``concatenate`` — allocation-bound, with no per-row compute for a
        worker to absorb — so shipping it would only add copies."""
        from ..backends.batch import ColumnarBatch

        if self.cluster.faults is not None:
            raise RoutingError(
                "broadcast_batches under fault injection: columnar paths "
                "must be gated off"
            )
        profiler = self.tracker.profiler
        if profiler is not None:
            profiler.start("broadcast", kind="op", backend=self.cluster.backend)
        try:
            everything = ColumnarBatch.concat(list(batches))
            round_index = self.round
            tracker = self.tracker
            for server in self.servers:
                tracker.record_receive(round_index, server, everything.size)
            tracker.note_round(round_index)
            tracer = tracker.tracer
            if tracer is not None and tracer.active:
                tracer.emit(
                    "broadcast",
                    round_index,
                    self.servers,
                    (everything.size,) * self.p,
                    tracker.phase_path(),
                )
            self.round = round_index + 1
        except BaseException:
            if profiler is not None:
                profiler.stop()
            raise
        if profiler is not None:
            profiler.stop(items=everything.size * self.p)
        return everything

    def route(
        self,
        parts: Sequence[Sequence[Any]],
        dest_fn: Callable[[Any], int],
        *,
        op: str = "exchange",
    ) -> List[List[Any]]:
        """Reshuffle: send every item to ``dest_fn(item)`` (a local index)."""
        outboxes = [[(dest_fn(item), item) for item in part] for part in parts]
        return self.exchange(outboxes, op=op)

    def route_multi(
        self,
        parts: Sequence[Sequence[Any]],
        dests_fn: Callable[[Any], Iterable[int]],
    ) -> List[List[Any]]:
        """Replicating reshuffle: send each item to every index in ``dests_fn(item)``."""
        outboxes = [
            [(dest, item) for item in part for dest in dests_fn(item)] for part in parts
        ]
        return self.exchange(outboxes)

    def broadcast(self, parts: Sequence[Sequence[Any]]) -> List[Any]:
        """Send every item to *all* servers in the view; returns the common list.

        One round; each server's incoming load is the total item count, which
        is how the paper charges a broadcast.
        """
        profiler = self.tracker.profiler
        if profiler is None:
            return self._broadcast(parts)
        profiler.start("broadcast", kind="op", backend=self.cluster.backend)
        try:
            everything = self._broadcast(parts)
        except BaseException:
            profiler.stop()
            raise
        profiler.stop(items=len(everything) * self.p)
        return everything

    def _broadcast(self, parts: Sequence[Sequence[Any]]) -> List[Any]:
        everything = [item for part in parts for item in part]
        round_index = self.round
        tracker = self.tracker
        injector = self.cluster.faults
        if injector is not None:
            self.round = injector.deliver(
                self, round_index, (len(everything),) * self.p, "broadcast"
            )
            return everything
        for server in self.servers:
            tracker.record_receive(round_index, server, len(everything))
        tracker.note_round(round_index)
        tracer = tracker.tracer
        if tracer is not None and tracer.active:
            tracer.emit(
                "broadcast",
                round_index,
                self.servers,
                (len(everything),) * self.p,
                tracker.phase_path(),
            )
        self.round = round_index + 1
        return everything

    def gather(self, parts: Sequence[Sequence[Any]], dest: int = 0) -> List[Any]:
        """Bring all items to one server (charged there); one round."""
        inboxes = self.route(parts, lambda item: dest, op="gather")
        return inboxes[dest]

    # -- coordinator/control channel --------------------------------------------

    def control_gather(self, values: Sequence[Any]) -> List[Any]:
        """Gather one scalar per server on the control channel (O(p) traffic)."""
        self.tracker.record_control(len(values))
        return list(values)

    def control_scatter(self, count: int = 1) -> None:
        """Charge scattering ``count`` scalars to every server."""
        self.tracker.record_control(count * self.p)

    # -- sub-allocation ----------------------------------------------------------

    def subview(self, local_indices: Sequence[int]) -> "ClusterView":
        """A view over the given local indices, sharing tracker and cursor.

        Raises :class:`AllocationError` for an empty request or any index
        outside ``0..p-1`` — an allocation that asks for servers the view
        does not own can never be satisfied.
        """
        indices = tuple(local_indices)
        if not indices:
            raise AllocationError("a view needs at least one server")
        for index in indices:
            if not 0 <= index < self.p:
                raise AllocationError(
                    f"local index {index} outside view of size {self.p}"
                )
        servers = tuple(self.servers[i] for i in indices)
        return ClusterView(self.cluster, servers, self.round)

    def split(self, groups: int) -> List["ClusterView"]:
        """Partition the view into ``groups`` disjoint contiguous sub-views.

        When ``groups > p`` the tail groups are merged into the available
        servers (each sub-view has ≥ 1 server, at most ``p`` sub-views).
        """
        groups = max(1, min(groups, self.p))
        bounds = [round(i * self.p / groups) for i in range(groups + 1)]
        return [self.subview(range(bounds[i], bounds[i + 1])) for i in range(groups)]

    def run_parallel(
        self,
        tasks: Sequence[Callable[["ClusterView"], Any]],
        sizes: Optional[Sequence[int]] = None,
    ) -> List[Any]:
        """Run ``tasks`` on disjoint sub-views "in parallel".

        ``sizes[i]`` is the requested server count of task ``i`` (default 1).
        Tasks are first-fit packed into waves of total size ≤ p; each wave's
        branches start at the same base round, and the cursor advances by the
        deepest branch.  Results are returned in task order.

        Branch tasks always execute sequentially within a wave — even in
        ``"process"`` mode.  They are arbitrary closures mutating shared
        simulator state (tracker, codec, cursor), so forking them would
        either fork that state or race on it; instead, the worker pool
        parallelizes the *data-parallel kernels inside* each branch
        (chunked local joins, batch splits), which is where the wall-clock
        actually goes and where chunk merges are provably bit-exact.
        """
        if not tasks:
            return []
        if sizes is None:
            sizes = [1] * len(tasks)
        if len(sizes) != len(tasks):
            raise AllocationError("sizes must match tasks")
        clamped = [max(1, min(int(math.ceil(s)), self.p)) for s in sizes]

        results: List[Any] = [None] * len(tasks)
        pending = list(range(len(tasks)))
        profiler = self.tracker.profiler
        while pending:
            wave: List[int] = []
            used = 0
            remaining: List[int] = []
            for task_index in pending:
                if used + clamped[task_index] <= self.p:
                    wave.append(task_index)
                    used += clamped[task_index]
                else:
                    remaining.append(task_index)
            if not wave:  # single task larger than p (cannot happen: clamped ≤ p)
                raise AllocationError("could not schedule task wave")
            pending = remaining

            base_round = self.round
            deepest = base_round
            offset = 0
            if profiler is not None:
                profiler.start("parallel-wave", kind="op",
                               backend=self.cluster.backend)
            try:
                for task_index in wave:
                    width = clamped[task_index]
                    branch = self.subview(range(offset, offset + width))
                    branch.round = base_round
                    results[task_index] = tasks[task_index](branch)
                    deepest = max(deepest, branch.round)
                    offset += width
            finally:
                if profiler is not None:
                    profiler.stop()
            tracer = self.tracker.tracer
            if tracer is not None and tracer.active:
                tracer.emit(
                    "parallel-wave",
                    base_round,
                    self.servers,
                    (),
                    self.tracker.phase_path(),
                    detail={
                        "tasks": list(wave),
                        "widths": [clamped[i] for i in wave],
                        "depth": deepest - base_round,
                    },
                )
            self.round = deepest
        return results
