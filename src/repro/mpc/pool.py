"""Persistent OS worker pool for the ``"process"`` execution mode.

The simulator's ``p`` virtual servers normally all run on one core.  The
pool maps the *data-parallel kernels* of a run — the elementary-product
streams of the vectorized local joins and the destination splits of
``exchange_batches`` — onto long-lived ``multiprocessing`` workers, under
the hard contract that answers, CostReports, and trace streams stay
**bit-identical** to the sequential simulator:

* All control flow, codec interning, metering, and tracing stay in the
  parent.  Workers receive only numpy arrays and picklable scalars and
  return fresh arrays; they never see the :class:`~..backends.columnar.
  ValueCodec` (whose code assignment is order-sensitive parent state) and
  never touch a :class:`~.stats.LoadTracker`.
* Work is chunked *deterministically* (boundaries depend only on input
  sizes and the worker count, never on timing) and results are
  reassembled in submission order, so completion order cannot leak into
  any output.
* A chunked ⊕-merge is bit-exact for every vectorizable profile: int/bool
  ⊕ is permutation-insensitive on the dtype, and float min/max folds in
  arrival order both inside chunks and across the chunk merge (numpy's
  ``minimum``/``maximum`` resolve ties — e.g. ±0.0 — to the *latest*
  operand consistently, so "latest arrival wins" survives re-bracketing).

Transport: arrays at or above :data:`SHM_MIN_BYTES` travel through
``multiprocessing.shared_memory`` blocks (zero-copy feasible because the
columnar layout is already flat int64/float64 buffers); smaller arrays
pickle inline through the worker's pipe.  Pipes ``send`` synchronously,
so a shared-memory block is never unlinked while a pickle of it is still
in flight.

Lifecycle: pools are keyed by ``(workers, seed)`` and reused across
clusters (:func:`get_pool`); workers spawn lazily on the first wave
(``spawn`` start method — no inherited parent state), are re-used for the
process lifetime, and are torn down by :func:`shutdown_pools` (registered
``atexit``).  Each worker seeds ``random`` and ``numpy.random``
deterministically from ``(seed, worker_index)``; the shipped kernels draw
no randomness, the seeding is hygiene for future kernels.

A worker that dies or raises surfaces as a typed
:class:`~.errors.WorkerCrashError` naming the wave, kernel, and worker.
"""

from __future__ import annotations

import atexit
import os
import traceback
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..backends.dispatch import HAS_NUMPY, np
from .errors import WorkerCrashError

__all__ = [
    "DISPATCH_MIN_PRODUCTS",
    "DISPATCH_MIN_ROWS",
    "KERNELS",
    "SHM_MIN_BYTES",
    "WorkerPool",
    "count_products",
    "get_pool",
    "pack_feasible",
    "parallel_join_reduce",
    "shutdown_pools",
]

#: Minimum elementary-product count before a local join-aggregate is worth
#: chunking across workers; below it, IPC overheads dominate and the call
#: runs sequentially (the decision depends only on the count, so it is
#: deterministic and identical across worker counts).
DISPATCH_MIN_PRODUCTS = 1 << 15
#: Minimum probe/batch rows before a call is even considered for dispatch
#: (also gates the count-only pre-join that prices a dispatch).
DISPATCH_MIN_ROWS = 1 << 11
#: Arrays at or above this many bytes ride SharedMemory; smaller ones
#: pickle inline (one pipe write costs less than a block create/attach).
SHM_MIN_BYTES = 1 << 16

#: Packed multi-column keys must stay well inside int64 (mirror of
#: ``repro.backends.kernels._PACK_LIMIT`` — the parent prechecks pack
#: feasibility so every chunk takes the same packed/fallback decision the
#: sequential kernel would).
_PACK_LIMIT = 1 << 62


# -- kernels (run inside workers; pure array → array) -------------------------


def _kernel_echo(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Dict[str, Any]:
    """Diagnostic kernel: returns its arrays (copied) and selected meta.

    Also the crash-path test hook: ``meta["exit"]`` hard-kills the worker
    with that status (simulating a segfault/OOM kill), ``meta["raise"]``
    raises a Python error that travels back as a remote traceback, and
    ``meta["draw"]`` samples the worker's seeded RNGs (the determinism
    battery asserts draws repeat across a teardown/respawn).
    """
    if meta.get("exit") is not None:
        os._exit(int(meta["exit"]))
    if meta.get("raise") is not None:
        raise ValueError(str(meta["raise"]))
    out: Dict[str, Any] = {name: np.array(a, copy=True) for name, a in arrays.items()}
    out["pid"] = os.getpid()
    out["seeded"] = meta.get("seeded")
    if meta.get("draw"):
        import random

        out["draw"] = (random.random(), float(np.random.random()))
    return out


def _kernel_join_reduce(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Dict[str, Any]:
    """One probe-side chunk of a vectorized local join-aggregate.

    Replays exactly the sequential pipeline of
    ``repro.core.two_way_join._local_join_vec`` on ``probe`` rows
    ``[chunk]``: hash-join against the full build side, ⊗-multiply
    annotations, pack the out-key columns with the parent's codec-size
    snapshot as radix, and ⊕-fold by packed key.  Because the probe chunks
    are contiguous in probe-arrival order, the concatenation of the chunk
    product streams *is* the sequential stream, and the parent's final
    ⊕-merge of the chunk partials is bit-exact (see module docstring).
    """
    from ..backends.kernels import combine_columns, group_reduce, hash_join

    build_codes = arrays["build_codes"]
    probe_codes = arrays["probe_codes"]
    # hash_join(left, right, outer="right") probes with ``right``: for each
    # probe row in arrival order, all build matches in arrival order.
    b_pos, p_pos = hash_join(build_codes, probe_codes, outer="right")
    profile = meta["profile"]
    build_ann = arrays["build_ann"]
    probe_ann = arrays["probe_ann"]
    if meta["probe_is_left"]:
        weights = profile.mul(probe_ann[p_pos], build_ann[b_pos])
    else:
        weights = profile.mul(build_ann[b_pos], probe_ann[p_pos])
    out_columns = []
    for index, side in enumerate(meta["out_sides"]):
        column = arrays[f"out{index}"]
        out_columns.append(column[b_pos] if side == "B" else column[p_pos])
    packed, _ = combine_columns(out_columns, meta["pack_base"], weights.shape[0])
    if packed is None:  # pragma: no cover - parent prechecks feasibility
        raise RuntimeError("pack infeasible in worker despite parent precheck")
    unique, reduced = group_reduce(packed, weights, profile.add_ufunc)
    return {
        "unique": unique,
        "reduced": reduced,
        "products": int(b_pos.shape[0]),
    }


def _kernel_split_batch(arrays: Dict[str, Any], meta: Dict[str, Any]) -> Dict[str, Any]:
    """Stable destination split of one source batch of ``exchange_batches``.

    Returns the batch's columns gathered into destination order plus the
    per-destination bounds — the same ``argsort(kind="stable")`` /
    ``bincount`` math the sequential path runs, so the fragments the
    parent slices out are bit-identical to ``batch.take(order[start:stop])``.
    """
    dest = arrays["dest"]
    order = np.argsort(dest, kind="stable")
    counts = np.bincount(dest, minlength=meta["p"])
    bounds = np.concatenate(([0], np.cumsum(counts)))
    out: Dict[str, Any] = {"bounds": bounds}
    for name, array in arrays.items():
        if name != "dest":
            out[name] = array[order]
    return out


#: Kernel registry: every dispatchable kernel, by wire name.  Workers
#: resolve names against their own import of this module, so only kernels
#: registered *here* exist on both sides of the pipe.
KERNELS = {
    "echo": _kernel_echo,
    "join-reduce": _kernel_join_reduce,
    "split-batch": _kernel_split_batch,
}


# -- array transport ----------------------------------------------------------


def _pack_arrays(
    arrays: Dict[str, Any], shm_cache: Dict[int, Any], blocks: List[Any]
) -> Dict[str, Any]:
    """Parent side: arrays → wire specs, large ones via SharedMemory.

    ``shm_cache`` (keyed by array ``id``) lets one block back an array
    shared by every call of a wave (e.g. the build side of a chunked
    join); ``blocks`` collects created blocks for unlink-after-wave.
    """
    from multiprocessing import shared_memory

    specs: Dict[str, Any] = {}
    for name, array in arrays.items():
        if not isinstance(array, np.ndarray):
            specs[name] = ("inline", array)
            continue
        if array.nbytes < SHM_MIN_BYTES:
            specs[name] = ("inline", array)
            continue
        cached = shm_cache.get(id(array))
        if cached is None:
            contiguous = np.ascontiguousarray(array)
            block = shared_memory.SharedMemory(create=True, size=contiguous.nbytes)
            np.ndarray(
                contiguous.shape, dtype=contiguous.dtype, buffer=block.buf
            )[...] = contiguous
            cached = (block, str(contiguous.dtype), contiguous.shape)
            shm_cache[id(array)] = cached
            blocks.append(block)
        block, dtype, shape = cached
        specs[name] = ("shm", block.name, dtype, shape)
    return specs


def _open_arrays(specs: Dict[str, Any]) -> Tuple[Dict[str, Any], List[Any]]:
    """Worker side: wire specs → arrays (SharedMemory views kept open
    until the result pickle is on the wire; the caller closes them)."""
    from multiprocessing import shared_memory

    arrays: Dict[str, Any] = {}
    opened: List[Any] = []
    for name, spec in specs.items():
        if spec[0] == "inline":
            arrays[name] = spec[1]
            continue
        _, shm_name, dtype, shape = spec
        # The parent owns every block's lifetime (create *and* unlink); an
        # attach must not enlist the resource tracker, whose name cache
        # the worker shares with the parent — registering here and
        # unregistering on close would erase the *parent's* registration
        # and make its unlink KeyError inside the tracker.  3.13's
        # ``track=`` parameter does exactly this suppression; below it,
        # blank ``register`` for the duration of the attach.
        from multiprocessing import resource_tracker

        tracked_register = resource_tracker.register
        resource_tracker.register = lambda *_args: None
        try:
            block = shared_memory.SharedMemory(name=shm_name)
        finally:
            resource_tracker.register = tracked_register
        arrays[name] = np.ndarray(shape, dtype=np.dtype(dtype), buffer=block.buf)
        opened.append(block)
    return arrays, opened


# -- worker main --------------------------------------------------------------


def _worker_main(conn: Any, index: int, seed: int) -> None:
    """Worker loop: recv ``(call_id, kernel, meta, specs)``, run, reply.

    Replies are ``(call_id, index, "ok", result)`` or ``(call_id, index,
    "error", traceback_text)``.  ``None`` is the shutdown sentinel.
    """
    import random

    random.seed(seed * 1_000_003 + index + 1)
    np.random.seed((seed * 1_000_003 + index + 1) % (1 << 32))
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):  # parent died; exit quietly
            return
        if message is None:
            return
        call_id, kernel, meta, specs = message
        opened: List[Any] = []
        try:
            arrays, opened = _open_arrays(specs)
            result = KERNELS[kernel](arrays, meta)
            # send() pickles synchronously, deep-copying any data the
            # result still views out of shared memory — only then is it
            # safe to close the blocks.
            conn.send((call_id, index, "ok", result))
        except BaseException:
            try:
                conn.send((call_id, index, "error", traceback.format_exc()))
            except (OSError, ValueError):  # pragma: no cover - pipe gone
                return
        finally:
            for block in opened:
                try:
                    block.close()
                except Exception:  # pragma: no cover - already closed
                    pass


# -- the pool -----------------------------------------------------------------


class _suppress_main_reimport:
    """Blank ``__main__``'s import coordinates while spawning workers.

    ``spawn`` children normally re-import the parent's ``__main__``
    (by name or path) before unpickling the process target.  Pool workers
    need nothing from it — their target and kernels live in this module,
    imported by name — and re-executing arbitrary parent scripts is
    exactly the kind of state leak the process mode forbids (and it hard
    fails for stdin/REPL parents whose ``__file__`` is not a real path).
    With ``__spec__``/``__file__`` set to ``None``,
    ``multiprocessing.spawn.get_preparation_data`` skips the main-module
    fixup entirely; the attributes are restored before any user code runs
    again.
    """

    def __enter__(self) -> None:
        import sys

        self._main = sys.modules.get("__main__")
        self._saved = {}
        if self._main is not None:
            for attribute in ("__spec__", "__file__"):
                if getattr(self._main, attribute, None) is not None:
                    self._saved[attribute] = getattr(self._main, attribute)
                    setattr(self._main, attribute, None)

    def __exit__(self, *exc: Any) -> None:
        for attribute, value in self._saved.items():
            setattr(self._main, attribute, value)


class WorkerPool:
    """A persistent pool of ``workers`` spawned OS processes.

    Workers start lazily (:meth:`warm` forces it), survive across waves
    and clusters, and die at :meth:`shutdown`.  Calls of a wave are
    assigned round-robin by call index — never by completion order — and
    results return in call order, so scheduling cannot perturb output.

    ``dispatch_order`` (``"forward"``/``"reverse"``) flips the submission
    order of each wave; results are re-keyed by call id, so both orders
    are byte-equivalent — the determinism battery asserts exactly that.
    """

    def __init__(self, workers: int, seed: int = 0,
                 dispatch_order: str = "forward") -> None:
        if workers < 1:
            raise ValueError("WorkerPool needs workers >= 1")
        if dispatch_order not in ("forward", "reverse"):
            raise ValueError("dispatch_order must be 'forward' or 'reverse'")
        self.workers = workers
        self.seed = seed
        self.dispatch_order = dispatch_order
        self._procs: List[Any] = []
        self._conns: List[Any] = []
        self._wave_count = 0
        #: One entry per dispatched wave: label, kernel, calls, and the
        #: worker id + row count per call — the out-of-band attribution
        #: stream (``repro.obs.events.pool_events`` renders it); nothing
        #: here ever enters a cluster tracer, keeping trace streams
        #: bit-identical to sequential runs.
        self.dispatch_log: List[Dict[str, Any]] = []

    # - lifecycle -

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def warm(self) -> None:
        """Spawn the workers now (idempotent; first wave does it lazily)."""
        if self._procs:
            return
        import multiprocessing

        context = multiprocessing.get_context("spawn")
        with _suppress_main_reimport():
            for index in range(self.workers):
                parent_conn, child_conn = context.Pipe(duplex=True)
                proc = context.Process(
                    target=_worker_main,
                    args=(child_conn, index, self.seed),
                    daemon=True,
                    name=f"repro-pool-{index}",
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)

    def shutdown(self) -> None:
        """Tear the workers down (idempotent); the pool can warm again."""
        for conn in self._conns:
            try:
                conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._procs = []
        self._conns = []

    # - dispatch -

    def run_wave(
        self,
        kernel: str,
        calls: Sequence[Tuple[Dict[str, Any], Dict[str, Any]]],
        label: Optional[str] = None,
    ) -> List[Any]:
        """Run ``calls`` (``(arrays, meta)`` pairs) on the workers.

        Returns results in call order.  Raises
        :class:`~.errors.WorkerCrashError` naming ``label`` (the wave),
        the kernel, and the worker when a worker dies or its kernel
        raises; surviving workers stay usable.
        """
        from multiprocessing.connection import wait as connection_wait

        self.warm()
        wave = label if label is not None else f"{kernel}:{self._wave_count}"
        self._wave_count += 1
        shm_cache: Dict[int, Any] = {}
        blocks: List[Any] = []
        assigned: Dict[int, int] = {}
        try:
            order = range(len(calls))
            if self.dispatch_order == "reverse":
                order = reversed(order)
            for call_id in order:
                arrays, meta = calls[call_id]
                worker = call_id % self.workers
                specs = _pack_arrays(arrays, shm_cache, blocks)
                try:
                    self._conns[worker].send((call_id, kernel, meta, specs))
                except (OSError, ValueError, BrokenPipeError):
                    raise WorkerCrashError(
                        f"worker {worker} unreachable dispatching wave "
                        f"{wave!r} (kernel {kernel!r})",
                        wave=wave, kernel=kernel, worker=worker,
                    )
                assigned[call_id] = worker
            results: List[Any] = [None] * len(calls)
            outstanding = set(assigned)
            while outstanding:
                waiting_conns = {
                    self._conns[worker]: worker
                    for call_id, worker in assigned.items()
                    if call_id in outstanding
                }
                watch = list(waiting_conns) + [
                    self._procs[w].sentinel for w in set(waiting_conns.values())
                ]
                for ready in connection_wait(watch):
                    worker = waiting_conns.get(ready)
                    if worker is None:  # a process sentinel fired
                        dead = next(
                            w for w in set(waiting_conns.values())
                            if self._procs[w].sentinel == ready
                        )
                        if self._procs[dead].is_alive():  # pragma: no cover
                            continue
                        raise WorkerCrashError(
                            f"worker {dead} died (exit code "
                            f"{self._procs[dead].exitcode}) during wave "
                            f"{wave!r} (kernel {kernel!r})",
                            wave=wave, kernel=kernel, worker=dead,
                        )
                    try:
                        call_id, sender, status, payload = ready.recv()
                    except (EOFError, OSError):
                        raise WorkerCrashError(
                            f"worker {worker} hung up mid-result during wave "
                            f"{wave!r} (kernel {kernel!r})",
                            wave=wave, kernel=kernel, worker=worker,
                        )
                    if status == "error":
                        raise WorkerCrashError(
                            f"worker {sender} kernel {kernel!r} failed in "
                            f"wave {wave!r}:\n{payload}",
                            wave=wave, kernel=kernel, worker=sender,
                            detail=payload,
                        )
                    results[call_id] = payload
                    outstanding.discard(call_id)
        finally:
            for block in blocks:
                try:
                    block.close()
                    block.unlink()
                except Exception:  # pragma: no cover - best effort
                    pass
        self.dispatch_log.append({
            "wave": wave,
            "kernel": kernel,
            "calls": len(calls),
            "workers": [assigned[i] for i in range(len(calls))],
            "items": [
                int(arrays["probe_codes"].shape[0])
                if "probe_codes" in arrays
                else int(arrays["dest"].shape[0]) if "dest" in arrays else 0
                for arrays, _ in calls
            ],
        })
        return results

    def stats(self) -> Dict[str, Any]:
        """Dispatch totals: waves, calls, and per-kernel call counts."""
        kernels: Dict[str, int] = {}
        for entry in self.dispatch_log:
            kernels[entry["kernel"]] = kernels.get(entry["kernel"], 0) + entry["calls"]
        return {
            "workers": self.workers,
            "started": self.started,
            "waves": len(self.dispatch_log),
            "calls": sum(e["calls"] for e in self.dispatch_log),
            "kernels": kernels,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"WorkerPool(workers={self.workers}, started={self.started}, "
                f"waves={len(self.dispatch_log)})")


_POOLS: Dict[Tuple[int, int], WorkerPool] = {}
_ATEXIT_REGISTERED = False


def get_pool(workers: int, seed: int = 0) -> WorkerPool:
    """The shared pool for ``(workers, seed)``, created (cold) on first use.

    Clusters borrow pools rather than owning them, so repeated runs under
    one config reuse warm workers; :func:`shutdown_pools` runs ``atexit``.
    """
    global _ATEXIT_REGISTERED
    key = (workers, seed)
    pool = _POOLS.get(key)
    if pool is None:
        pool = WorkerPool(workers, seed=seed)
        _POOLS[key] = pool
        if not _ATEXIT_REGISTERED:
            atexit.register(shutdown_pools)
            _ATEXIT_REGISTERED = True
    return pool


def shutdown_pools() -> None:
    """Tear down every cached pool (idempotent)."""
    for pool in list(_POOLS.values()):
        pool.shutdown()
    _POOLS.clear()


# -- parent-side dispatch helpers ---------------------------------------------


def count_products(build_codes: Any, probe_codes: Any) -> Tuple[Any, int]:
    """Per-probe-row match counts against the build side, plus the total.

    The count-only half of ``hash_join`` — O((n+m) log n) regardless of
    the product count — lets the parent price a join (``_mul_safe``,
    dispatch threshold, chunk boundaries) without materializing streams.
    """
    from ..backends.kernels import group_index

    counts = np.zeros(probe_codes.shape[0], dtype=np.int64)
    if build_codes.shape[0] == 0 or probe_codes.shape[0] == 0:
        return counts, 0
    _, unique_sorted, _, group_counts = group_index(build_codes)
    positions = np.searchsorted(unique_sorted, probe_codes)
    clipped = np.minimum(positions, unique_sorted.shape[0] - 1)
    matched = unique_sorted[clipped] == probe_codes
    counts[matched] = group_counts[clipped[matched]]
    return counts, int(counts.sum())


def pack_feasible(columns: int, base: int) -> bool:
    """Would ``combine_columns`` pack ``columns`` codes of radix ``base``?

    The parent prechecks so that every chunk — and the sequential kernel —
    takes the same packed/dict-fallback branch."""
    base = max(1, base)
    span = 1
    for _ in range(columns):
        span *= base
        if span >= _PACK_LIMIT:
            return False
    return True


def _chunk_bounds(counts: Any, total: int, chunks: int) -> List[int]:
    """Contiguous probe-chunk boundaries balanced by *product* mass.

    Deterministic in (counts, chunks): boundaries are where the running
    product count crosses each ``k·total/chunks`` target."""
    cumulative = np.cumsum(counts)
    targets = [(k * total) // chunks for k in range(1, chunks)]
    cuts = np.searchsorted(cumulative, targets, side="left")
    bounds = [0]
    for cut in cuts.tolist():
        bounds.append(max(bounds[-1], min(int(cut) + 1, counts.shape[0])))
    bounds.append(counts.shape[0])
    return bounds


def parallel_join_reduce(
    pool: WorkerPool,
    *,
    build_codes: Any,
    probe_codes: Any,
    build_ann: Any,
    probe_ann: Any,
    out_sides: Sequence[str],
    out_columns: Sequence[Any],
    probe_is_left: bool,
    profile: Any,
    pack_base: int,
    counts: Any,
    products: int,
) -> Tuple[Any, Any]:
    """Chunk a local join-aggregate across the pool; ⊕-merge the partials.

    ``out_columns[i]`` is the *full* per-row code column of output
    attribute ``i`` on side ``out_sides[i]`` (``"B"`` = build, ``"P"`` =
    probe, already in probe order).  Returns ``(unique_packed, reduced)``
    bit-identical to the sequential ``combine_columns``/``group_reduce``
    over the full product stream.  The caller has already checked
    ``products``, ``_mul_safe``, and :func:`pack_feasible`.
    """
    from ..backends.kernels import group_reduce

    chunks = min(pool.workers, max(1, probe_codes.shape[0]))
    bounds = _chunk_bounds(counts, products, chunks)
    calls: List[Tuple[Dict[str, Any], Dict[str, Any]]] = []
    meta = {
        "profile": profile,
        "probe_is_left": probe_is_left,
        "out_sides": tuple(out_sides),
        "pack_base": pack_base,
    }
    for index in range(len(bounds) - 1):
        start, stop = bounds[index], bounds[index + 1]
        if stop <= start:
            continue
        arrays: Dict[str, Any] = {
            "build_codes": build_codes,
            "probe_codes": probe_codes[start:stop],
            "build_ann": build_ann,
            "probe_ann": probe_ann[start:stop],
        }
        for position, (side, column) in enumerate(zip(out_sides, out_columns)):
            arrays[f"out{position}"] = (
                column if side == "B" else column[start:stop]
            )
        calls.append((arrays, meta))
    results = pool.run_wave("join-reduce", calls)
    shipped = sum(r["products"] for r in results)
    if shipped != products:  # pragma: no cover - internal invariant
        raise WorkerCrashError(
            f"chunked join returned {shipped} products, expected {products}",
            kernel="join-reduce",
        )
    if len(results) == 1:
        return results[0]["unique"], results[0]["reduced"]
    unique = np.concatenate([r["unique"] for r in results])
    reduced = np.concatenate([r["reduced"] for r in results])
    return group_reduce(unique, reduced, profile.add_ufunc)
