"""Simulated Massively Parallel Computation substrate (paper §1.3).

Beyond the failure-free model, the substrate supports deterministic fault
injection with checkpoint/replay recovery (:mod:`repro.mpc.faults`,
:mod:`repro.mpc.recovery`): crashes, drops, duplicates and stragglers fire
at seeded ``(round, server)`` coordinates, answers survive every
recoverable schedule, and the repair cost is metered separately under the
``recovery`` tag of :class:`CostReport`.

The ``"process"`` execution mode (:mod:`repro.mpc.pool`, enabled by
``ExecutionConfig(workers=N)``) additionally maps the data-parallel
kernels of a simulated round onto a persistent pool of OS worker
processes; answers, meters, and traces stay bit-identical to the
sequential simulator, and a dead worker raises
:class:`WorkerCrashError` naming the wave.
"""

from .cluster import ClusterView, MPCCluster
from .distributed import Distributed, transfer
from .errors import (
    AllocationError,
    FaultError,
    MPCError,
    RoutingError,
    UnrecoverableFaultError,
    WorkerCrashError,
)
from .faults import FAULT_KINDS, Fault, FaultInjector, FaultSchedule
from .hashing import hash_to_bucket, hash_to_unit, stable_hash
from .recovery import CheckpointStore, RecoveryManager, RecoveryPolicy
from .stats import CostReport, LoadTracker

__all__ = [
    "MPCCluster",
    "ClusterView",
    "Distributed",
    "transfer",
    "LoadTracker",
    "CostReport",
    "MPCError",
    "RoutingError",
    "AllocationError",
    "FaultError",
    "UnrecoverableFaultError",
    "WorkerCrashError",
    "FAULT_KINDS",
    "Fault",
    "FaultSchedule",
    "FaultInjector",
    "RecoveryPolicy",
    "RecoveryManager",
    "CheckpointStore",
    "stable_hash",
    "hash_to_unit",
    "hash_to_bucket",
]
