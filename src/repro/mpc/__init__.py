"""Simulated Massively Parallel Computation substrate (paper §1.3)."""

from .cluster import ClusterView, MPCCluster
from .distributed import Distributed, transfer
from .errors import AllocationError, MPCError, RoutingError
from .hashing import hash_to_bucket, hash_to_unit, stable_hash
from .stats import CostReport, LoadTracker

__all__ = [
    "MPCCluster",
    "ClusterView",
    "Distributed",
    "transfer",
    "LoadTracker",
    "CostReport",
    "MPCError",
    "RoutingError",
    "AllocationError",
    "stable_hash",
    "hash_to_unit",
    "hash_to_bucket",
]
