"""Simulated Massively Parallel Computation substrate (paper §1.3).

Beyond the failure-free model, the substrate supports deterministic fault
injection with checkpoint/replay recovery (:mod:`repro.mpc.faults`,
:mod:`repro.mpc.recovery`): crashes, drops, duplicates and stragglers fire
at seeded ``(round, server)`` coordinates, answers survive every
recoverable schedule, and the repair cost is metered separately under the
``recovery`` tag of :class:`CostReport`.
"""

from .cluster import ClusterView, MPCCluster
from .distributed import Distributed, transfer
from .errors import (
    AllocationError,
    FaultError,
    MPCError,
    RoutingError,
    UnrecoverableFaultError,
)
from .faults import FAULT_KINDS, Fault, FaultInjector, FaultSchedule
from .hashing import hash_to_bucket, hash_to_unit, stable_hash
from .recovery import CheckpointStore, RecoveryManager, RecoveryPolicy
from .stats import CostReport, LoadTracker

__all__ = [
    "MPCCluster",
    "ClusterView",
    "Distributed",
    "transfer",
    "LoadTracker",
    "CostReport",
    "MPCError",
    "RoutingError",
    "AllocationError",
    "FaultError",
    "UnrecoverableFaultError",
    "FAULT_KINDS",
    "Fault",
    "FaultSchedule",
    "FaultInjector",
    "RecoveryPolicy",
    "RecoveryManager",
    "CheckpointStore",
    "stable_hash",
    "hash_to_unit",
    "hash_to_bucket",
]
