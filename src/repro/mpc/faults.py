"""Deterministic fault injection for the simulated MPC cluster.

The paper's §1.3 model assumes a perfectly synchronous, failure-free
cluster.  This module drops that assumption *deterministically*: a seeded
:class:`FaultSchedule` plants faults at ``(round, server)`` coordinates —

* ``crash`` — the server dies during the round's delivery and a spare
  restores its checkpoint and replays the round;
* ``drop`` — every message addressed to the server in that round is lost
  in transit and retransmitted;
* ``duplicate`` — every message addressed to the server arrives twice and
  the copy is discarded by sequence-number dedup;
* ``straggler`` — the server's round runs ``delay`` rounds slow, stalling
  the whole synchronous round.

Injection rides on hooks inside :meth:`ClusterView.exchange` /
``broadcast`` and :func:`repro.mpc.distributed.transfer`: a cluster built
without faults (the default) pays a single ``None`` check per operation,
so every metered number is bit-identical to a fault-free build.  With
faults enabled, the *effective* deliveries after recovery equal the
intended ones — algorithms still compute exact answers — while the repair
cost (retries, replays, checkpoint restores, stalls) is metered separately
under the ``recovery`` tag (see :mod:`repro.mpc.recovery` and
:class:`~repro.mpc.stats.CostReport`).  Unrecoverable schedules raise
:class:`~repro.mpc.errors.UnrecoverableFaultError` naming the round.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .recovery import RecoveryManager, RecoveryPolicy

__all__ = ["FAULT_KINDS", "Fault", "FaultSchedule", "FaultInjector", "as_injector"]

#: The fault taxonomy, in schedule-generation order.
FAULT_KINDS: Tuple[str, ...] = ("crash", "drop", "duplicate", "straggler")


@dataclass(frozen=True)
class Fault:
    """One scheduled fault: ``kind`` hits global ``server`` at ``round``.

    ``delay`` is only meaningful for stragglers (rounds of slowdown).
    ``round`` indexes the view cursor at which the delivering operation
    runs; a fault whose coordinates never coincide with a delivery simply
    never fires (a scheduled crash of an idle server is harmless).
    """

    kind: str
    round: int
    server: int
    delay: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.round < 0:
            raise ValueError("fault round must be non-negative")
        if self.kind == "straggler" and self.delay < 1:
            raise ValueError("straggler faults need delay >= 1")

    def to_dict(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": self.kind, "round": self.round, "server": self.server,
        }
        if self.delay:
            record["delay"] = self.delay
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "Fault":
        return cls(
            kind=str(record["kind"]),
            round=int(record["round"]),
            server=int(record["server"]),
            delay=int(record.get("delay", 0)),
        )


class FaultSchedule:
    """An immutable, replayable set of scheduled faults.

    Schedules are plain data: build one from explicit :class:`Fault`
    entries, from :meth:`random` (seeded — same seed, same schedule), or
    from a JSON document (:meth:`from_dict`).  The same schedule object can
    be injected into any number of fresh clusters; per-run firing state
    lives in the :class:`FaultInjector`.
    """

    def __init__(self, faults: Iterable[Fault] = ()) -> None:
        self.faults: Tuple[Fault, ...] = tuple(faults)

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self):
        return iter(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"FaultSchedule({list(self.faults)!r})"

    @classmethod
    def random(
        cls,
        seed: int,
        cells: Sequence[Tuple[int, int]],
        kinds: Sequence[str] = FAULT_KINDS,
        count: int = 2,
        max_delay: int = 2,
    ) -> "FaultSchedule":
        """A seeded schedule over delivery ``cells`` (``(round, server)``).

        Sampling from observed delivery cells (e.g. a fault-free run's
        :meth:`LoadTracker.load_cells`) guarantees the faults actually hit
        data movement; ``count`` faults are drawn without replacement.
        """
        if not cells or count < 1:
            return cls()
        rng = random.Random(seed)
        chosen = rng.sample(sorted(cells), min(count, len(cells)))
        faults = []
        for round_index, server in chosen:
            kind = kinds[rng.randrange(len(kinds))]
            delay = rng.randint(1, max(1, max_delay)) if kind == "straggler" else 0
            faults.append(Fault(kind, round_index, server, delay))
        return cls(faults)

    def to_dict(self) -> Dict[str, Any]:
        return {"faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "FaultSchedule":
        return cls(Fault.from_dict(entry) for entry in record.get("faults", ()))


class FaultInjector:
    """Per-run fault-injection state: schedule + recovery + firing log.

    Attach via ``MPCCluster(p, faults=schedule)`` (the cluster wraps the
    schedule in a fresh injector) or construct one explicitly to control
    the :class:`~repro.mpc.recovery.RecoveryPolicy`.  Injectors are
    single-use: one injector meters one cluster run.
    """

    def __init__(self, schedule: FaultSchedule,
                 policy: Optional[RecoveryPolicy] = None) -> None:
        self.schedule = schedule
        self.recovery = RecoveryManager(policy or RecoveryPolicy())
        self._pending: Dict[Tuple[int, int], List[int]] = {}
        for index, fault in enumerate(schedule.faults):
            self._pending.setdefault((fault.round, fault.server), []).append(index)
        self._fired: set = set()
        #: Faults that actually hit a delivery, in firing order.
        self.fired: List[Fault] = []

    @property
    def policy(self) -> RecoveryPolicy:
        return self.recovery.policy

    def deliver(self, view: Any, round_index: int, counts: Tuple[int, ...],
                op: str, payloads: Optional[Sequence[List[Any]]] = None) -> int:
        """The faulted delivery path for one cluster operation.

        Performs exactly the base charging/tracing the fault-free path
        would (so base meters match bit for bit), then fires any scheduled
        faults whose ``(round, server)`` coordinates match, checkpoints the
        round, and returns the next cursor position (base + recovery
        stalls).

        ``payloads`` are the per-server inboxes about to be handed to the
        algorithm (``None`` for broadcasts, whose list is shared).  A
        healthy injector never touches them — recovery restores every
        delivery — but the hook is where mutation tests plant delivery-
        corrupting bugs that the chaos tier must catch.
        """
        tracker = view.tracker
        servers = view.servers
        for local_index, count in enumerate(counts):
            tracker.record_receive(round_index, servers[local_index], count)
        tracker.note_round(round_index)
        tracer = tracker.tracer
        if tracer is not None and tracer.active:
            tracer.emit(op, round_index, servers, counts, tracker.phase_path())

        extra = 0
        for local_index, server in enumerate(servers):
            key = (round_index, server)
            indices = self._pending.get(key)
            if not indices:
                continue
            for index in indices:
                if index in self._fired:
                    continue
                self._fired.add(index)
                fault = self.schedule.faults[index]
                count = counts[local_index]
                if count == 0 and fault.kind in ("drop", "duplicate"):
                    continue  # nothing was in transit: the fault is moot
                self.fired.append(fault)
                self._emit_fault(view, round_index, fault, count)
                extra += self.recovery.recover(
                    fault, view, round_index, local_index, count
                )
        self.recovery.checkpoint_round(view, round_index, counts)
        return round_index + 1 + extra

    def _emit_fault(self, view: Any, round_index: int, fault: Fault,
                    count: int) -> None:
        tracer = view.tracker.tracer
        if tracer is None or not tracer.active:
            return
        tracer.emit(
            "fault",
            round_index,
            view.servers,
            (),
            view.tracker.phase_path(),
            detail={
                "kind": fault.kind,
                "server": fault.server,
                "in_transit": count,
                "delay": fault.delay,
            },
        )


def as_injector(faults: Any) -> "FaultInjector":
    """Coerce a schedule or injector into a fresh-enough injector.

    ``MPCCluster`` accepts either; passing a :class:`FaultSchedule` gets a
    fresh injector with the default policy (the common case), while a
    pre-built :class:`FaultInjector` carries a custom policy.
    """
    if isinstance(faults, FaultInjector):
        return faults
    if isinstance(faults, FaultSchedule):
        return FaultInjector(faults)
    raise TypeError(
        f"faults must be a FaultSchedule or FaultInjector, got {type(faults).__name__}"
    )
