"""Checkpointing and retry/replay recovery for injected faults.

The simulator's recovery story mirrors what a synchronous production
cluster would do (the paper's §1.3 model assumes none of this is needed):

* **Checkpointing** — after every delivering round, each server's state
  (everything it has received so far; initial round-0 placement is free,
  matching §1.3) is checkpointed.  The :class:`CheckpointStore` tracks the
  per-server state sizes; a ``checkpoint`` trace event is emitted per
  round when a tracer is attached.
* **Retry/replay** — when a fault fires, the :class:`RecoveryManager`
  repairs it: dropped messages are retransmitted from the senders' kept
  outboxes (one extra round), duplicated messages are deduplicated by
  sequence number at the receiver (extra received items, no extra round),
  a crashed server is replaced by a spare that restores the last
  checkpoint and replays the failed round (one extra round, restore +
  replay items), and a straggler stalls the whole synchronous round by its
  delay.  Every recovery charge goes to the
  :class:`~repro.mpc.stats.LoadTracker` under the distinct ``recovery``
  tag — the base load ``L`` is never touched.
* **Unrecoverable faults** — a crash with no spare left, a crash with
  checkpointing disabled, or a drop with no retry budget raises
  :class:`~repro.mpc.errors.UnrecoverableFaultError` naming the failing
  round, instead of silently corrupting the answer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from .errors import UnrecoverableFaultError

__all__ = ["RecoveryPolicy", "CheckpointStore", "RecoveryManager"]


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the retry/replay recovery protocol.

    ``spares`` is the number of replacement servers available for crash
    recovery; ``max_retries`` bounds retransmissions of a dropped delivery
    (per fault); ``checkpoint=False`` disables state checkpointing, which
    makes *any* crash unrecoverable (there is nothing to restore).
    """

    spares: int = 2
    max_retries: int = 1
    checkpoint: bool = True


class CheckpointStore:
    """Per-server checkpointed state sizes (items received so far).

    The simulator does not need the state's *contents* to recover — the
    failed round is re-executed from the senders' kept outboxes — but the
    restore cost of a replacement server is exactly the checkpoint size,
    and that is what gets charged under the ``recovery`` tag.
    """

    def __init__(self) -> None:
        self._state_items: Dict[int, int] = {}
        self._last_round: int = -1

    def extend(self, server: int, count: int) -> None:
        """Fold one round's delivery into ``server``'s checkpointed state."""
        if count:
            self._state_items[server] = self._state_items.get(server, 0) + count

    def mark_round(self, round_index: int) -> None:
        if round_index > self._last_round:
            self._last_round = round_index

    def state_size(self, server: int) -> int:
        """Items in ``server``'s last checkpoint (its restore cost)."""
        return self._state_items.get(server, 0)

    @property
    def last_round(self) -> int:
        """Most recent checkpointed round (-1 before any delivery)."""
        return self._last_round

    @property
    def total_items(self) -> int:
        return sum(self._state_items.values())


class RecoveryManager:
    """Executes the recovery protocol for one cluster run.

    Single-use and deterministic: the same fault hitting the same run
    state always produces the same charges, which is what makes chaos
    traces byte-identical across replays.
    """

    def __init__(self, policy: RecoveryPolicy) -> None:
        self.policy = policy
        self.checkpoints: Optional[CheckpointStore] = (
            CheckpointStore() if policy.checkpoint else None
        )
        self.spares_left = policy.spares
        #: (kind, round, server, items, extra_rounds) per recovered fault.
        self.recoveries: list = []

    # -- per-round checkpointing ------------------------------------------------

    def checkpoint_round(self, view: Any, round_index: int,
                         counts: Tuple[int, ...]) -> None:
        """Checkpoint every server's state after a delivering round."""
        store = self.checkpoints
        if store is None:
            return
        for local_index, count in enumerate(counts):
            store.extend(view.servers[local_index], count)
        store.mark_round(round_index)
        tracer = view.tracker.tracer
        if tracer is not None and tracer.active:
            tracer.emit(
                "checkpoint",
                round_index,
                view.servers,
                (),
                view.tracker.phase_path(),
                detail={"state_items": store.total_items},
            )

    # -- fault handling ----------------------------------------------------------

    def recover(self, fault: Any, view: Any, round_index: int, local_index: int,
                count: int) -> int:
        """Repair one fired fault; returns the extra rounds it consumed.

        ``count`` is the number of items the faulted server was due to
        receive in this round.  Charges go through the tracker's recovery
        meters; raises :class:`UnrecoverableFaultError` when the policy
        cannot repair the fault.
        """
        tracker = view.tracker
        server = view.servers[local_index]
        kind = fault.kind

        if kind == "straggler":
            extra = max(1, fault.delay)
            tracker.add_recovery_rounds(extra)
            self._emit(view, "recovery", round_index, fault,
                       items=0, extra_rounds=extra)
            self.recoveries.append((kind, round_index, server, 0, extra))
            return extra

        if kind == "duplicate":
            # The duplicate copy arrives and is discarded by sequence-number
            # dedup: extra received items, no extra round.
            tracker.record_recovery_receive(round_index, server, count)
            self._emit(view, "recovery", round_index, fault,
                       items=count, extra_rounds=0)
            self.recoveries.append((kind, round_index, server, count, 0))
            return 0

        if kind == "drop":
            if self.policy.max_retries < 1:
                raise UnrecoverableFaultError(
                    f"messages to server {server} dropped at round "
                    f"{round_index} and the recovery policy allows no "
                    f"retries",
                    kind=kind, round_index=round_index, server=server,
                )
            # Senders keep their outboxes until the round is acknowledged;
            # the retransmission occupies the next round.
            tracker.record_recovery_receive(round_index + 1, server, count)
            tracker.add_recovery_rounds(1)
            self._emit(view, "recovery", round_index, fault,
                       items=count, extra_rounds=1)
            self.recoveries.append((kind, round_index, server, count, 1))
            return 1

        if kind == "crash":
            if self.checkpoints is None:
                raise UnrecoverableFaultError(
                    f"server {server} crashed at round {round_index} with "
                    f"checkpointing disabled: nothing to restore",
                    kind=kind, round_index=round_index, server=server,
                )
            if self.spares_left < 1:
                raise UnrecoverableFaultError(
                    f"server {server} crashed at round {round_index} with no "
                    f"spare server left",
                    kind=kind, round_index=round_index, server=server,
                )
            self.spares_left -= 1
            # The spare assumes the crashed server's identity: it restores
            # the last checkpoint and the senders replay the failed round.
            items = self.checkpoints.state_size(server) + count
            tracker.record_recovery_receive(round_index + 1, server, items)
            tracker.add_recovery_rounds(1)
            self._emit(view, "recovery", round_index, fault,
                       items=items, extra_rounds=1)
            self.recoveries.append((kind, round_index, server, items, 1))
            return 1

        raise ValueError(f"unknown fault kind {kind!r}")

    def _emit(self, view: Any, op: str, round_index: int, fault: Any, *,
              items: int, extra_rounds: int) -> None:
        tracer = view.tracker.tracer
        if tracer is None or not tracer.active:
            return
        tracer.emit(
            op,
            round_index,
            view.servers,
            (),
            view.tracker.phase_path(),
            detail={
                "kind": fault.kind,
                "server": fault.server,
                "items": items,
                "extra_rounds": extra_rounds,
            },
        )
