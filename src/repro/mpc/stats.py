"""Load accounting for the simulated MPC cluster.

The paper's cost measure is the *load* ``L``: the maximum number of items
received by any server in any round (§1.3).  The tracker meters exactly
that, by recording every message delivery at a ``(round, server)`` cell.

A secondary *control channel* meters the O(p)-scalar coordination traffic
(splitter samples, group counts, prefix offsets) that MPC papers treat as
free under ``N ≥ p^{1+ε}``; it is reported separately and never mixed into
``L``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["LoadTracker", "CostReport"]


@dataclass
class CostReport:
    """Summary of one algorithm execution on the simulated cluster."""

    #: The paper's L: max items received by any server in any round.
    max_load: int
    #: Total number of items shipped over the interconnect.
    total_communication: int
    #: Number of communication rounds used.
    rounds: int
    #: O(p)-scalar coordination traffic (not part of ``max_load``).
    control_messages: int
    #: Semiring ⊗-operations performed ("elementary products", §3).
    elementary_products: int
    #: Per-phase (label, max_load) breakdown in execution order.
    phases: Tuple[Tuple[str, int], ...] = ()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostReport(load={self.max_load}, comm={self.total_communication}, "
            f"rounds={self.rounds}, products={self.elementary_products})"
        )


class LoadTracker:
    """Accumulates per-(round, server) incoming message counts."""

    def __init__(self) -> None:
        self._loads: Dict[int, Dict[int, int]] = {}
        self._control = 0
        self._products = 0
        self._phase_stack: List[Tuple[str, int]] = []
        self._phases: List[Tuple[str, int]] = []
        self._max_round = -1

    # -- recording -----------------------------------------------------------

    def record_receive(self, round_index: int, server: int, count: int) -> None:
        """Charge ``count`` incoming items to ``server`` in ``round_index``."""
        if count < 0:
            raise ValueError("negative message count")
        if count == 0:
            return
        row = self._loads.setdefault(round_index, {})
        row[server] = row.get(server, 0) + count
        if round_index > self._max_round:
            self._max_round = round_index

    def note_round(self, round_index: int) -> None:
        """Record that a round happened even if some servers received nothing."""
        if round_index > self._max_round:
            self._max_round = round_index

    def record_control(self, count: int) -> None:
        self._control += count

    def record_products(self, count: int) -> None:
        """Count semiring multiplications (the semiring-model work measure)."""
        self._products += count

    # -- phases ----------------------------------------------------------------

    def phase(self, label: str):
        """Context manager recording the max per-server load of a code span:

        >>> with tracker.phase("heavy-heavy"):
        ...     ...  # exchanges here are attributed to the phase
        """
        return _Phase(self, label)

    def push_phase(self, label: str) -> None:
        self._phase_stack.append((label, self._max_round + 1))

    def pop_phase(self) -> None:
        label, start_round = self._phase_stack.pop()
        load = 0
        for round_index, row in self._loads.items():
            if round_index >= start_round and row:
                load = max(load, max(row.values()))
        self._phases.append((label, load))

    # -- reporting -------------------------------------------------------------

    @property
    def max_load(self) -> int:
        best = 0
        for row in self._loads.values():
            if row:
                best = max(best, max(row.values()))
        return best

    @property
    def total_communication(self) -> int:
        return sum(sum(row.values()) for row in self._loads.values())

    @property
    def rounds(self) -> int:
        return self._max_round + 1

    @property
    def control_messages(self) -> int:
        return self._control

    @property
    def elementary_products(self) -> int:
        return self._products

    def per_round_loads(self) -> List[int]:
        """Max per-server load of each round, in round order."""
        return [
            max(self._loads[r].values()) if r in self._loads and self._loads[r] else 0
            for r in range(self.rounds)
        ]

    def report(self) -> CostReport:
        return CostReport(
            max_load=self.max_load,
            total_communication=self.total_communication,
            rounds=self.rounds,
            control_messages=self._control,
            elementary_products=self._products,
            phases=tuple(self._phases),
        )


class _Phase:
    """Context manager produced by :meth:`LoadTracker.phase`."""

    def __init__(self, tracker: LoadTracker, label: str) -> None:
        self._tracker = tracker
        self._label = label

    def __enter__(self) -> None:
        self._tracker.push_phase(self._label)

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self._tracker.pop_phase()
        else:  # keep the stack consistent on error paths
            self._tracker._phase_stack.pop()
        return False
