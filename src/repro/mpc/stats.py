"""Load accounting for the simulated MPC cluster.

The paper's cost measure is the *load* ``L``: the maximum number of items
received by any server in any round (§1.3).  The tracker meters exactly
that, by recording every message delivery at a ``(round, server)`` cell.

A secondary *control channel* meters the O(p)-scalar coordination traffic
(splitter samples, group counts, prefix offsets) that MPC papers treat as
free under ``N ≥ p^{1+ε}``; it is reported separately and never mixed into
``L``.

Phase attribution is *tag-based*: every delivery is charged to each phase
open at the moment it happens (each open phase keeps its own cell map), so
phases remain correct when ``run_parallel`` branches share round indices —
a round-range heuristic would let one branch's rounds pollute another's
phase.  An optional :class:`~repro.obs.events.Tracer` can be attached to
stream structured events; with none attached (the default), recording cost
is unchanged.

Fault recovery (:mod:`repro.mpc.faults`) charges its retries, replays and
checkpoint restores through :meth:`LoadTracker.record_recovery_receive` /
:meth:`LoadTracker.add_recovery_rounds` into *separate* cells — the
``recovery`` tag of :class:`CostReport` — so the base ``L`` under an
injected-fault run equals the fault-free ``L`` by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["LoadTracker", "CostReport"]


@dataclass
class CostReport:
    """Summary of one algorithm execution on the simulated cluster."""

    #: The paper's L: max items received by any server in any round.
    max_load: int
    #: Total number of items shipped over the interconnect.
    total_communication: int
    #: Number of communication rounds used.
    rounds: int
    #: O(p)-scalar coordination traffic (not part of ``max_load``).
    control_messages: int
    #: Semiring ⊗-operations performed ("elementary products", §3).
    elementary_products: int
    #: Per-phase (label, max_load) breakdown in execution order.
    phases: Tuple[Tuple[str, int], ...] = ()
    #: Recovery overhead (fault injection, :mod:`repro.mpc.faults`): metered
    #: in separate cells under the ``recovery`` tag, never mixed into the
    #: base ``max_load``/``total_communication``/``rounds`` above.
    recovery_load: int = 0
    recovery_communication: int = 0
    recovery_rounds: int = 0
    #: Incremental-view-maintenance overhead (:mod:`repro.ivm`): the cost of
    #: delta propagation runs, accumulated by :class:`~repro.ivm.MaterializedView`
    #: under the distinct ``maintenance`` tag — ``maintenance_load`` is the max
    #: load over delta runs, the other three are totals.  Same contract as the
    #: ``recovery`` tag: never mixed into the base meters, absent from
    #: :meth:`to_dict` until a delta actually charged them.
    maintenance_load: int = 0
    maintenance_communication: int = 0
    maintenance_rounds: int = 0
    maintenance_products: int = 0
    #: Resolved algorithm after ``auto``/``cost`` dispatch — stamped by the
    #: executor ("" for reports built outside it, e.g. from traces).
    algorithm: str = ""
    #: Planner decision summary (:meth:`repro.planner.Plan.summary`), set
    #: only on ``algorithm="cost"`` runs.
    plan: Optional[Dict[str, Any]] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostReport(load={self.max_load}, comm={self.total_communication}, "
            f"rounds={self.rounds}, products={self.elementary_products})"
        )

    # -- machine-readable export -----------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict (inverse of :meth:`from_dict`).

        Recovery fields appear only when a fault actually charged them, so
        fault-free exports stay byte-identical to pre-fault-injection runs;
        maintenance fields appear only when a view applied a delta, so
        IVM-free exports are untouched; likewise ``algorithm``/``plan``
        appear only when the executor stamped them.
        """
        record = {
            "max_load": self.max_load,
            "total_communication": self.total_communication,
            "rounds": self.rounds,
            "control_messages": self.control_messages,
            "elementary_products": self.elementary_products,
            "phases": [[label, load] for label, load in self.phases],
        }
        if self.recovery_load or self.recovery_communication or self.recovery_rounds:
            record["recovery_load"] = self.recovery_load
            record["recovery_communication"] = self.recovery_communication
            record["recovery_rounds"] = self.recovery_rounds
        if (self.maintenance_load or self.maintenance_communication
                or self.maintenance_rounds or self.maintenance_products):
            record["maintenance_load"] = self.maintenance_load
            record["maintenance_communication"] = self.maintenance_communication
            record["maintenance_rounds"] = self.maintenance_rounds
            record["maintenance_products"] = self.maintenance_products
        if self.algorithm:
            record["algorithm"] = self.algorithm
        if self.plan is not None:
            record["plan"] = self.plan
        return record

    @classmethod
    def from_dict(cls, record: Dict[str, Any]) -> "CostReport":
        """Rebuild a report from :meth:`to_dict` output (e.g. parsed JSON)."""
        return cls(
            max_load=int(record["max_load"]),
            total_communication=int(record["total_communication"]),
            rounds=int(record["rounds"]),
            control_messages=int(record.get("control_messages", 0)),
            elementary_products=int(record.get("elementary_products", 0)),
            phases=tuple(
                (str(label), int(load)) for label, load in record.get("phases", ())
            ),
            recovery_load=int(record.get("recovery_load", 0)),
            recovery_communication=int(record.get("recovery_communication", 0)),
            recovery_rounds=int(record.get("recovery_rounds", 0)),
            maintenance_load=int(record.get("maintenance_load", 0)),
            maintenance_communication=int(record.get("maintenance_communication", 0)),
            maintenance_rounds=int(record.get("maintenance_rounds", 0)),
            maintenance_products=int(record.get("maintenance_products", 0)),
            algorithm=str(record.get("algorithm", "")),
            plan=record.get("plan"),
        )


class _PhaseFrame:
    """One open phase: its label and its own (round, server) → count cells."""

    __slots__ = ("label", "cells")

    def __init__(self, label: str) -> None:
        self.label = label
        self.cells: Dict[Tuple[int, int], int] = {}


class LoadTracker:
    """Accumulates per-(round, server) incoming message counts."""

    def __init__(self, tracer: Optional[Any] = None,
                 profiler: Optional[Any] = None) -> None:
        self._loads: Dict[int, Dict[int, int]] = {}
        self._control = 0
        self._products = 0
        self._phase_stack: List[_PhaseFrame] = []
        self._phases: List[Tuple[str, int]] = []
        self._max_round = -1
        # Recovery ("chaos") overhead lives in its own cells so injected
        # faults can never perturb the base load meters.
        self._recovery_loads: Dict[int, Dict[int, int]] = {}
        self._recovery_rounds = 0
        #: Optional :class:`repro.obs.events.Tracer`; the cluster emits
        #: structured events through it when present (duck-typed so the mpc
        #: layer has no import dependency on :mod:`repro.obs`).
        self.tracer = tracer
        #: Optional :class:`repro.obs.profile.Profiler`; phase open/close
        #: and cluster operations record wall-clock spans into it when
        #: present (same duck-typing as ``tracer``; ``None`` — the default
        #: — keeps every hot path at a single ``None`` check).
        self.profiler = profiler

    # -- recording -----------------------------------------------------------

    def record_receive(self, round_index: int, server: int, count: int) -> None:
        """Charge ``count`` incoming items to ``server`` in ``round_index``.

        The charge also lands in every currently-open phase frame, which is
        what makes phase attribution immune to shared round indices.
        """
        if count < 0:
            raise ValueError("negative message count")
        if count == 0:
            return
        row = self._loads.setdefault(round_index, {})
        row[server] = row.get(server, 0) + count
        if round_index > self._max_round:
            self._max_round = round_index
        if self._phase_stack:
            cell = (round_index, server)
            for frame in self._phase_stack:
                frame.cells[cell] = frame.cells.get(cell, 0) + count

    def note_round(self, round_index: int) -> None:
        """Record that a round happened even if some servers received nothing."""
        if round_index > self._max_round:
            self._max_round = round_index

    def record_recovery_receive(self, round_index: int, server: int, count: int) -> None:
        """Charge ``count`` recovery items (retries, replays, checkpoint
        restores) to ``server`` around ``round_index``.

        Recovery charges land in a separate cell map: the base ``max_load``
        (the paper's ``L``) is provably untouched by injected faults, and the
        overhead is reported under the distinct ``recovery`` tag of
        :class:`CostReport`.
        """
        if count < 0:
            raise ValueError("negative recovery count")
        if count == 0:
            return
        row = self._recovery_loads.setdefault(round_index, {})
        row[server] = row.get(server, 0) + count

    def add_recovery_rounds(self, count: int) -> None:
        """Count ``count`` extra rounds spent on fault recovery/stalls."""
        if count < 0:
            raise ValueError("negative recovery round count")
        self._recovery_rounds += count

    def record_control(self, count: int) -> None:
        self._control += count

    def record_products(self, count: int) -> None:
        """Count semiring multiplications (the semiring-model work measure)."""
        self._products += count

    # -- phases ----------------------------------------------------------------

    def phase(self, label: str):
        """Context manager recording the max per-server load of a code span:

        >>> with tracker.phase("heavy-heavy"):
        ...     ...  # exchanges here are attributed to the phase
        """
        return _Phase(self, label)

    def push_phase(self, label: str) -> None:
        self._phase_stack.append(_PhaseFrame(label))
        if self.profiler is not None:
            self.profiler.start(label, kind="phase")

    def pop_phase(self) -> None:
        frame = self._phase_stack.pop()
        load = max(frame.cells.values()) if frame.cells else 0
        self._phases.append((frame.label, load))
        if self.profiler is not None:
            self.profiler.stop()

    def phase_path(self) -> Tuple[str, ...]:
        """Labels of the currently-open phases, outermost first."""
        return tuple(frame.label for frame in self._phase_stack)

    # -- reporting -------------------------------------------------------------

    @property
    def max_load(self) -> int:
        best = 0
        for row in self._loads.values():
            if row:
                best = max(best, max(row.values()))
        return best

    @property
    def total_communication(self) -> int:
        return sum(sum(row.values()) for row in self._loads.values())

    @property
    def rounds(self) -> int:
        return self._max_round + 1

    @property
    def control_messages(self) -> int:
        return self._control

    @property
    def elementary_products(self) -> int:
        return self._products

    @property
    def recovery_load(self) -> int:
        """Max per-(round, server) recovery charge (the ``recovery`` tag)."""
        best = 0
        for row in self._recovery_loads.values():
            if row:
                best = max(best, max(row.values()))
        return best

    @property
    def recovery_communication(self) -> int:
        return sum(sum(row.values()) for row in self._recovery_loads.values())

    @property
    def recovery_rounds(self) -> int:
        return self._recovery_rounds

    def per_round_loads(self) -> List[int]:
        """Max per-server load of each round, in round order."""
        return [
            max(self._loads[r].values()) if r in self._loads and self._loads[r] else 0
            for r in range(self.rounds)
        ]

    def load_cells(self) -> Dict[int, Dict[int, int]]:
        """Copy of the raw round → {server → received count} cells."""
        return {round_index: dict(row) for round_index, row in self._loads.items()}

    def report(self) -> CostReport:
        return CostReport(
            max_load=self.max_load,
            total_communication=self.total_communication,
            rounds=self.rounds,
            control_messages=self._control,
            elementary_products=self._products,
            phases=tuple(self._phases),
            recovery_load=self.recovery_load,
            recovery_communication=self.recovery_communication,
            recovery_rounds=self._recovery_rounds,
        )


class _Phase:
    """Context manager produced by :meth:`LoadTracker.phase`."""

    def __init__(self, tracker: LoadTracker, label: str) -> None:
        self._tracker = tracker
        self._label = label

    def __enter__(self) -> None:
        self._tracker.push_phase(self._label)

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        if exc_type is None:
            self._tracker.pop_phase()
        else:  # keep the stack consistent on error paths
            self._tracker._phase_stack.pop()
            if self._tracker.profiler is not None:
                self._tracker.profiler.stop()
        return False
