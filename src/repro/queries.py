"""High-level query builders — the sugar a downstream user reaches for.

The paper's formalism covers many everyday queries as special cases
(§1.1); these helpers build them without touching ``TreeQuery`` by hand:

* :func:`count_group_by` — ``SELECT y, COUNT(*) … GROUP BY y`` (annotations
  forced to 1 over the counting semiring);
* :func:`join_project` — the conjunctive query ``π_y(R1 ⋈ … ⋈ Rn)``
  (boolean semiring; returns the set of output tuples);
* :func:`k_hop` — ``∑ E(A0,A1) ⋈ E(A1,A2) ⋈ … ⋈ E(Ak−1,Ak)`` over any
  semiring: k-hop path counting, reachability, or shortest paths from one
  edge relation (a length-k line query, §4).
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Set, Tuple

from .core.executor import QueryResult, run_query
from .data.query import Instance, TreeQuery
from .data.relation import Relation
from .semiring import BOOLEAN, COUNTING, Semiring

__all__ = ["count_group_by", "join_project", "k_hop"]


def count_group_by(
    relations: Mapping[str, Relation],
    schemas: Sequence[Tuple[str, Tuple[str, str]]],
    group_by: Sequence[str],
    p: int = 16,
    algorithm: str = "auto",
) -> QueryResult:
    """COUNT(*) GROUP BY ``group_by`` over the natural join of ``schemas``.

    Existing annotations are ignored (set to 1).  With ``group_by = []``
    the result is the full join size |Q(R)| as a single tuple.
    """
    query = TreeQuery(tuple(schemas), frozenset(group_by))
    recounted = {
        name: Relation(name, rel.schema, [(values, 1) for values, _ in rel])
        for name, rel in relations.items()
    }
    instance = Instance(query, recounted, COUNTING)
    return run_query(instance, p=p, algorithm=algorithm)


def join_project(
    relations: Mapping[str, Relation],
    schemas: Sequence[Tuple[str, Tuple[str, str]]],
    output: Sequence[str],
    p: int = 16,
    algorithm: str = "auto",
) -> Set[Tuple]:
    """The conjunctive query π_output(⋈ schemas): distinct output tuples."""
    query = TreeQuery(tuple(schemas), frozenset(output))
    as_boolean = {
        name: Relation(name, rel.schema, [(values, True) for values, _ in rel])
        for name, rel in relations.items()
    }
    instance = Instance(query, as_boolean, BOOLEAN)
    result = run_query(instance, p=p, algorithm=algorithm)
    return {values for values, present in result.relation if present}


def k_hop(
    edges: Relation,
    k: int,
    semiring: Semiring,
    p: int = 16,
    algorithm: str = "auto",
) -> QueryResult:
    """Aggregate over all k-hop paths: result (source, target) → ⊕ over
    paths of the ⊗-product of edge annotations.

    Over COUNTING this counts k-hop paths, over BOOLEAN it is k-hop
    reachability, over (min,+) the cheapest k-hop route — one line query,
    many classics.
    """
    if k < 1:
        raise ValueError("k_hop needs k ≥ 1")
    if len(edges.schema) != 2:
        raise ValueError("k_hop needs a binary edge relation")
    attrs = [f"__H{i}" for i in range(k + 1)]
    schemas = tuple((f"E{i}", (attrs[i], attrs[i + 1])) for i in range(k))
    copies: Dict[str, Relation] = {
        f"E{i}": Relation(f"E{i}", (attrs[i], attrs[i + 1]), list(edges))
        for i in range(k)
    }
    query = TreeQuery(schemas, frozenset({attrs[0], attrs[-1]}))
    instance = Instance(query, copies, semiring)
    return run_query(instance, p=p, algorithm=algorithm)
