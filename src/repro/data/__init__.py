"""Annotated relations, tree queries, and structural query operations."""

from .hypergraph import Hypergraph, attribute_degrees, is_alpha_acyclic, tree_adjacency
from .query import Instance, TreeQuery
from .relation import AnnotatedTuple, DistRelation, Relation
from .treeops import (
    ReductionStep,
    SkeletonInfo,
    reduction_plan,
    skeleton_info,
    twig_decomposition,
)

__all__ = [
    "Relation",
    "DistRelation",
    "AnnotatedTuple",
    "TreeQuery",
    "Instance",
    "Hypergraph",
    "is_alpha_acyclic",
    "tree_adjacency",
    "attribute_degrees",
    "ReductionStep",
    "reduction_plan",
    "twig_decomposition",
    "SkeletonInfo",
    "skeleton_info",
]
