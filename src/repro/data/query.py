"""Tree join-aggregate queries and their classification (paper §1.1, §1.5).

A :class:`TreeQuery` is a natural join whose hypergraph is a tree of binary
relations, together with a set of output attributes ``y``.  The paper's
algorithm zoo is organized by query shape; :meth:`TreeQuery.classify` places
a query into the finest class an algorithm exists for:

* ``free-connex`` — output attributes form a connected subtree (§1.2);
* ``matmul`` — ∑_B R1(A,B) ⋈ R2(B,C) (§3);
* ``line`` — path query, endpoints output (§4);
* ``star`` — all relations share a non-output centre, leaves output (§5);
* ``star-like`` — line-query arms sharing one non-output attribute (§6);
* ``twig`` — output attributes are exactly the leaves (§7.1);
* ``tree`` — anything else (general case, §7).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..semiring import Semiring
from .hypergraph import attribute_degrees, tree_adjacency
from .relation import Relation

__all__ = ["TreeQuery", "Instance", "QueryClass"]

QueryClass = str  # one of the literals documented above


@dataclass(frozen=True)
class TreeQuery:
    """An acyclic join-aggregate query over binary relations.

    ``relations[i] = (name, (x, y))`` and ``output ⊆ attributes``.
    """

    relations: Tuple[Tuple[str, Tuple[str, str]], ...]
    output: FrozenSet[str]

    def __post_init__(self) -> None:
        names = [name for name, _ in self.relations]
        if len(set(names)) != len(names):
            raise ValueError("relation names must be unique")
        adjacency = tree_adjacency(self.relations)  # validates tree-ness
        unknown = set(self.output) - set(adjacency)
        if unknown:
            raise ValueError(f"output attributes {unknown!r} not in the query")

    # -- structure ---------------------------------------------------------------

    @cached_property
    def adjacency(self) -> Dict[str, List[Tuple[int, str]]]:
        return tree_adjacency(self.relations)

    @cached_property
    def attributes(self) -> FrozenSet[str]:
        return frozenset(self.adjacency)

    @cached_property
    def degrees(self) -> Dict[str, int]:
        return attribute_degrees(self.relations)

    @cached_property
    def leaves(self) -> FrozenSet[str]:
        return frozenset(a for a, d in self.degrees.items() if d == 1)

    @property
    def n(self) -> int:
        return len(self.relations)

    def relation_named(self, name: str) -> Tuple[str, Tuple[str, str]]:
        for entry in self.relations:
            if entry[0] == name:
                return entry
        raise KeyError(name)

    def schema_of(self, name: str) -> Tuple[str, str]:
        return self.relation_named(name)[1]

    # -- orientation helpers --------------------------------------------------------

    def path_order(self) -> Optional[List[str]]:
        """Attribute sequence if the tree is a path, else ``None``."""
        degrees = self.degrees
        if any(d > 2 for d in degrees.values()):
            return None
        endpoints = sorted(a for a, d in degrees.items() if d == 1)
        if len(endpoints) != 2:
            return None
        order = [endpoints[0]]
        previous: Optional[str] = None
        while True:
            current = order[-1]
            next_attrs = [b for _, b in self.adjacency[current] if b != previous]
            if not next_attrs:
                break
            previous = current
            order.append(next_attrs[0])
        return order

    def postorder(self, root: str) -> List[Tuple[int, str, str]]:
        """Relations as ``(index, child_attr, parent_attr)`` in a bottom-up
        order towards ``root`` (leaves first)."""
        if root not in self.attributes:
            raise KeyError(root)
        order: List[Tuple[int, str, str]] = []
        stack: List[Tuple[str, Optional[int]]] = [(root, None)]
        visit: List[Tuple[int, str, str]] = []
        seen_edges = set()
        while stack:
            attr, via = stack.pop()
            for rel_index, neighbour in self.adjacency[attr]:
                if rel_index == via or rel_index in seen_edges:
                    continue
                seen_edges.add(rel_index)
                visit.append((rel_index, neighbour, attr))
                stack.append((neighbour, rel_index))
        order = list(reversed(visit))
        return order

    def centre(self) -> Optional[str]:
        """The unique attribute of degree ≥ 3, if there is exactly one."""
        high = [a for a, d in self.degrees.items() if d >= 3]
        return high[0] if len(high) == 1 else None

    # -- classification ----------------------------------------------------------------

    def is_full(self) -> bool:
        return self.output == self.attributes

    def is_free_connex(self) -> bool:
        """Output attributes form a connected subtree (footnote 1)."""
        output = set(self.output)
        if len(output) <= 1:
            return True
        start = next(iter(output))
        seen = {start}
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for _, neighbour in self.adjacency[current]:
                if neighbour in output and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == output

    def is_line(self) -> bool:
        """Path query whose outputs are exactly the two endpoints (§4)."""
        order = self.path_order()
        if order is None:
            return False
        return self.output == frozenset({order[0], order[-1]}) and len(order) >= 3

    def is_matmul(self) -> bool:
        return self.is_line() and self.n == 2

    def is_star(self) -> bool:
        """All relations share one non-output centre; leaves output (§5)."""
        if self.n < 2:
            return False
        shared = set.intersection(*(set(attrs) for _, attrs in self.relations))
        if len(shared) != 1:
            return False
        centre = next(iter(shared))
        others = self.attributes - {centre}
        return centre not in self.output and self.output == others

    def is_star_like(self) -> bool:
        """Line-query arms glued at one shared non-output attribute (§6).

        Structurally: every leaf is output, every internal attribute is
        non-output, and at most one attribute has degree ≥ 3.
        """
        if not self.is_twig():
            return False
        high = [a for a, d in self.degrees.items() if d >= 3]
        return len(high) <= 1

    def is_twig(self) -> bool:
        """Output attributes are exactly the leaves (§7.1)."""
        return self.output == self.leaves and self.n >= 1

    def classify(self) -> QueryClass:
        """Finest matching class, in the dispatch order used by the executor."""
        if self.is_free_connex():
            return "free-connex"
        if self.is_matmul():
            return "matmul"
        if self.is_line():
            return "line"
        if self.is_star():
            return "star"
        if self.is_star_like():
            return "star-like"
        if self.is_twig():
            return "twig"
        return "tree"


@dataclass
class Instance:
    """A query together with its relations and the semiring of annotations."""

    query: TreeQuery
    relations: Mapping[str, Relation]
    semiring: Semiring

    def __post_init__(self) -> None:
        for name, attrs in self.query.relations:
            if name not in self.relations:
                raise ValueError(f"missing relation {name!r}")
            if self.relations[name].schema != attrs:
                raise ValueError(
                    f"relation {name!r} schema {self.relations[name].schema!r} "
                    f"does not match query schema {attrs!r}"
                )

    @property
    def total_size(self) -> int:
        """The paper's N = Σ_e |R_e|."""
        return sum(len(r) for r in self.relations.values())

    def max_relation_size(self) -> int:
        return max(len(r) for r in self.relations.values())

    def relation(self, name: str) -> Relation:
        return self.relations[name]

    def ordered_relations(self) -> List[Relation]:
        return [self.relations[name] for name, _ in self.query.relations]
