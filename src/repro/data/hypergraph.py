"""Join hypergraphs and acyclicity (paper §1.1).

A natural join is a hypergraph ``Q = (V, E)``: vertices are attributes,
hyperedges are relation schemas.  The paper restricts to *binary* relations
whose edge graph is a tree; this module provides the general hypergraph with
GYO-reduction acyclicity (used for validation) and the tree-specific
adjacency structure every algorithm walks.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

__all__ = [
    "Hypergraph",
    "is_alpha_acyclic",
    "tree_adjacency",
    "attribute_degrees",
    "join_tree_edges",
]


class Hypergraph:
    """An immutable hypergraph over named attributes."""

    def __init__(self, edges: Iterable[Sequence[str]]) -> None:
        self.edges: Tuple[FrozenSet[str], ...] = tuple(frozenset(e) for e in edges)
        if not self.edges:
            raise ValueError("hypergraph needs at least one edge")
        vertices: Set[str] = set()
        for edge in self.edges:
            if not edge:
                raise ValueError("empty hyperedge")
            vertices |= edge
        self.vertices: FrozenSet[str] = frozenset(vertices)

    def incident_edges(self, vertex: str) -> List[int]:
        return [i for i, edge in enumerate(self.edges) if vertex in edge]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Hypergraph({[set(e) for e in self.edges]})"


def is_alpha_acyclic(hypergraph: Hypergraph) -> bool:
    """GYO reduction: repeatedly remove *ears* until nothing is left.

    An ear is an edge whose non-exclusive vertices are all contained in some
    other edge.  The hypergraph is α-acyclic iff the reduction empties it.
    """
    edges: List[Set[str]] = [set(e) for e in hypergraph.edges]
    changed = True
    while changed and len(edges) > 1:
        changed = False
        # Remove vertices that occur in exactly one edge (they never block).
        counts: Dict[str, int] = {}
        for edge in edges:
            for vertex in edge:
                counts[vertex] = counts.get(vertex, 0) + 1
        for edge in edges:
            exclusive = {v for v in edge if counts[v] == 1}
            if exclusive:
                edge -= exclusive
                changed = True
        # Remove empty edges and edges contained in another edge.
        survivors: List[Set[str]] = []
        for i, edge in enumerate(edges):
            if not edge:
                changed = True
                continue
            contained = any(
                j != i and edge <= other for j, other in enumerate(edges)
            )
            if contained:
                changed = True
            else:
                survivors.append(edge)
        edges = survivors
    return len(edges) <= 1


def tree_adjacency(
    relations: Sequence[Tuple[str, Tuple[str, str]]],
) -> Dict[str, List[Tuple[int, str]]]:
    """Adjacency of the attribute tree of a binary-relation query.

    ``relations[i] = (name, (x, y))``.  Returns attribute →
    list of ``(relation index, neighbour attribute)``.  Raises if the edge
    graph is not a tree (cycle, self-loop, or disconnected).
    """
    adjacency: Dict[str, List[Tuple[int, str]]] = {}
    for index, (name, attrs) in enumerate(relations):
        if len(attrs) != 2 or attrs[0] == attrs[1]:
            raise ValueError(f"relation {name!r} must have two distinct attributes")
        x, y = attrs
        adjacency.setdefault(x, []).append((index, y))
        adjacency.setdefault(y, []).append((index, x))
    vertices = list(adjacency)
    if len(relations) != len(vertices) - 1:
        raise ValueError("edge graph is not a tree (|E| != |V| - 1)")
    # connectivity check
    seen = {vertices[0]}
    frontier = [vertices[0]]
    while frontier:
        current = frontier.pop()
        for _, neighbour in adjacency[current]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    if len(seen) != len(vertices):
        raise ValueError("edge graph is not connected")
    return adjacency


def join_tree_edges(
    relations: Sequence[Tuple[str, Sequence[str]]],
) -> List[Tuple[str, str, str]]:
    """A valid join tree over the relations of a tree query.

    Returns edges ``(name_a, name_b, shared_attribute)``.  Construction: for
    every attribute, link all relations containing it in a star around the
    first such relation.  For a binary tree query this yields exactly
    ``n − 1`` edges forming a tree in which, for every attribute, the
    relations containing it induce a connected subtree (the join-tree
    property Yannakakis needs).
    """
    first_holder: Dict[str, str] = {}
    edges: List[Tuple[str, str, str]] = []
    for name, attrs in relations:
        for attribute in attrs:
            if attribute in first_holder:
                edges.append((first_holder[attribute], name, attribute))
            else:
                first_holder[attribute] = name
    return edges


def attribute_degrees(
    relations: Sequence[Tuple[str, Tuple[str, str]]],
) -> Dict[str, int]:
    """Number of relations each attribute appears in."""
    degrees: Dict[str, int] = {}
    for _, attrs in relations:
        for attribute in attrs:
            degrees[attribute] = degrees.get(attribute, 0) + 1
    return degrees
