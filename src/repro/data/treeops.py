"""Structural operations on tree queries for the general algorithm (paper §7).

Three purely structural transformations, applied before any data moves:

1. **Reduction** (§7 preprocessing): repeatedly absorb a relation that has a
   non-output attribute appearing in no other relation (a non-output leaf);
   its annotations are ⊕-aggregated over that attribute and ⊗-folded into a
   neighbouring relation.  Afterwards *every leaf attribute is output*.

2. **Twig decomposition** (§7, Figure 2): cut the reduced tree at every
   non-leaf output attribute.  Each twig is a subquery whose output
   attributes are exactly its leaves; the final answer is the (free-connex)
   join of the twig results along the cut attributes.

3. **Skeleton** (§7.1, Figure 3): for a twig that is not star-like, let
   ``V*`` be the attributes in ≥ 3 relations and ``T_{V*}`` the subtree
   spanning them.  Each leaf ``B`` of ``T_{V*}`` roots a star-like component
   ``T_B`` (its arms end at output attributes ``V_B ∩ y``); the skeleton is
   the twig with each ``T_B`` contracted into ``B``.  ``S`` denotes the
   skeleton's leaves: the contracted ``B``'s (non-output) plus output leaves
   whose arms hang off internal skeleton vertices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from .query import TreeQuery

__all__ = [
    "ReductionStep",
    "reduction_plan",
    "twig_decomposition",
    "SkeletonInfo",
    "skeleton_info",
]


@dataclass(frozen=True)
class ReductionStep:
    """Absorb ``relation`` into ``target``: ⊕-aggregate out ``aggregated_attr``
    and ⊗-fold the per-``shared_attr`` totals into ``target``'s annotations."""

    relation: str
    aggregated_attr: str
    shared_attr: str
    target: str


def reduction_plan(query: TreeQuery) -> Tuple[List[ReductionStep], TreeQuery]:
    """The §7 preprocessing as a list of absorption steps plus the residual query.

    A relation ``e = (v, u)`` is absorbable when ``v`` is a non-output leaf.
    The absorption aggregates ``R_e`` over ``v`` and multiplies the result
    into any other relation containing ``u``.  Iterates to fixpoint.  If the
    whole query collapses to a single relation it is returned as-is (the
    caller finishes it with one local aggregation).
    """
    relations = list(query.relations)
    output = set(query.output)
    steps: List[ReductionStep] = []

    changed = True
    while changed and len(relations) > 1:
        changed = False
        degrees: Dict[str, int] = {}
        for _, attrs in relations:
            for attribute in attrs:
                degrees[attribute] = degrees.get(attribute, 0) + 1
        for index, (name, attrs) in enumerate(relations):
            non_output_leaves = [
                a for a in attrs if a not in output and degrees[a] == 1
            ]
            if not non_output_leaves:
                continue
            aggregated = non_output_leaves[0]
            shared = attrs[0] if attrs[1] == aggregated else attrs[1]
            target = next(
                (other_name for other_name, other_attrs in relations
                 if other_name != name and shared in other_attrs),
                None,
            )
            if target is None:
                continue
            steps.append(ReductionStep(name, aggregated, shared, target))
            relations.pop(index)
            changed = True
            break

    reduced = TreeQuery(tuple(relations), frozenset(output & _attrs_of(relations)))
    return steps, reduced


def _attrs_of(relations: Sequence[Tuple[str, Tuple[str, str]]]) -> Set[str]:
    out: Set[str] = set()
    for _, attrs in relations:
        out.update(attrs)
    return out


def twig_decomposition(query: TreeQuery) -> List[TreeQuery]:
    """Split a reduced query at every non-leaf output attribute (Figure 2).

    Returns the twigs in an order in which consecutive reassembly works:
    each twig (after the first) shares at least one cut attribute with the
    union of the previous ones.  Every returned twig satisfies
    ``twig.output == twig.leaves``.
    """
    cut_attrs = {
        a for a in query.output if query.degrees.get(a, 0) >= 2
    }
    # Union-find over relations: same twig iff connected without crossing a cut.
    parent = list(range(query.n))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    for attribute, incident in query.adjacency.items():
        if attribute in cut_attrs:
            continue
        first = incident[0][0]
        for rel_index, _ in incident[1:]:
            union(first, rel_index)

    groups: Dict[int, List[int]] = {}
    for index in range(query.n):
        groups.setdefault(find(index), []).append(index)

    twigs: List[TreeQuery] = []
    for members in groups.values():
        relations = tuple(query.relations[i] for i in members)
        attrs = _attrs_of(relations)
        twig_output = frozenset(a for a in attrs if a in query.output or a in cut_attrs)
        twigs.append(TreeQuery(relations, twig_output))

    # Order twigs so each one shares an attribute with the prefix union.
    ordered: List[TreeQuery] = []
    remaining = list(twigs)
    seen_attrs: Set[str] = set()
    while remaining:
        if not ordered:
            ordered.append(remaining.pop(0))
            seen_attrs |= set(ordered[-1].attributes)
            continue
        for i, twig in enumerate(remaining):
            if set(twig.attributes) & seen_attrs:
                ordered.append(remaining.pop(i))
                seen_attrs |= set(ordered[-1].attributes)
                break
        else:  # disconnected (cannot happen for a tree)
            ordered.append(remaining.pop(0))
            seen_attrs |= set(ordered[-1].attributes)
    return ordered


@dataclass
class SkeletonInfo:
    """Decomposition of a non-star-like twig (Figure 3).

    Attributes
    ----------
    v_star:
        Attributes appearing in ≥ 3 relations.
    tv_star:
        Vertices of the subtree spanned by ``v_star``.
    branch_roots:
        The leaves ``B`` of ``T_{V*}`` — the non-output skeleton leaves
        ``S ∩ ȳ`` whose hanging components get contracted.
    branches:
        ``B`` → the star-like component ``T_B`` as a :class:`TreeQuery` whose
        output is ``{B-side arm ends}``; its attribute set is ``V_B``.
    residual_relations:
        The twig's relations *not* inside any ``T_B`` (the skeleton's edges).
    """

    v_star: FrozenSet[str]
    tv_star: FrozenSet[str]
    branch_roots: Tuple[str, ...]
    branches: Dict[str, TreeQuery]
    residual_relations: Tuple[Tuple[str, Tuple[str, str]], ...]


def skeleton_info(twig: TreeQuery) -> SkeletonInfo:
    """Compute the skeleton decomposition of a twig (must not be star-like)."""
    if twig.is_star_like():
        raise ValueError("skeleton decomposition applies to non-star-like twigs")
    v_star = frozenset(a for a, d in twig.degrees.items() if d >= 3)
    if len(v_star) < 2:
        raise ValueError("a non-star-like twig must have ≥ 2 high-degree attributes")

    # T_{V*}: vertices on a path between two members of v_star.
    tv_star = _spanning_subtree(twig, v_star)

    # Leaves of T_{V*}: members of v_star with exactly one tv_star neighbour.
    branch_roots: List[str] = []
    for attribute in sorted(v_star):
        neighbours_in = [
            b for _, b in twig.adjacency[attribute] if b in tv_star
        ]
        if len(neighbours_in) == 1:
            branch_roots.append(attribute)

    branches: Dict[str, TreeQuery] = {}
    branch_relations: Set[str] = set()
    for root in branch_roots:
        component = _hanging_component(twig, root, tv_star)
        relations = tuple(
            entry for entry in twig.relations if entry[0] in component
        )
        attrs = _attrs_of(relations)
        outputs = frozenset(a for a in attrs if a in twig.output)
        branches[root] = TreeQuery(relations, outputs)
        branch_relations |= component

    residual = tuple(
        entry for entry in twig.relations if entry[0] not in branch_relations
    )
    return SkeletonInfo(
        v_star=v_star,
        tv_star=frozenset(tv_star),
        branch_roots=tuple(branch_roots),
        branches=branches,
        residual_relations=residual,
    )


def _spanning_subtree(query: TreeQuery, targets: FrozenSet[str]) -> Set[str]:
    """Vertices on paths between members of ``targets`` in the attribute tree."""
    root = next(iter(sorted(targets)))
    # DFS from root; keep a vertex if its subtree contains a target, and the
    # vertex lies between root and that target.
    keep: Set[str] = set()

    def dfs(attribute: str, parent: str | None) -> bool:
        found = attribute in targets
        for _, neighbour in query.adjacency[attribute]:
            if neighbour == parent:
                continue
            if dfs(neighbour, attribute):
                keep.add(neighbour)
                found = True
        return found

    dfs(root, None)
    keep.add(root)
    # Prune dangling non-target vertices from the root side: the spanned
    # subtree is the minimal connected set containing all targets.
    changed = True
    while changed:
        changed = False
        for attribute in list(keep):
            if attribute in targets:
                continue
            inside = [b for _, b in query.adjacency[attribute] if b in keep]
            if len(inside) <= 1:
                keep.discard(attribute)
                changed = True
    return keep


def _hanging_component(
    query: TreeQuery, root: str, tv_star: Set[str] | FrozenSet[str]
) -> Set[str]:
    """Names of relations in the component hanging at ``root`` away from
    ``T_{V*}`` (the relations of the star-like query ``T_root``)."""
    component: Set[str] = set()
    stack: List[Tuple[str, str | None]] = [(root, None)]
    visited_attrs = {root}
    while stack:
        attribute, via = stack.pop()
        for rel_index, neighbour in query.adjacency[attribute]:
            name = query.relations[rel_index][0]
            if name == via:
                continue
            # Do not cross back into the spanned subtree from the root.
            if attribute == root and neighbour in tv_star:
                continue
            if name in component:
                continue
            component.add(name)
            if neighbour not in visited_attrs:
                visited_attrs.add(neighbour)
                stack.append((neighbour, name))
    return component
