"""Annotated relations (paper §1.1).

A relation ``R_e`` over attributes ``e`` is a set of tuples, each carrying an
annotation from a commutative semiring.  :class:`Relation` is the sequential
(logical) form used by generators, the RAM oracle, and as the result type;
:class:`DistRelation` couples a schema with a
:class:`~repro.mpc.distributed.Distributed` of ``(values, annotation)`` pairs
living on a cluster view.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..mpc.cluster import ClusterView
from ..mpc.distributed import Distributed
from ..semiring import Semiring

__all__ = ["Relation", "DistRelation", "AnnotatedTuple"]

#: The wire format of one annotated tuple: (attribute values, annotation).
AnnotatedTuple = Tuple[Tuple[Any, ...], Any]


class Relation:
    """A named, schema'd set of annotated tuples.

    Tuples are keyed by their attribute values; inserting a duplicate key
    ⊕-combines annotations when a semiring is supplied (and raises otherwise),
    so a :class:`Relation` is always a *set* with aggregated annotations.
    """

    def __init__(
        self,
        name: str,
        schema: Sequence[str],
        tuples: Optional[Iterable[AnnotatedTuple]] = None,
        semiring: Optional[Semiring] = None,
    ) -> None:
        if len(set(schema)) != len(schema):
            raise ValueError(f"duplicate attribute in schema {schema!r}")
        self.name = name
        self.schema: Tuple[str, ...] = tuple(schema)
        self.tuples: Dict[Tuple[Any, ...], Any] = {}
        #: per-attribute-index caches of (column values, value -> multiplicity);
        #: dropped whenever a *new* tuple key is inserted (annotation
        #: ⊕-combines keep the key set, so they leave the caches valid).
        self._indexes: Dict[int, Tuple[List[Any], Counter]] = {}
        for values, annotation in tuples or ():
            self.add(values, annotation, semiring)

    # -- mutation ---------------------------------------------------------------

    def add(
        self,
        values: Sequence[Any],
        annotation: Any,
        semiring: Optional[Semiring] = None,
    ) -> None:
        """Insert a tuple; duplicates ⊕-combine when a semiring is given."""
        key = tuple(values)
        if len(key) != len(self.schema):
            raise ValueError(
                f"tuple arity {len(key)} does not match schema {self.schema!r}"
            )
        if key in self.tuples:
            if semiring is None:
                raise ValueError(f"duplicate tuple {key!r} without a semiring to combine")
            self.tuples[key] = semiring.add(self.tuples[key], annotation)
        else:
            self.tuples[key] = annotation
            if self._indexes:
                self._indexes.clear()

    # -- inspection ---------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterable[AnnotatedTuple]:
        return iter(self.tuples.items())

    def __contains__(self, values: Sequence[Any]) -> bool:
        return tuple(values) in self.tuples

    def annotation(self, values: Sequence[Any]) -> Any:
        """The annotation of one tuple (KeyError when absent)."""
        return self.tuples[tuple(values)]

    def attr_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema (KeyError when absent)."""
        try:
            return self.schema.index(attribute)
        except ValueError:
            raise KeyError(f"{attribute!r} not in schema {self.schema!r}") from None

    def _index(self, attribute: str) -> Tuple[List[Any], Counter]:
        """The memoized (column, multiplicities) pair of one attribute.

        Built in one O(n) pass on first access; repeated ``degree`` probes —
        the hot statistic of every heavy/light split — are O(1) afterwards.
        """
        index = self.attr_index(attribute)
        cached = self._indexes.get(index)
        if cached is None:
            column = [values[index] for values in self.tuples]
            cached = (column, Counter(column))
            self._indexes[index] = cached
        return cached

    def column(self, attribute: str) -> List[Any]:
        """All values (with multiplicity) of one attribute."""
        return list(self._index(attribute)[0])

    def active_domain(self, attribute: str) -> set:
        """Distinct values of ``attribute`` occurring in the relation."""
        return set(self._index(attribute)[1])

    def degree(self, attribute: str, value: Any) -> int:
        """|σ_{attribute=value} R| — the paper's degree statistic (§2.1)."""
        return self._index(attribute)[1].get(value, 0)

    def project_keys(self, attributes: Sequence[str]) -> set:
        """Distinct value combinations of ``attributes`` (set projection)."""
        indices = [self.attr_index(a) for a in attributes]
        return {tuple(values[i] for i in indices) for values in self.tuples}

    # -- equality (semantic: same schema, tuples, annotations) --------------------

    def same_contents(self, other: "Relation") -> bool:
        """Same schema, tuples, and annotations (names may differ)."""
        return self.schema == other.schema and self.tuples == other.tuples

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Relation({self.name}{self.schema}, {len(self)} tuples)"


class DistRelation:
    """A relation distributed over a cluster view."""

    def __init__(self, schema: Sequence[str], data: Distributed) -> None:
        self.schema: Tuple[str, ...] = tuple(schema)
        self.data = data

    @classmethod
    def load(
        cls,
        view: ClusterView,
        relation: Relation,
        semiring: Optional[Semiring] = None,
    ) -> "DistRelation":
        """Round-0 placement of a logical relation (free, per the model).

        Under the ``"columnar"`` backend (and given the ``semiring``, so
        the annotation dtype is known), the relation is encoded once into
        a :class:`~repro.mpc.columnar.ColumnarData` — the same contiguous
        ⌈n/p⌉ placement, physically stored as int64 code columns plus a
        typed annotation array.  Anything that does not fit the semiring's
        profile loads on the reference item path instead.
        """
        if semiring is not None:
            from ..backends.dispatch import columnar_enabled

            if columnar_enabled(view):
                columnar = cls._load_columnar(view, relation, semiring)
                if columnar is not None:
                    return columnar
        return cls(relation.schema, Distributed.from_items(view, list(relation)))

    @classmethod
    def _load_columnar(
        cls, view: ClusterView, relation: Relation, semiring: Semiring
    ) -> Optional["DistRelation"]:
        from ..backends.batch import ColumnarBatch
        from ..backends.columnar import encode_annotations, profile_of
        from ..mpc.columnar import ColumnarData

        profile = profile_of(semiring)
        if profile is None:
            return None
        items = list(relation)
        annotations = encode_annotations([item[1] for item in items], profile)
        if annotations is None:
            return None
        codec = view.cluster.codec
        width = len(relation.schema)
        columns = tuple(
            codec.encode_many([item[0][j] for item in items])
            for j in range(width)
        )
        batch = ColumnarBatch(columns, annotations, len(items), "items")
        return cls(relation.schema, ColumnarData.from_batch(view, batch, codec))

    @property
    def view(self) -> ClusterView:
        return self.data.view

    @property
    def total_size(self) -> int:
        return self.data.total_size

    def attr_index(self, attribute: str) -> int:
        """Position of ``attribute`` in the schema (KeyError when absent)."""
        try:
            return self.schema.index(attribute)
        except ValueError:
            raise KeyError(f"{attribute!r} not in schema {self.schema!r}") from None

    def key_fn(self, attributes: Sequence[str]) -> Callable[[AnnotatedTuple], Tuple]:
        """A function extracting the sub-tuple of ``attributes`` from an item.

        The returned callable carries the schema positions it reads as a
        ``.indices`` attribute, so columnar fast paths can compute the same
        keys from code columns without decoding items.
        """
        indices = tuple(self.attr_index(a) for a in attributes)
        if len(indices) == 1:
            index = indices[0]
            fn = lambda item: (item[0][index],)  # noqa: E731
        else:
            fn = lambda item: tuple(item[0][i] for i in indices)  # noqa: E731
        fn.indices = indices
        return fn

    def with_data(self, data: Distributed) -> "DistRelation":
        """Same schema over a different distributed payload."""
        return DistRelation(self.schema, data)

    def collect(self, name: str, semiring: Semiring) -> Relation:
        """Materialize as a logical relation (inspection / test oracle path)."""
        return Relation(name, self.schema, self.data.collect(), semiring=semiring)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DistRelation({self.schema}, {self.total_size} tuples)"
