"""Structured experiment reports.

The benchmark suite prints tables for humans; this module produces the
same comparisons as *data* — for notebooks, CI dashboards, or the CLI.
The measurement entry points live on the :mod:`repro.api` facade
(:func:`repro.api.compare`, :func:`repro.api.table1`); this module keeps
the row data type and :func:`render_markdown`.  The 1.x deprecated
forwarders (``table1_report``, ``compare_on``) were removed with facade
2.0 — see CHANGELOG.md.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Sequence

from .api import TABLE1_FAMILIES

__all__ = [
    "ComparisonRow",
    "TABLE1_FAMILIES",
    "render_markdown",
]


@dataclass(frozen=True)
class ComparisonRow:
    """Baseline-vs-paper measurement for one instance."""

    label: str
    query_class: str
    input_size: int
    out_size: int
    baseline_load: int
    new_load: int
    baseline_comm: int
    new_comm: int
    rounds: int

    @property
    def speedup(self) -> float:
        """Baseline load over new-algorithm load (> 1 ⇒ the paper wins)."""
        return self.baseline_load / max(1, self.new_load)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict (all fields plus the derived speedup)."""
        record = asdict(self)
        record["speedup"] = self.speedup
        return record


def render_markdown(rows: Sequence[ComparisonRow]) -> str:
    """Rows as a GitHub-flavoured markdown table."""
    lines = [
        "| query | class | N | OUT | L(yann) | L(ours) | speedup |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.label} | {row.query_class} | {row.input_size} | "
            f"{row.out_size} | {row.baseline_load} | {row.new_load} | "
            f"{row.speedup:.2f}× |"
        )
    return "\n".join(lines)
