"""Structured experiment reports.

The benchmark suite prints tables for humans; this module produces the
same comparisons as *data* — for notebooks, CI dashboards, or the CLI.
The measurement entry points moved to the :mod:`repro.api` facade
(:func:`repro.api.compare`, :func:`repro.api.table1`); this module keeps
the row data type, :func:`render_markdown`, and deprecated forwarders for
the original import paths.
"""

from __future__ import annotations

import warnings
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence

from .api import TABLE1_FAMILIES
from .data.query import Instance

__all__ = [
    "ComparisonRow",
    "TABLE1_FAMILIES",
    "compare_on",
    "table1_report",
    "render_markdown",
]


@dataclass(frozen=True)
class ComparisonRow:
    """Baseline-vs-paper measurement for one instance."""

    label: str
    query_class: str
    input_size: int
    out_size: int
    baseline_load: int
    new_load: int
    baseline_comm: int
    new_comm: int
    rounds: int

    @property
    def speedup(self) -> float:
        """Baseline load over new-algorithm load (> 1 ⇒ the paper wins)."""
        return self.baseline_load / max(1, self.new_load)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict (all fields plus the derived speedup)."""
        record = asdict(self)
        record["speedup"] = self.speedup
        return record


def compare_on(
    instance: Instance,
    label: str,
    p: int = 16,
    tracer: Optional[Any] = None,
) -> ComparisonRow:
    """Deprecated forwarder to :func:`repro.api.compare`.

    The facade returns the full pair of :class:`~repro.core.executor.QueryResult`
    objects (reports included); this wrapper keeps the original contract —
    one :class:`ComparisonRow`, ``AssertionError`` on disagreement.
    """
    warnings.warn(
        "repro.reporting.compare_on is deprecated; use repro.api.compare "
        "with an ExecutionConfig",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import ExecutionConfig, compare

    return compare(
        instance, ExecutionConfig(p=p, tracer=tracer), scope=label
    ).row(label)


def table1_report(
    scale: int = 300,
    p: int = 16,
    tracer: Optional[Any] = None,
    families: Optional[Sequence[str]] = None,
) -> List[ComparisonRow]:
    """Deprecated forwarder to :func:`repro.api.table1`.

    Same rows, same measurements: the implementation moved to the facade,
    which takes an :class:`~repro.config.ExecutionConfig` instead of loose
    ``p``/``tracer`` keywords.
    """
    warnings.warn(
        "repro.reporting.table1_report is deprecated; use repro.api.table1 "
        "with an ExecutionConfig",
        DeprecationWarning,
        stacklevel=2,
    )
    from .api import ExecutionConfig, table1

    return table1(
        scale=scale, config=ExecutionConfig(p=p, tracer=tracer), families=families
    )


def render_markdown(rows: Sequence[ComparisonRow]) -> str:
    """Rows as a GitHub-flavoured markdown table."""
    lines = [
        "| query | class | N | OUT | L(yann) | L(ours) | speedup |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.label} | {row.query_class} | {row.input_size} | "
            f"{row.out_size} | {row.baseline_load} | {row.new_load} | "
            f"{row.speedup:.2f}× |"
        )
    return "\n".join(lines)
