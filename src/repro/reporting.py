"""Structured experiment reports.

The benchmark suite prints tables for humans; this module produces the
same comparisons as *data* — for notebooks, CI dashboards, or the CLI.
:func:`table1_report` reruns the paper's Table 1 on adversarial workload
families at a configurable scale and returns one :class:`ComparisonRow`
per query class; :func:`render_markdown` turns any row list into a
markdown table.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from .core.executor import run_query
from .data.query import Instance
from .mpc.cluster import MPCCluster
from .workloads import (
    bowtie_line,
    overlapping_star,
    planted_out_matmul,
    twig_instance,
)

__all__ = [
    "ComparisonRow",
    "TABLE1_FAMILIES",
    "compare_on",
    "table1_report",
    "render_markdown",
]


@dataclass(frozen=True)
class ComparisonRow:
    """Baseline-vs-paper measurement for one instance."""

    label: str
    query_class: str
    input_size: int
    out_size: int
    baseline_load: int
    new_load: int
    baseline_comm: int
    new_comm: int
    rounds: int

    @property
    def speedup(self) -> float:
        """Baseline load over new-algorithm load (> 1 ⇒ the paper wins)."""
        return self.baseline_load / max(1, self.new_load)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable dict (all fields plus the derived speedup)."""
        record = asdict(self)
        record["speedup"] = self.speedup
        return record


def compare_on(
    instance: Instance,
    label: str,
    p: int = 16,
    tracer: Optional[Any] = None,
) -> ComparisonRow:
    """Run both algorithms on one instance and package the measurements.

    Raises ``AssertionError`` if the algorithms disagree (they never
    should; this keeps report data trustworthy by construction).
    ``tracer`` (a :class:`repro.obs.events.Tracer`) traces the paper
    algorithm's run; its ``scope`` is set to ``label`` so events from
    different instances sharing one sink stay distinguishable.
    """
    baseline = run_query(instance, p=p, algorithm="yannakakis")
    cluster = None
    if tracer is not None:
        tracer.scope = label
        cluster = MPCCluster(p, tracer=tracer)
    ours = run_query(instance, p=p, cluster=cluster, algorithm="auto")
    if baseline.relation.tuples != ours.relation.tuples:
        raise AssertionError(f"algorithms disagree on {label!r}")
    return ComparisonRow(
        label=label,
        query_class=ours.query_class,
        input_size=instance.total_size,
        out_size=ours.out_size,
        baseline_load=baseline.report.max_load,
        new_load=ours.report.max_load,
        baseline_comm=baseline.report.total_communication,
        new_comm=ours.report.total_communication,
        rounds=ours.report.rounds,
    )


#: Table-1 row labels in presentation order.
TABLE1_FAMILIES = ("matmul", "line", "star", "tree")


def table1_report(
    scale: int = 300,
    p: int = 16,
    tracer: Optional[Any] = None,
    families: Optional[Sequence[str]] = None,
) -> List[ComparisonRow]:
    """One adversarial instance per Table-1 row, measured.

    ``scale`` is the tuples-per-relation knob; families are the planted/
    adversarial ones where the baseline's intermediate exceeds OUT (see
    docs/paper_notes.md on why uniform-random data would show ties).
    ``tracer`` traces every row's paper-algorithm run into one event
    stream, scoped by the row label.  ``families`` selects a subset of
    :data:`TABLE1_FAMILIES` (default all); an empty selection is legal and
    returns no rows, and an unknown name raises ``ValueError`` rather than
    silently measuring nothing.
    """
    builders: Sequence[tuple] = (
        ("matmul", lambda: planted_out_matmul(n=scale, out=min(scale * scale, 64 * scale))),
        ("line", lambda: bowtie_line(blocks=max(1, scale // 25), fan_out=25, fan_mid=64)),
        ("star", lambda: overlapping_star(arms=3, centres=32, fan=max(2, scale // 32))),
        ("tree", lambda: twig_instance(
            tuples=scale,
            domain=max(10, scale // 10, int(scale ** 0.5) + 2),
            seed=1,
        )),
    )
    if families is None:
        selected = builders
    else:
        unknown = sorted(set(families) - set(TABLE1_FAMILIES))
        if unknown:
            raise ValueError(
                f"unknown Table-1 families {unknown}; "
                f"choose from {', '.join(TABLE1_FAMILIES)}"
            )
        wanted = set(families)
        selected = [entry for entry in builders if entry[0] in wanted]
    return [compare_on(builder(), label, p=p, tracer=tracer) for label, builder in selected]


def render_markdown(rows: Sequence[ComparisonRow]) -> str:
    """Rows as a GitHub-flavoured markdown table."""
    lines = [
        "| query | class | N | OUT | L(yann) | L(ours) | speedup |",
        "|---|---|---|---|---|---|---|",
    ]
    for row in rows:
        lines.append(
            f"| {row.label} | {row.query_class} | {row.input_size} | "
            f"{row.out_size} | {row.baseline_load} | {row.new_load} | "
            f"{row.speedup:.2f}× |"
        )
    return "\n".join(lines)
