"""The library facade: a *stable*, versioned API surface.

``python -m repro`` is a thin argparse shell over this module — anything
the command line can do, a notebook, test harness, or the long-running
query service (:mod:`repro.service`) can do by importing
:mod:`repro.api`:

* :func:`run_query` — evaluate one instance under an
  :class:`~repro.config.ExecutionConfig`;
* :func:`compare` — distributed Yannakakis baseline vs the paper's
  algorithm (or any ``config.algorithm``, including the cost-based
  planner's ``"cost"``) on one instance, both cost reports packaged
  together;
* :func:`explain` — the cost-based planner's candidate table for one
  instance, without executing anything (:mod:`repro.planner`);
* :func:`sweep` — :func:`compare` across a labelled series of instances;
* :func:`table1` — the paper's Table 1 on adversarial workload families;
* :func:`fuzz` — a conformance fuzzing campaign
  (:mod:`repro.conformance`);
* :func:`chaos` — the fault-injection tier of the same campaign runner;
* :func:`materialize` / :func:`apply_delta` — incremental view
  maintenance (:mod:`repro.ivm`): pin a live
  :class:`~repro.ivm.MaterializedView` over an instance and keep it
  current under :class:`~repro.ivm.DeltaBatch` streams, metered under
  the ``maintenance`` tag of the cost report.

**Contract.**  ``__all__`` is the surface: everything in it is covered by
the compatibility promise tracked by :data:`__version__` (semantic
versioning of the *facade*, independent of the package release).  Every
function takes a config object (:class:`ExecutionConfig` for the
executor-shaped entry points, :class:`~repro.conformance.FuzzConfig` for
the campaigns) and returns structured data — no printing, no process exit
codes.  Failures raise from the typed hierarchy in :mod:`repro.errors`
(:class:`~repro.errors.ConfigError` for bad knobs at construction time,
:class:`~repro.errors.ApplicabilityError` for algorithm/shape mismatches),
which is how the service maps exceptions to HTTP statuses.

Results, cost reports, and traces are backend-independent: an
``ExecutionConfig(backend="numpy")`` run is bit-identical to the default
``"pytuple"`` one, only faster.  The same contract covers the process
execution mode: ``ExecutionConfig(workers=4)`` dispatches the
data-parallel kernels to a persistent OS worker pool
(:mod:`repro.mpc.pool`) and stays bit-identical to ``workers=1``.

Version 2.0 removed the transitional paths of the 1.x facade: the loose
``run_query(**kwargs)`` keywords and the deprecated forwarders
``repro.reporting.table1_report``/``compare_on`` and
``repro.testing.fuzz_differential`` (see CHANGELOG.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .config import ExecutionConfig
from .core.executor import QueryResult
from .core.executor import run_query as _executor_run_query
from .data.query import Instance

#: Version of the *facade contract* (what ``__all__`` promises), bumped
#: independently of the package release: 2.0 dropped the loose-keyword
#: ``run_query`` path and the deprecated ``reporting``/``testing``
#: forwarders; 2.1 added incremental view maintenance
#: (``materialize``/``apply_delta``).
__version__ = "2.1.0"

__all__ = [
    "__version__",
    "ExecutionConfig",
    "CompareResult",
    "QueryResult",
    "TABLE1_FAMILIES",
    "run_query",
    "compare",
    "explain",
    "sweep",
    "table1",
    "fuzz",
    "chaos",
    "materialize",
    "apply_delta",
]


def run_query(
    instance: Instance,
    config: Optional[ExecutionConfig] = None,
) -> QueryResult:
    """Evaluate ``instance``; the facade twin of
    :func:`repro.core.executor.run_query`.

    All knobs travel in ``config`` (:class:`ExecutionConfig`); the 1.x
    loose keyword arguments (``p=…``, ``tracer=…``, …) were removed in
    facade 2.0 — construct an :class:`ExecutionConfig` once and reuse it.
    """
    return _executor_run_query(instance, config=config or ExecutionConfig())


@dataclass(frozen=True)
class CompareResult:
    """Baseline vs paper algorithm on one instance, fully measured."""

    #: The distributed Yannakakis run (Table 1's first column).
    baseline: QueryResult
    #: The compared run — ``config.algorithm`` (``"auto"`` by default).
    ours: QueryResult

    @property
    def speedup(self) -> float:
        """Baseline load over paper-algorithm load (> 1 ⇒ the paper wins)."""
        return self.baseline.report.max_load / max(1, self.ours.report.max_load)

    def row(self, label: str) -> "ComparisonRow":
        """Package as a :class:`repro.reporting.ComparisonRow`."""
        from .reporting import ComparisonRow

        return ComparisonRow(
            label=label,
            query_class=self.ours.query_class,
            input_size=self._input_size,
            out_size=self.ours.out_size,
            baseline_load=self.baseline.report.max_load,
            new_load=self.ours.report.max_load,
            baseline_comm=self.baseline.report.total_communication,
            new_comm=self.ours.report.total_communication,
            rounds=self.ours.report.rounds,
        )

    # Stashed by compare() — the instance itself is not retained.
    _input_size: int = 0


def compare(
    instance: Instance,
    config: Optional[ExecutionConfig] = None,
    scope: Optional[str] = None,
) -> CompareResult:
    """Run the baseline and ``config.algorithm`` on ``instance``.

    The compared side honours ``config.algorithm`` (``"auto"`` — the
    paper's per-class choice — by default; ``"cost"`` routes through the
    planner; explicit names force one algorithm and raise ``ValueError``
    when the query lacks the required shape).  Raises ``AssertionError``
    if the two runs disagree (they never should; this keeps report data
    trustworthy by construction).  Only the compared run is traced when
    ``config.tracer`` is set — ``scope`` names it in the event stream, so
    several instances can share one sink.
    """
    config = config or ExecutionConfig()
    baseline = _executor_run_query(
        instance, config=replace(config, tracer=None, algorithm="yannakakis")
    )
    if config.tracer is not None and scope is not None:
        config.tracer.scope = scope
    ours = _executor_run_query(instance, config=config)
    if baseline.relation.tuples != ours.relation.tuples:
        raise AssertionError(
            f"algorithms disagree on {scope or instance.query.classify()!r}"
        )
    return CompareResult(
        baseline=baseline, ours=ours, _input_size=instance.total_size
    )


def sweep(
    instances: Iterable[Tuple[str, Instance]],
    config: Optional[ExecutionConfig] = None,
) -> List[Tuple[str, CompareResult]]:
    """:func:`compare` across a labelled series of instances.

    ``instances`` yields ``(label, instance)`` pairs; each label becomes
    the tracer scope for its point, and the comparisons come back in input
    order paired with their labels.
    """
    return [
        (label, compare(instance, config, scope=label))
        for label, instance in instances
    ]


def explain(
    instance: Instance,
    config: Optional[ExecutionConfig] = None,
) -> "Plan":
    """The cost-based planner's decision for ``instance`` — no execution.

    Returns the :class:`repro.planner.Plan` the executor would follow
    under ``algorithm="cost"``: chosen algorithm, predicted load, every
    candidate's score, and the statistics snapshot behind them.
    ``config.stats_mode="in-model"`` collects the statistics on a
    throwaway cluster so the plan reports their metered cost; the default
    ``"offline"`` snapshot is free.  Deterministic: same instance, same
    calibration file, byte-identical :meth:`~repro.planner.Plan.to_dict`.
    """
    from .planner import plan_query

    config = config or ExecutionConfig()
    view = None
    if config.stats_mode == "in-model":
        view = config.make_cluster(instance.total_size).view()
    return plan_query(
        instance,
        p=config.p,
        stats_mode=config.stats_mode,
        view=view,
        backend=config.backend,
    )


#: Table-1 row labels in presentation order.
TABLE1_FAMILIES = ("matmul", "line", "star", "tree")


def table1(
    scale: int = 300,
    config: Optional[ExecutionConfig] = None,
    families: Optional[Sequence[str]] = None,
) -> List["ComparisonRow"]:
    """One adversarial instance per Table-1 row, measured.

    ``scale`` is the tuples-per-relation knob; families are the planted/
    adversarial ones where the baseline's intermediate exceeds OUT (see
    docs/paper_notes.md on why uniform-random data would show ties).
    ``config.tracer`` traces every row's paper-algorithm run into one event
    stream, scoped by the row label; when ``config`` is omitted the
    historical defaults (``p=16``, no tracing) apply.  ``families`` selects
    a subset of :data:`TABLE1_FAMILIES` (default all); an empty selection
    is legal and returns no rows, and an unknown name raises ``ValueError``
    rather than silently measuring nothing.
    """
    from .workloads import (
        bowtie_line,
        overlapping_star,
        planted_out_matmul,
        twig_instance,
    )

    config = config or ExecutionConfig(p=16)
    builders: Sequence[tuple] = (
        ("matmul", lambda: planted_out_matmul(n=scale, out=min(scale * scale, 64 * scale))),
        ("line", lambda: bowtie_line(blocks=max(1, scale // 25), fan_out=25, fan_mid=64)),
        ("star", lambda: overlapping_star(arms=3, centres=32, fan=max(2, scale // 32))),
        ("tree", lambda: twig_instance(
            tuples=scale,
            domain=max(10, scale // 10, int(scale ** 0.5) + 2),
            seed=1,
        )),
    )
    if families is None:
        selected = builders
    else:
        unknown = sorted(set(families) - set(TABLE1_FAMILIES))
        if unknown:
            from .errors import ConfigError

            raise ConfigError(
                f"unknown Table-1 families {unknown}; "
                f"choose from {', '.join(TABLE1_FAMILIES)}"
            )
        wanted = set(families)
        selected = [entry for entry in builders if entry[0] in wanted]
    return [
        compare(builder(), config, scope=label).row(label)
        for label, builder in selected
    ]


def fuzz(config: Optional["FuzzConfig"] = None, **overrides: Any) -> "FuzzSummary":
    """Run one conformance fuzzing campaign (differential oracle +
    metamorphic invariants); deterministic per seed.

    ``config`` is a :class:`repro.conformance.FuzzConfig`; keyword
    ``overrides`` replace individual fields of it (or of the default
    config), so ``fuzz(iterations=100, backend="numpy")`` works without
    constructing one explicitly.  Never raises on invariant failures —
    they come back shrunk inside the summary.
    """
    from .conformance import FuzzConfig, fuzz as _conformance_fuzz

    config = config or FuzzConfig()
    if overrides:
        config = replace(config, **overrides)
    return _conformance_fuzz(config)


def materialize(
    instance: Instance,
    config: Optional[ExecutionConfig] = None,
    name: str = "view",
) -> "MaterializedView":
    """Pin a live :class:`~repro.ivm.MaterializedView` over ``instance``.

    The materialization is one ordinary distributed run whose meters
    become the view's base report; keep the returned view and feed it
    delta batches through :func:`apply_delta`.  The view copies the
    instance's relations — later mutations of ``instance`` do not leak
    into it.
    """
    from .ivm import materialize as _ivm_materialize

    return _ivm_materialize(instance, config=config, name=name)


def apply_delta(view: "MaterializedView", batch: "DeltaBatch") -> "DeltaResult":
    """Apply one :class:`~repro.ivm.DeltaBatch` to ``view``.

    Maintenance cost is proportional to the delta's join neighbourhood,
    not to instance size, and accumulates under the ``maintenance`` tag
    of ``view.report()`` — the base meters never change.  Raises
    :class:`~repro.errors.UnsupportedDeltaError` when the batch contains
    deletions and the view's semiring has no additive inverse, and
    :class:`~repro.errors.ConfigError` on malformed changes (unknown
    relation, arity mismatch, deleting an absent tuple).
    """
    return view.apply(batch)


def chaos(config: Optional["FuzzConfig"] = None, **overrides: Any) -> "FuzzSummary":
    """The chaos tier on its own: every case re-checked under seeded
    recoverable fault schedules plus one planted unrecoverable one.

    Same contract as :func:`fuzz` with the invariant set pinned to
    ``("differential", "chaos")``; tune the tier with the
    ``chaos_schedules``/``chaos_faults`` fields.
    """
    from .conformance import FuzzConfig, fuzz as _conformance_fuzz

    config = config or FuzzConfig(iterations=10)
    if overrides:
        config = replace(config, **overrides)
    config = replace(config, invariants=("differential", "chaos"))
    return _conformance_fuzz(config)
