"""Server allocation for subquery fan-out (paper §3–§6).

The paper repeatedly "allocates ``⌈size/L⌉`` servers" to each of many
subqueries and proves the total is O(p).  We realize this with *virtual
server ranges*: each task gets a contiguous range of virtual servers, and
virtual server ``v`` maps to real server ``v mod p``.  When the total is
O(p), each real server hosts O(1) virtual servers, so per-round loads are
preserved up to the paper's constants.  Items are placed inside a task's
range by hashing a colocation key (typically the join attribute value), so
tuples that must meet land on the same virtual — hence real — server.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Hashable, List, Mapping, Tuple

from ..mpc.cluster import ClusterView
from ..mpc.hashing import hash_to_bucket

__all__ = ["RangeAllocation"]


class RangeAllocation:
    """Contiguous virtual-server ranges for a family of tasks."""

    def __init__(self, view: ClusterView, sizes: Mapping[Hashable, int], load: int) -> None:
        """Allocate ``⌈sizes[k]/load⌉`` virtual servers to every task ``k``.

        ``load`` is the paper's target load L.  The task map is coordinator
        state: O(#tasks) control traffic is charged.
        """
        if load < 1:
            raise ValueError("load must be ≥ 1")
        self.view = view
        self.load = load
        self.ranges: Dict[Hashable, Tuple[int, int]] = {}
        offset = 0
        for key in sizes:
            width = max(1, math.ceil(sizes[key] / load))
            self.ranges[key] = (offset, width)
            offset += width
        self.virtual_total = offset
        view.tracker.record_control(len(self.ranges))
        view.control_scatter(1)

    def __contains__(self, key: Hashable) -> bool:
        return key in self.ranges

    def width(self, key: Hashable) -> int:
        return self.ranges[key][1]

    def dest(self, key: Hashable, colocate: Any, salt: int = 0) -> int:
        """Real server (local index) for an item of task ``key`` whose
        colocation key is ``colocate``."""
        start, width = self.ranges[key]
        virtual = start + hash_to_bucket(colocate, width, salt)
        return virtual % self.view.p

    def all_dests(self, key: Hashable) -> List[int]:
        """All real servers of the task's range (for per-task broadcast)."""
        start, width = self.ranges[key]
        return sorted({(start + i) % self.view.p for i in range(width)})

    def overlap_factor(self) -> float:
        """How many virtual servers share a real server (≈ the constant by
        which loads are inflated when the paper says "O(p) servers")."""
        return max(1.0, self.virtual_total / self.view.p)
