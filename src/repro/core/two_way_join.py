"""Skew-resilient two-way join + aggregation (paper §1.4, [5, 13]).

``join_aggregate_pair`` computes ``Σ_{−keep} (R ⋈ S)`` on shared attributes
with the optimal-style load ``O((N1+N2)/p + J/p)`` where ``J = |R ⋈ S|``:

1. per-join-key degrees on both sides (reduce-by-key);
2. every key ``b`` gets an ``r_b × c_b`` grid of virtual cells with
   ``r_b = ⌈d_R(b)/λ⌉`` and ``c_b = ⌈d_S(b)/λ⌉`` for a chunk size ``λ``
   balancing replication against per-cell size; R-tuples pick a random row
   and replicate across the row's cells, S-tuples a random column — the
   classic fragment-replicate scheme that neutralizes skew;
3. cells hash onto servers; each server joins its cells locally and
   pre-aggregates by the ``keep`` attributes;
4. a final reduce-by-key ⊕-combines partials (this is the step that costs
   ``J/p`` when the aggregate keys do not collapse locally — exactly the
   baseline bottleneck the paper's algorithms avoid through locality).

The same routine with ``keep = all attributes`` is a plain full join.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Sequence, Tuple

from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..mpc.hashing import hash_to_bucket, stable_hash
from ..primitives.degrees import attach_by_key, degree_table
from ..primitives.reduce_by_key import reduce_by_key
from ..semiring import Semiring

__all__ = [
    "join_aggregate_pair",
    "join_aggregate_naive",
    "aggregate_relation",
    "local_join_aggregate",
]


def join_aggregate_pair(
    left: DistRelation,
    right: DistRelation,
    keep: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """``Σ_{−keep} (left ⋈ right)`` as a new :class:`DistRelation` on the
    same view, hash-partitioned by the keep-key."""
    view = left.view
    p = view.p
    shared = tuple(sorted(set(left.schema) & set(right.schema)))
    if not shared:
        raise ValueError("join_aggregate_pair requires a shared attribute")
    keep = tuple(keep)
    left_key = left.key_fn(shared)
    right_key = right.key_fn(shared)

    left_degrees = degree_table(left.data, left_key, salt)
    right_degrees = degree_table(right.data, right_key, salt)
    left_tagged = attach_by_key(left.data, left_degrees, left_key, default=0, salt=salt)
    right_tagged = attach_by_key(right.data, right_degrees, right_key, default=0, salt=salt)

    # Grid dimensions of a key's cell grid depend on *both* sides' degrees;
    # attach the partner side's degree as well.
    left_full = attach_by_key(
        left_tagged, right_degrees, lambda pair: left_key(pair[0]), default=0, salt=salt
    )
    right_full = attach_by_key(
        right_tagged, left_degrees, lambda pair: right_key(pair[0]), default=0, salt=salt
    )

    # Each key gets cells in proportion to its share of the join size
    # J = Σ_b d_L(b)·d_R(b) (gathered as one scalar on the control channel),
    # the allocation that yields the optimal O(N/p + √(J/p)) join-phase load.
    join_size = _estimate_join_size(view, left_full, right_full)

    def grid_of(left_degree: int, right_degree: int) -> Tuple[int, int]:
        if left_degree == 0 or right_degree == 0:
            return 1, 1
        cells = min(
            p, max(1, math.ceil(left_degree * right_degree * p / max(1, join_size)))
        )
        rows = min(
            cells,
            max(1, round(math.sqrt(cells * left_degree / max(1, right_degree)))),
        )
        cols = math.ceil(cells / rows)
        return rows, cols

    # Every (left-copy, right-copy) pair meets in exactly one cell
    # (row(left), col(right)); copies are tagged with their cell id and the
    # local join is restricted to same-cell pairs, so each elementary product
    # is computed exactly once even when two cells hash to one server.
    def left_cells_of(entry: Tuple[Tuple[Any, int], int]) -> List[Tuple]:
        (item, own_degree), partner_degree = entry
        key = left_key(item)
        rows, cols = grid_of(own_degree, partner_degree)
        row = stable_hash(("row", key, item[0]), salt) % rows
        return [("L", (key, row, col, cols), item) for col in range(cols)]

    def right_cells_of(entry: Tuple[Tuple[Any, int], int]) -> List[Tuple]:
        (item, own_degree), partner_degree = entry
        key = right_key(item)
        rows, cols = grid_of(partner_degree, own_degree)
        col = stable_hash(("col", key, item[0]), salt) % cols
        return [("R", (key, row, col, cols), item) for row in range(rows)]

    left_msgs = left_full.map_parts(
        lambda part: [msg for entry in part for msg in left_cells_of(entry)]
    )
    right_msgs = right_full.map_parts(
        lambda part: [msg for entry in part for msg in right_cells_of(entry)]
    )

    def cell_server(msg: Tuple) -> int:
        # A key's cells occupy *consecutive* servers (row-major) from a
        # hashed offset, so one heavy key's ≤ p cells never collide with
        # each other (birthday-free, unlike independent hashing).
        key, row, col, cols = msg[1]
        offset = hash_to_bucket(key, p, salt + 7)
        return (offset + row * cols + col) % p

    routed = left_msgs.concat(right_msgs).repartition(cell_server)

    keep_sources = _keep_sources(left.schema, right.schema, keep)
    tracker = view.tracker

    def local_join(part: List[Any]) -> List[Any]:
        lefts: Dict[Tuple, List[Tuple]] = {}
        rights: Dict[Tuple, List[Tuple]] = {}
        for tag, cell, item in part:
            (lefts if tag == "L" else rights).setdefault(cell, []).append(item)
        partials: Dict[Tuple, Any] = {}
        products = 0
        for cell, left_rows in lefts.items():
            right_rows = rights.get(cell)
            if not right_rows:
                continue
            for l_values, l_weight in left_rows:
                for r_values, r_weight in right_rows:
                    products += 1
                    out_key = tuple(
                        l_values[i] if side == "L" else r_values[i]
                        for side, i in keep_sources
                    )
                    weight = semiring.mul(l_weight, r_weight)
                    if out_key in partials:
                        partials[out_key] = semiring.add(partials[out_key], weight)
                    else:
                        partials[out_key] = weight
        tracker.record_products(products)
        return list(partials.items())

    partials = routed.map_parts(local_join)
    reduced = reduce_by_key(
        partials,
        lambda pair: pair[0],
        lambda pair: pair[1],
        semiring.add,
        salt=salt + 13,
    )
    return DistRelation(keep, reduced)


def _estimate_join_size(view, left_full: Distributed, right_full: Distributed) -> int:
    """J = Σ over tuples of the *partner* degree ≡ Σ_b d_L(b)·d_R(b).

    Computed locally from the degree-tagged tuples (each left tuple of key b
    contributes d_R(b)), summed over the control channel.
    """
    local = [
        sum(entry[1] for entry in part) for part in left_full.parts
    ]
    view.control_gather(local)
    return max(1, sum(local))


def _keep_sources(
    left_schema: Sequence[str], right_schema: Sequence[str], keep: Sequence[str]
) -> List[Tuple[str, int]]:
    """For every keep attribute, where to read it: ('L'/'R', column index)."""
    sources: List[Tuple[str, int]] = []
    for attribute in keep:
        if attribute in left_schema:
            sources.append(("L", left_schema.index(attribute)))
        elif attribute in right_schema:
            sources.append(("R", right_schema.index(attribute)))
        else:
            raise ValueError(f"keep attribute {attribute!r} in neither schema")
    return sources


def aggregate_relation(
    relation: DistRelation,
    group_attrs: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """``Σ_{−group_attrs} relation`` via reduce-by-key (paper §2.1)."""
    key = relation.key_fn(tuple(group_attrs))
    reduced = reduce_by_key(
        relation.data,
        lambda item: key(item),
        lambda item: item[1],
        semiring.add,
        salt=salt,
    )
    return DistRelation(tuple(group_attrs), reduced)


def local_join_aggregate(
    left_items: Sequence[Tuple[Tuple, Any]],
    right_items: Sequence[Tuple[Tuple, Any]],
    left_key: Callable[[Tuple[Tuple, Any]], Tuple],
    right_key: Callable[[Tuple[Tuple, Any]], Tuple],
    out_key: Callable[[Tuple, Tuple], Tuple],
    semiring: Semiring,
) -> Tuple[Dict[Tuple, Any], int]:
    """Join two local tuple lists on their keys, ⊕-aggregating by ``out_key``.

    Returns ``(partials, elementary_product_count)``; used by every algorithm
    that arranges tuples so products can be aggregated in place (the paper's
    "locality").
    """
    index: Dict[Tuple, List[Tuple[Tuple, Any]]] = {}
    for item in left_items:
        index.setdefault(left_key(item), []).append(item)
    partials: Dict[Tuple, Any] = {}
    products = 0
    for item in right_items:
        matches = index.get(right_key(item))
        if not matches:
            continue
        r_values, r_weight = item
        for l_values, l_weight in matches:
            products += 1
            key = out_key(l_values, r_values)
            weight = semiring.mul(l_weight, r_weight)
            if key in partials:
                partials[key] = semiring.add(partials[key], weight)
            else:
                partials[key] = weight
    return partials, products


def join_aggregate_naive(
    left: DistRelation,
    right: DistRelation,
    keep: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """Skew-*oblivious* hash join (ablation baseline, §1.4 context).

    Both sides are hash-partitioned by the join key with no degree
    statistics: a heavy key lands entirely on one server, whose load then
    scales with that key's join size instead of J/p.  Correct but fragile —
    kept to let benchmarks quantify what the fragment-replicate scheme of
    :func:`join_aggregate_pair` buys.
    """
    from ..mpc.hashing import hash_to_bucket

    view = left.view
    p = view.p
    shared = tuple(sorted(set(left.schema) & set(right.schema)))
    if not shared:
        raise ValueError("join_aggregate_naive requires a shared attribute")
    keep = tuple(keep)
    left_key = left.key_fn(shared)
    right_key = right.key_fn(shared)
    keep_sources = _keep_sources(left.schema, right.schema, keep)
    tracker = view.tracker

    # Both sides co-partition in ONE shuffle round (the textbook plan),
    # so the heavy key's server receives d_L(b) + d_R(b) in a single round.
    tagged = left.data.map_items(lambda item: ("L", item)).concat(
        right.data.map_items(lambda item: ("R", item))
    )
    routed = tagged.repartition(
        lambda msg: hash_to_bucket(
            left_key(msg[1]) if msg[0] == "L" else right_key(msg[1]), p, salt
        )
    )

    def local_join(part: List[Any]) -> List[Any]:
        left_items = [item for tag, item in part if tag == "L"]
        right_items = [item for tag, item in part if tag == "R"]
        partials, products = local_join_aggregate(
            left_items,
            right_items,
            left_key,
            right_key,
            lambda lv, rv: tuple(
                lv[i] if side == "L" else rv[i] for side, i in keep_sources
            ),
            semiring,
        )
        tracker.record_products(products)
        return list(partials.items())

    partials = routed.map_parts(local_join)
    reduced = reduce_by_key(
        partials, lambda pair: pair[0], lambda pair: pair[1], semiring.add,
        salt=salt + 13,
    )
    return DistRelation(keep, reduced)
