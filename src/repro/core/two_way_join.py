"""Skew-resilient two-way join + aggregation (paper §1.4, [5, 13]).

``join_aggregate_pair`` computes ``Σ_{−keep} (R ⋈ S)`` on shared attributes
with the optimal-style load ``O((N1+N2)/p + J/p)`` where ``J = |R ⋈ S|``:

1. per-join-key degrees on both sides (reduce-by-key);
2. every key ``b`` gets an ``r_b × c_b`` grid of virtual cells with
   ``r_b = ⌈d_R(b)/λ⌉`` and ``c_b = ⌈d_S(b)/λ⌉`` for a chunk size ``λ``
   balancing replication against per-cell size; R-tuples pick a random row
   and replicate across the row's cells, S-tuples a random column — the
   classic fragment-replicate scheme that neutralizes skew;
3. cells hash onto servers; each server joins its cells locally and
   pre-aggregates by the ``keep`` attributes;
4. a final reduce-by-key ⊕-combines partials (this is the step that costs
   ``J/p`` when the aggregate keys do not collapse locally — exactly the
   baseline bottleneck the paper's algorithms avoid through locality).

The same routine with ``keep = all attributes`` is a plain full join.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..backends.dispatch import np, numpy_enabled, process_enabled
from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..mpc.hashing import hash_to_bucket, stable_hash
from ..primitives.degrees import attach_by_key, degree_table
from ..primitives.reduce_by_key import reduce_by_key
from ..semiring import Semiring

__all__ = [
    "join_aggregate_pair",
    "join_aggregate_naive",
    "aggregate_relation",
    "local_join_aggregate",
    "vector_join_context",
    "vector_profile",
]


def join_aggregate_pair(
    left: DistRelation,
    right: DistRelation,
    keep: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """``Σ_{−keep} (left ⋈ right)`` as a new :class:`DistRelation` on the
    same view, hash-partitioned by the keep-key."""
    view = left.view
    p = view.p
    shared = tuple(sorted(set(left.schema) & set(right.schema)))
    if not shared:
        raise ValueError("join_aggregate_pair requires a shared attribute")
    keep = tuple(keep)
    left_key = left.key_fn(shared)
    right_key = right.key_fn(shared)

    left_degrees = degree_table(left.data, left_key, salt)
    right_degrees = degree_table(right.data, right_key, salt)
    left_tagged = attach_by_key(left.data, left_degrees, left_key, default=0, salt=salt)
    right_tagged = attach_by_key(right.data, right_degrees, right_key, default=0, salt=salt)

    # Grid dimensions of a key's cell grid depend on *both* sides' degrees;
    # attach the partner side's degree as well.
    left_full = attach_by_key(
        left_tagged, right_degrees, lambda pair: left_key(pair[0]), default=0, salt=salt
    )
    right_full = attach_by_key(
        right_tagged, left_degrees, lambda pair: right_key(pair[0]), default=0, salt=salt
    )

    # Each key gets cells in proportion to its share of the join size
    # J = Σ_b d_L(b)·d_R(b) (gathered as one scalar on the control channel),
    # the allocation that yields the optimal O(N/p + √(J/p)) join-phase load.
    join_size = _estimate_join_size(view, left_full, right_full)

    def grid_of(left_degree: int, right_degree: int) -> Tuple[int, int]:
        if left_degree == 0 or right_degree == 0:
            return 1, 1
        cells = min(
            p, max(1, math.ceil(left_degree * right_degree * p / max(1, join_size)))
        )
        rows = min(
            cells,
            max(1, round(math.sqrt(cells * left_degree / max(1, right_degree)))),
        )
        cols = math.ceil(cells / rows)
        return rows, cols

    # Every (left-copy, right-copy) pair meets in exactly one cell
    # (row(left), col(right)); copies are tagged with their cell id and the
    # local join is restricted to same-cell pairs, so each elementary product
    # is computed exactly once even when two cells hash to one server.
    def left_cells_of(entry: Tuple[Tuple[Any, int], int]) -> List[Tuple]:
        (item, own_degree), partner_degree = entry
        key = left_key(item)
        rows, cols = grid_of(own_degree, partner_degree)
        row = stable_hash(("row", key, item[0]), salt) % rows
        return [("L", (key, row, col, cols), item) for col in range(cols)]

    def right_cells_of(entry: Tuple[Tuple[Any, int], int]) -> List[Tuple]:
        (item, own_degree), partner_degree = entry
        key = right_key(item)
        rows, cols = grid_of(partner_degree, own_degree)
        col = stable_hash(("col", key, item[0]), salt) % cols
        return [("R", (key, row, col, cols), item) for row in range(rows)]

    left_msgs = left_full.map_parts(
        lambda part: [msg for entry in part for msg in left_cells_of(entry)]
    )
    right_msgs = right_full.map_parts(
        lambda part: [msg for entry in part for msg in right_cells_of(entry)]
    )

    def cell_server(msg: Tuple) -> int:
        # A key's cells occupy *consecutive* servers (row-major) from a
        # hashed offset, so one heavy key's ≤ p cells never collide with
        # each other (birthday-free, unlike independent hashing).
        key, row, col, cols = msg[1]
        offset = hash_to_bucket(key, p, salt + 7)
        return (offset + row * cols + col) % p

    routed = left_msgs.concat(right_msgs).repartition(cell_server)

    keep_sources = _keep_sources(left.schema, right.schema, keep)
    tracker = view.tracker
    profile = vector_profile(view, semiring)
    pool = (
        view.cluster.pool
        if profile is not None and process_enabled(view)
        else None
    )

    def local_join(part: List[Any]) -> List[Any]:
        if profile is not None:
            vectorized = _local_join_cells_vec(
                part, view.cluster.codec, profile, keep_sources, pool=pool
            )
            if vectorized is not None:
                partials, products = vectorized
                tracker.record_products(products)
                return list(partials.items())
        lefts: Dict[Tuple, List[Tuple]] = {}
        rights: Dict[Tuple, List[Tuple]] = {}
        for tag, cell, item in part:
            (lefts if tag == "L" else rights).setdefault(cell, []).append(item)
        partials: Dict[Tuple, Any] = {}
        products = 0
        for cell, left_rows in lefts.items():
            right_rows = rights.get(cell)
            if not right_rows:
                continue
            for l_values, l_weight in left_rows:
                for r_values, r_weight in right_rows:
                    products += 1
                    out_key = tuple(
                        l_values[i] if side == "L" else r_values[i]
                        for side, i in keep_sources
                    )
                    weight = semiring.mul(l_weight, r_weight)
                    if out_key in partials:
                        partials[out_key] = semiring.add(partials[out_key], weight)
                    else:
                        partials[out_key] = weight
        tracker.record_products(products)
        return list(partials.items())

    partials = routed.map_parts(local_join)
    reduced = reduce_by_key(
        partials,
        lambda pair: pair[0],
        lambda pair: pair[1],
        semiring.add,
        salt=salt + 13,
        profile=profile,
    )
    return DistRelation(keep, reduced)


def _estimate_join_size(view, left_full: Distributed, right_full: Distributed) -> int:
    """J = Σ over tuples of the *partner* degree ≡ Σ_b d_L(b)·d_R(b).

    Computed locally from the degree-tagged tuples (each left tuple of key b
    contributes d_R(b)), summed over the control channel.
    """
    local = [
        sum(entry[1] for entry in part) for part in left_full.parts
    ]
    view.control_gather(local)
    return max(1, sum(local))


def _keep_sources(
    left_schema: Sequence[str], right_schema: Sequence[str], keep: Sequence[str]
) -> List[Tuple[str, int]]:
    """For every keep attribute, where to read it: ('L'/'R', column index)."""
    sources: List[Tuple[str, int]] = []
    for attribute in keep:
        if attribute in left_schema:
            sources.append(("L", left_schema.index(attribute)))
        elif attribute in right_schema:
            sources.append(("R", right_schema.index(attribute)))
        else:
            raise ValueError(f"keep attribute {attribute!r} in neither schema")
    return sources


# -- vectorized local-join kernels (numpy backend) ----------------------------
#
# These replay the dict kernels' elementary-product stream with array ops
# (see repro.backends.kernels): same products, same partials order, so the
# pre-aggregated partials a server emits — and therefore every meter — are
# identical.  Anything the codec/profile cannot represent exactly returns
# None and the caller runs the dict kernel; the decision is always local,
# never mid-communication.

#: Integer product streams cap their length so segment sums stay exact
#: (< 2^22 products, each < 2^40, sums < 2^62).
_PRODUCT_SUM_GUARD = 1 << 22
#: int64 ⊗-products must stay well inside int64.
_PRODUCT_MUL_LIMIT = 1 << 62


@dataclass(frozen=True)
class _VectorJoinSpec:
    """What a vectorized local join needs to know about the tuple layout:
    the single join-key column on each side and where each output attribute
    is read from (``("L"/"R", column index)``, as in :func:`_keep_sources`).
    ``pool`` (a :class:`~repro.mpc.pool.WorkerPool`, optional) lets large
    joins chunk their product stream across OS workers in ``"process"``
    mode — same stream, same partials, same meters.
    """

    codec: Any
    profile: Any
    left_key_col: int
    right_key_col: int
    out_sources: Tuple[Tuple[str, int], ...]
    pool: Any = None


def vector_join_context(
    view: Any,
    semiring: Semiring,
    left_key_col: int,
    right_key_col: int,
    out_sources: Sequence[Tuple[str, int]],
) -> Optional[_VectorJoinSpec]:
    """A :class:`_VectorJoinSpec` when this view's cluster may vectorize
    single-column local joins under ``semiring``, else None (tuple backend,
    no profile, or fault injection active)."""
    profile = vector_profile(view, semiring)
    if profile is None:
        return None
    pool = view.cluster.pool if process_enabled(view) else None
    return _VectorJoinSpec(
        view.cluster.codec, profile, left_key_col, right_key_col,
        tuple(out_sources), pool,
    )


def vector_profile(view: Any, semiring: Semiring) -> Optional[Any]:
    """The reduce/join vectorization profile of ``semiring`` on this view's
    cluster, or None (tuple backend, faults active, or no profile)."""
    if not numpy_enabled(view):
        return None
    from ..backends.columnar import profile_of

    return profile_of(semiring)


def _mul_safe(profile: Any, left_ann: Any, right_ann: Any, products: int) -> bool:
    """Can ``products`` ⊗-results be computed and ⊕-reduced exactly in the
    profile's dtype?"""
    if profile.kind == "int":
        return products < _PRODUCT_SUM_GUARD
    if (
        profile.mul_name == "mul"
        and left_ann.dtype == np.int64
        and right_ann.dtype == np.int64
        and left_ann.size
        and right_ann.size
    ):
        bound = int(np.abs(left_ann).max()) * int(np.abs(right_ann).max())
        return bound < _PRODUCT_MUL_LIMIT
    return True


def _aggregate_product_stream(
    codec: Any, profile: Any, out_columns: List[Any], weights: Any
) -> Optional[Dict[Tuple, Any]]:
    """⊕-aggregate an elementary-product stream by its (packed) out-key.

    Returns the partials dict in key-first-occurrence order — exactly the
    dict the scalar kernels build — or None when the key space cannot pack
    into int64."""
    from ..backends.kernels import combine_columns, group_reduce

    packed, base = combine_columns(out_columns, len(codec), weights.shape[0])
    if packed is None:
        return None
    unique, reduced = group_reduce(packed, weights, profile.add_ufunc)
    return _decode_partials(codec, unique, reduced, base, len(out_columns))


def _decode_partials(
    codec: Any, unique: Any, reduced: Any, base: int, width: int
) -> Dict[Tuple, Any]:
    """Unpack ⊕-folded (packed-key, value) arrays into the partials dict
    (key first-occurrence order is the arrays' order already)."""
    from ..backends.kernels import split_codes

    if width == 0:
        return {(): value for value in reduced.tolist()}
    decoded = [
        codec.decode_many(column) for column in split_codes(unique, base, width)
    ]
    return dict(zip(zip(*decoded), reduced.tolist()))


#: :func:`_parallel_local_join` verdict: the call is too small to chunk —
#: run the sequential vectorized kernel instead.
_RUN_SEQUENTIAL = object()


def _parallel_local_join(
    codec: Any,
    profile: Any,
    pool: Any,
    *,
    build_codes: Any,
    probe_codes: Any,
    build_ann: Any,
    probe_ann: Any,
    probe_is_left: bool,
    sources: Sequence[Tuple[str, int]],
    left_items: Sequence[Any],
    right_items: Sequence[Any],
    probe_perm: Any = None,
) -> Any:
    """The ``"process"``-mode branch of a vectorized local join-aggregate.

    Prices the join with a count-only pre-join (no streams materialized),
    takes exactly the sequential kernel's fallback decisions (zero
    products, ⊗/⊕ exactness, key packability — all functions of counts
    and dtypes, so the decision is identical at any worker count), then
    chunks the probe side by product mass across the pool and ⊕-merges
    the chunk partials (:func:`repro.mpc.pool.parallel_join_reduce`).

    Returns the final ``(partials, products)`` / ``None`` verdict, or
    :data:`_RUN_SEQUENTIAL` when the join is below the dispatch threshold.
    Interning side effects on ``codec`` are identical to the sequential
    kernel in every case: out-key columns are encoded in source order
    only after the product/exactness checks pass, exactly as
    :func:`_gather_out_columns` would.
    """
    from ..mpc import pool as pool_mod

    counts, products = pool_mod.count_products(build_codes, probe_codes)
    if products == 0:
        return {}, 0
    left_ann, right_ann = (
        (probe_ann, build_ann) if probe_is_left else (build_ann, probe_ann)
    )
    if not _mul_safe(profile, left_ann, right_ann, products):
        return None
    if products < pool_mod.DISPATCH_MIN_PRODUCTS:
        return _RUN_SEQUENTIAL
    out_sides: List[str] = []
    out_columns: List[Any] = []
    for side, index in sources:
        items = left_items if side == "L" else right_items
        column = codec.encode_many([item[0][index] for item in items])
        if (side == "L") == probe_is_left:
            out_sides.append("P")
            out_columns.append(
                column if probe_perm is None else column[probe_perm]
            )
        else:
            out_sides.append("B")
            out_columns.append(column)
    base = max(1, len(codec))
    if not pool_mod.pack_feasible(len(out_columns), base):
        return None
    unique, reduced = pool_mod.parallel_join_reduce(
        pool,
        build_codes=build_codes,
        probe_codes=probe_codes,
        build_ann=build_ann,
        probe_ann=probe_ann,
        out_sides=out_sides,
        out_columns=out_columns,
        probe_is_left=probe_is_left,
        profile=profile,
        pack_base=base,
        counts=counts,
        products=products,
    )
    partials = _decode_partials(codec, unique, reduced, base, len(out_columns))
    return partials, products


def _local_join_vec(
    left_items: Sequence[Tuple[Tuple, Any]],
    right_items: Sequence[Tuple[Tuple, Any]],
    vec: _VectorJoinSpec,
) -> Optional[Tuple[Dict[Tuple, Any], int]]:
    """Vectorized :func:`local_join_aggregate`: the right-outer probe stream
    (each right item in arrival order, its left matches in arrival order)."""
    from ..backends.columnar import encode_annotations
    from ..backends.kernels import hash_join

    codec, profile = vec.codec, vec.profile
    left_ann = encode_annotations([item[1] for item in left_items], profile)
    right_ann = encode_annotations([item[1] for item in right_items], profile)
    if left_ann is None or right_ann is None:
        return None
    left_codes = codec.encode_many([item[0][vec.left_key_col] for item in left_items])
    right_codes = codec.encode_many(
        [item[0][vec.right_key_col] for item in right_items]
    )
    if vec.pool is not None:
        from ..mpc import pool as pool_mod

        if len(right_items) >= pool_mod.DISPATCH_MIN_ROWS:
            parallel = _parallel_local_join(
                codec, profile, vec.pool,
                build_codes=left_codes, probe_codes=right_codes,
                build_ann=left_ann, probe_ann=right_ann,
                probe_is_left=False, sources=vec.out_sources,
                left_items=left_items, right_items=right_items,
            )
            if parallel is not _RUN_SEQUENTIAL:
                return parallel
    l_pos, r_pos = hash_join(left_codes, right_codes, outer="right")
    products = int(l_pos.shape[0])
    if products == 0:
        return {}, 0
    if not _mul_safe(profile, left_ann, right_ann, products):
        return None
    weights = profile.mul(left_ann[l_pos], right_ann[r_pos])
    out_columns = _gather_out_columns(
        codec, vec.out_sources, left_items, right_items, l_pos, r_pos
    )
    partials = _aggregate_product_stream(codec, profile, out_columns, weights)
    if partials is None:
        return None
    return partials, products


def _local_join_cells_vec(
    part: Sequence[Tuple[str, Tuple, Tuple]],
    codec: Any,
    profile: Any,
    keep_sources: Sequence[Tuple[str, int]],
    pool: Any = None,
) -> Optional[Tuple[Dict[Tuple, Any], int]]:
    """Vectorized cell-grouped local join (the fragment-replicate kernel of
    :func:`join_aggregate_pair`).

    The dict kernel streams products cell-by-cell in *left-first-occurrence*
    cell order; blocking the left rows by that rank (stable, so arrival
    order survives within a block) makes the left-outer probe replay the
    exact same stream."""
    from ..backends.columnar import encode_annotations
    from ..backends.kernels import first_occurrence_unique, hash_join

    left_rows: List[Tuple] = []
    right_rows: List[Tuple] = []
    left_cells: List[Tuple] = []
    right_cells: List[Tuple] = []
    for tag, cell, item in part:
        if tag == "L":
            left_rows.append(item)
            left_cells.append(cell)
        else:
            right_rows.append(item)
            right_cells.append(cell)
    left_ann = encode_annotations([item[1] for item in left_rows], profile)
    right_ann = encode_annotations([item[1] for item in right_rows], profile)
    if left_ann is None or right_ann is None:
        return None
    left_codes = codec.encode_many(left_cells)
    right_codes = codec.encode_many(right_cells)
    firsts = first_occurrence_unique(left_codes)
    first_order = np.argsort(firsts, kind="stable")
    ranks = first_order[np.searchsorted(firsts[first_order], left_codes)]
    perm = np.argsort(ranks, kind="stable")
    if pool is not None:
        from ..mpc import pool as pool_mod

        if len(left_rows) >= pool_mod.DISPATCH_MIN_ROWS:
            # The permuted left side is the probe (its contiguous chunks
            # replay the cell-blocked stream); pre-permuting the probe
            # annotations and out-columns keeps workers codec-free.
            parallel = _parallel_local_join(
                codec, profile, pool,
                build_codes=right_codes, probe_codes=left_codes[perm],
                build_ann=right_ann, probe_ann=left_ann[perm],
                probe_is_left=True, sources=keep_sources,
                left_items=left_rows, right_items=right_rows,
                probe_perm=perm,
            )
            if parallel is not _RUN_SEQUENTIAL:
                return parallel
    l_block, r_pos = hash_join(left_codes[perm], right_codes, outer="left")
    products = int(l_block.shape[0])
    if products == 0:
        return {}, 0
    if not _mul_safe(profile, left_ann, right_ann, products):
        return None
    l_pos = perm[l_block]
    weights = profile.mul(left_ann[l_pos], right_ann[r_pos])
    out_columns = _gather_out_columns(
        codec, keep_sources, left_rows, right_rows, l_pos, r_pos
    )
    partials = _aggregate_product_stream(codec, profile, out_columns, weights)
    if partials is None:
        return None
    return partials, products


def _gather_out_columns(
    codec: Any,
    sources: Sequence[Tuple[str, int]],
    left_items: Sequence[Tuple[Tuple, Any]],
    right_items: Sequence[Tuple[Tuple, Any]],
    l_pos: Any,
    r_pos: Any,
) -> List[Any]:
    """Per output attribute: its code for every elementary product."""
    columns: List[Any] = []
    for side, index in sources:
        if side == "L":
            column = codec.encode_many([item[0][index] for item in left_items])[l_pos]
        else:
            column = codec.encode_many([item[0][index] for item in right_items])[r_pos]
        columns.append(column)
    return columns


def aggregate_relation(
    relation: DistRelation,
    group_attrs: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """``Σ_{−group_attrs} relation`` via reduce-by-key (paper §2.1)."""
    key = relation.key_fn(tuple(group_attrs))
    reduced = reduce_by_key(
        relation.data,
        lambda item: key(item),
        lambda item: item[1],
        semiring.add,
        salt=salt,
        profile=vector_profile(relation.view, semiring),
    )
    return DistRelation(tuple(group_attrs), reduced)


def local_join_aggregate(
    left_items: Sequence[Tuple[Tuple, Any]],
    right_items: Sequence[Tuple[Tuple, Any]],
    left_key: Callable[[Tuple[Tuple, Any]], Tuple],
    right_key: Callable[[Tuple[Tuple, Any]], Tuple],
    out_key: Callable[[Tuple, Tuple], Tuple],
    semiring: Semiring,
    vec: Optional[_VectorJoinSpec] = None,
) -> Tuple[Dict[Tuple, Any], int]:
    """Join two local tuple lists on their keys, ⊕-aggregating by ``out_key``.

    Returns ``(partials, elementary_product_count)``; used by every algorithm
    that arranges tuples so products can be aggregated in place (the paper's
    "locality").  ``vec`` (a :func:`vector_join_context` result, optional)
    lets the numpy backend run the same join as array kernels; the caller
    guarantees it describes the same keys and out-key as the callables.
    """
    if vec is not None:
        vectorized = _local_join_vec(left_items, right_items, vec)
        if vectorized is not None:
            return vectorized
    index: Dict[Tuple, List[Tuple[Tuple, Any]]] = {}
    for item in left_items:
        index.setdefault(left_key(item), []).append(item)
    partials: Dict[Tuple, Any] = {}
    products = 0
    for item in right_items:
        matches = index.get(right_key(item))
        if not matches:
            continue
        r_values, r_weight = item
        for l_values, l_weight in matches:
            products += 1
            key = out_key(l_values, r_values)
            weight = semiring.mul(l_weight, r_weight)
            if key in partials:
                partials[key] = semiring.add(partials[key], weight)
            else:
                partials[key] = weight
    return partials, products


def join_aggregate_naive(
    left: DistRelation,
    right: DistRelation,
    keep: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """Skew-*oblivious* hash join (ablation baseline, §1.4 context).

    Both sides are hash-partitioned by the join key with no degree
    statistics: a heavy key lands entirely on one server, whose load then
    scales with that key's join size instead of J/p.  Correct but fragile —
    kept to let benchmarks quantify what the fragment-replicate scheme of
    :func:`join_aggregate_pair` buys.
    """
    from ..mpc.hashing import hash_to_bucket

    view = left.view
    p = view.p
    shared = tuple(sorted(set(left.schema) & set(right.schema)))
    if not shared:
        raise ValueError("join_aggregate_naive requires a shared attribute")
    keep = tuple(keep)
    left_key = left.key_fn(shared)
    right_key = right.key_fn(shared)
    keep_sources = _keep_sources(left.schema, right.schema, keep)
    tracker = view.tracker
    vec = (
        vector_join_context(
            view,
            semiring,
            left.schema.index(shared[0]),
            right.schema.index(shared[0]),
            keep_sources,
        )
        if len(shared) == 1
        else None
    )

    # Both sides co-partition in ONE shuffle round (the textbook plan),
    # so the heavy key's server receives d_L(b) + d_R(b) in a single round.
    tagged = left.data.map_items(lambda item: ("L", item)).concat(
        right.data.map_items(lambda item: ("R", item))
    )
    routed = tagged.repartition(
        lambda msg: hash_to_bucket(
            left_key(msg[1]) if msg[0] == "L" else right_key(msg[1]), p, salt
        )
    )

    def local_join(part: List[Any]) -> List[Any]:
        left_items = [item for tag, item in part if tag == "L"]
        right_items = [item for tag, item in part if tag == "R"]
        partials, products = local_join_aggregate(
            left_items,
            right_items,
            left_key,
            right_key,
            lambda lv, rv: tuple(
                lv[i] if side == "L" else rv[i] for side, i in keep_sources
            ),
            semiring,
            vec=vec,
        )
        tracker.record_products(products)
        return list(partials.items())

    partials = routed.map_parts(local_join)
    reduced = reduce_by_key(
        partials, lambda pair: pair[0], lambda pair: pair[1], semiring.add,
        salt=salt + 13, profile=vector_profile(view, semiring),
    )
    return DistRelation(keep, reduced)
