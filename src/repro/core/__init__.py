"""The paper's algorithms (§3–§7) and the distributed Yannakakis baseline."""

from .allocation import RangeAllocation
from .executor import Algorithm, QueryResult, run_query
from .line import line_query
from .matmul import sparse_matmul
from .matmul_output_sensitive import (
    linear_sparse_mm,
    matmul_output_sensitive,
    output_sensitive_load_target,
)
from .matmul_worst_case import (
    matmul_unbalanced,
    matmul_worst_case,
    worst_case_load_target,
)
from .star import star_query
from .starlike import starlike_query
from .tree import tree_query, twig_eval
from .two_way_join import aggregate_relation, join_aggregate_pair
from .yannakakis_mpc import yannakakis_mpc, yannakakis_mpc_distributed

__all__ = [
    "run_query",
    "QueryResult",
    "Algorithm",
    "sparse_matmul",
    "matmul_worst_case",
    "matmul_unbalanced",
    "matmul_output_sensitive",
    "linear_sparse_mm",
    "worst_case_load_target",
    "output_sensitive_load_target",
    "line_query",
    "star_query",
    "starlike_query",
    "tree_query",
    "twig_eval",
    "yannakakis_mpc",
    "yannakakis_mpc_distributed",
    "join_aggregate_pair",
    "aggregate_relation",
    "RangeAllocation",
]
