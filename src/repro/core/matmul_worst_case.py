"""Worst-case optimal sparse matrix multiplication (paper §3.1).

Computes ``∑_B R1(A,B) ⋈ R2(B,C)`` with load ``O((N1+N2)/p + √(N1N2/p))``:

* **unbalanced case** ``N1/N2 ∉ [1/p, p]``: sort the larger relation by its
  output attribute (co-locating each output value) and broadcast the
  smaller; everything finishes locally.
* **balanced case**: set ``L = √(N1N2/p)``, call a value *heavy* when its
  degree is ≥ L, and split into four subqueries:

  - *heavy-heavy*: one task per heavy pair ``(a, c)`` with
    ``⌈(d(a)+d(c))/L⌉`` servers; both sides hash by ``B`` inside the range.
  - *heavy-light* / *light-heavy*: one task per heavy value; the light side
    of the other relation is replicated into every task, hashed by ``B``.
  - *light-light*: parallel-packing groups both light sides into degree-≤L
    bundles; servers form a ``k × l`` grid and each cell joins one bundle
    pair locally — the step that gives the algorithm its *locality* (all
    elementary products of a cell aggregate in place and are never shuffled).

The results of the four subqueries are disjoint, so their union needs no
further aggregation.

Simulation note: virtual task ranges wrap onto real servers (see
:class:`~repro.core.allocation.RangeAllocation`), so messages carry their
task id and servers join strictly within a task — this guarantees every
elementary product is computed exactly once even when two tasks share a
real server.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Tuple

from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..primitives.degrees import attach_by_key, degree_table, lookup_table
from ..primitives.packing import parallel_packing
from ..primitives.reduce_by_key import reduce_by_key
from ..primitives.sort import distributed_sort
from ..semiring import Semiring
from .allocation import RangeAllocation
from .two_way_join import local_join_aggregate, vector_join_context, vector_profile

__all__ = ["matmul_worst_case", "matmul_unbalanced", "worst_case_load_target"]


def worst_case_load_target(n1: int, n2: int, p: int) -> int:
    """The paper's L = √(N1·N2/p) (≥ 1)."""
    return max(1, math.ceil(math.sqrt(max(1, n1) * max(1, n2) / p)))


def _matmul_attrs(r1: DistRelation, r2: DistRelation) -> Tuple[str, str, str]:
    """(a_attr, b_attr, c_attr) for a matrix-multiplication pair."""
    shared = set(r1.schema) & set(r2.schema)
    if len(shared) != 1:
        raise ValueError(
            f"matmul needs exactly one shared attribute, got {shared!r}"
        )
    b_attr = next(iter(shared))
    a_attr = next(a for a in r1.schema if a != b_attr)
    c_attr = next(c for c in r2.schema if c != b_attr)
    return a_attr, b_attr, c_attr


def matmul_unbalanced(
    r1: DistRelation, r2: DistRelation, semiring: Semiring
) -> DistRelation:
    """The ``N1/N2 ∉ [1/p, p]`` case: sort-by-output + broadcast (§3).

    Also covers the trivial ``N1 = 1`` / ``N2 = 1`` case.  After the larger
    relation is sorted by its output attribute, every output value lives on
    one server, so local results are final.
    """
    a_attr, b_attr, c_attr = _matmul_attrs(r1, r2)
    small, big = (r1, r2) if r1.total_size <= r2.total_size else (r2, r1)
    big_out = c_attr if big is r2 else a_attr

    # Equal output values must be co-located so local results are final;
    # safe because each output value's degree is ≤ N_small ≤ N_big/p here.
    ordered = distributed_sort(big.data, big.key_fn((big_out,)), split_ties=False)
    small_items = small.data.broadcast()

    small_b = small.attr_index(b_attr)
    big_b = big.attr_index(b_attr)
    small_out_index = small.attr_index(a_attr if big is r2 else c_attr)
    big_out_index = big.attr_index(big_out)
    tracker = r1.view.tracker
    big_is_right = big is r2  # result key order must be (a, c)
    vec = vector_join_context(
        r1.view,
        semiring,
        small_b,
        big_b,
        (("L", small_out_index), ("R", big_out_index))
        if big_is_right
        else (("R", big_out_index), ("L", small_out_index)),
    )

    def compute(part: List[Any]) -> List[Any]:
        partials, products = local_join_aggregate(
            small_items,
            part,
            lambda item: (item[0][small_b],),
            lambda item: (item[0][big_b],),
            lambda s_values, b_values: (
                (s_values[small_out_index], b_values[big_out_index])
                if big_is_right
                else (b_values[big_out_index], s_values[small_out_index])
            ),
            semiring,
            vec=vec,
        )
        tracker.record_products(products)
        return list(partials.items())

    result = Distributed(ordered.view, [compute(part) for part in ordered.parts])
    return DistRelation((a_attr, c_attr), result)


def matmul_worst_case(
    r1: DistRelation,
    r2: DistRelation,
    semiring: Semiring,
    salt: int = 0,
    load_factor: float = 1.0,
) -> DistRelation:
    """§3.1: the √(N1N2/p) algorithm (assumes dangling tuples removed).

    ``load_factor`` scales the heavy/light threshold L away from the
    paper's √(N1N2/p) — used only by the threshold-ablation benchmark to
    show the paper's choice balances the four subqueries.
    """
    view = r1.view
    p = view.p
    n1, n2 = r1.total_size, r2.total_size
    a_attr, b_attr, c_attr = _matmul_attrs(r1, r2)
    if n1 == 0 or n2 == 0:
        return DistRelation((a_attr, c_attr), Distributed.empty(view))
    if n1 * p < n2 or n2 * p < n1:
        return matmul_unbalanced(r1, r2, semiring)

    load = max(1, round(worst_case_load_target(n1, n2, p) * load_factor))
    a_key = r1.key_fn((a_attr,))
    c_key = r2.key_fn((c_attr,))
    b1_index = r1.attr_index(b_attr)
    b2_index = r2.attr_index(b_attr)
    a_index = r1.attr_index(a_attr)
    c_index = r2.attr_index(c_attr)
    tracker = view.tracker
    vec = vector_join_context(
        view, semiring, b1_index, b2_index, (("L", a_index), ("R", c_index))
    )
    profile = vector_profile(view, semiring)

    # Step 1: degrees and the heavy/light split.  Heavy lists have size
    # ≤ N/L ≤ p and live at the coordinator (control channel).
    tracker.push_phase("matmul-wc/statistics")
    a_degrees = degree_table(r1.data, a_key, salt)
    c_degrees = degree_table(r2.data, c_key, salt + 1)
    heavy_a = {
        key[0]: deg
        for key, deg in lookup_table(
            a_degrees.filter_items(lambda pair: pair[1] >= load)
        ).items()
    }
    heavy_c = {
        key[0]: deg
        for key, deg in lookup_table(
            c_degrees.filter_items(lambda pair: pair[1] >= load)
        ).items()
    }

    r1_heavy = r1.data.filter_items(lambda item: item[0][a_index] in heavy_a)
    r1_light = r1.data.filter_items(lambda item: item[0][a_index] not in heavy_a)
    r2_heavy = r2.data.filter_items(lambda item: item[0][c_index] in heavy_c)
    r2_light = r2.data.filter_items(lambda item: item[0][c_index] not in heavy_c)
    n2_light = r2_light.total_size
    n1_light = r1_light.total_size
    tracker.pop_phase()

    def join_tasked(routed: Distributed) -> Distributed:
        """Join ("L"/"R", task, item) messages within each task, colocated
        by B; then ⊕-reduce (a, c) partials globally."""

        def compute(part: List[Any]) -> List[Any]:
            lefts: Dict[Any, List[Any]] = {}
            rights: Dict[Any, List[Any]] = {}
            for tag, task, item in part:
                (lefts if tag == "L" else rights).setdefault(task, []).append(item)
            rows: List[Any] = []
            for task, left_items in lefts.items():
                right_items = rights.get(task)
                if not right_items:
                    continue
                partials, products = local_join_aggregate(
                    left_items,
                    right_items,
                    lambda it: (it[0][b1_index],),
                    lambda it: (it[0][b2_index],),
                    lambda lv, rv: (lv[a_index], rv[c_index]),
                    semiring,
                    vec=vec,
                )
                tracker.record_products(products)
                rows.extend(partials.items())
            return rows

        partials = routed.map_parts(compute)
        return reduce_by_key(
            partials, lambda pair: pair[0], lambda pair: pair[1], semiring.add,
            profile=profile,
        )

    outputs: List[Distributed] = []

    # Step 2: heavy-heavy — one task per heavy (a, c) pair.
    if heavy_a and heavy_c:
        tracker.push_phase("matmul-wc/heavy-heavy")
        sizes = {(a, c): heavy_a[a] + heavy_c[c] for a in heavy_a for c in heavy_c}
        alloc = RangeAllocation(view, sizes, load)
        routed = _route_tagged(
            view,
            r1_heavy.map_parts(
                lambda part: [
                    ("L", (item[0][a_index], c), item)
                    for item in part
                    for c in heavy_c
                ]
            ),
            r2_heavy.map_parts(
                lambda part: [
                    ("R", (a, item[0][c_index]), item)
                    for item in part
                    for a in heavy_a
                ]
            ),
            lambda msg: alloc.dest(
                msg[1], msg[2][0][b1_index if msg[0] == "L" else b2_index], salt + 2
            ),
        )
        outputs.append(join_tasked(routed))
        tracker.pop_phase()

    # Step 3: heavy-light — one task per heavy a; light R2 replicated to all.
    if heavy_a and n2_light:
        tracker.push_phase("matmul-wc/heavy-light")
        sizes_a = {a: heavy_a[a] + n2_light for a in heavy_a}
        alloc_a = RangeAllocation(view, sizes_a, load)
        routed = _route_tagged(
            view,
            r1_heavy.map_parts(
                lambda part: [("L", item[0][a_index], item) for item in part]
            ),
            r2_light.map_parts(
                lambda part: [("R", a, item) for item in part for a in heavy_a]
            ),
            lambda msg: alloc_a.dest(
                msg[1], msg[2][0][b1_index if msg[0] == "L" else b2_index], salt + 3
            ),
        )
        outputs.append(join_tasked(routed))
        tracker.pop_phase()

    # Light-heavy (symmetric).
    if heavy_c and n1_light:
        tracker.push_phase("matmul-wc/light-heavy")
        sizes_c = {c: heavy_c[c] + n1_light for c in heavy_c}
        alloc_c = RangeAllocation(view, sizes_c, load)
        routed = _route_tagged(
            view,
            r1_light.map_parts(
                lambda part: [("L", c, item) for item in part for c in heavy_c]
            ),
            r2_heavy.map_parts(
                lambda part: [("R", item[0][c_index], item) for item in part]
            ),
            lambda msg: alloc_c.dest(
                msg[1], msg[2][0][b1_index if msg[0] == "L" else b2_index], salt + 4
            ),
        )
        outputs.append(join_tasked(routed))
        tracker.pop_phase()

    # Step 4: light-light — degree-packed groups on a k × l grid.
    if n1_light and n2_light:
        tracker.push_phase("matmul-wc/light-light")
        a_light_degrees = a_degrees.filter_items(lambda pair: pair[1] < load)
        c_light_degrees = c_degrees.filter_items(lambda pair: pair[1] < load)
        a_packed, k_groups = parallel_packing(
            a_light_degrees, lambda pair: pair[1] / load
        )
        c_packed, l_groups = parallel_packing(
            c_light_degrees, lambda pair: pair[1] / load
        )
        a_group_table = a_packed.map_items(lambda entry: (entry[0][0], entry[1]))
        c_group_table = c_packed.map_items(lambda entry: (entry[0][0], entry[1]))

        r1_grouped = attach_by_key(
            r1_light, a_group_table, a_key, default=None, salt=salt + 5
        )
        r2_grouped = attach_by_key(
            r2_light, c_group_table, c_key, default=None, salt=salt + 6
        )

        def cell_server(i: int, j: int) -> int:
            return (i * l_groups + j) % p

        routed = (
            r1_grouped.map_items(lambda entry: ("L", entry[1], entry[0]))
            .repartition_multi(
                lambda msg: sorted({cell_server(msg[1], j) for j in range(l_groups)})
            )
            .concat(
                r2_grouped.map_items(lambda entry: ("R", entry[1], entry[0]))
                .repartition_multi(
                    lambda msg: sorted({cell_server(i, msg[1]) for i in range(k_groups)})
                )
            )
        )

        def compute_cells(part: List[Any], server_index: int) -> List[Any]:
            by_group_left: Dict[int, List[Any]] = {}
            by_group_right: Dict[int, List[Any]] = {}
            for tag, group, item in part:
                target = by_group_left if tag == "L" else by_group_right
                target.setdefault(group, []).append(item)
            rows: List[Any] = []
            # A product of cell (i, j) is computed only on cell_server(i, j),
            # so every product is computed exactly once cluster-wide.
            for i, left_items in by_group_left.items():
                for j, right_items in by_group_right.items():
                    if cell_server(i, j) != server_index:
                        continue
                    partials, products = local_join_aggregate(
                        left_items,
                        right_items,
                        lambda it: (it[0][b1_index],),
                        lambda it: (it[0][b2_index],),
                        lambda lv, rv: (lv[a_index], rv[c_index]),
                        semiring,
                        vec=vec,
                    )
                    tracker.record_products(products)
                    rows.extend(partials.items())
            return rows

        parts = [
            compute_cells(part, server_index)
            for server_index, part in enumerate(routed.parts)
        ]
        outputs.append(Distributed(view, parts))
        tracker.pop_phase()

    result = Distributed.empty(view)
    for output in outputs:
        result = result.concat(output)
    return DistRelation(
        (a_attr, c_attr),
        result.map_items(lambda pair: (tuple(pair[0]), pair[1])),
    )


def _route_tagged(
    view,
    left_msgs: Distributed,
    right_msgs: Distributed,
    dest_fn,
) -> Distributed:
    """Route pre-tagged ("L"/"R", task, item) messages to ``dest_fn(msg)``."""
    merged = left_msgs.concat(right_msgs)
    return merged.repartition(dest_fn)
