"""Arm extraction for star-like queries (paper §6, Figure 1).

A star-like query is a set of *arms* — line queries — glued at a common
attribute.  Each arm is represented as the list of relations on the path
from the centre outward: ``[(name, near_attr, far_attr), …]`` where the
first entry's ``near_attr`` is the centre and the last entry's ``far_attr``
is the arm's end (an output attribute).
"""

from __future__ import annotations

from typing import List, Tuple

from ..data.query import TreeQuery

__all__ = ["Arm", "ArmStep", "extract_arms"]

ArmStep = Tuple[str, str, str]  # (relation name, near attribute, far attribute)
Arm = List[ArmStep]


def extract_arms(query: TreeQuery, centre: str) -> List[Arm]:
    """Decompose ``query`` into arms hanging at ``centre``.

    Requires every relation to lie on a simple path from ``centre`` to a
    leaf (true for star-like queries and for the hanging components ``T_B``
    of §7).  Arms are returned sorted by their end attribute.
    """
    arms: List[Arm] = []
    for rel_index, first_attr in query.adjacency[centre]:
        arm: Arm = []
        name, attrs = query.relations[rel_index]
        near, far = centre, first_attr
        arm.append((name, near, far))
        previous_rel = rel_index
        current = far
        while True:
            onward = [
                (i, b) for i, b in query.adjacency[current] if i != previous_rel
            ]
            if not onward:
                break
            if len(onward) > 1:
                raise ValueError(
                    f"attribute {current!r} branches: query is not star-like at "
                    f"{centre!r}"
                )
            next_rel, next_attr = onward[0]
            arm.append((query.relations[next_rel][0], current, next_attr))
            previous_rel = next_rel
            current = next_attr
        arms.append(arm)
    return sorted(arms, key=lambda arm: arm[-1][2])
