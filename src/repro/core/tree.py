"""General tree queries with arbitrary output attributes (paper §7).

``tree_query`` implements Theorem 6 (load ``O(N·OUT^{2/3}/p + (N+OUT)/p)``):

1. **Reduction** — absorb relations with a private non-output attribute by
   pre-aggregating them into a neighbour (Figure 2, left→middle).  After
   this every leaf attribute is an output attribute.
2. **Twig decomposition** — cut at every non-leaf output attribute; each
   twig has output = leaves, and the final answer is the free-connex join
   of the twig results (Figure 2, right).
3. **Twig evaluation** — matmul/line/star/star-like twigs go to §3–§6;
   a general twig is processed by the skeleton divide & conquer (§7.1):

   a. compute, for every non-output skeleton leaf ``B``, the statistics
      ``x(b)`` (combinations its hanging star-like component ``T_B`` can
      produce) and ``y(b)`` (an Algorithm-1 under-estimate of the
      combinations the rest of the query can produce);
   b. split into heavy/light subqueries per ``B`` (Lemma 13: a non-empty
      subquery has ≥ 1 light ``B``);
   c. for every light ``B``, materialize
      ``Q_B = Σ_{V_B∩ȳ} ⋈ T_B`` as one relation ``R(B, ⟨arm ends⟩)``
      (size ≤ N·√OUT by Lemma 15), replace ``T_B`` by that edge, and
      recurse on the smaller twig.

Combined ``⟨…⟩`` attributes hold tuples of their component values; they are
expanded back into flat columns before a twig returns its result.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from ..data.query import TreeQuery
from ..data.relation import DistRelation
from ..data.treeops import reduction_plan, skeleton_info, twig_decomposition
from ..mpc.distributed import Distributed
from ..primitives.dangling import remove_dangling
from ..primitives.degrees import attach_by_key, lookup_table
from ..primitives.reduce_by_key import reduce_by_key
from ..semiring import Semiring
from .arms import extract_arms
from .line import line_query
from .star import binarize, join_group_on_centre, star_query
from .starlike import arm_reach_estimates, shrink_arm, starlike_query
from ..backends.columnar import FLOAT_MAX_PROFILE
from .two_way_join import aggregate_relation, join_aggregate_pair, vector_profile

__all__ = ["tree_query", "twig_eval"]


@dataclass
class _Context:
    """Shared evaluation state: semiring, salts, combined-attr expansions."""

    semiring: Semiring
    salt: int = 0
    expansions: Dict[str, Tuple[str, ...]] = field(default_factory=dict)
    counter: int = 0

    def fresh_salt(self) -> int:
        self.counter += 1
        return self.salt + 1000 * self.counter

    def fresh_comb(self, base: str, components: Tuple[str, ...]) -> str:
        self.counter += 1
        name = f"__comb{self.counter}_{base}"
        self.expansions[name] = components
        return name

    def expand_attrs(self, attrs: Sequence[str]) -> List[str]:
        """Fully expand combined attributes into original attribute names."""
        flat: List[str] = []
        for attr in attrs:
            if attr in self.expansions:
                flat.extend(self.expand_attrs(self.expansions[attr]))
            else:
                flat.append(attr)
        return flat


def tree_query(
    query: TreeQuery,
    relations: Dict[str, DistRelation],
    semiring: Semiring,
    salt: int = 0,
) -> DistRelation:
    """Evaluate an arbitrary tree join-aggregate query.

    Result schema: output attributes in sorted order (empty schema for a
    full aggregate, which yields at most one tuple with the grand total).
    """
    ctx = _Context(semiring=semiring, salt=salt)
    relations = remove_dangling(query, relations)
    if any(rel.total_size == 0 for rel in relations.values()):
        view = next(iter(relations.values())).view
        return DistRelation(tuple(sorted(query.output)), Distributed.empty(view))

    # ---- Step 1: reduction. --------------------------------------------------
    steps, reduced = reduction_plan(query)
    live = dict(relations)
    for step in steps:
        absorbed = live.pop(step.relation)
        target = live[step.target]
        table = reduce_by_key(
            absorbed.data,
            absorbed.key_fn((step.shared_attr,)),
            lambda item: item[1],
            semiring.add,
            salt=ctx.fresh_salt(),
            profile=vector_profile(absorbed.view, semiring),
        ).map_items(lambda pair: (pair[0][0], pair[1]))
        index = target.attr_index(step.shared_attr)
        tagged = attach_by_key(
            target.data, table, lambda item, i=index: item[0][i],
            default=None, salt=ctx.fresh_salt(),
        )
        live[step.target] = DistRelation(
            target.schema,
            tagged.filter_items(lambda entry: entry[1] is not None).map_items(
                lambda entry: (entry[0][0], semiring.mul(entry[0][1], entry[1]))
            ),
        )

    out_schema = tuple(sorted(query.output))
    if reduced.n == 1:
        (final_name,) = [name for name, _ in reduced.relations]
        return aggregate_relation(
            live[final_name], out_schema, semiring, ctx.fresh_salt()
        )

    # ---- Step 2: twigs. --------------------------------------------------------
    twigs = twig_decomposition(reduced)
    results: List[DistRelation] = []
    for twig in twigs:
        twig_rels = {name: live[name] for name, _ in twig.relations}
        results.append(twig_eval(twig, twig_rels, ctx))

    # ---- Step 3: free-connex join of the twig results. --------------------------
    joined = results[0]
    seen_attrs: Set[str] = set(joined.schema)
    for part in results[1:]:
        keep = tuple(sorted(seen_attrs | set(part.schema)))
        joined = join_aggregate_pair(joined, part, keep, semiring, ctx.fresh_salt())
        seen_attrs |= set(part.schema)
    return aggregate_relation(joined, out_schema, semiring, ctx.fresh_salt())


def twig_eval(
    twig: TreeQuery, relations: Dict[str, DistRelation], ctx: _Context
) -> DistRelation:
    """Evaluate one twig; result schema = sorted(expanded twig outputs)."""
    semiring = ctx.semiring
    out_schema = tuple(sorted(ctx.expand_attrs(sorted(twig.output))))

    if twig.n == 1:
        (name,) = [n for n, _ in twig.relations]
        return _expand_and_aggregate(relations[name], ctx, out_schema)

    cls = twig.classify()
    if cls in ("matmul", "line"):
        order = twig.path_order()
        rels = [
            relations[_rel_between(twig, order[i], order[i + 1])]
            for i in range(len(order) - 1)
        ]
        result = line_query(rels, order, semiring, ctx.fresh_salt())
        return _expand_and_aggregate(result, ctx, out_schema)
    if cls == "star":
        centre = next(
            a for a in twig.attributes
            if all(a in attrs for _n, attrs in twig.relations)
        )
        arm_attrs = []
        rels = []
        for name, attrs in twig.relations:
            arm = attrs[0] if attrs[1] == centre else attrs[1]
            arm_attrs.append(arm)
            rels.append(relations[name])
        result = star_query(rels, arm_attrs, centre, semiring, ctx.fresh_salt())
        return _expand_and_aggregate(result, ctx, out_schema)
    if cls == "star-like":
        result = starlike_query(twig, relations, semiring, ctx.fresh_salt())
        return _expand_and_aggregate(result, ctx, out_schema)

    return _twig_divide_conquer(twig, relations, ctx, out_schema)


# -- §7.1: skeleton divide & conquer -----------------------------------------------


def _twig_divide_conquer(
    twig: TreeQuery,
    relations: Dict[str, DistRelation],
    ctx: _Context,
    out_schema: Tuple[str, ...],
) -> DistRelation:
    semiring = ctx.semiring
    info = skeleton_info(twig)
    view = next(iter(relations.values())).view

    # ---- Step 1: statistics x(b), y(b) per non-output skeleton leaf B. -------
    x_tables: Dict[str, Distributed] = {}
    for root in info.branch_roots:
        x_tables[root] = _branch_x_table(info.branches[root], root, relations, ctx)
    y_tables: Dict[str, Distributed] = {}
    for root in info.branch_roots:
        y_tables[root] = _estimate_out_tree(root, info, x_tables, relations, ctx)

    side_tables: Dict[str, Distributed] = {}
    for root in info.branch_roots:
        merged = (
            x_tables[root].map_items(lambda pair: (pair[0], ("x", pair[1])))
            .concat(y_tables[root].map_items(lambda pair: (pair[0], ("y", pair[1]))))
        )
        profiles = reduce_by_key(
            merged, lambda pair: pair[0], lambda pair: (pair[1],),
            lambda a, b: a + b, salt=ctx.fresh_salt(),
        )

        def side_of(entries: Tuple[Tuple[str, float], ...]) -> str:
            stats = dict(entries)
            return "heavy" if stats.get("x", 1.0) > stats.get("y", 1.0) else "light"

        side_tables[root] = profiles.map_items(
            lambda pair: (pair[0], side_of(pair[1]))
        )

    # ---- Step 2: divide & conquer over heavy/light patterns. ------------------
    outputs: List[Distributed] = []
    roots = list(info.branch_roots)
    for pattern in itertools.product(("light", "heavy"), repeat=len(roots)):
        assignment = dict(zip(roots, pattern))
        restricted = _restrict_pattern(twig, relations, side_tables, assignment, ctx)
        restricted = remove_dangling(twig, restricted)
        if any(rel.total_size == 0 for rel in restricted.values()):
            continue
        light_roots = [root for root in roots if assignment[root] == "light"]
        if not light_roots:
            # Lemma 13 says this is empty with exact statistics; with
            # estimates it may survive — force progress by contracting the
            # B with the smallest x/y gap (correctness is unaffected).
            light_roots = [roots[0]]

        new_relations: List[Tuple[str, Tuple[str, str]]] = list(info.residual_relations)
        new_rels_data: Dict[str, DistRelation] = {
            name: restricted[name] for name, _ in info.residual_relations
        }
        new_output: Set[str] = set(twig.output)
        for root in roots:
            branch = info.branches[root]
            if root in light_roots:
                comb_rel, comb_attr, comb_name = _materialize_branch(
                    branch, root, restricted, ctx
                )
                new_relations.append((comb_name, (root, comb_attr)))
                new_rels_data[comb_name] = comb_rel
                new_output -= set(branch.output)
                new_output.add(comb_attr)
            else:
                for name, attrs in branch.relations:
                    new_relations.append((name, attrs))
                    new_rels_data[name] = restricted[name]

        new_query = TreeQuery(tuple(new_relations), frozenset(new_output))
        result = twig_eval(new_query, new_rels_data, ctx)
        # twig_eval returns fully expanded columns; align to out_schema.
        outputs.append(_reorder(result, out_schema).data)

    union = Distributed.empty(view)
    for output in outputs:
        union = union.concat(output)
    combined = DistRelation(out_schema, union)
    return aggregate_relation(combined, out_schema, semiring, ctx.fresh_salt())


def _branch_x_table(
    branch: TreeQuery,
    root: str,
    relations: Dict[str, DistRelation],
    ctx: _Context,
) -> Distributed:
    """x(b) = ∏ over arms of T_B of d_arm(b) (KMV estimates, §7.1 step 1)."""
    arms = extract_arms(branch, root)
    merged: Optional[Distributed] = None
    for i, arm in enumerate(arms):
        table = arm_reach_estimates(arm, relations, ctx.fresh_salt())
        merged = table if merged is None else merged.concat(table)
    return reduce_by_key(
        merged, lambda pair: pair[0], lambda pair: pair[1],
        lambda a, b: a * b, salt=ctx.fresh_salt(),
    )


def _estimate_out_tree(
    root: str,
    info,
    x_tables: Dict[str, Distributed],
    relations: Dict[str, DistRelation],
    ctx: _Context,
) -> Distributed:
    """Algorithm 1 (EstimateOutTree): bottom-up max-product over the skeleton.

    ``y(c) = ∏_{children C'} max_{c' ⋈ c} y(c')`` with ``y = x`` at the
    non-output leaves and ``y = 1`` at output leaves.  Returns (b, y(b)) for
    the root's values.
    """
    adjacency: Dict[str, List[Tuple[str, str]]] = {}
    for name, (x, y) in info.residual_relations:
        adjacency.setdefault(x, []).append((name, y))
        adjacency.setdefault(y, []).append((name, x))

    def subtree(attr: str, via: Optional[str]) -> Optional[Distributed]:
        if attr != root and attr in x_tables:
            return x_tables[attr]
        child_edges = [(n, other) for n, other in adjacency.get(attr, []) if n != via]
        if not child_edges:
            return None  # output leaf: constant 1
        factors: List[Distributed] = []
        for rel_name, child_attr in child_edges:
            child_table = subtree(child_attr, rel_name)
            if child_table is None:
                continue
            rel = relations[rel_name]
            child_index = rel.attr_index(child_attr)
            parent_index = rel.attr_index(attr)
            tagged = attach_by_key(
                rel.data, child_table,
                lambda item, i=child_index: item[0][i],
                default=None, salt=ctx.fresh_salt(),
            ).filter_items(lambda entry: entry[1] is not None)
            pairs = tagged.map_items(
                lambda entry, i=parent_index: (entry[0][0][i], entry[1])
            )
            factors.append(
                reduce_by_key(pairs, lambda pair: pair[0], lambda pair: pair[1],
                              max, salt=ctx.fresh_salt(),
                              profile=FLOAT_MAX_PROFILE)
            )
        if not factors:
            return None
        merged = factors[0]
        for factor in factors[1:]:
            merged = merged.concat(factor)
        return reduce_by_key(
            merged, lambda pair: pair[0], lambda pair: pair[1],
            lambda a, b: a * b, salt=ctx.fresh_salt(),
        )

    table = subtree(root, None)
    if table is None:  # the skeleton carries no information: y ≡ 1
        rel_name, other = adjacency[root][0]
        rel = relations[rel_name]
        ones = reduce_by_key(
            rel.data, rel.key_fn((root,)), lambda _i: 1.0, lambda a, _b: a,
            salt=ctx.fresh_salt(), profile=FLOAT_MAX_PROFILE,
        )
        return ones.map_items(lambda pair: (pair[0][0], 1.0))
    return table


def _restrict_pattern(
    twig: TreeQuery,
    relations: Dict[str, DistRelation],
    side_tables: Dict[str, Distributed],
    assignment: Dict[str, str],
    ctx: _Context,
) -> Dict[str, DistRelation]:
    """Filter every B-incident relation to the pattern's side of dom(B)."""
    restricted = dict(relations)
    for root, side in assignment.items():
        for rel_index, _neighbour in twig.adjacency[root]:
            name = twig.relations[rel_index][0]
            rel = restricted[name]
            index = rel.attr_index(root)
            tagged = attach_by_key(
                rel.data, side_tables[root],
                lambda item, i=index: item[0][i],
                default="light", salt=ctx.fresh_salt(),
            )
            restricted[name] = DistRelation(
                rel.schema,
                tagged.filter_items(lambda entry, s=side: entry[1] == s)
                .map_items(lambda entry: entry[0]),
            )
    return restricted


def _materialize_branch(
    branch: TreeQuery,
    root: str,
    relations: Dict[str, DistRelation],
    ctx: _Context,
) -> Tuple[DistRelation, str, str]:
    """Q_B (§7.1 step 2): shrink T_B's arms, join them on B, and fold the arm
    ends into one combined attribute.  Returns (relation over (B, comb),
    comb attribute name, fresh relation name)."""
    semiring = ctx.semiring
    arms = extract_arms(branch, root)
    arm_ends = [arm[-1][2] for arm in arms]
    shrunk = [
        _orient2(shrink_arm(arm, relations, semiring, ctx.fresh_salt()),
                 arm_ends[i], root)
        for i, arm in enumerate(arms)
    ]
    joined, joined_attrs = join_group_on_centre(
        shrunk, arm_ends, root, semiring, ctx.fresh_salt()
    )
    comb_attr = ctx.fresh_comb(root, tuple(joined_attrs))
    combined = binarize(joined, joined_attrs, comb_attr, root)
    oriented = _orient2(combined, root, comb_attr)
    rel_name = f"__Q_{root}_{ctx.counter}"
    return oriented, comb_attr, rel_name


# -- result shaping ------------------------------------------------------------------


def _expand_and_aggregate(
    rel: DistRelation, ctx: _Context, out_schema: Tuple[str, ...]
) -> DistRelation:
    """Expand combined columns into flat ones and aggregate to out_schema."""
    expanded_schema: List[str] = []
    plan: List[Tuple[int, Optional[Tuple[str, ...]]]] = []
    needs_expansion = any(attr in ctx.expansions for attr in rel.schema)
    if not needs_expansion:
        if rel.schema == out_schema:
            return rel
        return aggregate_relation(rel, out_schema, ctx.semiring, ctx.fresh_salt())

    def expand_value(attr: str, value: Any, bound: Dict[str, Any]) -> None:
        if attr in ctx.expansions:
            for component, part in zip(ctx.expansions[attr], value):
                expand_value(component, part, bound)
        else:
            bound[attr] = value

    schema = rel.schema

    def reshape(item):
        bound: Dict[str, Any] = {}
        for attr, value in zip(schema, item[0]):
            expand_value(attr, value, bound)
        return (tuple(bound[a] for a in out_schema), item[1])

    flat = DistRelation(out_schema, rel.data.map_items(reshape))
    return aggregate_relation(flat, out_schema, ctx.semiring, ctx.fresh_salt())


def _reorder(rel: DistRelation, schema: Tuple[str, ...]) -> DistRelation:
    if rel.schema == schema:
        return rel
    indices = [rel.attr_index(a) for a in schema]
    return DistRelation(
        schema,
        rel.data.map_items(lambda item: (tuple(item[0][i] for i in indices), item[1])),
    )


def _orient2(rel: DistRelation, left: str, right: str) -> DistRelation:
    if rel.schema == (left, right):
        return rel
    li, ri = rel.attr_index(left), rel.attr_index(right)
    return DistRelation(
        (left, right),
        rel.data.map_items(lambda item: ((item[0][li], item[0][ri]), item[1])),
    )


def _rel_between(query: TreeQuery, left: str, right: str) -> str:
    for name, attrs in query.relations:
        if set(attrs) == {left, right}:
            return name
    raise KeyError((left, right))
