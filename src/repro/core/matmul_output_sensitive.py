"""Output-sensitive sparse matrix multiplication (paper §3.2).

Computes ``∑_B R1(A,B) ⋈ R2(B,C)`` with load
``O((N1+N2)/p + (N1·N2·OUT)^{1/3}/p^{2/3})`` w.h.p., given (an estimate of)
the output size OUT and per-row output counts ``OUT_a`` (§2.2):

* ``OUT ≤ N/p`` — :func:`linear_sparse_mm`: co-locate by ``B``, aggregate
  locally, finish with one reduce-by-key.  Load O(N/p).
* otherwise, with ``L = (N1N2·OUT/p²)^{1/3} + (N1+N2)/p``:

  1. rows with ``OUT_a ≥ √(N2·OUT·L/N1)`` are *heavy*: their subquery is
     solved by the baseline join-then-aggregate (its intermediate size is
     bounded by ``√(N1N2·OUT/L)``, giving load O(L));
  2. light rows are parallel-packed into row-groups ``A_i`` of
     ``Σ OUT_a = O(√(N2·OUT·L/N1))`` each;
  3. for every row-group, the per-column result counts
     ``r_i(c) = |π_A σ_{A∈A_i}R1 ⋈ R2(B,c)|`` are estimated with KMV
     sketches on ``⌈(|σ_{A_i}R1| + N2)/L⌉`` servers per group (total O(p));
     *group-heavy* columns (``r_i(c) ≥ L``) each get a dedicated task;
  4. the remaining light columns are packed per group into bundles of
     ``Σ r_i(c) = O(L)`` results; every ``(A_i, C_{ij})`` bundle pair is a
     little matrix multiplication with input O(L) and output O(L), solved by
     :func:`linear_sparse_mm` on its own server range.

All four parts produce disjoint ``(a, c)`` keys, so the union of their
(fully aggregated) outputs is the answer.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..primitives.degrees import attach_by_key, degree_table, lookup_table
from ..primitives.estimate_out import estimate_path_out
from ..primitives.kmv import MultiKMV
from ..primitives.packing import parallel_packing, scoped_parallel_packing
from ..primitives.reduce_by_key import reduce_by_key
from ..semiring import Semiring
from .allocation import RangeAllocation
from .matmul_worst_case import _matmul_attrs
from .two_way_join import (
    join_aggregate_pair,
    local_join_aggregate,
    vector_join_context,
    vector_profile,
)

__all__ = ["linear_sparse_mm", "matmul_output_sensitive", "output_sensitive_load_target"]


def output_sensitive_load_target(n1: int, n2: int, out: float, p: int) -> int:
    """The paper's L = (N1·N2·OUT/p²)^{1/3} + (N1+N2)/p (≥ 1)."""
    cube = (max(1, n1) * max(1, n2) * max(1.0, out)) / (p * p)
    return max(1, math.ceil(cube ** (1.0 / 3.0)) + math.ceil((n1 + n2) / p))


def linear_sparse_mm(
    r1: DistRelation, r2: DistRelation, semiring: Semiring, salt: int = 0
) -> DistRelation:
    """LinearSparseMM (§3.2): O(N/p) load when OUT ≤ N/p.

    Both relations are co-partitioned on ``B`` (the paper sorts; we hash,
    which meets the same load bound w.h.p. because after dangling removal
    every ``B``-degree is ≤ OUT ≤ N/p), local results are pre-aggregated,
    and one reduce-by-key combines them.
    """
    view = r1.view
    p = view.p
    a_attr, b_attr, c_attr = _matmul_attrs(r1, r2)
    b1_index = r1.attr_index(b_attr)
    b2_index = r2.attr_index(b_attr)
    a_index = r1.attr_index(a_attr)
    c_index = r2.attr_index(c_attr)
    tracker = view.tracker

    left = r1.data.map_items(lambda item: ("L", item)).repartition(
        lambda msg: _bucket(msg[1][0][b1_index], p, salt)
    )
    right = r2.data.map_items(lambda item: ("R", item)).repartition(
        lambda msg: _bucket(msg[1][0][b2_index], p, salt)
    )
    merged = left.concat(right)
    vec = vector_join_context(
        view, semiring, b1_index, b2_index, (("L", a_index), ("R", c_index))
    )

    def compute(part: List[Any]) -> List[Any]:
        left_items = [item for tag, item in part if tag == "L"]
        right_items = [item for tag, item in part if tag == "R"]
        partials, products = local_join_aggregate(
            left_items,
            right_items,
            lambda it: (it[0][b1_index],),
            lambda it: (it[0][b2_index],),
            lambda lv, rv: (lv[a_index], rv[c_index]),
            semiring,
            vec=vec,
        )
        tracker.record_products(products)
        return list(partials.items())

    partials = merged.map_parts(compute)
    reduced = reduce_by_key(
        partials, lambda pair: pair[0], lambda pair: pair[1], semiring.add, salt + 1,
        profile=vector_profile(view, semiring),
    )
    return DistRelation(
        (a_attr, c_attr), reduced.map_items(lambda pair: (tuple(pair[0]), pair[1]))
    )


def _bucket(value: Any, p: int, salt: int) -> int:
    from ..mpc.hashing import hash_to_bucket

    return hash_to_bucket(value, p, salt)


def matmul_output_sensitive(
    r1: DistRelation,
    r2: DistRelation,
    semiring: Semiring,
    out_estimate: Optional[float] = None,
    out_a_table: Optional[Distributed] = None,
    salt: int = 0,
) -> DistRelation:
    """§3.2: the (N1N2·OUT)^{1/3}/p^{2/3} algorithm (dangling tuples removed).

    ``out_estimate``/``out_a_table`` are the §2.2 statistics; when omitted
    they are computed here (one KMV pass, linear load).
    """
    view = r1.view
    p = view.p
    n1, n2 = r1.total_size, r2.total_size
    a_attr, b_attr, c_attr = _matmul_attrs(r1, r2)
    if n1 == 0 or n2 == 0:
        return DistRelation((a_attr, c_attr), Distributed.empty(view))

    if out_estimate is None or out_a_table is None:
        out_estimate, out_a_table = estimate_path_out(
            [r1, r2], [a_attr, b_attr, c_attr], base_salt=salt + 900
        )

    total = n1 + n2
    if out_estimate <= total / p:
        return linear_sparse_mm(r1, r2, semiring, salt)

    load = output_sensitive_load_target(n1, n2, out_estimate, p)
    heavy_row_threshold = math.sqrt(n2 * out_estimate * load / n1)

    a_index = r1.attr_index(a_attr)
    b1_index = r1.attr_index(b_attr)
    b2_index = r2.attr_index(b_attr)
    c_index = r2.attr_index(c_attr)
    a_key = r1.key_fn((a_attr,))
    c_key = r2.key_fn((c_attr,))
    tracker = view.tracker

    # ---- Step 1: split rows by OUT_a. -------------------------------------
    # out_a_table holds ((a,), est) per §2.2 keyed by the bare value.
    out_a_pairs = out_a_table.map_items(lambda pair: (_bare(pair[0]), pair[1]))
    r1_tagged = attach_by_key(
        r1.data, out_a_pairs, lambda item: item[0][a_index], default=1.0, salt=salt
    )
    r1_heavy_data = r1_tagged.filter_items(
        lambda entry: entry[1] >= heavy_row_threshold
    ).map_items(lambda entry: entry[0])
    r1_light_tagged = r1_tagged.filter_items(
        lambda entry: entry[1] < heavy_row_threshold
    )
    r1_light_data = r1_light_tagged.map_items(lambda entry: entry[0])

    outputs: List[Distributed] = []

    # ---- Step 2: heavy rows via the baseline join-then-aggregate. ----------
    if r1_heavy_data.total_size:
        heavy_rel = DistRelation(r1.schema, r1_heavy_data)
        joined = join_aggregate_pair(
            heavy_rel, r2, (a_attr, c_attr), semiring, salt=salt + 1
        )
        outputs.append(
            joined.data.map_items(lambda pair: (tuple(pair[0]), pair[1]))
        )

    if r1_light_data.total_size == 0:
        return _union(view, (a_attr, c_attr), outputs)

    # ---- Step 3a: pack light rows into groups A_i by OUT_a. ----------------
    light_rows = out_a_pairs  # (a, est); restrict to light values
    light_rows = light_rows.filter_items(
        lambda pair: pair[1] < heavy_row_threshold
    )
    packed, _k1 = parallel_packing(
        light_rows,
        lambda pair: min(1.0, max(pair[1], 1.0) / heavy_row_threshold),
    )
    group_table = packed.map_items(lambda entry: (entry[0][0], entry[1]))
    r1_grouped = attach_by_key(
        r1_light_data, group_table, lambda item: item[0][a_index],
        default=None, salt=salt + 2,
    ).filter_items(lambda entry: entry[1] is not None)

    # Group input sizes s_i = |σ_{A∈A_i} R1| (coordinator table, O(#groups)).
    group_sizes = {
        key: size
        for key, size in lookup_table(
            reduce_by_key(
                r1_grouped,
                lambda entry: entry[1],
                lambda _entry: 1,
                lambda x, y: x + y,
                salt=salt + 3,
            )
        ).items()
    }

    # ---- Step 3b: estimate r_i(c) per (group, column) with KMV sketches. ---
    est_alloc = RangeAllocation(
        view, {i: group_sizes[i] + n2 for i in sorted(group_sizes)}, load
    )
    est_routed = (
        r1_grouped.map_items(lambda entry: ("S", entry[1], entry[0]))
        .repartition(
            lambda msg: est_alloc.dest(msg[1], msg[2][0][b1_index], salt + 4)
        )
        .concat(
            r2.data.map_items(lambda item: ("R", item)).repartition_multi(
                lambda msg: sorted(
                    {
                        est_alloc.dest(i, msg[1][0][b2_index], salt + 4)
                        for i in group_sizes
                    }
                )
            )
        )
    )

    def sketch_part(part: List[Any]) -> List[Any]:
        # (i, b) → bundle of a's; then join with local R2 tuples on b.
        bundles: Dict[Tuple[Any, Any], MultiKMV] = {}
        r2_local: List[Any] = []
        for msg in part:
            if msg[0] == "S":
                _tag, i, item = msg
                key = (i, item[0][b1_index])
                bundle = MultiKMV.of([item[0][a_index]], 16, 5, salt + 800)
                if key in bundles:
                    bundles[key] = bundles[key].merge(bundle)
                else:
                    bundles[key] = bundle
            else:
                r2_local.append(msg[1])
        partials: Dict[Tuple[Any, Any], MultiKMV] = {}
        for item in r2_local:
            b = item[0][b2_index]
            c = item[0][c_index]
            for i in group_sizes:
                bundle = bundles.get((i, b))
                if bundle is None:
                    continue
                key = (i, c)
                if key in partials:
                    partials[key] = partials[key].merge(bundle)
                else:
                    partials[key] = bundle
        return list(partials.items())

    sketch_partials = est_routed.map_parts(sketch_part)
    column_counts = reduce_by_key(
        sketch_partials,
        lambda pair: pair[0],
        lambda pair: pair[1],
        lambda x, y: x.merge(y),
        salt=salt + 5,
    ).map_items(lambda pair: (pair[0], pair[1].estimate()))

    # ---- Step 3c: group-heavy columns get dedicated tasks. -----------------
    heavy_cols = lookup_table(
        column_counts.filter_items(lambda pair: pair[1] >= load)
    )  # {(i, c): estimate}; O(p) entries by the Σp_ic = O(p) argument.
    if heavy_cols:
        c_degrees = degree_table(r2.data, c_key, salt + 6)
        heavy_col_values = {c for (_i, c) in heavy_cols}
        c_degree_map = {
            key[0]: deg
            for key, deg in lookup_table(
                c_degrees.filter_items(lambda pair: pair[0][0] in heavy_col_values)
            ).items()
        }
        hc_alloc = RangeAllocation(
            view,
            {
                (i, c): group_sizes[i] + c_degree_map.get(c, 0)
                for (i, c) in sorted(heavy_cols, key=repr)
            },
            load,
        )
        heavy_by_group: Dict[Any, List[Any]] = {}
        for i, c in heavy_cols:
            heavy_by_group.setdefault(i, []).append(c)

        hc_routed = (
            r1_grouped.map_parts(
                lambda part: [
                    ("L", (entry[1], c), entry[0])
                    for entry in part
                    for c in heavy_by_group.get(entry[1], ())
                ]
            )
            .repartition(
                lambda msg: hc_alloc.dest(msg[1], msg[2][0][b1_index], salt + 7)
            )
            .concat(
                r2.data.map_parts(
                    lambda part: [
                        ("R", (i, item[0][c_index]), item)
                        for item in part
                        for i in group_sizes
                        if (i, item[0][c_index]) in heavy_cols
                    ]
                ).repartition(
                    lambda msg: hc_alloc.dest(msg[1], msg[2][0][b2_index], salt + 7)
                )
            )
        )
        outputs.append(
            _join_tasked(hc_routed, b1_index, b2_index, a_index, c_index,
                         semiring, tracker, salt + 8)
        )

    # ---- Step 4: light columns, packed per group, via LinearSparseMM. ------
    light_cols = column_counts.filter_items(
        lambda pair: pair[1] < load and pair[0] not in heavy_cols
    )
    if light_cols.total_size:
        col_packed, _groups_per_scope = scoped_parallel_packing(
            light_cols,
            lambda pair: pair[0][0],  # scope = row-group i
            lambda pair: min(1.0, max(pair[1], 1.0) / load),
        )
        # (i, c) → bundle id j; bundle key = (i, j).
        bundle_table = col_packed.map_items(
            lambda entry: (entry[0][0], entry[1][1])
        )  # ((i, c), j)
        # Bundle input sizes: the R2 share; the R1 share is s_i per bundle.
        r2_bundled = attach_by_key(
            r2.data.map_parts(
                lambda part: [
                    ((i, item[0][c_index]), item)
                    for item in part
                    for i in group_sizes
                ]
            ),
            bundle_table,
            lambda pair: pair[0],
            default=None,
            salt=salt + 9,
        ).filter_items(lambda entry: entry[1] is not None)
        # entries: (((i, c), item), j)
        bundle_sizes = {
            key: size
            for key, size in lookup_table(
                reduce_by_key(
                    r2_bundled,
                    lambda entry: (entry[0][0][0], entry[1]),
                    lambda _entry: 1,
                    lambda x, y: x + y,
                    salt=salt + 10,
                )
            ).items()
        }
        task_sizes = {
            (i, j): group_sizes[i] + size
            for (i, j), size in sorted(bundle_sizes.items(), key=repr)
        }
        ll_alloc = RangeAllocation(view, task_sizes, load)

        bundles_by_group: Dict[Any, List[int]] = {}
        for i, j in task_sizes:
            bundles_by_group.setdefault(i, []).append(j)

        ll_routed = (
            r1_grouped.map_parts(
                lambda part: [
                    ("L", (entry[1], j), entry[0])
                    for entry in part
                    for j in bundles_by_group.get(entry[1], ())
                ]
            )
            .repartition(
                lambda msg: ll_alloc.dest(msg[1], msg[2][0][b1_index], salt + 11)
            )
            .concat(
                r2_bundled.map_items(
                    lambda entry: ("R", (entry[0][0][0], entry[1]), entry[0][1])
                ).repartition(
                    lambda msg: ll_alloc.dest(msg[1], msg[2][0][b2_index], salt + 11)
                )
            )
        )
        outputs.append(
            _join_tasked(ll_routed, b1_index, b2_index, a_index, c_index,
                         semiring, tracker, salt + 12)
        )

    return _union(view, (a_attr, c_attr), outputs)


def _bare(key: Any) -> Any:
    """§2.2 tables key by 1-tuples; unwrap to the bare value."""
    if isinstance(key, tuple) and len(key) == 1:
        return key[0]
    return key


def _join_tasked(
    routed: Distributed,
    b1_index: int,
    b2_index: int,
    a_index: int,
    c_index: int,
    semiring: Semiring,
    tracker,
    salt: int,
) -> Distributed:
    """Join ("L"/"R", task, item) messages within tasks (colocated by B) and
    ⊕-reduce the (a, c) partials."""
    vec = vector_join_context(
        routed.view, semiring, b1_index, b2_index, (("L", a_index), ("R", c_index))
    )

    def compute(part: List[Any]) -> List[Any]:
        lefts: Dict[Any, List[Any]] = {}
        rights: Dict[Any, List[Any]] = {}
        for tag, task, item in part:
            (lefts if tag == "L" else rights).setdefault(task, []).append(item)
        rows: List[Any] = []
        for task, left_items in lefts.items():
            right_items = rights.get(task)
            if not right_items:
                continue
            partials, products = local_join_aggregate(
                left_items,
                right_items,
                lambda it: (it[0][b1_index],),
                lambda it: (it[0][b2_index],),
                lambda lv, rv: (lv[a_index], rv[c_index]),
                semiring,
                vec=vec,
            )
            tracker.record_products(products)
            rows.extend(partials.items())
        return rows

    partials = routed.map_parts(compute)
    return reduce_by_key(
        partials, lambda pair: pair[0], lambda pair: pair[1], semiring.add, salt,
        profile=vector_profile(routed.view, semiring),
    )


def _union(view, schema: Tuple[str, str], outputs: List[Distributed]) -> DistRelation:
    result = Distributed.empty(view)
    for output in outputs:
        result = result.concat(output)
    return DistRelation(
        schema, result.map_items(lambda pair: (tuple(pair[0]), pair[1]))
    )
