"""Line queries — chain matrix multiplication (paper §4).

``∑_{A2..An} R1(A1,A2) ⋈ … ⋈ Rn(An,An+1)`` with load
``O( N·OUT^{1/2}/p + (N·OUT/p)^{2/3} + (N+OUT)/p )`` (Theorem 4):

1. estimate OUT (§2.2) and split ``dom(A2)`` by degree in R1 at √OUT;
2. **heavy side**: every heavy ``A2`` value joins ≥ √OUT distinct ``A1``
   values (Lemma 4), so every right-to-left Yannakakis intermediate
   ``R(A_i, A_{n+1})`` has size ≤ N·√OUT; shrink the tail to
   ``R(A2, A_{n+1})`` and finish with one output-sensitive matrix
   multiplication;
3. **light side**: ``R1 ⋈ R2`` has size ≤ N·√OUT by the degree bound;
   aggregate out ``A2`` and recurse on the shorter line query;
4. ⊕-combine the two result sets by ``(A1, A_{n+1})``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..data.query import TreeQuery
from ..data.relation import DistRelation
from ..mpc.distributed import Distributed
from ..primitives.dangling import remove_dangling
from ..primitives.degrees import attach_by_key, degree_table
from ..primitives.estimate_out import estimate_path_out
from ..semiring import Semiring
from .matmul import sparse_matmul
from .two_way_join import aggregate_relation, join_aggregate_pair

__all__ = ["line_query"]


def line_query(
    relations: Sequence[DistRelation],
    attrs: Sequence[str],
    semiring: Semiring,
    salt: int = 0,
    matmul_strategy: str = "auto",
) -> DistRelation:
    """Evaluate the line query; result over ``(attrs[0], attrs[-1])``.

    ``relations[i]`` must contain attributes ``(attrs[i], attrs[i+1])``.
    ``matmul_strategy`` forces the :func:`~repro.core.matmul.sparse_matmul`
    strategy of the two-relation case (the executor's
    ``matmul-worst-case``/``matmul-output-sensitive`` entries); longer
    lines ignore it — their internal matmul steps are part of the §4
    algorithm, not a dispatch choice.
    """
    if len(relations) != len(attrs) - 1 or len(relations) < 1:
        raise ValueError("need m relations for m+1 line attributes")
    relations = [_oriented(rel, attrs[i], attrs[i + 1]) for i, rel in enumerate(relations)]

    if len(relations) == 1:
        # Degenerate: a single binary relation, both attributes output.
        return aggregate_relation(relations[0], (attrs[0], attrs[1]), semiring, salt)

    relations = _reduce_line(relations, attrs)
    if len(relations) == 2:
        return sparse_matmul(
            relations[0], relations[1], semiring, strategy=matmul_strategy,
            reduce_dangling=False, salt=salt,
        )

    tracker = relations[0].view.tracker
    with tracker.phase("line/estimate-out"):
        out_estimate, _per_a = estimate_path_out(
            list(relations), list(attrs), base_salt=salt + 500
        )
    threshold = max(1.0, math.sqrt(max(1.0, out_estimate)))

    first, second = relations[0], relations[1]
    a2 = attrs[1]
    degrees = degree_table(first.data, first.key_fn((a2,)), salt + 1)
    degree_pairs = degrees.map_items(lambda pair: (pair[0][0], pair[1]))

    def split(rel: DistRelation, heavy: bool) -> DistRelation:
        index = rel.attr_index(a2)
        tagged = attach_by_key(
            rel.data, degree_pairs, lambda item: item[0][index], default=0,
            salt=salt + 2,
        )
        kept = tagged.filter_items(
            lambda entry: (entry[1] >= threshold) == heavy
        ).map_items(lambda entry: entry[0])
        return DistRelation(rel.schema, kept)

    outputs: List[Distributed] = []
    out_schema = (attrs[0], attrs[-1])

    # ---- Step 2: heavy side. -----------------------------------------------
    with tracker.phase("line/heavy-side"):
        heavy_rels = [split(first, True), split(second, True)] + list(relations[2:])
        heavy_rels = _reduce_line(heavy_rels, attrs)
        if all(rel.total_size for rel in heavy_rels):
            tail = heavy_rels[-1]
            for i in range(len(heavy_rels) - 2, 0, -1):
                tail = join_aggregate_pair(
                    heavy_rels[i], tail, (attrs[i], attrs[-1]), semiring,
                    salt=salt + 3 + i,
                )
            heavy_result = sparse_matmul(
                heavy_rels[0], tail, semiring, strategy="output-sensitive",
                reduce_dangling=False, salt=salt + 20,
            )
            outputs.append(heavy_result.data)

    # ---- Step 3: light side (recurse on a shorter line). --------------------
    with tracker.phase("line/light-side"):
        light_first, light_second = split(first, False), split(second, False)
        if light_first.total_size and light_second.total_size:
            merged = join_aggregate_pair(
                light_first, light_second, (attrs[0], attrs[2]), semiring,
                salt=salt + 40,
            )
            shorter = [merged] + list(relations[2:])
            shorter_attrs = [attrs[0]] + list(attrs[2:])
            light_result = line_query(shorter, shorter_attrs, semiring, salt + 50)
            outputs.append(light_result.data)

    # ---- Step 4: ⊕-combine by (A1, A_{n+1}). --------------------------------
    view = relations[0].view
    union = Distributed.empty(view)
    for output in outputs:
        union = union.concat(output)
    combined = DistRelation(out_schema, union)
    return aggregate_relation(combined, out_schema, semiring, salt + 60)


def _oriented(rel: DistRelation, left: str, right: str) -> DistRelation:
    """Ensure the relation's schema is exactly ``(left, right)`` (reorder the
    stored value tuples locally if needed)."""
    if rel.schema == (left, right):
        return rel
    if set(rel.schema) != {left, right}:
        raise ValueError(f"relation schema {rel.schema!r} is not ({left}, {right})")
    li, ri = rel.attr_index(left), rel.attr_index(right)
    data = rel.data.map_items(
        lambda item: ((item[0][li], item[0][ri]), item[1])
    )
    return DistRelation((left, right), data)


def _reduce_line(
    relations: Sequence[DistRelation], attrs: Sequence[str]
) -> List[DistRelation]:
    """Remove dangling tuples along the line (semijoin passes)."""
    names = [f"__L{i}" for i in range(len(relations))]
    query = TreeQuery(
        tuple((names[i], (attrs[i], attrs[i + 1])) for i in range(len(relations))),
        frozenset({attrs[0], attrs[-1]}),
    )
    reduced = remove_dangling(
        query, {names[i]: relations[i] for i in range(len(relations))}
    )
    return [reduced[name] for name in names]
