"""The distributed Yannakakis algorithm — the paper's baseline (§1.2, §1.4).

Runs the classic Yannakakis plan (dangling-tuple removal, then bottom-up
pairwise join + aggregation) on the MPC simulator, using the optimal
skew-resilient two-way join for every step.  Its load is
``O(N/p + J/p)`` where ``J`` is the maximum intermediate join size:
``J = O(OUT)`` for free-connex queries, ``O(N·√OUT)`` for matrix
multiplication, ``O(N·OUT^{1−1/n})`` for stars and ``O(N·OUT)`` in general —
the first column of Table 1 that the new algorithms beat.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..data.query import Instance
from ..data.relation import DistRelation, Relation
from ..mpc.cluster import ClusterView
from ..primitives.dangling import remove_dangling
from ..ram.yannakakis import yannakakis_plan
from .two_way_join import aggregate_relation, join_aggregate_pair

__all__ = ["yannakakis_mpc", "yannakakis_mpc_distributed"]


def yannakakis_mpc_distributed(
    instance: Instance, view: ClusterView
) -> DistRelation:
    """Run the baseline and leave the result distributed (canonical schema:
    output attributes in sorted order)."""
    query = instance.query
    semiring = instance.semiring
    relations: Dict[str, DistRelation] = {
        name: DistRelation.load(view, instance.relation(name))
        for name, _ in query.relations
    }
    relations = remove_dangling(query, relations)

    for step in yannakakis_plan(query):
        leaf = relations.pop(step.leaf)
        host = relations[step.host]
        relations[step.host] = join_aggregate_pair(leaf, host, step.keep, semiring)

    (final,) = relations.values()
    schema = tuple(sorted(query.output))
    if final.schema == schema:
        return final
    return aggregate_relation(final, schema, semiring)


def yannakakis_mpc(instance: Instance, view: ClusterView) -> Relation:
    """Run the baseline and materialize the result at the coordinator."""
    distributed = yannakakis_mpc_distributed(instance, view)
    return distributed.collect("yannakakis_mpc", instance.semiring)
